//! `mdea` — command-line front end.
//!
//! ```text
//! cargo run --release --bin mdea -- run --atoms 864 --steps 200 --kernel rayon
//! cargo run --release --bin mdea -- devices --atoms 1024
//! cargo run --release --bin mdea -- trace --atoms 512 --steps 5 --out cell_trace.json
//! ```

use md_emerging_arch::cell::{CellBeDevice, CellRunConfig};
use md_emerging_arch::cli::{
    parse_args, Command, DevicesArgs, KernelChoice, RunArgs, TraceArgs, USAGE,
};
use md_emerging_arch::harness::{DeviceKind, GpuModel};
use md_emerging_arch::md::device::RunOptions;
use md_emerging_arch::md::forces::ForceKernel;
use md_emerging_arch::md::prelude::*;
use md_emerging_arch::md::{io as mdio, sim::Simulation};
use md_emerging_arch::mta::ThreadingMode;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match parse_args(refs.iter().copied()) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Run(r)) => run(r),
        Ok(Command::Devices(d)) => devices(d),
        Ok(Command::Trace(t)) => trace(t),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn make_kernel(choice: KernelChoice) -> Box<dyn ForceKernel<f64> + Send> {
    match choice {
        KernelChoice::Half => Box::new(AllPairsHalfKernel),
        KernelChoice::Full => Box::new(AllPairsFullKernel),
        KernelChoice::Rayon => Box::new(RayonKernel),
        KernelChoice::NeighborList => Box::new(NeighborListKernel::with_default_skin()),
        KernelChoice::CellList => Box::new(CellListKernel::new()),
    }
}

fn run(args: RunArgs) -> ExitCode {
    let mut sim = Simulation::<f64>::prepare_with_kernel(args.config, make_kernel(args.kernel));
    println!(
        "running {} atoms for {} steps with the {} kernel",
        args.config.n_atoms,
        args.steps,
        sim.kernel_name()
    );

    let mut xyz = match &args.xyz_path {
        Some(path) => match File::create(path) {
            Ok(f) => Some(BufWriter::new(f)),
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let e0 = sim.total_energy();
    for step in 1..=args.steps {
        let report = sim.step();
        if step % args.xyz_every == 0 {
            if let Some(out) = xyz.as_mut() {
                if let Err(e) = mdio::write_xyz_frame(out, &sim.system, &format!("step {step}")) {
                    eprintln!("error writing XYZ: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if step % (args.steps / 10).max(1) == 0 {
            println!(
                "step {step:>6}: T* = {:.4}  E = {:.4}  (drift {:+.2e})",
                report.temperature,
                report.total,
                (report.total - e0) / e0
            );
        }
    }

    if let Some(path) = &args.checkpoint_path {
        let text = mdio::checkpoint_to_string(&sim.system);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error writing checkpoint: {e}");
            return ExitCode::FAILURE;
        }
        println!("checkpoint written to {path}");
    }
    ExitCode::SUCCESS
}

fn devices(args: DevicesArgs) -> ExitCode {
    println!(
        "workload: {} atoms, {} steps (simulated 2006 hardware)\n",
        args.config.n_atoms, args.steps
    );
    let run_on = |kind: DeviceKind| {
        kind.build().run(
            &args.config,
            RunOptions::steps(args.steps).with_host_threads(args.host_threads),
        )
    };
    let opteron = run_on(DeviceKind::Opteron).expect("the reference CPU always runs");
    let base = opteron.sim_seconds;
    println!("{:<28} {:>12} {:>10}", "system", "runtime", "vs Opteron");
    let row =
        |name: &str, secs: f64| println!("{name:<28} {:>9.2} ms {:>9.2}x", secs * 1e3, base / secs);
    row("Opteron 2.2 GHz", opteron.sim_seconds);
    match run_on(DeviceKind::cell_best()) {
        Ok(cell) => row("Cell BE, 8 SPEs", cell.sim_seconds),
        Err(e) => println!("{:<28} {e}", "Cell BE, 8 SPEs"),
    }
    let gpu = run_on(DeviceKind::Gpu {
        model: GpuModel::GeForce7900Gtx,
    })
    .expect("the GPU model runs any workload");
    row("GeForce 7900GTX", gpu.sim_seconds);
    let mta = run_on(DeviceKind::Mta {
        mode: ThreadingMode::FullyMultithreaded,
    })
    .expect("the MTA model runs any workload");
    row("Cray MTA-2", mta.sim_seconds);
    ExitCode::SUCCESS
}

fn trace(args: TraceArgs) -> ExitCode {
    let device = CellBeDevice::paper_blade();
    let mut tracer = mdea_trace::Tracer::new();
    match device.run_md_traced(&args.config, args.steps, CellRunConfig::best(), &mut tracer) {
        Ok(run) => {
            let json = tracer.to_chrome_json();
            match File::create(&args.out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
                Ok(()) => {
                    println!(
                        "traced {} spans over {:.2} ms of simulated Cell time -> {}",
                        tracer.spans().len(),
                        run.sim_seconds * 1e3,
                        args.out_path
                    );
                    println!("open chrome://tracing or https://ui.perfetto.dev and load the file");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error writing {}: {e}", args.out_path);
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
