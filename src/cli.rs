//! Command-line interface for the `mdea` binary.
//!
//! Hand-rolled flag parsing (no external dependency) kept in the library so
//! the parser is unit-testable. Subcommands:
//!
//! - `run` — run an MD simulation, optionally writing XYZ frames and a final
//!   checkpoint;
//! - `devices` — run one workload on all four simulated systems;
//! - `trace` — produce a Chrome-trace timeline of a simulated Cell run.

use md_core::params::SimConfig;
use md_core::scenario::ScenarioSpec;

/// Which force kernel `mdea run` uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    Half,
    Full,
    Rayon,
    NeighborList,
    CellList,
}

impl KernelChoice {
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "half" => Ok(Self::Half),
            "full" => Ok(Self::Full),
            "rayon" => Ok(Self::Rayon),
            "neighbor" => Ok(Self::NeighborList),
            "cell" => Ok(Self::CellList),
            other => Err(format!(
                "unknown kernel '{other}' (expected half|full|rayon|neighbor|cell)"
            )),
        }
    }
}

/// Parsed `mdea run` arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    pub config: SimConfig,
    pub steps: usize,
    pub kernel: KernelChoice,
    /// Write an XYZ frame every `xyz_every` steps to this path.
    pub xyz_path: Option<String>,
    pub xyz_every: usize,
    /// Write a final checkpoint here.
    pub checkpoint_path: Option<String>,
}

/// Parsed `mdea devices` arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct DevicesArgs {
    pub config: SimConfig,
    pub steps: usize,
    /// Host threads for each device's simulated lanes (0 = one per core,
    /// 1 = serial). Results are bitwise identical at any value; only host
    /// wall-clock changes.
    pub host_threads: usize,
}

/// Parsed `mdea trace` arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceArgs {
    pub config: SimConfig,
    pub steps: usize,
    pub out_path: String,
}

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    Run(RunArgs),
    Devices(DevicesArgs),
    Trace(TraceArgs),
    Help,
}

pub const USAGE: &str = "\
mdea — molecular dynamics on simulated 2006 'emerging' architectures

USAGE:
  mdea run     [--atoms N] [--steps S] [--density D] [--temperature T]
               [--dt DT] [--seed X] [--kernel half|full|rayon|neighbor|cell]
               [--scenario SPEC] [--xyz FILE [--every K]] [--checkpoint FILE]
  mdea devices [--atoms N] [--steps S] [--host-threads T] [--scenario SPEC]
  mdea trace   [--atoms N] [--steps S] --out FILE
  mdea help

SCENARIO:
  <potential>/<ensemble>/<precision>, trailing segments optional.
  Potentials: lj:e<ε>,s<σ> | morse:d<D>,a<a>,r<r0> | coul:q<q²>
  Ensembles:  nve | nvt:t<T*>,k<κ>      Precision: native|f32|f64|mixed
  Default ('default') is the paper-faithful LJ/NVE/native scenario.
";

fn take_value<'a>(flag: &str, it: &mut impl Iterator<Item = &'a str>) -> Result<&'a str, String> {
    it.next().ok_or_else(|| format!("{flag} requires a value"))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    v.parse()
        .map_err(|e| format!("invalid value '{v}' for {flag}: {e}"))
}

/// Shared workload flags. Returns leftover flags it did not consume.
struct WorkloadFlags {
    atoms: usize,
    steps: usize,
    density: f64,
    temperature: f64,
    dt: f64,
    seed: u64,
    scenario: ScenarioSpec,
}

impl Default for WorkloadFlags {
    fn default() -> Self {
        Self {
            atoms: 864,
            steps: 100,
            density: 0.8442,
            temperature: 0.728,
            dt: 0.005,
            seed: 0x5EED_0001,
            scenario: ScenarioSpec::default(),
        }
    }
}

impl WorkloadFlags {
    fn config(&self) -> Result<SimConfig, String> {
        let cfg = SimConfig::reduced_lj(self.atoms)
            .with_density(self.density)
            .with_temperature(self.temperature)
            .with_dt(self.dt)
            .with_seed(self.seed)
            .with_scenario(self.scenario);
        cfg.try_validate()?;
        Ok(cfg)
    }

    /// Try to consume one flag; `Ok(true)` if it was a workload flag.
    fn try_consume<'a>(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = &'a str>,
    ) -> Result<bool, String> {
        match flag {
            "--atoms" => self.atoms = parse_num(flag, take_value(flag, it)?)?,
            "--steps" => self.steps = parse_num(flag, take_value(flag, it)?)?,
            "--density" => self.density = parse_num(flag, take_value(flag, it)?)?,
            "--temperature" => self.temperature = parse_num(flag, take_value(flag, it)?)?,
            "--dt" => self.dt = parse_num(flag, take_value(flag, it)?)?,
            "--seed" => self.seed = parse_num(flag, take_value(flag, it)?)?,
            "--scenario" => {
                let v = take_value(flag, it)?;
                self.scenario = v
                    .parse()
                    .map_err(|e| format!("invalid value '{v}' for {flag}: {e}"))?;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Parse a full command line (without the program name).
pub fn parse_args<'a>(args: impl IntoIterator<Item = &'a str>) -> Result<Command, String> {
    let mut it = args.into_iter();
    let sub = match it.next() {
        None | Some("help" | "--help" | "-h") => return Ok(Command::Help),
        Some(s) => s,
    };
    match sub {
        "run" => {
            let mut w = WorkloadFlags::default();
            let mut kernel = KernelChoice::Half;
            let mut xyz_path = None;
            let mut xyz_every = 10usize;
            let mut checkpoint_path = None;
            while let Some(flag) = it.next() {
                if w.try_consume(flag, &mut it)? {
                    continue;
                }
                match flag {
                    "--kernel" => kernel = KernelChoice::parse(take_value(flag, &mut it)?)?,
                    "--xyz" => xyz_path = Some(take_value(flag, &mut it)?.to_string()),
                    "--every" => xyz_every = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--checkpoint" => {
                        checkpoint_path = Some(take_value(flag, &mut it)?.to_string());
                    }
                    other => return Err(format!("unknown flag for run: {other}")),
                }
            }
            if xyz_every == 0 {
                return Err("--every must be at least 1".into());
            }
            Ok(Command::Run(RunArgs {
                config: w.config()?,
                steps: w.steps,
                kernel,
                xyz_path,
                xyz_every,
                checkpoint_path,
            }))
        }
        "devices" => {
            let mut w = WorkloadFlags {
                atoms: 1024,
                steps: 10,
                ..WorkloadFlags::default()
            };
            let mut host_threads = 1usize;
            while let Some(flag) = it.next() {
                if w.try_consume(flag, &mut it)? {
                    continue;
                }
                match flag {
                    "--host-threads" => {
                        host_threads = parse_num(flag, take_value(flag, &mut it)?)?;
                    }
                    other => return Err(format!("unknown flag for devices: {other}")),
                }
            }
            Ok(Command::Devices(DevicesArgs {
                config: w.config()?,
                steps: w.steps,
                host_threads,
            }))
        }
        "trace" => {
            let mut w = WorkloadFlags {
                atoms: 512,
                steps: 5,
                ..WorkloadFlags::default()
            };
            let mut out_path = None;
            while let Some(flag) = it.next() {
                if w.try_consume(flag, &mut it)? {
                    continue;
                }
                match flag {
                    "--out" => out_path = Some(take_value(flag, &mut it)?.to_string()),
                    other => return Err(format!("unknown flag for trace: {other}")),
                }
            }
            Ok(Command::Trace(TraceArgs {
                config: w.config()?,
                steps: w.steps,
                out_path: out_path.ok_or("trace requires --out FILE")?,
            }))
        }
        other => Err(format!("unknown subcommand: {other}\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_help() {
        assert_eq!(parse_args([]).unwrap(), Command::Help);
        assert_eq!(parse_args(["help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn run_defaults() {
        let Command::Run(r) = parse_args(["run"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(r.config.n_atoms, 864);
        assert_eq!(r.steps, 100);
        assert_eq!(r.kernel, KernelChoice::Half);
        assert_eq!(r.xyz_path, None);
    }

    #[test]
    fn run_full_flags() {
        let Command::Run(r) = parse_args([
            "run",
            "--atoms",
            "500",
            "--steps",
            "20",
            "--density",
            "0.7",
            "--temperature",
            "1.1",
            "--dt",
            "0.002",
            "--seed",
            "42",
            "--kernel",
            "rayon",
            "--xyz",
            "t.xyz",
            "--every",
            "5",
            "--checkpoint",
            "state.ckpt",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(r.config.n_atoms, 500);
        assert_eq!(r.config.density, 0.7);
        assert_eq!(r.config.temperature, 1.1);
        assert_eq!(r.config.dt, 0.002);
        assert_eq!(r.config.seed, 42);
        assert_eq!(r.steps, 20);
        assert_eq!(r.kernel, KernelChoice::Rayon);
        assert_eq!(r.xyz_path.as_deref(), Some("t.xyz"));
        assert_eq!(r.xyz_every, 5);
        assert_eq!(r.checkpoint_path.as_deref(), Some("state.ckpt"));
    }

    #[test]
    fn run_rejects_bad_input() {
        assert!(parse_args(["run", "--atoms"]).is_err(), "missing value");
        assert!(
            parse_args(["run", "--atoms", "many"]).is_err(),
            "non-numeric"
        );
        assert!(
            parse_args(["run", "--kernel", "magic"]).is_err(),
            "bad kernel"
        );
        assert!(
            parse_args(["run", "--every", "0"]).is_err(),
            "zero interval"
        );
        assert!(parse_args(["run", "--bogus"]).is_err(), "unknown flag");
    }

    #[test]
    fn devices_and_trace() {
        let Command::Devices(d) = parse_args(["devices", "--atoms", "256"]).unwrap() else {
            panic!();
        };
        assert_eq!(d.config.n_atoms, 256);
        assert_eq!(d.steps, 10);
        assert_eq!(d.host_threads, 1, "serial lanes by default");

        let Command::Devices(d) = parse_args(["devices", "--host-threads", "4"]).unwrap() else {
            panic!();
        };
        assert_eq!(d.host_threads, 4);

        let Command::Trace(t) =
            parse_args(["trace", "--steps", "3", "--out", "cell.json"]).unwrap()
        else {
            panic!();
        };
        assert_eq!(t.steps, 3);
        assert_eq!(t.out_path, "cell.json");
        assert!(parse_args(["trace"]).is_err(), "--out required");
    }

    #[test]
    fn scenario_flag_selects_the_workload_scenario() {
        let Command::Run(r) =
            parse_args(["run", "--scenario", "morse:d1,a2,r1.2/nvt:t0.85,k0.1/mixed"]).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(
            r.config.scenario_token(),
            "morse:d1,a2,r1.2/nvt:t0.85,k0.1/mixed"
        );
        let Command::Devices(d) = parse_args(["devices", "--scenario", "coul:q1"]).unwrap() else {
            panic!("expected devices");
        };
        assert_eq!(d.config.scenario_token(), "coul:q1/nve/native");
        assert!(
            parse_args(["run", "--scenario", "magic"]).is_err(),
            "unknown scenario"
        );
        assert!(
            parse_args(["run", "--scenario", "nvt:t-3,k0.5"]).is_err(),
            "invalid parameters fail config validation"
        );
    }

    #[test]
    fn unknown_subcommand_mentions_usage() {
        let err = parse_args(["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown subcommand"));
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn kernel_choices_roundtrip() {
        for (s, k) in [
            ("half", KernelChoice::Half),
            ("full", KernelChoice::Full),
            ("rayon", KernelChoice::Rayon),
            ("neighbor", KernelChoice::NeighborList),
            ("cell", KernelChoice::CellList),
        ] {
            assert_eq!(KernelChoice::parse(s).unwrap(), k);
        }
    }
}
