//! # md-emerging-arch
//!
//! A full reproduction of *"Analysis of a Computational Biology Simulation
//! Technique on Emerging Processing Architectures"* (Meredith, Alam, Vetter;
//! IPDPS 2007): a Lennard-Jones molecular-dynamics kernel ported to three
//! 2006-era "emerging" architectures — the STI Cell Broadband Engine, a
//! streaming GPU, and the Cray MTA-2 — compared against a 2.2 GHz Opteron.
//!
//! Since the original hardware is long gone, every device is implemented as
//! a **functional simulator**: it executes the real MD computation (results
//! are verified against the reference kernel) while a deterministic,
//! microarchitecture-calibrated cost model produces simulated runtimes. The
//! paper's tables and figures regenerate from these models; see
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`md`] (re-export of `md_core`) | the MD library: LJ forces, velocity Verlet, neighbor/cell lists, rayon kernels |
//! | [`cell`] (re-export of `cell_be`) | Cell BE simulator: SPEs, local stores, DMA, mailboxes, SIMD kernel ladder |
//! | [`gpu`] | streaming-GPU simulator: gather-only shaders, textures, PCIe costs |
//! | [`mta`] | Cray MTA-2 simulator: hardware streams, full/empty memory, compiler model |
//! | [`opteron`] | reference CPU: the kernel replayed through a K8 cache hierarchy |
//! | [`memsim`] | set-associative LRU cache hierarchy simulator |
//! | [`vecmath`] | `Real` abstraction, `Vec3`, software 4-lane SIMD, periodic boundaries |
//! | [`harness`] | per-figure experiment functions and shape checks |
//!
//! ## Quick start
//!
//! ```
//! use md_emerging_arch::md::prelude::*;
//!
//! let mut sim = Simulation::<f64>::prepare(SimConfig::reduced_lj(256));
//! let report = sim.run(50);
//! assert!(report.potential < 0.0); // a cohesive LJ liquid
//! ```
//!
//! Run the paper's experiments with the sweep binaries (results are
//! memoized under `results/cache/`, so a second run replays instantly):
//!
//! ```text
//! cargo run --release -p mdea-sim-sweep --bin all_experiments
//! cargo run --release -p mdea-sim-sweep --bin sweep -- run --all
//! ```

pub mod cli;

pub use cell_be as cell;
pub use gpu;
pub use harness;
pub use md_core as md;
pub use mdea_trace;
pub use memsim;
pub use mta;
pub use opteron;
pub use vecmath;
