//! Run the same MD workload on all four simulated systems — the paper's
//! central comparison in one command — and verify they compute the same
//! physics.
//!
//! ```text
//! cargo run --release --example device_comparison
//! ```

use md_emerging_arch::harness::{DeviceKind, GpuModel};
use md_emerging_arch::md::device::RunOptions;
use md_emerging_arch::md::params::SimConfig;
use md_emerging_arch::mta::ThreadingMode;

fn main() {
    let sim = SimConfig::reduced_lj(1024);
    let steps = 10;
    println!(
        "MD workload: {} atoms, {} time steps (simulated 2006 hardware)\n",
        sim.n_atoms, steps
    );

    let run_on = |kind: DeviceKind| {
        kind.build()
            .run(&sim, RunOptions::steps(steps))
            .expect("paper workloads fit every device")
    };
    let opteron = run_on(DeviceKind::Opteron);
    let cell = run_on(DeviceKind::cell_best());
    let gpu = run_on(DeviceKind::Gpu {
        model: GpuModel::GeForce7900Gtx,
    });
    let mta = run_on(DeviceKind::Mta {
        mode: ThreadingMode::FullyMultithreaded,
    });

    println!(
        "{:<28} {:>12} {:>12} {:>14} {:>10}",
        "system", "runtime", "vs Opteron", "total energy", "precision"
    );
    let base = opteron.sim_seconds;
    let row = |name: &str, secs: f64, energy: f64, precision: &str| {
        println!(
            "{:<28} {:>9.2} ms {:>11.2}x {:>14.3} {:>10}",
            name,
            secs * 1e3,
            base / secs,
            energy,
            precision
        );
    };
    row(
        "Opteron 2.2 GHz (reference)",
        opteron.sim_seconds,
        opteron.energies.total,
        "f64",
    );
    row(
        "Cell BE, 8 SPEs",
        cell.sim_seconds,
        cell.energies.total,
        "f32",
    );
    row(
        "GeForce 7900GTX",
        gpu.sim_seconds,
        gpu.energies.total,
        "f32",
    );
    row("Cray MTA-2", mta.sim_seconds, mta.energies.total, "f64");

    // All four must agree on the physics (within single precision for the
    // f32 devices).
    let reference = opteron.energies.total;
    for (name, e, tol) in [
        ("Cell", cell.energies.total, 2e-3),
        ("GPU", gpu.energies.total, 2e-3),
        ("MTA", mta.energies.total, 1e-9),
    ] {
        let err = ((e - reference) / reference).abs();
        assert!(err < tol, "{name} energy diverged: {err:.2e}");
    }
    println!("\nall devices agree on the trajectory physics ✓");
    println!(
        "(paper: Cell and GPU give ~5-6x over the Opteron; the MTA-2, at 200 MHz, \
         does not outperform it but scales flatly — see the fig8/fig9 binaries.)"
    );
}
