//! A fluid of diatomic molecules: harmonic bonds on top of the LJ kernel —
//! the bonded + non-bonded force-field split the paper describes in §3.5
//! ("calculation of forces between bonded atoms is straightforward and less
//! computationally intensive ... we model non-bonded interactions with a
//! 6-12 Lennard-Jones potential").
//!
//! ```text
//! cargo run --release --example diatomic_fluid
//! ```

use md_emerging_arch::md::prelude::*;

fn main() {
    // 256 atoms = 128 diatomic molecules at moderate density.
    let config = SimConfig::reduced_lj(256)
        .with_density(0.5)
        .with_temperature(0.9)
        .with_dt(0.002);
    // Truncated-and-shifted LJ: the energy is continuous at the cutoff, so
    // the NVE drift below measures the integrator, not truncation jumps.
    let shifted = config.lj_params::<f64>().shifted();
    let mut sim = Simulation::<f64>::prepare(config);
    sim.substrate = Substrate::from_lj(shifted);

    // Pair up lattice neighbors (2i, 2i+1) with stiff springs, making
    // N₂-style dumbbells. Each bond's rest length is its initial separation
    // so the system starts at bonded equilibrium and the NVE check is clean.
    let k = 150.0;
    let mut topo = BondedTopology::new();
    let mut r0 = 0.0;
    for m in 0..sim.system.n() / 2 {
        let rest = sim.system.distance2(2 * m, 2 * m + 1).sqrt();
        r0 = rest; // uniform on the lattice
        topo = topo.with_bond(2 * m, 2 * m + 1, k, rest);
    }
    sim.set_topology(topo);
    println!(
        "{} diatomic molecules (k = {k}, r0 = {r0}), NVE dynamics\n",
        sim.system.n() / 2
    );

    let e0 = sim.total_energy();
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>16}",
        "step", "T*", "E total", "drift", "mean bond len"
    );
    for block in 0..8 {
        let r = sim.run(50);
        // Average bond length across molecules.
        let mut mean_len = 0.0;
        for b in &sim.topology().bonds.clone() {
            mean_len += sim.system.distance2(b.i, b.j).sqrt();
        }
        mean_len /= (sim.system.n() / 2) as f64;
        println!(
            "{:>6} {:>10.4} {:>12.4} {:>14.2e} {:>16.4}",
            (block + 1) * 50,
            r.temperature,
            r.total,
            (r.total - e0) / e0,
            mean_len
        );
    }

    // The bonds hold: every molecule stays intact near its rest length.
    let mut max_len: f64 = 0.0;
    for b in &sim.topology().bonds.clone() {
        max_len = max_len.max(sim.system.distance2(b.i, b.j).sqrt());
    }
    println!("\nlongest bond after the run: {max_len:.3} σ (rest length {r0})");
    assert!(max_len < r0 + 0.5, "molecules must stay bound");
    println!("all molecules intact — bonded + non-bonded forces coexist correctly.");
}
