//! Melting a Lennard-Jones solid — the kind of bio/materials workload the
//! paper's introduction motivates, exercising thermostats, the radial
//! distribution function, and kernel swapping.
//!
//! A cold FCC crystal is heated in stages; the g(r) structure and the
//! diffusion of atoms show the solid→liquid transition.
//!
//! ```text
//! cargo run --release --example argon_melt
//! ```

use md_emerging_arch::md::observables::radial_distribution;
use md_emerging_arch::md::prelude::*;

/// First-peak height and long-range structure of g(r) summarize order.
fn structure_report(sys: &ParticleSystem<f64>) -> (f64, f64) {
    let g = radial_distribution(sys, 2.5, 64);
    let first_peak = g
        .iter()
        .filter(|(r, _)| (0.9..1.4).contains(r))
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max);
    // Structure beyond 2 sigma: high and spiky for a crystal, ~1 for liquid.
    let far: Vec<f64> = g
        .iter()
        .filter(|(r, _)| *r > 2.0)
        .map(|(_, v)| *v)
        .collect();
    let mean = far.iter().sum::<f64>() / far.len() as f64;
    let var = far.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / far.len() as f64;
    (first_peak, var.sqrt())
}

fn main() {
    // A cold, dense FCC solid.
    let config = SimConfig::reduced_lj(500)
        .with_density(1.05)
        .with_temperature(0.1)
        .with_dt(0.002);
    let mut sim = Simulation::<f64>::prepare(config);

    println!("heating a 500-atom LJ crystal from T* = 0.1 (solid) to T* = 1.6 (liquid)\n");
    println!(
        "{:>8} {:>8} {:>12} {:>14} {:>16}",
        "target", "T*", "PE/atom", "g(r) 1st peak", "far-field spread"
    );

    for &target in &[0.1, 0.4, 0.8, 1.2, 1.6] {
        let thermostat = VelocityRescale::new(target, 0.5);
        // Equilibrate at this temperature: thermostatted blocks.
        for _ in 0..30 {
            sim.step();
            thermostat.apply(&mut sim.system);
        }
        // Short NVE production.
        let r = sim.run(40);
        let (peak, spread) = structure_report(&sim.system);
        println!(
            "{:>8.2} {:>8.3} {:>12.4} {:>14.2} {:>16.3}",
            target,
            r.temperature,
            r.potential / sim.system.n() as f64,
            peak,
            spread
        );
    }

    let (final_peak, _) = structure_report(&sim.system);
    println!(
        "\nfirst g(r) peak dropped as the crystal melted (liquid peaks are broad): {final_peak:.2}"
    );
    println!(
        "the system is {}",
        if final_peak < 4.0 {
            "molten"
        } else {
            "still ordered"
        }
    );
}
