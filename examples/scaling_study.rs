//! Workload-scaling study: how each simulated system's runtime grows with
//! atom count — the behaviour behind Figures 7-9, plus the host machine's
//! real wall-clock for comparison.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use md_emerging_arch::harness::{DeviceKind, GpuModel};
use md_emerging_arch::md::device::RunOptions;
use md_emerging_arch::md::prelude::*;
use md_emerging_arch::mta::ThreadingMode;
use std::time::Instant;

fn main() {
    let steps = 2;
    println!(
        "runtime scaling, {} time steps per point (simulated seconds)\n",
        steps
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "atoms", "Opteron", "Cell 8SPE", "GPU", "MTA-2", "host (real)"
    );

    for &n in &[256usize, 512, 1024, 2048] {
        let sim = SimConfig::reduced_lj(n);
        let run_on = |kind: DeviceKind| {
            kind.build()
                .run(&sim, RunOptions::steps(steps))
                .expect("paper workloads fit every device")
                .sim_seconds
        };
        let opteron = run_on(DeviceKind::Opteron);
        let cell = run_on(DeviceKind::cell_best());
        let gpu = run_on(DeviceKind::Gpu {
            model: GpuModel::GeForce7900Gtx,
        });
        let mta = run_on(DeviceKind::Mta {
            mode: ThreadingMode::FullyMultithreaded,
        });

        // And the real machine this example runs on, using the rayon kernel.
        let mut host = Simulation::<f64>::prepare_with_kernel(sim, Box::new(RayonKernel));
        let t0 = Instant::now();
        host.run(steps);
        let host_secs = t0.elapsed().as_secs_f64();

        println!(
            "{:>6} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>12.2}ms",
            n,
            opteron * 1e3,
            cell * 1e3,
            gpu * 1e3,
            mta * 1e3,
            host_secs * 1e3
        );
    }

    println!(
        "\nshapes to notice: every system is O(N²); the GPU's fixed per-step cost \
         dominates at small N; the MTA-2 is slowest in absolute terms (200 MHz) but \
         grows exactly with the flop count; the Opteron picks up a cache penalty \
         beyond ~2700 atoms (run the fig9 binary for the full sweep)."
    );
}
