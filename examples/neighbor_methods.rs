//! The techniques the paper names but deliberately does not use: neighbor
//! pairlists and cell lists. This example runs all four force kernels on the
//! same trajectory, verifies they agree, and times them on the host.
//!
//! ```text
//! cargo run --release --example neighbor_methods
//! ```

use md_emerging_arch::md::forces::ForceKernel;
use md_emerging_arch::md::prelude::*;
use std::time::Instant;

fn time_kernel(
    name: &str,
    sys: &ParticleSystem<f64>,
    sub: &Substrate<f64>,
    kernel: &mut dyn ForceKernel<f64>,
    reference_pe: f64,
) {
    let mut s = sys.clone();
    // One warm-up evaluation (builds neighbor structures).
    let pe = kernel.compute(&mut s, sub);
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        kernel.compute(&mut s, sub);
    }
    let per_eval = t0.elapsed().as_secs_f64() / reps as f64;
    let err = ((pe - reference_pe) / reference_pe).abs();
    println!(
        "{:<16} {:>10.3} ms/eval   PE rel. err vs all-pairs: {:.1e}",
        name,
        per_eval * 1e3,
        err
    );
    assert!(err < 1e-9, "{name} disagrees with the reference kernel");
}

fn main() {
    let cfg = SimConfig::reduced_lj(2048);
    let sys: ParticleSystem<f64> = md_emerging_arch::md::init::initialize(&cfg);
    let sub = cfg.substrate::<f64>();

    println!(
        "force evaluation methods, {} atoms at rho* = {} (host wall-clock)\n",
        cfg.n_atoms, cfg.density
    );

    let mut reference = AllPairsHalfKernel;
    let mut s = sys.clone();
    let reference_pe = reference.compute(&mut s, &sub);

    time_kernel(
        "all-pairs O(N²)",
        &sys,
        &sub,
        &mut AllPairsHalfKernel,
        reference_pe,
    );
    time_kernel(
        "neighbor list",
        &sys,
        &sub,
        &mut NeighborListKernel::with_default_skin(),
        reference_pe,
    );
    time_kernel(
        "cell list",
        &sys,
        &sub,
        &mut CellListKernel::new(),
        reference_pe,
    );
    time_kernel("rayon parallel", &sys, &sub, &mut RayonKernel, reference_pe);

    println!(
        "\nthe paper's device ports compute distances on the fly with no neighbor \
         structure — the rows above quantify what that choice costs at this size."
    );
}
