//! Quickstart: set up a Lennard-Jones liquid and run NVE molecular dynamics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use md_emerging_arch::md::prelude::*;

fn main() {
    // 864 atoms of LJ "argon" near the triple point (reduced units),
    // initialized on an FCC lattice with Maxwell-Boltzmann velocities.
    let config = SimConfig::reduced_lj(864);
    println!(
        "LJ liquid: N = {}, rho* = {}, T* = {}, dt = {}, cutoff = {} sigma",
        config.n_atoms, config.density, config.temperature, config.dt, config.cutoff
    );
    println!("box length L = {:.3} sigma\n", config.box_len());

    let mut sim = Simulation::<f64>::prepare(config);
    let e0 = sim.total_energy();

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8}",
        "step", "kinetic", "potential", "total", "T*"
    );
    for block in 0..10 {
        let r = sim.run(20);
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>12.4} {:>8.4}",
            (block + 1) * 20,
            r.kinetic,
            r.potential,
            r.total,
            r.temperature
        );
    }

    let drift = ((sim.total_energy() - e0) / e0).abs();
    println!("\nrelative energy drift over 200 NVE steps: {drift:.2e}");
    assert!(drift < 0.02, "NVE energy should be conserved");
    println!("energy conserved — the integrator and force kernel are consistent.");
}
