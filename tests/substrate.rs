//! Bitwise pin of the default LJ/NVE scenario against the pre-refactor seed.
//!
//! The substrate refactor (DESIGN.md §16) reroutes every device's per-lane
//! physics through shared `Potential`/`Ensemble`/`PrecisionPolicy` evaluation.
//! The refactor's contract is that the paper-faithful scenario — LJ 6-12,
//! NVE, device-native precision — is *bitwise untouched*: positions,
//! velocities, energies, and simulated seconds at 2048 atoms × 10 steps must
//! equal the output captured from the seed code on all four devices.
//!
//! `tests/golden/substrate_seed.json` holds that capture as hex-encoded f64
//! bit patterns (energies, sim-seconds) plus one FNV-1a hash over the final
//! checkpoint's coordinate payload (positions ‖ velocities ‖ accelerations,
//! little-endian f64). Regenerate — only when a drift is *intended* — with
//! `UPDATE_GOLDEN=1 cargo test --test substrate`.

use md_core::checkpoint::fnv1a;
use md_core::device::RunOptions;
use md_core::params::SimConfig;
use sim_perf::{parse_json, JsonValue};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/substrate_seed.json"
);
const ATOMS: usize = 2048;
const STEPS: usize = 10;

/// The four architectures the paper ports the kernel to, in report order.
fn roster() -> Vec<harness::DeviceKind> {
    vec![
        harness::DeviceKind::cell_best(),
        harness::DeviceKind::Gpu {
            model: harness::GpuModel::GeForce7900Gtx,
        },
        harness::DeviceKind::Mta {
            mode: mta::ThreadingMode::FullyMultithreaded,
        },
        harness::DeviceKind::Opteron,
    ]
}

/// One device's pinned outputs, everything as exact bit patterns.
#[derive(Debug, PartialEq, Eq)]
struct SeedRecord {
    sim_seconds: u64,
    kinetic: u64,
    potential: u64,
    total: u64,
    temperature: u64,
    state_fnv1a: u64,
}

impl SeedRecord {
    fn measure(kind: harness::DeviceKind) -> Self {
        let sim = SimConfig::reduced_lj(ATOMS);
        let run = kind
            .build()
            .run(&sim, RunOptions::steps(STEPS))
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.label()));
        assert_eq!(run.checkpoint.step, STEPS as u64);
        assert_eq!(run.checkpoint.n(), ATOMS);
        let payload = run.checkpoint.encode_domain(0, run.checkpoint.n());
        Self {
            sim_seconds: run.sim_seconds.to_bits(),
            kinetic: run.energies.kinetic.to_bits(),
            potential: run.energies.potential.to_bits(),
            total: run.energies.total.to_bits(),
            temperature: run.energies.temperature.to_bits(),
            state_fnv1a: fnv1a(&payload),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"sim_seconds\": \"{:#018x}\", \"kinetic\": \"{:#018x}\", \
             \"potential\": \"{:#018x}\", \"total\": \"{:#018x}\", \
             \"temperature\": \"{:#018x}\", \"state_fnv1a\": \"{:#018x}\"}}",
            self.sim_seconds,
            self.kinetic,
            self.potential,
            self.total,
            self.temperature,
            self.state_fnv1a
        )
    }

    fn from_json(doc: &JsonValue, device: &str) -> Self {
        let field = |name: &str| -> u64 {
            let hex = doc
                .get(name)
                .and_then(JsonValue::as_str)
                .unwrap_or_else(|| panic!("golden record for {device} missing field {name}"));
            let digits = hex
                .strip_prefix("0x")
                .unwrap_or_else(|| panic!("{device}.{name}: expected 0x-prefixed hex, got {hex}"));
            u64::from_str_radix(digits, 16)
                .unwrap_or_else(|e| panic!("{device}.{name}: bad hex {hex}: {e}"))
        };
        Self {
            sim_seconds: field("sim_seconds"),
            kinetic: field("kinetic"),
            potential: field("potential"),
            total: field("total"),
            temperature: field("temperature"),
            state_fnv1a: field("state_fnv1a"),
        }
    }
}

fn render_golden(records: &[(String, SeedRecord)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"substrate-seed-v1\",\n");
    out.push_str(&format!("  \"n_atoms\": {ATOMS},\n"));
    out.push_str(&format!("  \"steps\": {STEPS},\n"));
    out.push_str("  \"devices\": {\n");
    for (i, (label, rec)) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!("    \"{label}\": {}{comma}\n", rec.to_json()));
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Cache-token mutation coverage: changing ANY scenario field must change the
// token, or a warm sweep cache would serve one physics' results for another.
// ---------------------------------------------------------------------------

#[test]
fn every_scenario_field_mutation_changes_the_cache_token() {
    use md_core::scenario::{Ensemble, Potential, PrecisionPolicy, ScenarioSpec};
    let base = ScenarioSpec::default();
    // One mutant per reachable field of the scenario structs, plus the
    // variant switches themselves.
    let mutants: Vec<(&str, ScenarioSpec)> = vec![
        (
            "potential.epsilon",
            base.with_potential(Potential::LennardJones {
                epsilon: 1.5,
                sigma: 1.0,
            }),
        ),
        (
            "potential.sigma",
            base.with_potential(Potential::LennardJones {
                epsilon: 1.0,
                sigma: 1.1,
            }),
        ),
        (
            "potential -> morse",
            base.with_potential(Potential::Morse {
                depth: 1.0,
                stiffness: 2.0,
                r0: 1.2,
            }),
        ),
        (
            "morse.depth",
            base.with_potential(Potential::Morse {
                depth: 1.5,
                stiffness: 2.0,
                r0: 1.2,
            }),
        ),
        (
            "morse.stiffness",
            base.with_potential(Potential::Morse {
                depth: 1.0,
                stiffness: 2.5,
                r0: 1.2,
            }),
        ),
        (
            "morse.r0",
            base.with_potential(Potential::Morse {
                depth: 1.0,
                stiffness: 2.0,
                r0: 1.3,
            }),
        ),
        (
            "potential -> coulomb",
            base.with_potential(Potential::Coulomb { q2: 1.0 }),
        ),
        (
            "coulomb.q2",
            base.with_potential(Potential::Coulomb { q2: 2.0 }),
        ),
        (
            "ensemble -> nvt",
            base.with_ensemble(Ensemble::Nvt {
                target: 0.85,
                kappa: 0.1,
            }),
        ),
        (
            "nvt.target",
            base.with_ensemble(Ensemble::Nvt {
                target: 0.9,
                kappa: 0.1,
            }),
        ),
        (
            "nvt.kappa",
            base.with_ensemble(Ensemble::Nvt {
                target: 0.85,
                kappa: 0.2,
            }),
        ),
        (
            "precision -> f32",
            base.with_precision(PrecisionPolicy::ForceF32),
        ),
        (
            "precision -> f64",
            base.with_precision(PrecisionPolicy::ForceF64),
        ),
        (
            "precision -> mixed",
            base.with_precision(PrecisionPolicy::MixedF64Accumulate),
        ),
    ];
    let base_token = base.cache_token();
    for (what, mutant) in &mutants {
        assert_ne!(
            mutant.cache_token(),
            base_token,
            "mutating {what} must move the cache token"
        );
    }
    // And all mutants are pairwise distinct: no two field changes collide.
    for (i, (wa, a)) in mutants.iter().enumerate() {
        for (wb, b) in &mutants[i + 1..] {
            assert_ne!(
                a.cache_token(),
                b.cache_token(),
                "{wa} and {wb} must not share a token"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Extension scenarios run end-to-end on every device, with scenario-aware
// perf accounting and ledger identity.
// ---------------------------------------------------------------------------

#[test]
fn extension_scenarios_run_end_to_end_on_all_devices() {
    use md_core::scenario::ScenarioSpec;
    let n = 108;
    let steps = 4;
    for kind in roster() {
        let label = kind.label();
        let lj = kind
            .build()
            .run(&SimConfig::reduced_lj(n), RunOptions::steps(steps))
            .unwrap_or_else(|e| panic!("{label} lj: {e}"));
        for scenario in [ScenarioSpec::morse_nvt(), ScenarioSpec::coulomb_cutoff()] {
            let sim = SimConfig::reduced_lj(n).with_scenario(scenario);
            let token = sim.scenario_token();
            let run = kind
                .build()
                .run(&sim, RunOptions::steps(steps))
                .unwrap_or_else(|e| panic!("{label} {token}: {e}"));
            assert!(
                run.energies.total.is_finite() && run.energies.kinetic.is_finite(),
                "{label} {token}: energies must be finite"
            );
            assert_eq!(run.checkpoint.step, steps as u64, "{label} {token}");
            // Both extension scenarios charge strictly more simulated work
            // than the LJ baseline at the same size: extra per-pair ops
            // (Morse transcendentals, Coulomb sqrt+divide) and, for NVT,
            // the thermostat's per-atom pass.
            assert!(
                run.sim_seconds > lj.sim_seconds,
                "{label} {token}: extra scenario work must cost simulated time \
                 ({} vs lj {})",
                run.sim_seconds,
                lj.sim_seconds
            );
        }
    }
}

#[test]
fn nvt_thermostat_regulates_temperature_on_every_device() {
    use md_core::scenario::ScenarioSpec;
    // Long enough for the rescale to bite; the NVE default drifts with the
    // same workload, NVT pins near the target.
    let target = 0.85;
    let spec = ScenarioSpec::morse_nvt();
    let sim = SimConfig::reduced_lj(108).with_scenario(spec);
    for kind in roster() {
        let label = kind.label();
        let run = kind
            .build()
            .run(&sim, RunOptions::steps(40))
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let t = run.energies.temperature;
        assert!(
            (t - target).abs() < 0.15,
            "{label}: NVT temperature {t} should sit near target {target}"
        );
    }
}

#[test]
fn ledger_records_scenario_identity() {
    use md_core::scenario::ScenarioSpec;
    let kind = harness::DeviceKind::Opteron;
    // Default scenario: workload text is byte-identical to pre-substrate
    // ledgers (no token suffix).
    let (_, led) = harness::device_ledger(kind, &SimConfig::reduced_lj(108), 2).expect("lj ledger");
    assert_eq!(led.workload, "108 atoms x 2 steps");
    // Extension scenario: the token is part of the workload identity.
    let sim = SimConfig::reduced_lj(108).with_scenario(ScenarioSpec::coulomb_cutoff());
    let (_, led) = harness::device_ledger(kind, &sim, 2).expect("coulomb ledger");
    assert_eq!(
        led.workload,
        format!("108 atoms x 2 steps @ {}", sim.scenario_token())
    );
}

// ---------------------------------------------------------------------------
// Sweep cache isolation: a warm cache for scenario A never serves scenario B.
// ---------------------------------------------------------------------------

#[test]
fn warm_sweep_cache_for_one_scenario_never_serves_another() {
    use md_core::scenario::ScenarioSpec;
    use sim_sweep::{run_sweep, EngineConfig, SweepPoint, SweepSpec};
    let spec = SweepSpec {
        name: "scenario-isolation-probe",
        description: "one tiny point, re-run under three scenarios",
        points: vec![SweepPoint {
            figure: "probe",
            device: harness::DeviceKind::Opteron,
            n_atoms: 108,
            steps: 2,
            scenario: ScenarioSpec::default(),
        }],
    };
    let dir = std::env::temp_dir().join(format!("substrate-scn-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = EngineConfig {
        cache_dir: dir.clone(),
        jobs: 1,
        ..EngineConfig::default()
    };
    // Cold LJ run populates the cache; a second LJ run is fully warm.
    let cold = run_sweep(&spec, &cfg).expect("cold lj");
    assert_eq!(cold.executed(), 1);
    let warm = run_sweep(&spec, &cfg).expect("warm lj");
    assert_eq!(warm.hits(), 1, "same scenario must hit");
    // Same device/size/steps under different scenarios: the warm LJ cache
    // must NOT be consulted — every new scenario executes.
    for scenario in [ScenarioSpec::morse_nvt(), ScenarioSpec::coulomb_cutoff()] {
        let moved = spec.clone().with_scenario(scenario);
        let report = run_sweep(&moved, &cfg).expect("scenario run");
        assert_eq!(
            report.executed(),
            1,
            "{}: a warm cache for another scenario must miss",
            scenario.cache_token()
        );
        assert_ne!(
            report.results[0].metrics.sim_seconds,
            warm.results[0].metrics.sim_seconds,
            "{}: different physics must produce different results",
            scenario.cache_token()
        );
        // And that scenario's own cache is now warm.
        let rewarm = run_sweep(&moved, &cfg).expect("rewarm");
        assert_eq!(rewarm.hits(), 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "fault-inject")]
#[test]
fn extension_scenarios_survive_fault_injection() {
    use md_core::scenario::ScenarioSpec;
    let sim = SimConfig::reduced_lj(108).with_scenario(ScenarioSpec::morse_nvt());
    for kind in roster() {
        let label = kind.label();
        let clean = kind
            .build()
            .run(&sim, RunOptions::steps(4))
            .unwrap_or_else(|e| panic!("{label} clean: {e}"));
        let faulted = kind
            .build_faulted(sim_fault::FaultPlan::new(41, 0.02))
            .run(&sim, RunOptions::steps(4))
            .unwrap_or_else(|e| panic!("{label} faulted: {e}"));
        // Fault handling retries to the same physics; injected faults only
        // add recovery time.
        assert_eq!(
            faulted.energies.total.to_bits(),
            clean.energies.total.to_bits(),
            "{label}: recovery must reproduce the clean trajectory"
        );
        assert!(
            faulted.sim_seconds >= clean.sim_seconds,
            "{label}: retries cannot make the run faster"
        );
    }
}

#[test]
fn default_scenario_is_bitwise_identical_to_seed() {
    let records: Vec<(String, SeedRecord)> = roster()
        .into_iter()
        .map(|kind| (kind.label(), SeedRecord::measure(kind)))
        .collect();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, render_golden(&records)).expect("write golden");
    }

    let text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("read tests/golden/substrate_seed.json (generate with UPDATE_GOLDEN=1)");
    let doc = parse_json(&text).expect("golden parses");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("substrate-seed-v1")
    );
    let devices = doc.get("devices").expect("devices object");
    for (label, measured) in &records {
        let pinned = devices
            .get(label)
            .unwrap_or_else(|| panic!("golden has no record for {label}"));
        let pinned = SeedRecord::from_json(pinned, label);
        assert_eq!(
            *measured, pinned,
            "{label}: default LJ/NVE output drifted from the pre-refactor seed \
             (bitwise gate; regenerate with UPDATE_GOLDEN=1 only if intended)"
        );
    }
}
