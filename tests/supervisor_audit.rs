//! Supervisor backoff/watchdog audit (ISSUE 7 satellite): property tests
//! over seeded node-fault schedules pinning three retry-policy invariants.
//!
//! 1. **Determinism per seed** — two supervised runs of the same faulted
//!    cluster produce bitwise-identical simulated clocks, identical event
//!    logs, and identical trace timelines (which stamp every backoff delay).
//! 2. **Strict boundedness** — every restore's attempt index stays under
//!    `max_attempts`, so its exponential backoff is bounded by
//!    `backoff_base_s × 2^(max_attempts−1)`, and the restore count is
//!    bounded by `segments × max_attempts`.
//! 3. **Monotonicity across restores** — the watchdog/rollback machinery
//!    never admits regression: accepted checkpoints advance strictly, the
//!    run lands exactly on the requested step count, and recovery only ever
//!    *adds* simulated time relative to the fault-free run.
//!
//! Node-level faults live in the cluster model, so none of this needs the
//! `fault-inject` feature.

use harness::{
    run_cluster_supervised, ClusterKind, ClusterRecovery, DeviceKind, RecoveryEvent,
    SupervisorConfig,
};
use md_core::params::SimConfig;
use mdea_trace::Tracer;
use proptest::prelude::*;
use sim_fault::FaultPlan;

const AUDIT_ATOMS: usize = 256;
const AUDIT_STEPS: usize = 8;
const AUDIT_NODES: usize = 4;

fn audit_cfg() -> SupervisorConfig {
    SupervisorConfig {
        // Generous budget: modest storms should recover, not degrade.
        max_attempts: 6,
        ..SupervisorConfig::default()
    }
}

fn supervised_with_faults(seed: u64, rate: f64, tracer: &mut Tracer) -> ClusterRecovery {
    let sim = SimConfig::reduced_lj(AUDIT_ATOMS);
    let mut cluster = ClusterKind::new(DeviceKind::Opteron, AUDIT_NODES)
        .build_with_node_faults(FaultPlan::new(seed, rate));
    run_cluster_supervised(&mut cluster, &sim, AUDIT_STEPS, &audit_cfg(), Some(tracer))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn retry_delays_are_deterministic_per_seed(
        seed in 0u64..1u64 << 32,
        rate in 0.005f64..0.08,
    ) {
        let mut trace_a = Tracer::new();
        let mut trace_b = Tracer::new();
        let a = supervised_with_faults(seed, rate, &mut trace_a);
        let b = supervised_with_faults(seed, rate, &mut trace_b);
        prop_assert_eq!(a.run.sim_seconds.to_bits(), b.run.sim_seconds.to_bits());
        prop_assert_eq!(&a.run.report.events, &b.run.report.events);
        prop_assert_eq!(a.run.report.restores, b.run.report.restores);
        prop_assert_eq!(a.node_events, b.node_events);
        // The trace stamps every restore at its post-backoff simulated
        // time; byte-equal timelines mean byte-equal delays.
        prop_assert_eq!(trace_a.to_chrome_json(), trace_b.to_chrome_json());
    }

    #[test]
    fn backoff_is_strictly_bounded_and_checkpoints_never_regress(
        seed in 0u64..1u64 << 32,
        rate in 0.005f64..0.10,
    ) {
        let cfg = audit_cfg();
        let mut tracer = Tracer::new();
        let rec = supervised_with_faults(seed, rate, &mut tracer);
        let report = &rec.run.report;

        let segments = AUDIT_STEPS.div_ceil(cfg.checkpoint_interval) as u64;
        prop_assert!(
            report.restores <= segments * u64::from(cfg.max_attempts),
            "restore count {} exceeds the per-segment budget",
            report.restores
        );

        let max_backoff = cfg.backoff_base_s * f64::from(1u32 << (cfg.max_attempts - 1));
        let mut last_checkpoint: Option<u64> = None;
        for ev in &report.events {
            match ev {
                RecoveryEvent::Restore { attempt, step, .. } => {
                    prop_assert!(*attempt < cfg.max_attempts);
                    let delay = cfg.backoff_base_s * f64::from(1u32 << (*attempt).min(20));
                    prop_assert!(
                        delay <= max_backoff,
                        "restore at step {step} charged {delay}s > bound {max_backoff}s"
                    );
                    // A restore rolls back to the last accepted checkpoint,
                    // never past it.
                    prop_assert_eq!(Some(*step), last_checkpoint.or(Some(0)));
                }
                RecoveryEvent::Checkpoint { step } => {
                    if let Some(prev) = last_checkpoint {
                        prop_assert!(
                            *step > prev,
                            "checkpoint regressed: {step} after {prev}"
                        );
                    }
                    last_checkpoint = Some(*step);
                }
                RecoveryEvent::WatchdogTimeout { .. } | RecoveryEvent::Fallback { .. } => {}
            }
        }
        prop_assert_eq!(rec.run.checkpoint.step, AUDIT_STEPS as u64);
    }

    /// Recovery only ever adds simulated time: a faulted run that recovered
    /// cleanly is never faster than the fault-free run of the same cluster.
    #[test]
    fn recovered_runs_never_undercut_the_fault_free_clock(
        seed in 0u64..1u64 << 32,
    ) {
        let sim = SimConfig::reduced_lj(AUDIT_ATOMS);
        let cfg = audit_cfg();
        let mut clean = ClusterKind::new(DeviceKind::Opteron, AUDIT_NODES).build();
        let clean_rec = run_cluster_supervised(&mut clean, &sim, AUDIT_STEPS, &cfg, None);
        let mut tracer = Tracer::new();
        let rec = supervised_with_faults(seed, 0.05, &mut tracer);
        if rec.recovered_cleanly() {
            prop_assert!(
                rec.run.sim_seconds >= clean_rec.run.sim_seconds,
                "faulted {} < clean {}: simulated time regressed across recovery",
                rec.run.sim_seconds,
                clean_rec.run.sim_seconds
            );
        }
    }
}
