//! Host-parallel bitwise-identity gate (DESIGN.md §12) at paper scale
//! (2048 atoms, 10 steps).
//!
//! The contract under test: [`HostParallelism`] is purely a wall-clock knob.
//! Every device executes its simulated lanes — SPE slices on Cell, fragment
//! batches on the GPU, stream chunks on the MTA, gather rows on the
//! Opteron — as an order-preserving indexed map whose results fold serially,
//! so positions, velocities, accelerations, energies, simulated seconds,
//! perf counters, and fault ledgers are bit-identical to the serial run at
//! any thread count. f32 devices widen losslessly to f64 at checkpoint
//! capture, so [`SystemCheckpoint`](md_core::checkpoint::SystemCheckpoint)
//! equality is a bitwise trajectory comparison.

use harness::{DeviceKind, GpuModel};
use md_core::device::{DeviceRun, MdDevice, PerfMonitor, RunOptions};
use md_core::params::SimConfig;
use mta::ThreadingMode;

const PAPER_ATOMS: usize = 2048;
const PAPER_STEPS: usize = 10;
/// Thread counts to pit against serial. 1 exercises the `from_threads`
/// collapse to the serial path; 8 oversubscribes most hosts, which must
/// change nothing.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn all_devices() -> [DeviceKind; 4] {
    [
        DeviceKind::Opteron,
        DeviceKind::cell_best(),
        DeviceKind::Gpu {
            model: GpuModel::GeForce7900Gtx,
        },
        DeviceKind::Mta {
            mode: ThreadingMode::FullyMultithreaded,
        },
    ]
}

fn run_with(
    mut dev: Box<dyn MdDevice>,
    sim: &SimConfig,
    threads: usize,
) -> (DeviceRun, Vec<(String, f64)>) {
    let mut perf = PerfMonitor::new();
    let run = dev
        .run(
            sim,
            RunOptions::steps(PAPER_STEPS)
                .with_perf(&mut perf)
                .with_host_threads(threads),
        )
        .expect("run succeeds");
    let counters = perf
        .counters()
        .iter()
        .map(|c| (c.name.clone(), c.value()))
        .collect();
    (run, counters)
}

/// Every observable of the run must be *equal*, not merely close.
fn assert_bitwise_equal(serial: &DeviceRun, par: &DeviceRun, ctx: &str) {
    assert_eq!(
        serial.sim_seconds.to_bits(),
        par.sim_seconds.to_bits(),
        "{ctx}: simulated seconds drifted"
    );
    assert_eq!(serial.energies, par.energies, "{ctx}: energies drifted");
    assert_eq!(
        serial.checkpoint, par.checkpoint,
        "{ctx}: trajectory drifted"
    );
    assert_eq!(
        serial.attribution, par.attribution,
        "{ctx}: time attribution drifted"
    );
    assert_eq!(
        serial.derived, par.derived,
        "{ctx}: derived metrics drifted"
    );
    assert_eq!(
        serial.ops.to_bits(),
        par.ops.to_bits(),
        "{ctx}: ops drifted"
    );
    assert_eq!(
        serial.bytes_moved.to_bits(),
        par.bytes_moved.to_bits(),
        "{ctx}: bytes_moved drifted"
    );
    assert_eq!(serial.faults, par.faults, "{ctx}: fault ledger drifted");
}

#[test]
fn every_device_is_bitwise_identical_at_any_thread_count() {
    let sim = SimConfig::reduced_lj(PAPER_ATOMS);
    for kind in all_devices() {
        let (serial, serial_counters) = run_with(kind.build(), &sim, 1);
        assert!(serial.sim_seconds > 0.0, "{}", kind.label());
        for t in THREADS {
            let ctx = format!("{} at {t} host threads", kind.label());
            let (par, par_counters) = run_with(kind.build(), &sim, t);
            assert_bitwise_equal(&serial, &par, &ctx);
            assert_eq!(serial_counters, par_counters, "{ctx}: counters drifted");
        }
    }
}

#[test]
fn segmented_resume_matches_unsegmented_under_threads() {
    let sim = SimConfig::reduced_lj(PAPER_ATOMS);
    for kind in all_devices() {
        let whole = kind
            .build()
            .run(&sim, RunOptions::steps(PAPER_STEPS))
            .expect("unsegmented serial run");
        // Split the run across two parallel segments at different thread
        // counts; the stitched trajectory must land on the same bits.
        let mut dev = kind.build();
        let first = dev
            .run(&sim, RunOptions::steps(4).with_host_threads(4))
            .expect("first segment");
        let second = dev
            .run(
                &sim,
                RunOptions::steps(PAPER_STEPS - 4)
                    .from_checkpoint(&first.checkpoint)
                    .with_host_threads(8),
            )
            .expect("second segment");
        // Segment transparency is a *trajectory* contract: the stitched run
        // lands on the same bits. (Simulated cost is allowed to differ — a
        // resumed segment re-primes accelerations with an extra force
        // evaluation, which the cost model charges.)
        assert_eq!(
            whole.checkpoint,
            second.checkpoint,
            "{}: segmented parallel trajectory drifted",
            kind.label()
        );
    }
}

/// Fault schedules key off the simulated run structure (eval/lane/site), not
/// host threading: the injected-fault ledger and the recovered trajectory
/// must be identical however the lanes were executed.
#[cfg(feature = "fault-inject")]
#[test]
fn fault_injected_runs_are_bitwise_identical_to_serial() {
    use sim_fault::FaultPlan;
    let sim = SimConfig::reduced_lj(PAPER_ATOMS);
    for kind in all_devices() {
        let plan = FaultPlan::new(2024, 0.02);
        let (serial, serial_counters) = run_with(kind.build_faulted(plan), &sim, 1);
        for t in [2, 8] {
            let ctx = format!("faulted {} at {t} host threads", kind.label());
            let (par, par_counters) = run_with(kind.build_faulted(plan), &sim, t);
            assert_bitwise_equal(&serial, &par, &ctx);
            assert_eq!(serial_counters, par_counters, "{ctx}: counters drifted");
        }
        assert!(
            serial.faults.injected > 0,
            "{}: plan injected nothing — the comparison is vacuous",
            kind.label()
        );
    }
}
