//! Tier-1 gate for the `sim-vet` invariant linter and the Cell DMA/mailbox
//! hazard checker.
//!
//! Two halves:
//!
//! 1. **The shipped tree is lint-clean.** `scan_workspace` over the repo root
//!    must report zero unwaived findings — the same check `cargo run -p
//!    sim-vet` performs in CI. Seeded violations of all five rules must be
//!    *detected* (the linter is alive, not vacuously clean), and inline
//!    waivers must suppress exactly the findings they name.
//!
//! 2. **The hazard checker catches an injected race.** A DMA `get` whose tag
//!    is never waited on before compute reads the buffer is the classic Cell
//!    porting bug; the checker must flag it, surface it as a typed hazard,
//!    and emit it onto the trace timeline — while the shipped device port
//!    stays hazard-free.

use sim_vet::{scan_source, scan_workspace, Rule};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn shipped_tree_has_no_unwaived_findings() {
    let report = scan_workspace(repo_root()).expect("workspace scan");
    let unwaived: Vec<String> = report.unwaived().map(ToString::to_string).collect();
    assert!(
        unwaived.is_empty(),
        "sim-vet found unwaived violations:\n{}",
        unwaived.join("\n")
    );
    assert!(
        report.files_scanned >= 100,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    // The tree exercises the waiver machinery (kernel DP section etc.), so a
    // scanner that silently stopped matching would show zero waived too.
    assert!(
        report.waived().count() > 0,
        "expected at least one waived finding in the shipped tree"
    );
}

#[test]
fn seeded_precision_violation_detected() {
    let src = "pub fn lj(r2: f32) -> f32 {\n    let e: f64 = 4.0;\n    (e as f32) * r2\n}\n";
    let found = scan_source("crates/gpu/src/shader.rs", src);
    assert!(
        found
            .iter()
            .any(|f| f.rule == Rule::PrecisionDiscipline && f.line == 2 && !f.waived),
        "{found:?}"
    );
    // The same source outside an f32 kernel module is not precision-checked.
    assert!(scan_source("crates/gpu/src/device.rs", src)
        .iter()
        .all(|f| f.rule != Rule::PrecisionDiscipline));
}

#[test]
fn seeded_determinism_violation_detected() {
    let src = "use std::collections::HashMap;\npub fn tally() -> usize { 0 }\n";
    let found = scan_source("crates/mta/src/kernel.rs", src);
    assert!(
        found
            .iter()
            .any(|f| f.rule == Rule::Determinism && f.line == 1 && !f.waived),
        "{found:?}"
    );
}

#[test]
fn seeded_unordered_reduction_violation_detected() {
    // The host-parallel contract (DESIGN.md §12): lane work is an
    // order-preserving map, every reduction folds serially. A pool-side
    // `sum()` makes float accumulation order depend on work stealing.
    let src = "pub fn pe(rows: &[f32]) -> f32 {\n    rows.par_iter().sum::<f32>()\n}\n";
    let found = scan_source("crates/opteron/src/cpu.rs", src);
    assert!(
        found
            .iter()
            .any(|f| f.rule == Rule::Determinism && f.line == 2 && !f.waived),
        "{found:?}"
    );
    // The sweep engine is held to the same rule…
    let spawn = "pub fn go() {\n    rayon::spawn(|| {});\n}\n";
    assert!(scan_source("crates/sim-sweep/src/engine.rs", spawn)
        .iter()
        .any(|f| f.rule == Rule::Determinism && f.line == 2 && !f.waived));
    // …but an order-preserving map into a serial fold is the sanctioned shape.
    let ok = "pub fn pe(rows: &[Row]) -> Vec<Out> {\n    rows.par_iter().map(run).collect()\n}\n";
    assert!(scan_source("crates/opteron/src/cpu.rs", ok)
        .iter()
        .all(|f| f.rule != Rule::Determinism));
}

#[test]
fn seeded_panic_violation_detected() {
    let src = "pub fn pick(v: &[f32]) -> f32 {\n    *v.first().unwrap()\n}\n";
    let found = scan_source("crates/cell-be/src/dma.rs", src);
    assert!(
        found
            .iter()
            .any(|f| f.rule == Rule::PanicDiscipline && f.line == 2 && !f.waived),
        "{found:?}"
    );
}

#[test]
fn seeded_cost_violation_detected() {
    let src = "pub fn scribble(buf: &mut [f32]) {\n    buf[0] = 0.0;\n}\n";
    let found = scan_source("crates/opteron/src/cache.rs", src);
    assert!(
        found
            .iter()
            .any(|f| f.rule == Rule::CostConservation && f.line == 1 && !f.waived),
        "{found:?}"
    );
}

#[test]
fn seeded_observer_purity_violation_detected() {
    let src = "pub fn sample(spe: &mut Spe) -> f64 {\n    spe.charge(4.0);\n    spe.cycles()\n}\n";
    let found = scan_source("crates/sim-perf/src/counter.rs", src);
    assert!(
        found
            .iter()
            .any(|f| f.rule == Rule::ObserverPurity && f.line == 2 && !f.waived),
        "{found:?}"
    );
    // The run-ledger crate is held to the same purity rule: observation
    // (ledger-on) must stay bitwise-identical to ledger-off.
    let obs = scan_source("crates/sim-obs/src/ledger.rs", src);
    assert!(
        obs.iter()
            .any(|f| f.rule == Rule::ObserverPurity && f.line == 2 && !f.waived),
        "{obs:?}"
    );
    // The same call inside a device crate is legitimate cost accounting.
    assert!(scan_source("crates/cell-be/src/spe.rs", src)
        .iter()
        .all(|f| f.rule != Rule::ObserverPurity));
}

#[test]
fn seeded_eval_purity_violation_detected() {
    // Physics-once execution (DESIGN.md §17): the shared evaluator computes
    // physics only; charging simulated time there would double-count it into
    // every device that replays the result.
    let src = "pub fn row(spe: &mut Spe, r2: f32) -> f32 {\n    spe.charge(4.0);\n    r2\n}\n";
    let found = scan_source("crates/md-core/src/shared_eval.rs", src);
    assert!(
        found
            .iter()
            .any(|f| f.rule == Rule::EvalPurity && f.line == 2 && !f.waived),
        "{found:?}"
    );
    // Sibling md-core modules and device replay layers charge legitimately.
    assert!(scan_source("crates/md-core/src/lj.rs", src)
        .iter()
        .all(|f| f.rule != Rule::EvalPurity));
    assert!(scan_source("crates/cell-be/src/kernel.rs", src)
        .iter()
        .all(|f| f.rule != Rule::EvalPurity));
}

#[test]
fn waiver_suppresses_exactly_its_rule() {
    let src = "use std::collections::HashMap; // sim-vet: allow(determinism): keyed by atom id, drained sorted\npub fn pick(v: &[f32]) -> f32 { *v.first().unwrap() }\n";
    let found = scan_source("crates/mta/src/kernel.rs", src);
    let det = found
        .iter()
        .find(|f| f.rule == Rule::Determinism)
        .expect("determinism finding");
    assert!(det.waived, "inline waiver must cover its line");
    let panic = found
        .iter()
        .find(|f| f.rule == Rule::PanicDiscipline)
        .expect("panic finding");
    assert!(
        !panic.waived,
        "waiver for one rule must not leak to another"
    );
}

/// The binary's failure path: a tree with a seeded violation scans unclean,
/// with a `file:line` diagnostic — exactly what makes `sim-vet` exit nonzero.
#[test]
fn seeded_tree_scans_unclean_with_file_line_diagnostic() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("sim-vet-seeded");
    let kernel_dir = dir.join("crates/gpu/src");
    std::fs::create_dir_all(&kernel_dir).expect("mkdir");
    std::fs::write(
        kernel_dir.join("shader.rs"),
        "pub fn lj(x: f32) -> f64 {\n    f64::from(x)\n}\n",
    )
    .expect("write seeded file");
    let report = scan_workspace(&dir).expect("scan seeded tree");
    assert!(!report.is_clean(), "seeded violation must fail the scan");
    let diag = report.unwaived().next().expect("diagnostic").to_string();
    assert!(diag.contains("crates/gpu/src/shader.rs:1:"), "{diag}");
    assert!(diag.contains("[precision-discipline]"), "{diag}");
    std::fs::remove_dir_all(&dir).ok();
}

mod hazard {
    use cell_be::hazard::{Dir, HazardChecker};
    use cell_be::LsRegion;

    #[test]
    fn injected_missing_tag_wait_is_detected_and_traced() {
        // Double-buffered get without the tag wait: buffer B is read while
        // its transfer is still in flight.
        let buf_a = LsRegion {
            offset: 0,
            len: 4096,
        };
        let buf_b = LsRegion {
            offset: 4096,
            len: 4096,
        };
        let mut hz = HazardChecker::new();
        hz.dma_issue(0, Dir::Get, buf_a);
        hz.tag_wait(0);
        hz.dma_issue(1, Dir::Get, buf_b);
        hz.compute_read(buf_a); // fine: tag 0 completed
        hz.compute_read(buf_b); // race: tag 1 still in flight
        assert_eq!(hz.hazards().len(), 1, "{:?}", hz.hazards());
        assert_eq!(hz.hazards()[0].kind(), "read-before-get");

        let mut tracer = mdea_trace::Tracer::new();
        let emitted = hz.emit_to_tracer(&mut tracer, mdea_trace::TraceTrack(2), 0.0015);
        assert_eq!(emitted, 1);
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("read-before-get"), "{json}");
    }

    #[test]
    fn shipped_cell_port_runs_hazard_free() {
        use cell_be::{CellBeDevice, CellRunConfig};
        let sim = md_core::params::SimConfig::reduced_lj(256);
        let device = CellBeDevice::paper_blade();
        let mut tracer = mdea_trace::Tracer::new();
        device
            .run_md_traced(&sim, 3, CellRunConfig::best(), &mut tracer)
            .expect("traced run");
        // The instrumented run emits every detected hazard as an instant
        // marker; a disciplined issue→wait→compute schedule emits none.
        let hazards: Vec<_> = tracer
            .instants()
            .iter()
            .filter(|i| i.name.starts_with("hazard:"))
            .collect();
        assert!(hazards.is_empty(), "{hazards:?}");
    }
}
