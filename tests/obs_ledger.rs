//! The run ledger is free: ledger-on is bitwise-identical to ledger-off.
//!
//! This pins the tentpole invariant of the observability layer (DESIGN.md
//! §15): attaching a [`RunLedger`] to any run — every device kind at the
//! paper's 2048 × 10 workload, and a 4-node cluster — changes *nothing*
//! about the trajectory, the energies, or the simulated clock. On top of
//! that, two ledger-enabled runs of the same configuration must produce
//! identical event sequences modulo host-time fields (the `canonical_lines`
//! view), and every produced ledger must round-trip through its JSONL
//! serialization.

use harness::{ClusterKind, DeviceKind, GpuModel};
use md_core::checkpoint::SystemCheckpoint;
use md_core::device::{MdDevice, RunOptions};
use md_core::params::SimConfig;
use mta::ThreadingMode;
use sim_obs::{EventKind, RunLedger};

const PAPER_ATOMS: usize = 2048;
const PAPER_STEPS: usize = 10;

fn paper_sim() -> SimConfig {
    SimConfig::reduced_lj(PAPER_ATOMS)
}

/// Exact bit pattern of a trajectory (positions then velocities).
fn bits(c: &SystemCheckpoint) -> Vec<u64> {
    c.positions
        .iter()
        .chain(c.velocities.iter())
        .flat_map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
        .collect()
}

/// Run `kind` bare and with a ledger attached; the ledger must observe a
/// busy run without perturbing a single bit. Then run with a second ledger
/// and check the canonical (host-events-excluded) serialization agrees
/// exactly — the "identical modulo host-time" determinism contract.
fn assert_ledger_free(kind: DeviceKind, sim: &SimConfig, steps: usize) {
    let label = kind.label();
    let plain = kind
        .build()
        .run(sim, RunOptions::steps(steps))
        .expect("plain run");
    let mut led = RunLedger::new(&label, "ledger determinism probe");
    let observed = kind
        .build()
        .run(sim, RunOptions::steps(steps).with_ledger(&mut led))
        .expect("ledger run");
    assert_eq!(
        bits(&plain.checkpoint),
        bits(&observed.checkpoint),
        "{label}"
    );
    assert_eq!(
        plain.sim_seconds.to_bits(),
        observed.sim_seconds.to_bits(),
        "{label}"
    );
    assert_eq!(
        plain.energies.total.to_bits(),
        observed.energies.total.to_bits(),
        "{label}"
    );
    assert!(!led.is_empty(), "{label}: ledger run must record events");

    let mut led2 = RunLedger::new(&label, "ledger determinism probe");
    kind.build()
        .run(sim, RunOptions::steps(steps).with_ledger(&mut led2))
        .expect("second ledger run");
    assert_eq!(
        led.canonical_lines(),
        led2.canonical_lines(),
        "{label}: canonical event sequence must be deterministic"
    );
    let back = RunLedger::parse_jsonl(&led.to_jsonl()).expect("ledger round-trips");
    assert_eq!(back.events().len(), led.events().len(), "{label}");
}

#[test]
fn cell_ledger_is_free_at_paper_scale() {
    assert_ledger_free(DeviceKind::cell_best(), &paper_sim(), PAPER_STEPS);
}

#[test]
fn cell_ppe_ledger_is_free_at_paper_scale() {
    assert_ledger_free(DeviceKind::CellPpe, &paper_sim(), PAPER_STEPS);
}

#[test]
fn cell_accel_probe_ledger_is_free() {
    // The accelerator probe measures launch overhead and only supports the
    // zero-step workload.
    let kind = DeviceKind::CellAccel {
        variant: cell_be::SpeKernelVariant::SimdAcceleration,
    };
    assert_ledger_free(kind, &paper_sim(), 0);
}

#[test]
fn gpu_ledger_is_free_at_paper_scale() {
    let kind = DeviceKind::Gpu {
        model: GpuModel::GeForce7900Gtx,
    };
    assert_ledger_free(kind, &paper_sim(), PAPER_STEPS);
}

#[test]
fn mta_ledger_is_free_at_paper_scale() {
    for mode in [
        ThreadingMode::FullyMultithreaded,
        ThreadingMode::PartiallyMultithreaded,
    ] {
        assert_ledger_free(DeviceKind::Mta { mode }, &paper_sim(), PAPER_STEPS);
    }
}

#[test]
fn opteron_ledger_is_free_at_paper_scale() {
    assert_ledger_free(DeviceKind::Opteron, &paper_sim(), PAPER_STEPS);
}

#[test]
fn four_node_cluster_ledger_is_free_at_paper_scale() {
    let sim = paper_sim();
    let kind = ClusterKind::new(DeviceKind::Opteron, 4);
    let plain = kind
        .build()
        .run(&sim, RunOptions::steps(PAPER_STEPS))
        .expect("plain cluster run");
    let mut led = RunLedger::new("cluster-4x", "ledger determinism probe");
    let observed = kind
        .build()
        .run(&sim, RunOptions::steps(PAPER_STEPS).with_ledger(&mut led))
        .expect("ledger cluster run");
    assert_eq!(bits(&plain.checkpoint), bits(&observed.checkpoint));
    assert_eq!(plain.sim_seconds.to_bits(), observed.sim_seconds.to_bits());
    assert_eq!(
        plain.energies.total.to_bits(),
        observed.energies.total.to_bits()
    );

    // The cluster lays its timeline buckets as phases and reports per-node
    // counters on `<label>.node<rank>` sources.
    let phases: Vec<&str> = led
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Phase)
        .map(|e| e.name.as_str())
        .collect();
    for bucket in ["compute", "halo_exchange", "all_reduce", "recovery"] {
        assert!(
            phases.contains(&bucket),
            "missing phase {bucket}: {phases:?}"
        );
    }
    for rank in 0..4 {
        let node_src = format!("cluster-4x-opteron.node{rank}");
        assert!(
            led.events()
                .iter()
                .any(|e| e.kind == EventKind::Counter && e.source == node_src),
            "no counters for {node_src}"
        );
    }

    let mut led2 = RunLedger::new("cluster-4x", "ledger determinism probe");
    kind.build()
        .run(&sim, RunOptions::steps(PAPER_STEPS).with_ledger(&mut led2))
        .expect("second ledger cluster run");
    assert_eq!(led.canonical_lines(), led2.canonical_lines());
}

/// The harness's host-timed producer fills in the two gate metrics and the
/// result still parses, validates, and carries a non-empty canonical view.
#[test]
fn device_ledger_producer_carries_host_gate_metrics() {
    let sim = SimConfig::reduced_lj(256);
    let (metrics, led) =
        harness::device_ledger(DeviceKind::Opteron, &sim, 3).expect("ledger producer");
    assert_eq!(metrics.device, "opteron");
    assert!(led.host_metric("opteron", "host_wall_seconds").is_some());
    assert!(led
        .host_metric("opteron", "host_atom_steps_per_s")
        .is_some());
    assert!(!led.canonical_lines().is_empty());
    RunLedger::validate(&led.to_jsonl()).expect("serialized ledger validates");
}

/// A warm sweep's post-hoc ledger flips cache events from miss to hit while
/// the simulated timeline stays byte-identical (cached metrics are bitwise
/// the metrics the cold run produced).
#[test]
fn sweep_ledger_records_cache_hits_and_misses() {
    use sim_sweep::{run_sweep, EngineConfig, SweepSpec};
    let spec = SweepSpec {
        name: "obs-ledger-probe",
        description: "two tiny points for the cache-event test",
        points: vec![
            sim_sweep::SweepPoint {
                figure: "probe",
                device: DeviceKind::Opteron,
                n_atoms: 108,
                steps: 2,
                scenario: Default::default(),
            },
            sim_sweep::SweepPoint {
                figure: "probe",
                device: DeviceKind::Opteron,
                n_atoms: 256,
                steps: 2,
                scenario: Default::default(),
            },
        ],
    };
    let dir = std::env::temp_dir().join(format!("obs-sweep-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = EngineConfig {
        cache_dir: dir.clone(),
        jobs: 1,
        ..EngineConfig::default()
    };
    let cold = run_sweep(&spec, &cfg).expect("cold sweep");
    let warm = run_sweep(&spec, &cfg).expect("warm sweep");
    let cold_led = cold.to_ledger();
    let warm_led = warm.to_ledger();

    let details = |l: &RunLedger| -> Vec<String> {
        l.events()
            .iter()
            .filter(|e| e.kind == EventKind::Cache)
            .map(|e| e.detail.clone().unwrap_or_default())
            .collect()
    };
    assert_eq!(details(&cold_led), vec!["miss", "miss"]);
    assert_eq!(details(&warm_led), vec!["hit", "hit"]);

    // Everything except the hit/miss provenance is byte-identical.
    let sans_cache = |l: &RunLedger| -> Vec<String> {
        l.canonical_lines()
            .into_iter()
            .filter(|line| !line.contains("\"kind\":\"cache\""))
            .collect()
    };
    assert_eq!(sans_cache(&cold_led), sans_cache(&warm_led));
    let _ = std::fs::remove_dir_all(&dir);
}
