//! Integration tests asserting the paper's headline results — the shapes of
//! every table and figure — hold in the reproduction. This is the executable
//! form of EXPERIMENTS.md.

use harness::experiments;

/// Table 1: Opteron vs Cell (2048 atoms, 10 steps).
#[test]
fn table1_cell_vs_opteron_ratios() {
    let t = experiments::table1(2048, 10).expect("paper workload fits the local store");

    // "Thanks to its effective use of SIMD intrinsics on the SPE, even a
    // single SPE just edges out the Opteron in total performance."
    let one = t.speedup_1spe_vs_opteron();
    assert!(
        (1.0..1.6).contains(&one),
        "1 SPE should just edge out the Opteron: {one:.2}x"
    );

    // "Using all 8 SPEs results in a better than 5x performance improvement
    // relative to the Opteron."
    let eight = t.speedup_8spe_vs_opteron();
    assert!(
        (4.5..7.5).contains(&eight),
        "8 SPEs should be better than ~5x: {eight:.2}x"
    );

    // "... and 26x faster than the PPE alone."
    let ppe = t.speedup_8spe_vs_ppe();
    assert!(
        (18.0..35.0).contains(&ppe),
        "8 SPEs should be ~26x the PPE: {ppe:.1}x"
    );
}

/// Figure 5: the SPE SIMD optimization ladder (2048 atoms, 1 SPE).
#[test]
fn fig5_simd_ladder_ratios() {
    let rows = experiments::fig5(2048).expect("paper workload fits the local store");
    let v = |i: usize| rows[i].seconds;

    // Strictly decreasing runtimes along the ladder.
    for w in rows.windows(2) {
        assert!(w[1].seconds < w[0].seconds, "ladder must descend");
    }
    // "a small speedup" from copysign.
    let copysign_gain = v(0) / v(1);
    assert!(
        (1.01..1.15).contains(&copysign_gain),
        "copysign gain should be small: {copysign_gain:.3}"
    );
    // "running over 1.5x faster than the original" after SIMD unit cell.
    assert!(v(0) / v(2) > 1.5, "SIMD unit cell: {:.2}x", v(0) / v(2));
    // "21% and 15% improvements, respectively".
    let dir = (v(2) / v(3) - 1.0) * 100.0;
    let len = (v(3) / v(4) - 1.0) * 100.0;
    assert!(
        (15.0..27.0).contains(&dir),
        "direction gain {dir:.0}% (paper 21%)"
    );
    assert!(
        (10.0..20.0).contains(&len),
        "length gain {len:.0}% (paper 15%)"
    );
    // "the total improvement in runtime was only 3%" (final stage is small).
    let accel = (v(4) / v(5) - 1.0) * 100.0;
    assert!(
        accel < 5.0,
        "acceleration-SIMD gain should be tiny: {accel:.1}%"
    );
}

/// Figure 6: SPE thread-launch overhead (2048 atoms, 10 steps).
#[test]
fn fig6_launch_overhead_shapes() {
    let cases = experiments::fig6(2048, 10).expect("paper workload fits the local store");
    let find = |spes: usize, once: bool| {
        cases
            .iter()
            .find(|c| c.n_spes == spes && (c.policy == cell_be::SpawnPolicy::LaunchOnce) == once)
            .unwrap()
    };
    let r1 = find(1, false);
    let r8 = find(8, false);
    let o1 = find(1, true);
    let o8 = find(8, true);

    // "the thread launch overhead is a small fraction of the runtime" (1 SPE).
    assert!(
        r1.launch_fraction() < 0.15,
        "1-SPE respawn fraction {:.2}",
        r1.launch_fraction()
    );
    // "the thread launch overhead grows by a factor of eight".
    let growth = r8.launch_seconds / r1.launch_seconds;
    assert!((7.5..8.5).contains(&growth), "launch overhead x{growth:.1}");
    // "even an efficient parallelization run only about 1.5x faster using all
    // SPEs" (respawn mode).
    let respawn_speedup = r1.total_seconds / r8.total_seconds;
    assert!(
        (1.2..2.2).contains(&respawn_speedup),
        "respawn-mode 8-SPE speedup {respawn_speedup:.2} (paper ~1.5x)"
    );
    // "this eight-SPE version is now 4.5x faster than this single-SPE version"
    // (launch-once mode).
    let once_speedup = o1.total_seconds / o8.total_seconds;
    assert!(
        (3.5..6.0).contains(&once_speedup),
        "launch-once 8-SPE speedup {once_speedup:.2} (paper 4.5x)"
    );
}

/// Figure 7: GPU vs Opteron across atom counts.
#[test]
fn fig7_gpu_crossover_and_speedup() {
    let rows = experiments::fig7(&[128, 256, 512, 1024, 2048], 10);

    // "It is these costs which make the GPU implementation take longer to run
    // than the CPU version at very small numbers of atoms."
    assert!(
        rows[0].gpu_seconds > rows[0].opteron_seconds,
        "GPU must lose at 128 atoms"
    );
    // "For a run of 2048 atoms, the GPU implementation is almost 6x faster."
    let at2048 = rows.iter().find(|r| r.n_atoms == 2048).unwrap();
    let speedup = at2048.opteron_seconds / at2048.gpu_seconds;
    assert!(
        (4.5..7.5).contains(&speedup),
        "GPU at 2048 should be ~6x: {speedup:.2}x"
    );
    // The speedup grows monotonically over this range.
    let speedups: Vec<f64> = rows
        .iter()
        .map(|r| r.opteron_seconds / r.gpu_seconds)
        .collect();
    for w in speedups.windows(2) {
        assert!(w[1] > w[0], "GPU speedup should grow with N: {speedups:?}");
    }
}

/// Figure 8: fully vs partially multithreaded MTA-2 runs.
#[test]
fn fig8_mta_threading_gap_grows() {
    let rows = experiments::fig8(&[256, 512, 1024, 2048], 10);
    for r in &rows {
        assert!(
            r.fully_mt_seconds < r.partially_mt_seconds,
            "fully multithreaded must win at N={}",
            r.n_atoms
        );
    }
    // "the performance difference increases with the increase in the number
    // of atoms".
    let gaps: Vec<f64> = rows
        .iter()
        .map(|r| r.partially_mt_seconds - r.fully_mt_seconds)
        .collect();
    for w in gaps.windows(2) {
        assert!(w[1] > w[0], "absolute gap should grow: {gaps:?}");
    }
}

/// Figure 9: relative runtime growth, MTA vs Opteron.
#[test]
fn fig9_opteron_grows_faster_past_cache() {
    let rows =
        experiments::fig9(&[256, 512, 1024, 2048, 4096], 10).expect("256-atom baseline present");
    // Both normalized to 1 at 256.
    assert_eq!(rows[0].mta_relative, 1.0);
    assert_eq!(rows[0].opteron_relative, 1.0);

    // "The increases in the MTA runtime are proportional to the increase in
    // the floating-point computation requirements": growth ≈ pair-count
    // growth within a few percent.
    for r in &rows {
        let pair_growth = (r.n_atoms * (r.n_atoms - 1)) as f64 / (256.0 * 255.0);
        let dev = (r.mta_relative / pair_growth - 1.0).abs();
        assert!(
            dev < 0.15,
            "MTA growth should track N² work at N={}: x{:.1} vs x{:.1}",
            r.n_atoms,
            r.mta_relative,
            pair_growth
        );
    }

    // "The effect of cache misses are shown in the Opteron processor runs as
    // the array sizes become larger than the cache capacities": past the L1
    // capacity (N ≳ 2700) the Opteron's relative growth exceeds the MTA's.
    let last = rows.last().unwrap();
    assert_eq!(last.n_atoms, 4096);
    assert!(
        last.opteron_relative > 1.1 * last.mta_relative,
        "Opteron x{:.0} should exceed MTA x{:.0} past cache capacity",
        last.opteron_relative,
        last.mta_relative
    );
}
