//! Observability is free, and the attributions reproduce the paper.
//!
//! The sim-perf layer's load-bearing invariant: attaching a `PerfMonitor`
//! to a device run changes *nothing* — the trajectory is bitwise-identical
//! and the simulated clock reads exactly the same. On top of that, the
//! per-run time attribution must partition the run's simulated seconds, and
//! the resulting fractions must reproduce the paper's qualitative claims
//! (transfer-dominated GPU at small N, DMA-overlapped Cell at 8 SPEs,
//! stall-free fully-multithreaded MTA, cache-bound Opteron growth).
//!
//! All devices run through the unified [`MdDevice`](md_core::device::MdDevice)
//! API; "plain" and "counted" runs differ only in `RunOptions::with_perf`.

use cell_be::CellRunConfig;
use harness::perf;
use harness::{DeviceKind, GpuModel};
use md_core::checkpoint::SystemCheckpoint;
use md_core::device::{DeviceRun, RunOptions};
use md_core::params::SimConfig;
use mta::ThreadingMode;
use proptest::prelude::*;
use sim_perf::PerfMonitor;

const PAPER_ATOMS: usize = 2048;
const PAPER_STEPS: usize = 10;

fn paper_sim() -> SimConfig {
    SimConfig::reduced_lj(PAPER_ATOMS)
}

/// Exact bit pattern of a trajectory (positions then velocities).
fn bits(c: &SystemCheckpoint) -> Vec<u64> {
    c.positions
        .iter()
        .chain(c.velocities.iter())
        .flat_map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
        .collect()
}

/// Run `kind` twice — bare, then with a monitor attached — and assert the
/// monitor observed a busy run without perturbing a single bit of it.
fn assert_counters_free(kind: DeviceKind, sim: &SimConfig, steps: usize) {
    let plain: DeviceRun = kind
        .build()
        .run(sim, RunOptions::steps(steps))
        .expect("plain run");
    let mut perf = PerfMonitor::new();
    let counted: DeviceRun = kind
        .build()
        .run(sim, RunOptions::steps(steps).with_perf(&mut perf))
        .expect("counted run");
    assert_eq!(bits(&plain.checkpoint), bits(&counted.checkpoint));
    assert_eq!(plain.sim_seconds.to_bits(), counted.sim_seconds.to_bits());
    assert_eq!(
        plain.energies.total.to_bits(),
        counted.energies.total.to_bits()
    );
    assert!(!perf.is_empty(), "the counted run must populate counters");
}

#[test]
fn cell_counters_are_free_at_paper_scale() {
    assert_counters_free(DeviceKind::cell_best(), &paper_sim(), PAPER_STEPS);
}

#[test]
fn gpu_counters_are_free_at_paper_scale() {
    let kind = DeviceKind::Gpu {
        model: GpuModel::GeForce7900Gtx,
    };
    assert_counters_free(kind, &paper_sim(), PAPER_STEPS);
}

#[test]
fn mta_counters_are_free_at_paper_scale() {
    for mode in [
        ThreadingMode::FullyMultithreaded,
        ThreadingMode::PartiallyMultithreaded,
    ] {
        assert_counters_free(DeviceKind::Mta { mode }, &paper_sim(), PAPER_STEPS);
    }
}

#[test]
fn opteron_counters_are_free_at_paper_scale() {
    assert_counters_free(DeviceKind::Opteron, &paper_sim(), PAPER_STEPS);
}

/// Every device's attribution partitions its simulated seconds (1e-9
/// relative), and the emitted JSON passes the schema validator.
#[test]
fn attribution_partitions_sim_seconds_on_every_device() {
    let sim = paper_sim();
    let mut all = perf::standard_metrics(&sim, PAPER_STEPS).expect("all devices run");
    all.push(perf::mta_metrics(&sim, PAPER_STEPS, ThreadingMode::PartiallyMultithreaded).0);
    assert_eq!(all.len(), 5);
    for m in &all {
        m.validate()
            .unwrap_or_else(|e| panic!("{} attribution broken: {e}", m.device));
        let sum: f64 = m.attribution.iter().map(|(_, s)| s).sum();
        assert!(
            (sum - m.sim_seconds).abs() <= 1e-9 * m.sim_seconds,
            "{}: {sum} != {}",
            m.device,
            m.sim_seconds
        );
        sim_perf::validate_run_metrics_json(&m.to_json())
            .unwrap_or_else(|e| panic!("{} JSON invalid: {e}", m.device));
    }
}

/// Paper, Figure 7: "the overhead associated with beginning a computation on
/// the GPU" plus PCIe transfers make small runs transfer-dominated; by 2048
/// atoms the shader dominates and the GPU is worth it.
#[test]
fn gpu_is_transfer_dominated_at_small_n_and_compute_dominated_at_2048() {
    for n in [256usize, 512] {
        let sim = SimConfig::reduced_lj(n);
        let (m, _) = perf::gpu_metrics(&sim, PAPER_STEPS);
        let transfer = m.derived_value("transfer_overhead_fraction");
        let compute = m.derived_value("compute_fraction");
        assert!(
            transfer > compute,
            "at N={n} transfer ({transfer:.3}) must dominate compute ({compute:.3})"
        );
    }
    let (m, _) = perf::gpu_metrics(&paper_sim(), PAPER_STEPS);
    let transfer = m.derived_value("transfer_overhead_fraction");
    let compute = m.derived_value("compute_fraction");
    assert!(
        compute > transfer,
        "at N=2048 compute ({compute:.3}) must dominate transfer ({transfer:.3})"
    );
}

/// Paper, Figures 8/9: the Opteron's relative cost of memory grows with the
/// problem — once the arrays outgrow the caches, stall cycles take an
/// ever-larger share of the run.
#[test]
fn opteron_memory_stall_fraction_strictly_increases_with_n() {
    let mut last = 0.0f64;
    for n in [256usize, 512, 1024, 2048] {
        let sim = SimConfig::reduced_lj(n);
        let (m, _) = perf::opteron_metrics(&sim, PAPER_STEPS);
        let f = m.derived_value("memory_stall_fraction");
        assert!(
            f > last,
            "stall fraction must grow: {f:.4} at N={n} after {last:.4}"
        );
        last = f;
    }
}

/// Paper, Table 1: at 8 SPEs the DMA traffic is overlapped with compute —
/// the data moves (the byte counters prove it) but contributes almost
/// nothing to the critical path.
#[test]
fn cell_dma_is_overlapped_at_8_spes() {
    let (m, _) =
        perf::cell_metrics(&paper_sim(), PAPER_STEPS, CellRunConfig::best()).expect("cell run");
    assert!(
        m.counter_value("cell.dma.bytes_in") > 0.0,
        "DMA must actually move data"
    );
    let dma = m.derived_value("dma_fraction");
    assert!(
        dma < 0.05,
        "DMA-wait share of an 8-SPE run must be small (overlapped): {dma:.4}"
    );
}

/// Paper, Figure 8: the fully multithreaded MTA run keeps enough streams in
/// flight to hide all memory latency — essentially no phantom (no-op)
/// cycles — while the partially multithreaded run serializes on one stream.
#[test]
fn mta_full_mt_is_stall_free_and_partial_mt_is_not() {
    let sim = paper_sim();
    let (full, _) = perf::mta_metrics(&sim, PAPER_STEPS, ThreadingMode::FullyMultithreaded);
    let (partial, _) = perf::mta_metrics(&sim, PAPER_STEPS, ThreadingMode::PartiallyMultithreaded);
    let full_phantom = full.derived_value("phantom_fraction");
    let partial_phantom = partial.derived_value("phantom_fraction");
    assert!(
        full_phantom < 0.01,
        "fully multithreaded run must be nearly stall-free: {full_phantom:.4}"
    );
    assert!(
        partial_phantom > 0.5,
        "partially multithreaded run must be stall-dominated: {partial_phantom:.4}"
    );
    assert!(full.derived_value("avg_stream_occupancy") > 64.0);
}

proptest! {
    /// Counters are cumulative: every sampled series is monotonically
    /// non-decreasing in both simulated time and value, on an integer-flop
    /// device (Opteron) and a stream device (MTA).
    #[test]
    fn counter_series_are_monotonically_nondecreasing(n in 128usize..320, steps in 1usize..4) {
        let sim = SimConfig::reduced_lj(n);
        let mut monitors = Vec::new();
        for kind in [
            DeviceKind::Opteron,
            DeviceKind::Mta { mode: ThreadingMode::FullyMultithreaded },
        ] {
            let mut perf = PerfMonitor::new();
            kind.build()
                .run(&sim, RunOptions::steps(steps).with_perf(&mut perf))
                .expect("counted run");
            monitors.push(perf);
        }
        for monitor in &monitors {
            prop_assert!(!monitor.is_empty());
            for c in monitor.counters() {
                let mut prev_t = f64::NEG_INFINITY;
                let mut prev_v = f64::NEG_INFINITY;
                prop_assert!(!c.samples().is_empty(), "{} never sampled", c.name);
                for &(t, v) in c.samples() {
                    prop_assert!(
                        t >= prev_t && v >= prev_v,
                        "{} regressed: ({t}, {v}) after ({prev_t}, {prev_v})",
                        c.name
                    );
                    prev_t = t;
                    prev_v = v;
                }
            }
        }
    }
}
