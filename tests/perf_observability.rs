//! Observability is free, and the attributions reproduce the paper.
//!
//! The sim-perf layer's load-bearing invariant: attaching a `PerfMonitor`
//! to a device run changes *nothing* — the trajectory is bitwise-identical
//! and the simulated clock reads exactly the same. On top of that, the
//! per-run time attribution must partition the run's simulated seconds, and
//! the resulting fractions must reproduce the paper's qualitative claims
//! (transfer-dominated GPU at small N, DMA-overlapped Cell at 8 SPEs,
//! stall-free fully-multithreaded MTA, cache-bound Opteron growth).

use cell_be::{CellBeDevice, CellRunConfig};
use gpu::GpuMdSimulation;
use harness::perf;
use md_core::init;
use md_core::params::SimConfig;
use md_core::system::ParticleSystem;
use mta::{MtaMdSimulation, ThreadingMode};
use opteron::OpteronCpu;
use proptest::prelude::*;
use sim_perf::PerfMonitor;

const PAPER_ATOMS: usize = 2048;
const PAPER_STEPS: usize = 10;

fn paper_sim() -> SimConfig {
    SimConfig::reduced_lj(PAPER_ATOMS)
}

/// Exact bit pattern of a trajectory (positions then velocities).
fn bits_f32(s: &ParticleSystem<f32>) -> Vec<u32> {
    s.positions
        .iter()
        .chain(s.velocities.iter())
        .flat_map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
        .collect()
}

fn bits_f64(s: &ParticleSystem<f64>) -> Vec<u64> {
    s.positions
        .iter()
        .chain(s.velocities.iter())
        .flat_map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
        .collect()
}

#[test]
fn cell_counters_are_free_at_paper_scale() {
    let sim = paper_sim();
    let device = CellBeDevice::paper_blade();
    let cfg = CellRunConfig::best();
    let mut plain_sys: ParticleSystem<f32> = init::initialize(&sim);
    let mut counted_sys = plain_sys.clone();
    let plain = device
        .run_md_from(&mut plain_sys, &sim, PAPER_STEPS, cfg)
        .expect("plain run");
    let mut perf = PerfMonitor::new();
    let counted = device
        .run_md_from_perf(&mut counted_sys, &sim, PAPER_STEPS, cfg, &mut perf)
        .expect("counted run");
    assert_eq!(bits_f32(&plain_sys), bits_f32(&counted_sys));
    assert_eq!(plain.sim_seconds.to_bits(), counted.sim_seconds.to_bits());
    assert_eq!(
        plain.energies.total.to_bits(),
        counted.energies.total.to_bits()
    );
    assert!(!perf.is_empty(), "the counted run must populate counters");
}

#[test]
fn gpu_counters_are_free_at_paper_scale() {
    let sim = paper_sim();
    let device = GpuMdSimulation::geforce_7900gtx();
    let mut plain_sys: ParticleSystem<f32> = init::initialize(&sim);
    let mut counted_sys = plain_sys.clone();
    let plain = device.run_md_from(&mut plain_sys, &sim, PAPER_STEPS);
    let mut perf = PerfMonitor::new();
    let counted = device.run_md_from_perf(&mut counted_sys, &sim, PAPER_STEPS, &mut perf);
    assert_eq!(bits_f32(&plain_sys), bits_f32(&counted_sys));
    assert_eq!(plain.sim_seconds.to_bits(), counted.sim_seconds.to_bits());
    assert!(!perf.is_empty());
}

#[test]
fn mta_counters_are_free_at_paper_scale() {
    let sim = paper_sim();
    let device = MtaMdSimulation::paper_mta2();
    for mode in [
        ThreadingMode::FullyMultithreaded,
        ThreadingMode::PartiallyMultithreaded,
    ] {
        let mut plain_sys: ParticleSystem<f64> = init::initialize(&sim);
        let mut counted_sys = plain_sys.clone();
        let plain = device.run_md_from(&mut plain_sys, &sim, PAPER_STEPS, mode);
        let mut perf = PerfMonitor::new();
        let counted = device.run_md_from_perf(&mut counted_sys, &sim, PAPER_STEPS, mode, &mut perf);
        assert_eq!(bits_f64(&plain_sys), bits_f64(&counted_sys));
        assert_eq!(plain.sim_seconds.to_bits(), counted.sim_seconds.to_bits());
        assert!(!perf.is_empty());
    }
}

#[test]
fn opteron_counters_are_free_at_paper_scale() {
    let sim = paper_sim();
    let mut plain_sys: ParticleSystem<f64> = init::initialize(&sim);
    let mut counted_sys = plain_sys.clone();
    let plain = OpteronCpu::paper_reference().run_md_from(&mut plain_sys, &sim, PAPER_STEPS);
    let mut perf = PerfMonitor::new();
    let counted = OpteronCpu::paper_reference().run_md_from_perf(
        &mut counted_sys,
        &sim,
        PAPER_STEPS,
        &mut perf,
    );
    assert_eq!(bits_f64(&plain_sys), bits_f64(&counted_sys));
    assert_eq!(plain.sim_seconds.to_bits(), counted.sim_seconds.to_bits());
    assert!(!perf.is_empty());
}

/// Every device's attribution partitions its simulated seconds (1e-9
/// relative), and the emitted JSON passes the schema validator.
#[test]
fn attribution_partitions_sim_seconds_on_every_device() {
    let sim = paper_sim();
    let mut all = perf::standard_metrics(&sim, PAPER_STEPS).expect("all devices run");
    all.push(perf::mta_metrics(&sim, PAPER_STEPS, ThreadingMode::PartiallyMultithreaded).0);
    assert_eq!(all.len(), 5);
    for m in &all {
        m.validate()
            .unwrap_or_else(|e| panic!("{} attribution broken: {e}", m.device));
        let sum: f64 = m.attribution.iter().map(|(_, s)| s).sum();
        assert!(
            (sum - m.sim_seconds).abs() <= 1e-9 * m.sim_seconds,
            "{}: {sum} != {}",
            m.device,
            m.sim_seconds
        );
        sim_perf::validate_run_metrics_json(&m.to_json())
            .unwrap_or_else(|e| panic!("{} JSON invalid: {e}", m.device));
    }
}

/// Paper, Figure 7: "the overhead associated with beginning a computation on
/// the GPU" plus PCIe transfers make small runs transfer-dominated; by 2048
/// atoms the shader dominates and the GPU is worth it.
#[test]
fn gpu_is_transfer_dominated_at_small_n_and_compute_dominated_at_2048() {
    for n in [256usize, 512] {
        let sim = SimConfig::reduced_lj(n);
        let (m, _) = perf::gpu_metrics(&sim, PAPER_STEPS);
        let transfer = m.derived_value("transfer_overhead_fraction");
        let compute = m.derived_value("compute_fraction");
        assert!(
            transfer > compute,
            "at N={n} transfer ({transfer:.3}) must dominate compute ({compute:.3})"
        );
    }
    let (m, _) = perf::gpu_metrics(&paper_sim(), PAPER_STEPS);
    let transfer = m.derived_value("transfer_overhead_fraction");
    let compute = m.derived_value("compute_fraction");
    assert!(
        compute > transfer,
        "at N=2048 compute ({compute:.3}) must dominate transfer ({transfer:.3})"
    );
}

/// Paper, Figures 8/9: the Opteron's relative cost of memory grows with the
/// problem — once the arrays outgrow the caches, stall cycles take an
/// ever-larger share of the run.
#[test]
fn opteron_memory_stall_fraction_strictly_increases_with_n() {
    let mut last = 0.0f64;
    for n in [256usize, 512, 1024, 2048] {
        let sim = SimConfig::reduced_lj(n);
        let (m, _) = perf::opteron_metrics(&sim, PAPER_STEPS);
        let f = m.derived_value("memory_stall_fraction");
        assert!(
            f > last,
            "stall fraction must grow: {f:.4} at N={n} after {last:.4}"
        );
        last = f;
    }
}

/// Paper, Table 1: at 8 SPEs the DMA traffic is overlapped with compute —
/// the data moves (the byte counters prove it) but contributes almost
/// nothing to the critical path.
#[test]
fn cell_dma_is_overlapped_at_8_spes() {
    let (m, _) =
        perf::cell_metrics(&paper_sim(), PAPER_STEPS, CellRunConfig::best()).expect("cell run");
    assert!(
        m.counter_value("cell.dma.bytes_in") > 0.0,
        "DMA must actually move data"
    );
    let dma = m.derived_value("dma_fraction");
    assert!(
        dma < 0.05,
        "DMA-wait share of an 8-SPE run must be small (overlapped): {dma:.4}"
    );
}

/// Paper, Figure 8: the fully multithreaded MTA run keeps enough streams in
/// flight to hide all memory latency — essentially no phantom (no-op)
/// cycles — while the partially multithreaded run serializes on one stream.
#[test]
fn mta_full_mt_is_stall_free_and_partial_mt_is_not() {
    let sim = paper_sim();
    let (full, _) = perf::mta_metrics(&sim, PAPER_STEPS, ThreadingMode::FullyMultithreaded);
    let (partial, _) = perf::mta_metrics(&sim, PAPER_STEPS, ThreadingMode::PartiallyMultithreaded);
    let full_phantom = full.derived_value("phantom_fraction");
    let partial_phantom = partial.derived_value("phantom_fraction");
    assert!(
        full_phantom < 0.01,
        "fully multithreaded run must be nearly stall-free: {full_phantom:.4}"
    );
    assert!(
        partial_phantom > 0.5,
        "partially multithreaded run must be stall-dominated: {partial_phantom:.4}"
    );
    assert!(full.derived_value("avg_stream_occupancy") > 64.0);
}

proptest! {
    /// Counters are cumulative: every sampled series is monotonically
    /// non-decreasing in both simulated time and value, on an integer-flop
    /// device (Opteron) and a stream device (MTA).
    #[test]
    fn counter_series_are_monotonically_nondecreasing(n in 128usize..320, steps in 1usize..4) {
        let sim = SimConfig::reduced_lj(n);
        let mut monitors = Vec::new();
        let mut perf_o = PerfMonitor::new();
        OpteronCpu::paper_reference().run_md_perf(&sim, steps, &mut perf_o);
        monitors.push(perf_o);
        let mut perf_m = PerfMonitor::new();
        MtaMdSimulation::paper_mta2().run_md_perf(
            &sim,
            steps,
            ThreadingMode::FullyMultithreaded,
            &mut perf_m,
        );
        monitors.push(perf_m);
        for monitor in &monitors {
            prop_assert!(!monitor.is_empty());
            for c in monitor.counters() {
                let mut prev_t = f64::NEG_INFINITY;
                let mut prev_v = f64::NEG_INFINITY;
                prop_assert!(!c.samples().is_empty(), "{} never sampled", c.name);
                for &(t, v) in c.samples() {
                    prop_assert!(
                        t >= prev_t && v >= prev_v,
                        "{} regressed: ({t}, {v}) after ({prev_t}, {prev_v})",
                        c.name
                    );
                    prev_t = t;
                    prev_v = v;
                }
            }
        }
    }
}
