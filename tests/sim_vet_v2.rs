//! Tier-1 guarantees for the sim-vet v2 analysis engine (DESIGN.md §13):
//! the seeded-violation fixture corpus stays green, the cache-token rule
//! actually bites when `DeviceKind::cache_token` drops a cost-model field,
//! and the machine-readable reports keep their published shape.

use sim_vet::{analyze_sources, discover_targets, Rule};
use std::collections::BTreeMap;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// The workspace exactly as `scan_workspace` sees it: discovered targets
/// plus every non-fixture `.rs` file, read into memory so tests can mutate
/// individual sources before analysis.
fn workspace_sources() -> (Vec<(String, String)>, Vec<sim_vet::Target>) {
    let root = workspace_root();
    let targets = discover_targets(root).expect("discover targets");
    let mut files = Vec::new();
    sim_vet::discover::collect_rs_files(root, root, &mut files).expect("walk workspace");
    files.sort();
    let sources = files
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(root.join(&path)).expect("read source");
            (path, text)
        })
        .collect();
    (sources, targets)
}

#[test]
fn selfcheck_fixture_corpus_passes() {
    let dir = workspace_root().join("crates/sim-vet/fixtures");
    let outcome = sim_vet::selfcheck::run(&dir).expect("read fixtures");
    assert!(outcome.ok(), "selfcheck failures: {:#?}", outcome.failures);
    // One fixture per new rule at minimum, each seeding real expectations.
    assert!(outcome.fixtures >= 4, "only {} fixtures", outcome.fixtures);
    assert!(
        outcome.expectations >= 8,
        "only {} expectations",
        outcome.expectations
    );
}

#[test]
fn workspace_is_clean_under_v2_rules() {
    let report = sim_vet::scan_workspace(workspace_root()).expect("scan workspace");
    let unwaived: Vec<_> = report.unwaived().collect();
    assert!(unwaived.is_empty(), "unwaived findings: {unwaived:#?}");
    assert!(report.files_scanned >= 100, "{}", report.files_scanned);
    // The waiver inventory is real (some exceptions exist) and contains no
    // dead entries — `dead-waiver` findings would be unwaived and caught
    // above, so here we just pin that waivers are exercised at all.
    assert!(report.waived().count() > 0);
}

/// The acceptance-criterion mutation test: deleting any single cost-model
/// field mention from `DeviceKind::cache_token` must produce a `cache-token`
/// finding whose span is the struct field's *definition* line.
#[test]
fn deleting_any_cache_token_field_mention_fails_the_lint() {
    let (sources, targets) = workspace_sources();
    let baseline = analyze_sources(&sources, &targets);
    assert!(baseline.is_clean(), "baseline not clean");

    // One representative field per cost-model struct family the token
    // encodes: Cell hardware, SPE costs, GPU, MTA, Opteron. A "deleted
    // field" loses its whole encoding: the format-string key segment AND
    // the argument that reads it.
    let mutations: [(&str, &[&str]); 5] = [
        (
            "dma_latency_cycles",
            &["dma_lat={},", "c.dma_latency_cycles,"],
        ),
        ("lj_eval", &["lj={},", "k.lj_eval,"]),
        ("jit_startup_s", &["jit={},", "g.jit_startup_s,"]),
        ("sync_instructions", &["sync={},", "m.sync_instructions,"]),
        ("prefetch", &["prefetch={},", "o.prefetch,"]),
    ];
    let device_rs = "crates/harness/src/device.rs";
    for (field, mentions) in mutations {
        let mut mutated = sources.clone();
        let (_, text) = mutated
            .iter_mut()
            .find(|(p, _)| p == device_rs)
            .expect("harness device.rs present");
        for mention in mentions {
            assert!(
                text.contains(mention),
                "expected `{mention}` in {device_rs}"
            );
            *text = text.replacen(mention, "", 1);
        }

        let report = analyze_sources(&mutated, &targets);
        let hit = report
            .findings
            .iter()
            .find(|f| f.rule == Rule::CacheToken && !f.waived && f.message.contains(field))
            .unwrap_or_else(|| panic!("no cache-token finding for `{field}`"));
        // The span points at the field definition, not at cache_token().
        assert_ne!(hit.path, device_rs, "{field}: {hit:?}");
        let (_, def_src) = mutated
            .iter()
            .find(|(p, _)| *p == hit.path)
            .unwrap_or_else(|| panic!("{field}: finding path {} not scanned", hit.path));
        let def_line = def_src.lines().nth(hit.line - 1).unwrap_or("");
        assert!(
            def_line.contains(field),
            "{field}: line {} of {} is `{def_line}`",
            hit.line,
            hit.path
        );
    }
}

/// A seeded report both machine formats are checked against: one unwaived
/// determinism finding, one waived panic finding.
fn seeded_report() -> sim_vet::Report {
    let src = "use std::collections::HashMap;\n\
               fn f() { g().unwrap() } // sim-vet: allow(panic-discipline): test seam\n";
    let sources = vec![("crates/gpu/src/shader.rs".to_string(), src.to_string())];
    analyze_sources(&sources, &[])
}

#[test]
fn json_report_is_parseable_and_complete() {
    let report = seeded_report();
    let parsed = sim_perf::parse_json(&sim_vet::output::to_json(&report)).expect("valid JSON");
    assert_eq!(
        parsed.get("files_scanned").and_then(|v| v.as_number()),
        Some(1.0)
    );
    let findings = parsed
        .get("findings")
        .and_then(|v| v.as_array())
        .expect("findings array");
    assert_eq!(findings.len(), report.findings.len());
    for (json, finding) in findings.iter().zip(&report.findings) {
        assert_eq!(
            json.get("rule").and_then(|v| v.as_str()),
            Some(finding.rule.name())
        );
        assert_eq!(
            json.get("line").and_then(|v| v.as_number()),
            Some(finding.line as f64)
        );
        assert!(json.get("waived").is_some());
    }
}

#[test]
fn sarif_report_matches_2_1_0_shape() {
    let report = seeded_report();
    let parsed = sim_perf::parse_json(&sim_vet::output::to_sarif(&report)).expect("valid JSON");
    assert!(parsed
        .get("$schema")
        .and_then(|v| v.as_str())
        .is_some_and(|s| s.contains("sarif") && s.contains("2.1.0")));
    assert_eq!(
        parsed.get("version").and_then(|v| v.as_str()),
        Some("2.1.0")
    );

    let runs = parsed.get("runs").and_then(|v| v.as_array()).expect("runs");
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(driver.get("name").and_then(|v| v.as_str()), Some("sim-vet"));
    // Every rule ships in the driver's rule catalog with a stable ID.
    let rules = driver
        .get("rules")
        .and_then(|v| v.as_array())
        .expect("rules");
    assert_eq!(rules.len(), Rule::ALL.len());
    for (entry, rule) in rules.iter().zip(Rule::ALL) {
        assert_eq!(entry.get("id").and_then(|v| v.as_str()), Some(rule.name()));
        assert!(entry
            .get("shortDescription")
            .and_then(|d| d.get("text"))
            .and_then(|v| v.as_str())
            .is_some_and(|t| !t.is_empty()));
    }

    let results = runs[0]
        .get("results")
        .and_then(|v| v.as_array())
        .expect("results");
    assert_eq!(results.len(), report.findings.len());
    let rule_ids: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
    let mut suppressed = 0;
    for r in results {
        let id = r.get("ruleId").and_then(|v| v.as_str()).expect("ruleId");
        assert!(rule_ids.contains(&id), "unknown ruleId {id}");
        assert!(r
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(|v| v.as_str())
            .is_some_and(|t| !t.is_empty()));
        let phys = r
            .get("locations")
            .and_then(|v| v.as_array())
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .expect("physicalLocation");
        assert!(phys
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(|v| v.as_str())
            .is_some_and(|u| !u.is_empty()));
        let region = phys.get("region").expect("region");
        assert!(region
            .get("startLine")
            .and_then(|v| v.as_number())
            .is_some_and(|n| n >= 1.0));
        assert!(region
            .get("startColumn")
            .and_then(|v| v.as_number())
            .is_some_and(|n| n >= 1.0));
        if let Some(sup) = r.get("suppressions").and_then(|v| v.as_array()) {
            assert!(sup
                .iter()
                .all(|s| s.get("kind").and_then(|v| v.as_str()) == Some("inSource")));
            suppressed += 1;
        }
    }
    // The seeded waived finding surfaces as an inSource suppression.
    assert_eq!(suppressed, report.waived().count());
    assert!(suppressed >= 1);
}

/// The shipped `[package.metadata.simvet]` profiles and the built-in
/// path-prefix fallback must agree, so a manifest-less copy of the tree
/// (or a unit test using `scan_source`) lints identically.
#[test]
fn manifest_profiles_agree_with_builtin_fallback() {
    let (_, targets) = workspace_sources();
    assert!(!targets.is_empty(), "no targets discovered");
    let by_dir: BTreeMap<&str, &sim_vet::Target> =
        targets.iter().map(|t| (t.dir.as_str(), t)).collect();
    // Every member carries a recognized profile (no target-discovery debt).
    for t in &targets {
        assert!(
            t.profile.is_some(),
            "{} has no recognized simvet profile ({:?})",
            t.dir,
            t.bad_profile
        );
    }
    for (dir, t) in by_dir {
        let probe = format!("{dir}/src/__probe__.rs");
        let (builtin, _) = sim_vet::rules::builtin_profile(&probe);
        assert_eq!(
            t.profile,
            Some(builtin),
            "profile mismatch for {dir}: manifest {:?} vs builtin {builtin:?}",
            t.profile
        );
        for module in &t.f32_kernel_modules {
            let (_, f32_kernel) = sim_vet::rules::builtin_profile(module);
            assert!(f32_kernel, "builtin map misses f32 kernel {module}");
            assert!(
                sim_vet::applicable_rules(module).contains(&Rule::PrecisionDiscipline),
                "{module} lost precision-discipline"
            );
        }
        for module in &t.shared_eval_modules {
            assert!(
                sim_vet::rules::builtin_shared_eval(module),
                "builtin map misses shared-eval module {module}"
            );
            assert!(
                sim_vet::applicable_rules(module).contains(&Rule::EvalPurity),
                "{module} lost eval-purity"
            );
        }
    }
}

#[test]
fn rule_ids_are_stable_and_round_trip() {
    for rule in Rule::ALL {
        let name = rule.name();
        assert!(
            name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
            "{name}"
        );
        assert_eq!(Rule::from_name(name), Some(rule));
        assert!(!rule.description().is_empty());
    }
    assert_eq!(Rule::from_name("no-such-rule"), None);
}
