//! Cluster node-kill recovery gate (DESIGN.md §14) at paper scale
//! (2048 atoms, 10 steps), in the style of `tests/host_parallel.rs`.
//!
//! The contract under test: a cluster is purely a *timeline* decomposition.
//! Partitioning the box across nodes, killing a node at a segment boundary,
//! and migrating its domain to a spare or survivor may only add simulated
//! seconds — final positions, velocities, and energies are bitwise
//! identical to the fault-free cluster run, which is bitwise identical to
//! the single-device run. f32 devices widen losslessly to f64 at
//! checkpoint capture, so checkpoint equality is a bitwise trajectory
//! comparison.

use harness::{
    run_cluster_supervised, ClusterKind, ClusterRecovery, DeviceKind, GpuModel, SupervisorConfig,
};
use md_core::device::{DeviceRun, MdDevice, RunOptions};
use md_core::params::SimConfig;
use mta::ThreadingMode;
use proptest::prelude::*;

const PAPER_ATOMS: usize = 2048;
const PAPER_STEPS: usize = 10;
/// Cluster widths the acceptance gate sweeps.
const NODE_COUNTS: [usize; 3] = [2, 4, 8];

/// Every roster device that can resume from a checkpoint (the PPE-only
/// baseline and the Figure 5 probe cannot, and are rejected as nodes).
fn all_devices() -> [DeviceKind; 4] {
    [
        DeviceKind::Opteron,
        DeviceKind::cell_best(),
        DeviceKind::Gpu {
            model: GpuModel::GeForce7900Gtx,
        },
        DeviceKind::Mta {
            mode: ThreadingMode::FullyMultithreaded,
        },
    ]
}

fn single_run(kind: DeviceKind, sim: &SimConfig) -> DeviceRun {
    kind.build()
        .run(sim, RunOptions::steps(PAPER_STEPS))
        .expect("single-device reference run")
}

fn clean_cluster(kind: DeviceKind, nodes: usize, sim: &SimConfig) -> ClusterRecovery {
    let mut cluster = ClusterKind::new(kind, nodes).build();
    run_cluster_supervised(
        &mut cluster,
        sim,
        PAPER_STEPS,
        &SupervisorConfig::default(),
        None,
    )
}

fn killed_cluster(
    kind: DeviceKind,
    nodes: usize,
    victim: usize,
    at_step: u64,
    sim: &SimConfig,
) -> ClusterRecovery {
    let mut cluster = ClusterKind::new(kind, nodes).build();
    cluster.kill_node_at_step(victim, at_step);
    run_cluster_supervised(
        &mut cluster,
        sim,
        PAPER_STEPS,
        &SupervisorConfig::default(),
        None,
    )
}

/// The acceptance predicate: recovery is invisible in the physics.
fn assert_recovery_is_bit_exact(
    rec: &ClusterRecovery,
    clean: &ClusterRecovery,
    single: &DeviceRun,
    ctx: &str,
) {
    assert!(
        rec.recovered_cleanly(),
        "{ctx}: degraded to fallback — {:?}",
        rec.run.report.events
    );
    assert_eq!(
        rec.run.checkpoint.positions, clean.run.checkpoint.positions,
        "{ctx}: positions drifted across recovery"
    );
    assert_eq!(
        rec.run.checkpoint.velocities, clean.run.checkpoint.velocities,
        "{ctx}: velocities drifted across recovery"
    );
    assert_eq!(
        rec.run.energies, clean.run.energies,
        "{ctx}: energies drifted across recovery"
    );
    assert_eq!(
        clean.run.checkpoint.positions, single.checkpoint.positions,
        "{ctx}: fault-free cluster drifted from the single device"
    );
    assert_eq!(
        clean.run.checkpoint.velocities, single.checkpoint.velocities,
        "{ctx}: fault-free cluster velocities drifted from the single device"
    );
    assert_eq!(
        clean.run.energies, single.energies,
        "{ctx}: fault-free cluster energies drifted from the single device"
    );
    // The fault is visible exactly where it should be: the simulated clock.
    assert!(
        rec.run.sim_seconds > clean.run.sim_seconds,
        "{ctx}: a node kill must cost simulated time"
    );
    assert!(
        rec.migrations >= 1,
        "{ctx}: the dead node's domain must move"
    );
    assert!(rec.run.report.restores >= 1, "{ctx}: the kill must restore");
}

#[test]
fn every_device_survives_a_node_kill_bit_exactly() {
    for kind in all_devices() {
        let sim = SimConfig::reduced_lj(PAPER_ATOMS);
        let single = single_run(kind, &sim);
        for nodes in NODE_COUNTS {
            let clean = clean_cluster(kind, nodes, &sim);
            // Kill the middle node mid-run: the domain migrates to the
            // warm spare and the segment replays from the last checkpoint.
            let rec = killed_cluster(kind, nodes, nodes / 2, 5, &sim);
            let ctx = format!("{} on {nodes} nodes", kind.label());
            assert_recovery_is_bit_exact(&rec, &clean, &single, &ctx);
        }
    }
}

/// Exhaustive victim × boundary sweep on the reference device: any single
/// node, killed during any supervision segment, recovers bit-exactly.
/// (The per-device sweep above pins the cross-device story; this one pins
/// the full kill matrix where runs are cheapest.)
#[test]
fn opteron_recovers_from_any_victim_at_any_segment() {
    let sim = SimConfig::reduced_lj(PAPER_ATOMS);
    let single = single_run(DeviceKind::Opteron, &sim);
    // One kill step inside each of the five checkpoint segments
    // (checkpoint_interval = 2 ⇒ segments start at 0, 2, 4, 6, 8).
    let kill_steps: [u64; 5] = [1, 3, 5, 7, 9];
    for nodes in NODE_COUNTS {
        let clean = clean_cluster(DeviceKind::Opteron, nodes, &sim);
        for victim in 0..nodes {
            for at_step in kill_steps {
                let rec = killed_cluster(DeviceKind::Opteron, nodes, victim, at_step, &sim);
                let ctx = format!("opteron {nodes} nodes, victim {victim}, kill step {at_step}");
                assert_recovery_is_bit_exact(&rec, &clean, &single, &ctx);
            }
        }
    }
}

/// With no spare, the domain migrates to a survivor instead; the physics
/// still cannot tell.
#[test]
fn migration_to_a_survivor_is_bit_exact_too() {
    let sim = SimConfig::reduced_lj(PAPER_ATOMS);
    let single = single_run(DeviceKind::Opteron, &sim);
    let clean = {
        let mut cluster = ClusterKind::new(DeviceKind::Opteron, 4)
            .with_spares(0)
            .build();
        run_cluster_supervised(
            &mut cluster,
            &sim,
            PAPER_STEPS,
            &SupervisorConfig::default(),
            None,
        )
    };
    let mut cluster = ClusterKind::new(DeviceKind::Opteron, 4)
        .with_spares(0)
        .build();
    cluster.kill_node_at_step(1, 4);
    let rec = run_cluster_supervised(
        &mut cluster,
        &sim,
        PAPER_STEPS,
        &SupervisorConfig::default(),
        None,
    );
    assert_recovery_is_bit_exact(&rec, &clean, &single, "spareless 4-node cluster");
    assert_eq!(rec.spares_left, 0);
    assert_eq!(rec.alive_nodes, 3, "the survivor absorbs the dead domain");
}

/// Segmented-resume edge cases (ISSUE 7 satellite): the checkpoint seams
/// nobody hits in the happy path.
mod resume_edges {
    use super::*;
    use md_core::checkpoint::SystemCheckpoint;
    use md_core::init;
    use md_core::system::ParticleSystem;

    /// Resuming a cluster from a checkpoint captured at step 0 (before any
    /// device ran) must match the fresh run bitwise on an f64 device — the
    /// capture is an exact image of the initial state.
    #[test]
    fn resume_from_a_step_zero_checkpoint_matches_fresh() {
        let sim = SimConfig::reduced_lj(256);
        let sys: ParticleSystem<f64> = init::initialize(&sim);
        let cp0 = SystemCheckpoint::capture(&sys, 0);
        let fresh = ClusterKind::new(DeviceKind::Opteron, 4)
            .build()
            .run(&sim, RunOptions::steps(6))
            .expect("fresh cluster run");
        let resumed = ClusterKind::new(DeviceKind::Opteron, 4)
            .build()
            .run(&sim, RunOptions::steps(6).from_checkpoint(&cp0))
            .expect("resumed cluster run");
        assert_eq!(fresh.checkpoint.positions, resumed.checkpoint.positions);
        assert_eq!(fresh.checkpoint.velocities, resumed.checkpoint.velocities);
        assert_eq!(fresh.energies, resumed.energies);
        assert_eq!(resumed.checkpoint.step, 6);
    }

    /// A checkpoint taken one step short of the end, resumed for the final
    /// step, lands on the same bits as the unsegmented run — the segment
    /// boundary can sit anywhere, including flush against the final step.
    #[test]
    fn boundary_at_the_final_step_is_transparent() {
        let sim = SimConfig::reduced_lj(256);
        let whole = ClusterKind::new(DeviceKind::Opteron, 4)
            .build()
            .run(&sim, RunOptions::steps(10))
            .expect("whole run");
        let mut cluster = ClusterKind::new(DeviceKind::Opteron, 4).build();
        let first = cluster
            .run(&sim, RunOptions::steps(9))
            .expect("first 9 steps");
        let last = cluster
            .run(
                &sim,
                RunOptions::steps(1).from_checkpoint(&first.checkpoint),
            )
            .expect("final step");
        assert_eq!(whole.checkpoint.positions, last.checkpoint.positions);
        assert_eq!(whole.checkpoint.velocities, last.checkpoint.velocities);
        assert_eq!(last.checkpoint.step, 10);
    }

    /// Supervising for exactly the steps already taken (a resume *at* the
    /// final step) is a no-op in state space: zero further steps requested.
    #[test]
    fn supervising_zero_further_steps_is_a_noop() {
        let sim = SimConfig::reduced_lj(256);
        let mut cluster = ClusterKind::new(DeviceKind::Opteron, 4).build();
        let rec = run_cluster_supervised(&mut cluster, &sim, 0, &SupervisorConfig::default(), None);
        assert_eq!(rec.run.checkpoint.step, 0);
        assert_eq!(rec.run.sim_seconds, 0.0);
        assert!(rec.run.energies.total.is_finite());
        assert!(rec.recovered_cleanly());
    }

    /// Node counts that do not divide the atom count leave a remainder
    /// domain (slab sizes differing by one); partitioning, recovery, and
    /// the physics must not care.
    #[test]
    fn remainder_domains_are_bit_exact_through_recovery() {
        // 2048 % 3 ≠ 0 and 257 is prime: both force uneven slabs.
        for (n_atoms, nodes) in [(2048, 3), (257, 5)] {
            let sim = SimConfig::reduced_lj(n_atoms);
            let single = DeviceKind::Opteron
                .build()
                .run(&sim, RunOptions::steps(PAPER_STEPS))
                .expect("single run");
            let mut clean = ClusterKind::new(DeviceKind::Opteron, nodes).build();
            let clean_rec = run_cluster_supervised(
                &mut clean,
                &sim,
                PAPER_STEPS,
                &SupervisorConfig::default(),
                None,
            );
            let mut faulted = ClusterKind::new(DeviceKind::Opteron, nodes).build();
            faulted.kill_node_at_step(nodes - 1, 5);
            let rec = run_cluster_supervised(
                &mut faulted,
                &sim,
                PAPER_STEPS,
                &SupervisorConfig::default(),
                None,
            );
            let ctx = format!("{n_atoms} atoms on {nodes} nodes");
            assert_recovery_is_bit_exact(&rec, &clean_rec, &single, &ctx);
        }
    }
}

proptest! {
    // Each case replays ~2 supervised cluster runs; keep the count modest
    // (the exhaustive sweeps above carry the deterministic coverage).
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Scripted kills sampled over (nodes, victim, boundary): always
    /// bit-exact, at a smaller workload so the sampler can afford to roam.
    #[test]
    fn any_scripted_kill_recovers_bit_exactly(
        nodes_ix in 0usize..NODE_COUNTS.len(),
        victim_seed in 0usize..8,
        at_step in 0u64..10,
    ) {
        let nodes = NODE_COUNTS[nodes_ix];
        let victim = victim_seed % nodes;
        let sim = SimConfig::reduced_lj(256);
        let steps = PAPER_STEPS;
        let cfg = SupervisorConfig::default();
        let single = DeviceKind::Opteron
            .build()
            .run(&sim, RunOptions::steps(steps))
            .expect("single run");
        let mut clean = ClusterKind::new(DeviceKind::Opteron, nodes).build();
        let clean_rec = run_cluster_supervised(&mut clean, &sim, steps, &cfg, None);
        let mut faulted = ClusterKind::new(DeviceKind::Opteron, nodes).build();
        faulted.kill_node_at_step(victim, at_step);
        let rec = run_cluster_supervised(&mut faulted, &sim, steps, &cfg, None);
        prop_assert!(rec.recovered_cleanly(), "events: {:?}", rec.run.report.events);
        prop_assert_eq!(&rec.run.checkpoint.positions, &clean_rec.run.checkpoint.positions);
        prop_assert_eq!(&rec.run.checkpoint.velocities, &clean_rec.run.checkpoint.velocities);
        prop_assert_eq!(&clean_rec.run.checkpoint.positions, &single.checkpoint.positions);
        prop_assert_eq!(rec.run.energies.total.to_bits(), single.energies.total.to_bits());
        prop_assert!(rec.migrations >= 1);
    }

    /// Seeded node-granularity fault schedules (crashes, partitions, slow
    /// nodes, halo trouble) on top of a scripted kill: whenever the
    /// supervisor reports clean recovery, the trajectory is bit-exact.
    #[test]
    fn seeded_fault_storms_never_corrupt_a_clean_recovery(
        seed in 0u64..1u64 << 32,
        victim_seed in 0usize..8,
    ) {
        let nodes = 4usize;
        let victim = victim_seed % nodes;
        let sim = SimConfig::reduced_lj(256);
        let steps = PAPER_STEPS;
        // Generous attempt budget so modest storms never hit the Opteron
        // fallback (which would change devices, not corrupt physics).
        let cfg = SupervisorConfig { max_attempts: 6, ..SupervisorConfig::default() };
        let mut clean = ClusterKind::new(DeviceKind::Opteron, nodes).build();
        let clean_rec = run_cluster_supervised(&mut clean, &sim, steps, &cfg, None);
        let plan = sim_fault::FaultPlan::new(seed, 0.01);
        let mut stormy = ClusterKind::new(DeviceKind::Opteron, nodes)
            .build_with_node_faults(plan);
        stormy.kill_node_at_step(victim, 5);
        let rec = run_cluster_supervised(&mut stormy, &sim, steps, &cfg, None);
        if rec.recovered_cleanly() {
            prop_assert_eq!(&rec.run.checkpoint.positions, &clean_rec.run.checkpoint.positions);
            prop_assert_eq!(&rec.run.checkpoint.velocities, &clean_rec.run.checkpoint.velocities);
            prop_assert_eq!(
                rec.run.energies.total.to_bits(),
                clean_rec.run.energies.total.to_bits()
            );
            prop_assert!(rec.run.sim_seconds > clean_rec.run.sim_seconds);
        }
    }
}
