//! Cross-crate physics agreement: every simulated device and every host
//! kernel must produce the same trajectory for the same workload — the
//! property that makes the timing comparisons meaningful.
//!
//! Devices are built through [`harness::DeviceKind`] and driven through the
//! unified [`MdDevice`](md_core::device::MdDevice) run API.

use cell_be::{SpawnPolicy, SpeKernelVariant};
use harness::{DeviceKind, GpuModel};
use md_core::device::{DeviceRun, RunOptions};
use md_core::forces::{AllPairsFullKernel, ForceKernel};
use md_core::observables::EnergyReport;
use md_core::params::SimConfig;
use md_core::system::ParticleSystem;
use md_core::verlet::VelocityVerlet;
use mta::ThreadingMode;

fn reference<T: vecmath::Real>(sim: &SimConfig, steps: usize) -> EnergyReport {
    let mut sys: ParticleSystem<T> = md_core::init::initialize(sim);
    let params = sim.substrate::<T>();
    let vv = VelocityVerlet::new(T::from_f64(sim.dt));
    let mut kernel = AllPairsFullKernel;
    let mut pe = kernel.compute(&mut sys, &params);
    for _ in 0..steps {
        pe = vv.step(&mut sys, &mut kernel, &params);
    }
    EnergyReport::measure(&sys, pe.to_f64())
}

fn device_run(kind: DeviceKind, sim: &SimConfig, steps: usize) -> DeviceRun {
    kind.build()
        .run(sim, RunOptions::steps(steps))
        .expect("paper workloads succeed")
}

const N: usize = 500;
const STEPS: usize = 5;

#[test]
fn opteron_matches_f64_reference() {
    let sim = SimConfig::reduced_lj(N);
    let run = device_run(DeviceKind::Opteron, &sim, STEPS);
    let expect = reference::<f64>(&sim, STEPS);
    assert!(
        (run.energies.total - expect.total).abs() < 1e-9 * expect.total.abs(),
        "{} vs {}",
        run.energies.total,
        expect.total
    );
}

#[test]
fn mta_matches_f64_reference() {
    let sim = SimConfig::reduced_lj(N);
    let kind = DeviceKind::Mta {
        mode: ThreadingMode::FullyMultithreaded,
    };
    let run = device_run(kind, &sim, STEPS);
    let expect = reference::<f64>(&sim, STEPS);
    assert!(
        (run.energies.total - expect.total).abs() < 1e-9 * expect.total.abs(),
        "{} vs {}",
        run.energies.total,
        expect.total
    );
}

#[test]
fn cell_matches_f32_reference() {
    let sim = SimConfig::reduced_lj(N);
    let run = device_run(DeviceKind::cell_best(), &sim, STEPS);
    let expect = reference::<f32>(&sim, STEPS);
    assert!(
        (run.energies.total - expect.total).abs() < 2e-3 * expect.total.abs(),
        "{} vs {}",
        run.energies.total,
        expect.total
    );
}

#[test]
fn gpu_matches_f32_reference() {
    let sim = SimConfig::reduced_lj(N);
    let kind = DeviceKind::Gpu {
        model: GpuModel::GeForce7900Gtx,
    };
    let run = device_run(kind, &sim, STEPS);
    let expect = reference::<f32>(&sim, STEPS);
    assert!(
        (run.energies.total - expect.total).abs() < 2e-3 * expect.total.abs(),
        "{} vs {}",
        run.energies.total,
        expect.total
    );
}

#[test]
fn all_devices_agree_with_each_other() {
    let sim = SimConfig::reduced_lj(N);
    let opteron = device_run(DeviceKind::Opteron, &sim, STEPS).energies.total;
    let cell = device_run(DeviceKind::cell_best(), &sim, STEPS)
        .energies
        .total;
    let gpu = device_run(
        DeviceKind::Gpu {
            model: GpuModel::GeForce7900Gtx,
        },
        &sim,
        STEPS,
    )
    .energies
    .total;
    let mta = device_run(
        DeviceKind::Mta {
            mode: ThreadingMode::FullyMultithreaded,
        },
        &sim,
        STEPS,
    )
    .energies
    .total;
    for (name, e, tol) in [("cell", cell, 2e-3), ("gpu", gpu, 2e-3), ("mta", mta, 1e-9)] {
        let err = ((e - opteron) / opteron).abs();
        assert!(err < tol, "{name} diverged from opteron by {err:.2e}");
    }
}

#[test]
fn every_spe_variant_and_spawn_policy_gives_same_physics() {
    let sim = SimConfig::reduced_lj(256);
    let expect = reference::<f32>(&sim, 3);
    for variant in SpeKernelVariant::ALL {
        for policy in [SpawnPolicy::RespawnEveryStep, SpawnPolicy::LaunchOnce] {
            for n_spes in [1usize, 3, 8] {
                let kind = DeviceKind::Cell {
                    n_spes,
                    policy,
                    variant,
                };
                let run = device_run(kind, &sim, 3);
                let err = ((run.energies.total - expect.total) / expect.total).abs();
                assert!(
                    err < 2e-3,
                    "{variant:?}/{policy:?}/{n_spes} SPEs diverged: {err:.2e}"
                );
            }
        }
    }
}

#[test]
fn device_timings_are_positive_and_finite() {
    let sim = SimConfig::reduced_lj(256);
    let kinds = [
        DeviceKind::Opteron,
        DeviceKind::cell_best(),
        DeviceKind::Gpu {
            model: GpuModel::GeForce7900Gtx,
        },
        DeviceKind::Mta {
            mode: ThreadingMode::FullyMultithreaded,
        },
    ];
    for kind in kinds {
        let t = device_run(kind, &sim, 2).sim_seconds;
        assert!(
            t.is_finite() && t > 0.0,
            "{} produced runtime {t}",
            kind.label()
        );
    }
}
