//! Cross-crate physics agreement: every simulated device and every host
//! kernel must produce the same trajectory for the same workload — the
//! property that makes the timing comparisons meaningful.

use cell_be::{CellBeDevice, CellRunConfig, SpawnPolicy, SpeKernelVariant};
use gpu::GpuMdSimulation;
use md_core::forces::{AllPairsFullKernel, ForceKernel};
use md_core::observables::EnergyReport;
use md_core::params::SimConfig;
use md_core::system::ParticleSystem;
use md_core::verlet::VelocityVerlet;
use mta::{MtaMdSimulation, ThreadingMode};
use opteron::OpteronCpu;

fn reference<T: vecmath::Real>(sim: &SimConfig, steps: usize) -> EnergyReport {
    let mut sys: ParticleSystem<T> = md_core::init::initialize(sim);
    let params = sim.lj_params::<T>();
    let vv = VelocityVerlet::new(T::from_f64(sim.dt));
    let mut kernel = AllPairsFullKernel;
    let mut pe = kernel.compute(&mut sys, &params);
    for _ in 0..steps {
        pe = vv.step(&mut sys, &mut kernel, &params);
    }
    EnergyReport::measure(&sys, pe.to_f64())
}

const N: usize = 500;
const STEPS: usize = 5;

#[test]
fn opteron_matches_f64_reference() {
    let sim = SimConfig::reduced_lj(N);
    let run = OpteronCpu::paper_reference().run_md(&sim, STEPS);
    let expect = reference::<f64>(&sim, STEPS);
    assert!(
        (run.energies.total - expect.total).abs() < 1e-9 * expect.total.abs(),
        "{} vs {}",
        run.energies.total,
        expect.total
    );
}

#[test]
fn mta_matches_f64_reference() {
    let sim = SimConfig::reduced_lj(N);
    let run = MtaMdSimulation::paper_mta2().run_md(&sim, STEPS, ThreadingMode::FullyMultithreaded);
    let expect = reference::<f64>(&sim, STEPS);
    assert!(
        (run.energies.total - expect.total).abs() < 1e-9 * expect.total.abs(),
        "{} vs {}",
        run.energies.total,
        expect.total
    );
}

#[test]
fn cell_matches_f32_reference() {
    let sim = SimConfig::reduced_lj(N);
    let run = CellBeDevice::paper_blade()
        .run_md(&sim, STEPS, CellRunConfig::best())
        .unwrap();
    let expect = reference::<f32>(&sim, STEPS);
    assert!(
        (run.energies.total - expect.total).abs() < 2e-3 * expect.total.abs(),
        "{} vs {}",
        run.energies.total,
        expect.total
    );
}

#[test]
fn gpu_matches_f32_reference() {
    let sim = SimConfig::reduced_lj(N);
    let run = GpuMdSimulation::geforce_7900gtx().run_md(&sim, STEPS);
    let expect = reference::<f32>(&sim, STEPS);
    assert!(
        (run.energies.total - expect.total).abs() < 2e-3 * expect.total.abs(),
        "{} vs {}",
        run.energies.total,
        expect.total
    );
}

#[test]
fn all_devices_agree_with_each_other() {
    let sim = SimConfig::reduced_lj(N);
    let opteron = OpteronCpu::paper_reference()
        .run_md(&sim, STEPS)
        .energies
        .total;
    let cell = CellBeDevice::paper_blade()
        .run_md(&sim, STEPS, CellRunConfig::best())
        .unwrap()
        .energies
        .total;
    let gpu = GpuMdSimulation::geforce_7900gtx()
        .run_md(&sim, STEPS)
        .energies
        .total;
    let mta = MtaMdSimulation::paper_mta2()
        .run_md(&sim, STEPS, ThreadingMode::FullyMultithreaded)
        .energies
        .total;
    for (name, e, tol) in [("cell", cell, 2e-3), ("gpu", gpu, 2e-3), ("mta", mta, 1e-9)] {
        let err = ((e - opteron) / opteron).abs();
        assert!(err < tol, "{name} diverged from opteron by {err:.2e}");
    }
}

#[test]
fn every_spe_variant_and_spawn_policy_gives_same_physics() {
    let sim = SimConfig::reduced_lj(256);
    let device = CellBeDevice::paper_blade();
    let expect = reference::<f32>(&sim, 3);
    for variant in SpeKernelVariant::ALL {
        for policy in [SpawnPolicy::RespawnEveryStep, SpawnPolicy::LaunchOnce] {
            for n_spes in [1usize, 3, 8] {
                let run = device
                    .run_md(
                        &sim,
                        3,
                        CellRunConfig {
                            n_spes,
                            policy,
                            variant,
                        },
                    )
                    .unwrap();
                let err = ((run.energies.total - expect.total) / expect.total).abs();
                assert!(
                    err < 2e-3,
                    "{variant:?}/{policy:?}/{n_spes} SPEs diverged: {err:.2e}"
                );
            }
        }
    }
}

#[test]
fn device_timings_are_positive_and_finite() {
    let sim = SimConfig::reduced_lj(256);
    let runs = [
        OpteronCpu::paper_reference().run_md(&sim, 2).sim_seconds,
        CellBeDevice::paper_blade()
            .run_md(&sim, 2, CellRunConfig::best())
            .unwrap()
            .sim_seconds,
        GpuMdSimulation::geforce_7900gtx()
            .run_md(&sim, 2)
            .sim_seconds,
        MtaMdSimulation::paper_mta2()
            .run_md(&sim, 2, ThreadingMode::FullyMultithreaded)
            .sim_seconds,
    ];
    for (i, t) in runs.iter().enumerate() {
        assert!(t.is_finite() && *t > 0.0, "device {i} produced runtime {t}");
    }
}
