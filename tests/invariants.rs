//! Property-based invariants spanning crates: physical conservation laws and
//! simulator consistency under randomized workloads.

use harness::{DeviceKind, GpuModel};
use md_core::device::RunOptions;
use md_core::forces::{AllPairsFullKernel, AllPairsHalfKernel, ForceKernel};
use md_core::params::SimConfig;
use md_core::prelude::*;
use proptest::prelude::*;
use vecmath::Vec3;

/// Small, fast workloads with randomized seeds/densities/temperatures.
fn workload_strategy() -> impl Strategy<Value = SimConfig> {
    // Density capped at 0.84: for N = 108 and r_c = 2.5σ the minimum-image
    // convention requires L/2 = (N/ρ)^⅓ / 2 > r_c, i.e. ρ < 108/125.
    (0u64..1000, 0.4f64..0.84, 0.3f64..1.5).prop_map(|(seed, density, temperature)| {
        SimConfig::reduced_lj(108)
            .with_seed(seed)
            .with_density(density)
            .with_temperature(temperature)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// NVE total energy is conserved (shifted potential, bounded drift).
    /// The timestep is tightened below the production default because the
    /// randomized workloads include hot (T* up to 1.5), fast-moving states
    /// where dt = 0.005 genuinely under-resolves collisions.
    #[test]
    fn energy_conservation(cfg in workload_strategy()) {
        let cfg = cfg.with_dt(0.002);
        let mut sys: ParticleSystem<f64> = md_core::init::initialize(&cfg);
        let params = Substrate::from_lj(cfg.lj_params::<f64>().shifted());
        let vv = VelocityVerlet::new(cfg.dt);
        let mut kernel = AllPairsHalfKernel;
        let pe0 = kernel.compute(&mut sys, &params);
        let e0 = pe0 + sys.kinetic_energy();
        let mut pe = pe0;
        for _ in 0..50 {
            pe = vv.step(&mut sys, &mut kernel, &params);
        }
        let e1 = pe + sys.kinetic_energy();
        let drift = ((e1 - e0) / e0).abs();
        prop_assert!(drift < 2e-2, "drift {drift:.2e} for {cfg:?}");
        prop_assert!(sys.is_finite());
    }

    /// Newton's third law: net force is zero for any configuration.
    #[test]
    fn net_force_zero(cfg in workload_strategy()) {
        let mut sys: ParticleSystem<f64> = md_core::init::initialize(&cfg);
        let params = cfg.substrate::<f64>();
        AllPairsFullKernel.compute(&mut sys, &params);
        let mut net = Vec3::zero();
        for a in &sys.accelerations {
            net += *a;
        }
        prop_assert!(net.norm() < 1e-9, "net acceleration {net:?}");
    }

    /// Linear momentum is conserved across dynamics.
    #[test]
    fn momentum_conservation(cfg in workload_strategy()) {
        let mut sim = Simulation::<f64>::prepare(cfg);
        let p0 = sim.system.total_momentum();
        sim.run(30);
        let p1 = sim.system.total_momentum();
        prop_assert!((p1 - p0).norm() < 1e-8, "momentum moved {:?} -> {:?}", p0, p1);
    }

    /// All force kernels agree on any valid configuration.
    #[test]
    fn kernels_agree(cfg in workload_strategy()) {
        let sys: ParticleSystem<f64> = md_core::init::initialize(&cfg);
        let params = cfg.substrate::<f64>();
        let mut kernels: Vec<(&str, Box<dyn ForceKernel<f64>>)> = vec![
            ("half", Box::new(AllPairsHalfKernel)),
            ("full", Box::new(AllPairsFullKernel)),
            ("neighbor", Box::new(NeighborListKernel::with_default_skin())),
            ("cell", Box::new(CellListKernel::new())),
            ("rayon", Box::new(RayonKernel)),
        ];
        let mut reference: Option<(f64, Vec<Vec3<f64>>)> = None;
        for (name, kernel) in kernels.iter_mut() {
            let mut s = sys.clone();
            let pe = kernel.compute(&mut s, &params);
            match &reference {
                None => reference = Some((pe, s.accelerations.clone())),
                Some((pe0, acc0)) => {
                    prop_assert!(
                        (pe - pe0).abs() < 1e-8 * pe0.abs().max(1.0),
                        "{name}: PE {pe} vs {pe0}"
                    );
                    for (a, b) in s.accelerations.iter().zip(acc0) {
                        prop_assert!((*a - *b).norm() < 1e-8, "{name}: {a:?} vs {b:?}");
                    }
                }
            }
        }
    }

    /// The Cell device's f32 physics stays within single-precision distance
    /// of the f64 reference trajectory for random seeds.
    #[test]
    fn cell_f32_tracks_f64(seed in 0u64..200) {
        let cfg = SimConfig::reduced_lj(108).with_seed(seed);
        let run = DeviceKind::cell_best()
            .build()
            .run(&cfg, RunOptions::steps(2))
            .unwrap();
        let mut sim64 = Simulation::<f64>::prepare(cfg);
        let r64 = sim64.run(2);
        let err = ((run.energies.total - r64.total) / r64.total).abs();
        prop_assert!(err < 5e-3, "f32 deviation {err:.2e}");
    }

    /// Simulated runtimes are monotone in workload size for every device.
    #[test]
    fn runtimes_monotone_in_n(seed in 0u64..50) {
        let small = SimConfig::reduced_lj(128).with_seed(seed);
        let large = SimConfig::reduced_lj(256).with_seed(seed);
        for kind in [DeviceKind::Opteron, DeviceKind::Gpu { model: GpuModel::GeForce7900Gtx }] {
            let t_small = kind.build().run(&small, RunOptions::steps(1)).unwrap().sim_seconds;
            let t_large = kind.build().run(&large, RunOptions::steps(1)).unwrap().sim_seconds;
            prop_assert!(t_large > t_small, "{} not monotone", kind.label());
        }
    }
}
