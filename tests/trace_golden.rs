//! Golden-file and structural tests for the Chrome trace-event export.
//!
//! Three guarantees:
//!
//! 1. **Byte-stable output** — a fixed synthetic timeline (spans + a hazard
//!    instant) renders exactly the committed golden file, so the export
//!    format cannot drift silently.
//! 2. **Valid JSON** — the export of a real traced Cell run parses with a
//!    strict (dependency-free) JSON reader, not just a brace counter.
//! 3. **Well-nested spans** — on every track, any two spans are either
//!    disjoint or one contains the other; Chrome's flame view requires this
//!    to render `X` events on one thread without artifacts.

use mdea_trace::{TraceTrack, Tracer};

// ---------------------------------------------------------------------------
// A minimal strict JSON validator (no deps). Accepts exactly the RFC 8259
// grammar subset the tracer emits: objects, arrays, strings with escapes,
// numbers, true/false/null.
// ---------------------------------------------------------------------------

struct Json<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Json<'a> {
    fn validate(text: &'a str) -> Result<(), String> {
        let mut p = Json {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad object sep {other:?} at {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad array sep {other:?} at {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = self.peek().ok_or("eof in escape")?;
                    self.i += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.peek().ok_or("eof in \\u")?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("bad \\u digit at {}", self.i));
                                }
                                self.i += 1;
                            }
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                0x00..=0x1f => return Err(format!("raw control char at {}", self.i - 1)),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let start = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > start
        };
        if !digits(self) {
            return Err(format!("expected digits at {}", self.i));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(format!("expected fraction digits at {}", self.i));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(format!("expected exponent digits at {}", self.i));
            }
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at {}", self.i))
        }
    }
}

/// On each track, every pair of spans must be disjoint or properly nested.
fn assert_well_nested(tracer: &Tracer) {
    let spans = tracer.spans();
    for (idx, a) in spans.iter().enumerate() {
        for b in &spans[idx + 1..] {
            if a.track != b.track {
                continue;
            }
            let (a0, a1) = (a.start_s, a.start_s + a.duration_s);
            let (b0, b1) = (b.start_s, b.start_s + b.duration_s);
            let eps = 1e-12 * a1.max(b1).max(1.0);
            let disjoint = a1 <= b0 + eps || b1 <= a0 + eps;
            let a_in_b = b0 <= a0 + eps && a1 <= b1 + eps;
            let b_in_a = a0 <= b0 + eps && b1 <= a1 + eps;
            assert!(
                disjoint || a_in_b || b_in_a,
                "partially overlapping spans on track {:?}: {:?} [{a0}, {a1}) vs {:?} [{b0}, {b1})",
                a.track,
                a.name,
                b.name
            );
        }
    }
}

fn synthetic_timeline() -> Tracer {
    let mut t = Tracer::new();
    t.name_track(TraceTrack(0), "PPE");
    t.name_track(TraceTrack(1), "SPE 0");
    t.span(
        TraceTrack(0),
        "spawn SPE 0 thread",
        "thread",
        0.0,
        0.000_125,
    );
    t.span(
        TraceTrack(1),
        "dma-get positions",
        "dma",
        0.000_125,
        0.000_25,
    );
    t.span(TraceTrack(1), "accel kernel", "compute", 0.000_375, 0.001);
    t.span(TraceTrack(0), "integrate: kick", "ppe", 0.001_375, 0.000_5);
    t.instant(
        TraceTrack(1),
        "hazard: read-before-get at offset 4096",
        "read-before-get",
        0.000_375,
    );
    t
}

#[test]
fn synthetic_timeline_matches_golden_file() {
    let json = synthetic_timeline().to_chrome_json();
    let golden = include_str!("golden/trace_small.json");
    assert_eq!(
        json, golden,
        "trace export drifted from tests/golden/trace_small.json — \
         if the change is intentional, update the golden file"
    );
}

#[test]
fn golden_file_matches_regardless_of_insertion_order() {
    // Record the same timeline in a scrambled order: the export sorts by
    // (timestamp, track, kind), so the bytes must still match the golden.
    let mut t = Tracer::new();
    t.name_track(TraceTrack(0), "PPE");
    t.name_track(TraceTrack(1), "SPE 0");
    t.instant(
        TraceTrack(1),
        "hazard: read-before-get at offset 4096",
        "read-before-get",
        0.000_375,
    );
    t.span(TraceTrack(0), "integrate: kick", "ppe", 0.001_375, 0.000_5);
    t.span(TraceTrack(1), "accel kernel", "compute", 0.000_375, 0.001);
    t.span(
        TraceTrack(1),
        "dma-get positions",
        "dma",
        0.000_125,
        0.000_25,
    );
    t.span(
        TraceTrack(0),
        "spawn SPE 0 thread",
        "thread",
        0.0,
        0.000_125,
    );
    let golden = include_str!("golden/trace_small.json");
    assert_eq!(
        t.to_chrome_json(),
        golden,
        "export must be insertion-order-independent"
    );
}

#[test]
fn counter_events_keep_the_export_valid_and_sorted() {
    let mut t = synthetic_timeline();
    t.counter(TraceTrack(1), "spe.dma.bytes", "perf", 0.000_375, 4096.0);
    t.counter(TraceTrack(1), "spe.dma.bytes", "perf", 0.001_375, 8192.0);
    let json = t.to_chrome_json();
    Json::validate(&json).expect("trace with counters must parse");
    assert!(json.contains("\"ph\":\"C\""), "{json}");
    assert!(json.contains("\"args\":{\"value\":4096}"), "{json}");
    // The first counter sample shares ts=375 µs with the accel span and the
    // hazard instant: span < instant < counter at equal (timestamp, track).
    let accel = json.find("accel kernel").expect("span present");
    let hazard = json.find("hazard:").expect("instant present");
    let ctr = json.find("spe.dma.bytes").expect("counter present");
    assert!(accel < hazard && hazard < ctr, "{json}");
}

/// A deterministic monitor exercising both `"C"`-export paths: sampled
/// counters (one event per sample) and an unsampled counter (a single point
/// at t = 0 carrying the final value).
fn synthetic_monitor() -> sim_perf::PerfMonitor {
    let mut m = sim_perf::PerfMonitor::new();
    let bytes = m.register("spe.dma.bytes", "bytes");
    let fetches = m.register("gpu.tex.fetches", "ops");
    m.add(bytes, 4096.0);
    m.add_u64(fetches, 100);
    m.sample_all(0.000_25);
    m.add(bytes, 4096.0);
    m.sample_all(0.000_75);
    let unsampled = m.register("ppe.mailbox.round_trips", "events");
    m.add_u64(unsampled, 3);
    m
}

#[test]
fn perf_counter_export_matches_golden_file() {
    let mut t = Tracer::new();
    t.name_track(TraceTrack(90), "perf");
    synthetic_monitor().export_to_tracer(&mut t, TraceTrack(90));
    let json = t.to_chrome_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/perf_counters.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden");
    }
    let golden = std::fs::read_to_string(path).expect("read tests/golden/perf_counters.json");
    assert_eq!(
        json, golden,
        "perf counter export drifted from tests/golden/perf_counters.json — \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
    Json::validate(&json).expect("counter export must parse");
}

#[test]
fn golden_file_is_strictly_valid_json() {
    let golden = include_str!("golden/trace_small.json");
    Json::validate(golden).expect("golden trace must parse");
    // Sanity: the hazard instant survived with its scope marker.
    assert!(golden.contains("\"ph\":\"i\""));
    assert!(golden.contains("\"s\":\"t\""));
}

#[test]
fn traced_cell_run_is_valid_and_well_nested() {
    use cell_be::{CellBeDevice, CellRunConfig};
    let sim = md_core::params::SimConfig::reduced_lj(256);
    let device = CellBeDevice::paper_blade();
    let mut tracer = Tracer::new();
    device
        .run_md_traced(&sim, 3, CellRunConfig::best(), &mut tracer)
        .expect("traced run");
    assert!(!tracer.is_empty());
    assert_well_nested(&tracer);
    Json::validate(&tracer.to_chrome_json()).expect("device trace must parse");
}

#[test]
fn hazard_instants_keep_the_export_valid() {
    use cell_be::hazard::{Dir, HazardChecker};
    use cell_be::LsRegion;
    let mut tracer = synthetic_timeline();
    let mut hz = HazardChecker::new();
    hz.dma_issue(
        9,
        Dir::Put,
        LsRegion {
            offset: 0,
            len: 256,
        },
    );
    hz.compute_write(LsRegion {
        offset: 128,
        len: 16,
    });
    assert_eq!(hz.emit_to_tracer(&mut tracer, TraceTrack(1), 0.002), 1);
    let json = tracer.to_chrome_json();
    Json::validate(&json).expect("trace with hazards must parse");
    assert!(json.contains("write-before-put"), "{json}");
}

#[test]
fn escaped_names_still_produce_valid_json() {
    let mut t = Tracer::new();
    t.name_track(TraceTrack(0), "tab\tquote\"backslash\\");
    t.span(TraceTrack(0), "newline\nname", "cat", 0.0, 1e-6);
    t.instant(TraceTrack(0), "ctrl\u{1}char", "cat", 2e-6);
    Json::validate(&t.to_chrome_json()).expect("escaping must cover control chars");
}
