//! Physics-once execution gate (DESIGN.md §17) at paper scale
//! (2048 atoms, 10 steps).
//!
//! The contract under test: every device's eval memo — the shared wide
//! evaluator that computes each evaluation's physics once and replays the
//! cost interpretation — is purely a host wall-clock knob. Positions,
//! velocities, energies, simulated seconds, time attribution, perf
//! counters, and fault ledgers are bit-identical between a memoized run
//! (the default, [`DeviceKind::build`]) and the interpretive per-pair
//! baseline ([`DeviceKind::build_baseline`]), at every host thread count,
//! under fault injection, and across scenario flavors (Morse/NVT, mixed
//! precision). f32 devices widen losslessly to f64 at checkpoint capture,
//! so [`SystemCheckpoint`](md_core::checkpoint::SystemCheckpoint) equality
//! is a bitwise trajectory comparison.

use harness::{DeviceKind, GpuModel};
use md_core::device::{DeviceRun, MdDevice, PerfMonitor, RunOptions};
use md_core::params::SimConfig;
use md_core::scenario::{PrecisionPolicy, ScenarioSpec};
use mta::ThreadingMode;

const PAPER_ATOMS: usize = 2048;
const PAPER_STEPS: usize = 10;
/// Thread counts to pit against the serial memo-off baseline. 1 exercises
/// the `from_threads` collapse to the serial path; 8 oversubscribes most
/// hosts, which must change nothing.
const THREADS: [usize; 3] = [1, 2, 8];

fn all_devices() -> [DeviceKind; 4] {
    [
        DeviceKind::Opteron,
        DeviceKind::cell_best(),
        DeviceKind::Gpu {
            model: GpuModel::GeForce7900Gtx,
        },
        DeviceKind::Mta {
            mode: ThreadingMode::FullyMultithreaded,
        },
    ]
}

fn run_with(
    mut dev: Box<dyn MdDevice>,
    sim: &SimConfig,
    steps: usize,
    threads: usize,
) -> (DeviceRun, Vec<(String, f64)>) {
    let mut perf = PerfMonitor::new();
    let run = dev
        .run(
            sim,
            RunOptions::steps(steps)
                .with_perf(&mut perf)
                .with_host_threads(threads),
        )
        .expect("run succeeds");
    let counters = perf
        .counters()
        .iter()
        .map(|c| (c.name.clone(), c.value()))
        .collect();
    (run, counters)
}

/// Every observable of the run must be *equal*, not merely close.
fn assert_bitwise_equal(baseline: &DeviceRun, memo: &DeviceRun, ctx: &str) {
    assert_eq!(
        baseline.sim_seconds.to_bits(),
        memo.sim_seconds.to_bits(),
        "{ctx}: simulated seconds drifted"
    );
    assert_eq!(baseline.energies, memo.energies, "{ctx}: energies drifted");
    assert_eq!(
        baseline.checkpoint, memo.checkpoint,
        "{ctx}: trajectory drifted"
    );
    assert_eq!(
        baseline.attribution, memo.attribution,
        "{ctx}: time attribution drifted"
    );
    assert_eq!(
        baseline.derived, memo.derived,
        "{ctx}: derived metrics drifted"
    );
    assert_eq!(
        baseline.ops.to_bits(),
        memo.ops.to_bits(),
        "{ctx}: ops drifted"
    );
    assert_eq!(
        baseline.bytes_moved.to_bits(),
        memo.bytes_moved.to_bits(),
        "{ctx}: bytes_moved drifted"
    );
    assert_eq!(baseline.faults, memo.faults, "{ctx}: fault ledger drifted");
}

#[test]
fn memoized_runs_match_interpretive_baseline_bitwise() {
    let sim = SimConfig::reduced_lj(PAPER_ATOMS);
    for kind in all_devices() {
        let (base, base_counters) = run_with(kind.build_baseline(), &sim, PAPER_STEPS, 1);
        assert!(base.sim_seconds > 0.0, "{}", kind.label());
        for t in THREADS {
            let ctx = format!("{} memo-on at {t} host threads", kind.label());
            let (memo, memo_counters) = run_with(kind.build(), &sim, PAPER_STEPS, t);
            assert_bitwise_equal(&base, &memo, &ctx);
            assert_eq!(base_counters, memo_counters, "{ctx}: counters drifted");
        }
    }
}

/// Scenario flavors exercise every branch of the shared evaluator: the
/// Morse/NVT substrate (different pair expression, thermostat pass) and the
/// mixed-precision policy (f64 accumulators on the f32 devices).
#[test]
fn scenario_flavors_match_bitwise() {
    for spec in [
        ScenarioSpec::morse_nvt(),
        ScenarioSpec::default().with_precision(PrecisionPolicy::MixedF64Accumulate),
    ] {
        let sim = SimConfig::reduced_lj(512).with_scenario(spec);
        for kind in all_devices() {
            let ctx = format!("{} @ {}", kind.label(), sim.scenario_token());
            let (base, base_counters) = run_with(kind.build_baseline(), &sim, 5, 1);
            let (memo, memo_counters) = run_with(kind.build(), &sim, 5, 2);
            assert_bitwise_equal(&base, &memo, &ctx);
            assert_eq!(base_counters, memo_counters, "{ctx}: counters drifted");
        }
    }
}

/// Fault schedules key off the simulated run structure (eval/lane/site),
/// which the memo never changes: the injected-fault ledger and the
/// recovered trajectory must be identical with the memo on or off.
#[cfg(feature = "fault-inject")]
#[test]
fn fault_injected_memoized_runs_match_baseline() {
    use sim_fault::FaultPlan;
    let sim = SimConfig::reduced_lj(PAPER_ATOMS);
    for kind in all_devices() {
        let plan = FaultPlan::new(2024, 0.02);
        let ctx = format!("faulted {}", kind.label());
        let (base, base_counters) =
            run_with(kind.build_baseline_faulted(plan), &sim, PAPER_STEPS, 1);
        let (memo, memo_counters) = run_with(kind.build_faulted(plan), &sim, PAPER_STEPS, 2);
        assert_bitwise_equal(&base, &memo, &ctx);
        assert_eq!(base_counters, memo_counters, "{ctx}: counters drifted");
        assert!(
            memo.faults.injected > 0,
            "{}: plan injected nothing — the comparison is vacuous",
            kind.label()
        );
    }
}
