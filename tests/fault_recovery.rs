//! Fault-injection + recovery invariants at paper scale (2048 atoms, 10
//! steps), compiled only with `--features fault-inject`.
//!
//! The contract under test (DESIGN.md §9): injected faults may only add
//! *simulated* recovery time. Trajectories — positions, velocities,
//! accelerations, energies — must be bit-identical to the fault-free run on
//! the same device, and every paper experiment must complete under faults
//! via retry/checkpoint/fallback without panicking.
//!
//! Every device is constructed through [`DeviceKind`] and driven through the
//! unified [`MdDevice`](md_core::device::MdDevice) run API; trajectory
//! equality is asserted on the returned [`SystemCheckpoint`] (f32 devices
//! widen losslessly to f64 at capture, so the comparison stays bitwise).

#![cfg(feature = "fault-inject")]

use harness::experiments::faulted::FaultedExperiments;
use harness::{run_supervised, DeviceKind, GpuModel, SupervisorConfig};
use md_core::device::{DeviceRun, RunOptions};
use md_core::params::SimConfig;
use mta::ThreadingMode;
use proptest::prelude::*;
use sim_fault::FaultPlan;

const PAPER_ATOMS: usize = 2048;
const PAPER_STEPS: usize = 10;

fn paper_sim() -> SimConfig {
    SimConfig::reduced_lj(PAPER_ATOMS)
}

fn clean_run(kind: DeviceKind, sim: &SimConfig, steps: usize) -> DeviceRun {
    kind.build()
        .run(sim, RunOptions::steps(steps))
        .expect("fault-free paper workloads succeed")
}

fn faulted_run(kind: DeviceKind, plan: FaultPlan, sim: &SimConfig, steps: usize) -> DeviceRun {
    kind.build_faulted(plan)
        .run(sim, RunOptions::steps(steps))
        .expect("the injected rate stays within the retry budget")
}

/// Bitwise trajectory equality between two run checkpoints.
fn assert_identical(a: &DeviceRun, b: &DeviceRun) {
    assert_eq!(
        a.checkpoint.positions, b.checkpoint.positions,
        "positions must be bit-identical"
    );
    assert_eq!(
        a.checkpoint.velocities, b.checkpoint.velocities,
        "velocities must be bit-identical"
    );
    assert_eq!(
        a.checkpoint.accelerations, b.checkpoint.accelerations,
        "accelerations must be bit-identical"
    );
}

#[test]
fn cell_paper_workload_recovers_bit_identically() {
    let sim = paper_sim();
    let kind = DeviceKind::cell_best();
    let clean = clean_run(kind, &sim, PAPER_STEPS);
    let faulty = faulted_run(kind, FaultPlan::new(2024, 0.02), &sim, PAPER_STEPS);

    assert!(
        faulty.faults.any(),
        "seed 2024 @ 2% must fire at least once"
    );
    assert_identical(&clean, &faulty);
    assert_eq!(clean.energies.total, faulty.energies.total);
    assert!(
        faulty.sim_seconds > clean.sim_seconds,
        "recovery must cost simulated time: {} !> {}",
        faulty.sim_seconds,
        clean.sim_seconds
    );
}

#[test]
fn gpu_paper_workload_recovers_bit_identically() {
    let sim = paper_sim();
    let kind = DeviceKind::Gpu {
        model: GpuModel::GeForce7900Gtx,
    };
    let clean = clean_run(kind, &sim, PAPER_STEPS);
    let faulty = faulted_run(kind, FaultPlan::new(7, 0.1), &sim, PAPER_STEPS);

    assert!(faulty.faults.any());
    assert_identical(&clean, &faulty);
    assert_eq!(clean.energies.total, faulty.energies.total);
    assert!(faulty.sim_seconds > clean.sim_seconds);
}

#[test]
fn mta_paper_workload_recovers_bit_identically() {
    let sim = paper_sim();
    let kind = DeviceKind::Mta {
        mode: ThreadingMode::FullyMultithreaded,
    };
    let clean = clean_run(kind, &sim, PAPER_STEPS);
    let faulty = faulted_run(kind, FaultPlan::new(5, 0.15), &sim, PAPER_STEPS);

    assert!(faulty.faults.any());
    assert_identical(&clean, &faulty);
    assert_eq!(clean.energies.total, faulty.energies.total);
    assert!(faulty.sim_seconds > clean.sim_seconds);
}

#[test]
fn opteron_paper_workload_recovers_bit_identically() {
    let sim = paper_sim();
    let clean = clean_run(DeviceKind::Opteron, &sim, PAPER_STEPS);
    let faulty = faulted_run(
        DeviceKind::Opteron,
        FaultPlan::new(17, 0.2),
        &sim,
        PAPER_STEPS,
    );

    assert!(faulty.faults.any());
    assert_identical(&clean, &faulty);
    assert_eq!(clean.energies.total, faulty.energies.total);
    assert!(faulty.sim_seconds > clean.sim_seconds);
}

/// The headline acceptance check: a supervised faulted run reproduces the
/// fault-free trajectory bit for bit while its simulated runtime is strictly
/// larger (retries and backoff are on the clock).
#[test]
fn supervised_recovery_is_bit_identical_and_strictly_slower() {
    let sim = paper_sim();
    let cfg = SupervisorConfig::default();

    let mut clean_dev = DeviceKind::cell_best().build();
    let clean = run_supervised(clean_dev.as_mut(), &sim, PAPER_STEPS, &cfg, None);

    let mut faulty_dev = DeviceKind::cell_best().build_faulted(FaultPlan::new(41, 0.02));
    let faulty = run_supervised(faulty_dev.as_mut(), &sim, PAPER_STEPS, &cfg, None);

    assert!(!faulty.report.fell_back, "2% faults must be recoverable");
    assert!(faulty.report.faults.any());
    assert_eq!(faulty.checkpoint.positions, clean.checkpoint.positions);
    assert_eq!(faulty.checkpoint.velocities, clean.checkpoint.velocities);
    assert_eq!(
        faulty.checkpoint.accelerations,
        clean.checkpoint.accelerations
    );
    assert_eq!(faulty.energies.total, clean.energies.total);
    assert!(
        faulty.sim_seconds > clean.sim_seconds,
        "recovered runtime must be strictly larger: {} !> {}",
        faulty.sim_seconds,
        clean.sim_seconds
    );
}

/// Every paper experiment completes under nonzero fault rates — retries,
/// checkpoints, and fallbacks included — with zero panics. Reduced sizes
/// keep the suite fast; the mechanisms exercised are the same.
#[test]
fn all_paper_experiments_complete_under_faults() {
    let faulted = FaultedExperiments::new(99, 0.05);
    let fig5 = faulted.fig5(512).expect("fig5 completes under faults");
    assert_eq!(fig5.len(), 6);
    let fig6 = faulted.fig6(512, 3).expect("fig6 completes under faults");
    assert_eq!(fig6.len(), 4);
    let t1 = faulted
        .table1(512, 4)
        .expect("table1 completes under faults");
    assert!(t1.opteron_seconds > 0.0 && t1.cell_8spe_seconds > 0.0);
    let fig7 = faulted.fig7(&[128, 256], 2);
    assert!(fig7.iter().all(|r| r.gpu_seconds > 0.0));
    let fig8 = faulted.fig8(&[256, 512], 2);
    assert!(fig8.iter().all(|r| r.fully_mt_seconds > 0.0));
    let fig9 = faulted
        .fig9(&[256, 512], 2)
        .expect("fig9 completes under faults");
    assert_eq!(fig9[0].mta_relative, 1.0);
}

/// A hopeless fault rate cannot break completion either: the supervisor
/// degrades to the Opteron reference and still produces valid physics.
#[test]
fn hopeless_rates_degrade_gracefully_at_paper_scale() {
    let sim = paper_sim();
    let mut dev = DeviceKind::cell_best().build_faulted(FaultPlan::new(0, 1.0));
    // One-segment supervision keeps the degenerate case cheap.
    let cfg = SupervisorConfig {
        checkpoint_interval: PAPER_STEPS,
        ..SupervisorConfig::default()
    };
    let run = run_supervised(dev.as_mut(), &sim, PAPER_STEPS, &cfg, None);
    assert!(run.report.fell_back);
    assert!(run.energies.total.is_finite());
    assert_eq!(run.checkpoint.step, PAPER_STEPS as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Over arbitrary seeds and rates, injected faults change nothing but
    /// the simulated clock: the MTA trajectory stays bit-identical and the
    /// runtime never shrinks.
    #[test]
    fn faults_change_only_simulated_time_mta(seed in 0u64..1_000_000, rate in 0.0f64..0.4) {
        let sim = SimConfig::reduced_lj(108);
        let kind = DeviceKind::Mta { mode: ThreadingMode::FullyMultithreaded };
        let clean = clean_run(kind, &sim, 3);
        let faulty = faulted_run(kind, FaultPlan::new(seed, rate), &sim, 3);

        prop_assert_eq!(&clean.checkpoint.positions, &faulty.checkpoint.positions);
        prop_assert_eq!(&clean.checkpoint.velocities, &faulty.checkpoint.velocities);
        prop_assert_eq!(clean.energies.total, faulty.energies.total);
        prop_assert!(faulty.sim_seconds >= clean.sim_seconds);
        if faulty.faults.extra_seconds > 0.0 {
            prop_assert!(faulty.sim_seconds > clean.sim_seconds);
        }
    }

    /// Same invariant on the GPU's serial timeline, where the slowdown must
    /// equal the charged recovery time exactly.
    #[test]
    fn faults_change_only_simulated_time_gpu(seed in 0u64..1_000_000, rate in 0.0f64..0.4) {
        let sim = SimConfig::reduced_lj(108);
        let kind = DeviceKind::Gpu { model: GpuModel::GeForce7900Gtx };
        let clean = clean_run(kind, &sim, 3);
        let faulty = faulted_run(kind, FaultPlan::new(seed, rate), &sim, 3);

        prop_assert_eq!(&clean.checkpoint.positions, &faulty.checkpoint.positions);
        prop_assert_eq!(clean.energies.total, faulty.energies.total);
        let slowdown = faulty.sim_seconds - clean.sim_seconds;
        prop_assert!((slowdown - faulty.faults.extra_seconds).abs() <= 1e-12 * faulty.sim_seconds);
    }
}
