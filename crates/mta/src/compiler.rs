//! A model of the MTA auto-parallelizing compiler's loop analysis.
//!
//! The MTA compilers "automatically parallelize the body of such loops so
//! that a collection of threads executes the loop", but "there are some
//! restrictions ... due to data and control dependencies, and sometimes
//! compiler directives must be used". The paper hits exactly this: step 2 of
//! the MD kernel "was not automatically parallelized by the MTA compiler
//! because it found a dependency on the reduction operation", and was fixed
//! by restructuring plus `#pragma mta assert no dependence`.

/// Static description of a loop nest as the compiler sees it.
#[derive(Clone, Copy, Debug)]
pub struct LoopDesc {
    /// Human-readable name for reports ("step2-forces", ...).
    pub name: &'static str,
    /// Trip count.
    pub iterations: u64,
    /// Instructions per iteration (arithmetic + memory; on the MTA these
    /// cost the same once streams saturate the processor).
    pub instructions_per_iteration: f64,
    /// Fraction of the body's instructions that reference memory — irrelevant
    /// on the uniform-latency MTA-2, decisive on the non-uniform XMT.
    pub memory_fraction: f64,
    /// The loop body updates a scalar shared across iterations (the PE
    /// reduction) in a way the compiler cannot prove independent.
    pub has_unresolved_reduction: bool,
    /// The programmer asserted `#pragma mta assert no dependence`.
    pub pragma_no_dependence: bool,
}

impl LoopDesc {
    pub fn total_instructions(&self) -> f64 {
        self.iterations as f64 * self.instructions_per_iteration
    }
}

/// The compiler's verdict on one loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelizationDecision {
    pub parallel: bool,
    pub reason: &'static str,
}

/// Decide whether the loop is multithreaded across streams.
pub fn analyze_loop(desc: &LoopDesc) -> ParallelizationDecision {
    if desc.has_unresolved_reduction && !desc.pragma_no_dependence {
        ParallelizationDecision {
            parallel: false,
            reason: "dependence found on reduction operation; loop serialized",
        }
    } else if desc.pragma_no_dependence {
        ParallelizationDecision {
            parallel: true,
            reason: "programmer asserted no dependence",
        }
    } else {
        ParallelizationDecision {
            parallel: true,
            reason: "no loop-carried dependence found",
        }
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn base() -> LoopDesc {
        LoopDesc {
            name: "test",
            iterations: 100,
            instructions_per_iteration: 10.0,
            memory_fraction: 0.4,
            has_unresolved_reduction: false,
            pragma_no_dependence: false,
        }
    }

    #[test]
    fn clean_loop_parallelized() {
        let d = analyze_loop(&base());
        assert!(d.parallel);
    }

    #[test]
    fn reduction_blocks_parallelization() {
        let mut l = base();
        l.has_unresolved_reduction = true;
        let d = analyze_loop(&l);
        assert!(!d.parallel);
        assert!(d.reason.contains("reduction"));
    }

    #[test]
    fn pragma_overrides_reduction() {
        let mut l = base();
        l.has_unresolved_reduction = true;
        l.pragma_no_dependence = true;
        assert!(analyze_loop(&l).parallel);
    }

    #[test]
    fn total_instruction_count() {
        let l = base();
        assert_eq!(l.total_instructions(), 1000.0);
    }
}
