//! The MD kernel on the MTA-2 (paper section 5.3).
//!
//! Double precision (unlike the Cell/GPU ports), with the five-step structure
//! of Figure 4 mapped onto parallel loops. Two build modes reproduce
//! Figure 8:
//!
//! - **Fully multithreaded**: the step-2 reduction is restructured (moved
//!   inside the loop body, accumulated through full/empty-bit atomic adds)
//!   and the loop carries `#pragma mta assert no dependence` — every loop
//!   parallelizes across the 128 hardware streams.
//! - **Partially multithreaded**: the original code; the compiler detects the
//!   PE-reduction dependence in step 2 and serializes that loop onto a single
//!   stream, while the O(N) loops still parallelize. Since step 2 is O(N²),
//!   the performance gap grows with atom count — exactly Figure 8.

use crate::compiler::{analyze_loop, LoopDesc, ParallelizationDecision};
use crate::config::MtaConfig;
use crate::memory::FullEmptyMemory;
use crate::processor::MtaProcessor;
use md_core::init;
use md_core::observables::EnergyReport;
use md_core::params::SimConfig;
use md_core::system::ParticleSystem;
use md_core::verlet::VelocityVerlet;

/// Instructions per examined pair in step 2 (loads, minimum image, distance,
/// cutoff compare, loop bookkeeping — all single-issue on the MTA).
const INSTR_PER_PAIR: f64 = 24.0;
/// Extra instructions for an interacting pair (LJ evaluation + accumulate).
const INSTR_PER_INTERACTION: f64 = 20.0;
/// Instructions per atom in each O(N) integration loop.
const INSTR_INTEGRATE: f64 = 15.0;
/// Instructions per atom in the energy loop (step 5).
const INSTR_ENERGY: f64 = 8.0;

/// Whether the step-2 loop got the paper's restructuring + pragma.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadingMode {
    /// Reduction moved into the loop body + `assert no dependence`.
    FullyMultithreaded,
    /// Original code: compiler serializes step 2.
    PartiallyMultithreaded,
}

/// Where the run's cycles went, summed over every loop the kernel charged
/// (see [`crate::processor::MtaProcessor::loop_cycle_parts`]). Injected-fault
/// recovery cycles are folded into `stall`, so
/// `startup + issue + stall == MtaRun::cycles` to within float rounding.
#[derive(Clone, Copy, Debug, Default)]
pub struct MtaCycleBreakdown {
    /// Parallel-loop spin-up cycles.
    pub startup: f64,
    /// Ideal instruction-issue cycles (saturated floor).
    pub issue: f64,
    /// Phantom/no-op issue slots: under-saturation, serialization, and
    /// injected-fault recovery.
    pub stall: f64,
}

impl MtaCycleBreakdown {
    pub fn total(&self) -> f64 {
        self.startup + self.issue + self.stall
    }
}

/// Result of a simulated MTA run.
#[derive(Clone, Debug)]
pub struct MtaRun {
    pub sim_seconds: f64,
    pub cycles: f64,
    /// Cycle decomposition of the run (startup vs issue vs phantom).
    pub breakdown: MtaCycleBreakdown,
    pub energies: EnergyReport,
    pub mode: ThreadingMode,
    /// What the compiler decided for each loop (step name, verdict).
    pub decisions: Vec<(&'static str, ParallelizationDecision)>,
    /// Total instructions issued — Figure 9's "floating-point computation
    /// requirements" proxy (the MTA's runtime is proportional to this).
    pub instructions: f64,
    /// Injected-fault ledger for this run (zero when no plan is armed).
    /// `faults.exhausted > 0` means the modeled degraded path was taken;
    /// the harness supervisor treats that as a failed segment.
    #[cfg(feature = "fault-inject")]
    pub faults: sim_fault::FaultStats,
}

/// MD on the simulated MTA.
pub struct MtaMdSimulation {
    pub processor: MtaProcessor,
    /// Physics-once replay memo (DESIGN.md §17): when enabled (the default)
    /// each stream chunk's gather row is evaluated through the shared
    /// batched kernel instead of the scalar interpretive row. The loop cost
    /// model is untouched — it is already a closed form in the interaction
    /// count, which the shared kernel reproduces exactly — so sim-seconds,
    /// energies, and counters are bitwise identical either way.
    eval_memo: bool,
    /// Armed fault schedule; `None` runs fault-free (see DESIGN.md §9).
    #[cfg(feature = "fault-inject")]
    pub fault_plan: Option<sim_fault::FaultPlan>,
}

impl MtaMdSimulation {
    pub fn new(config: MtaConfig) -> Self {
        Self {
            processor: MtaProcessor::new(config),
            eval_memo: true,
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }

    /// Enable or disable the shared-eval replay memo.
    pub fn set_eval_memo(&mut self, enabled: bool) {
        self.eval_memo = enabled;
    }

    pub fn paper_mta2() -> Self {
        Self::new(MtaConfig::paper_mta2())
    }

    /// Arm a deterministic fault schedule for subsequent `run_md*` calls.
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: sim_fault::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Run `steps` time steps in the given threading mode, continuing from
    /// caller-owned state. Physics is mode-independent (the modes differ
    /// only in how loops are scheduled); runtimes differ enormously. This is
    /// the single run path behind [`md_core::device::MdDevice::run`] on
    /// [`MtaMd`].
    fn run_md_impl(
        &self,
        sys: &mut ParticleSystem<f64>,
        sim: &SimConfig,
        steps: usize,
        mode: ThreadingMode,
        mut perf: Option<&mut sim_perf::PerfMonitor>,
        par: md_core::device::HostParallelism,
    ) -> MtaRun {
        let n = sys.n();
        let vv = VelocityVerlet::new(sim.dt);
        let sub = sim.substrate::<f64>();

        let mut cycles = 0.0f64;
        let mut instructions = 0.0f64;
        let mut breakdown = MtaCycleBreakdown::default();
        // Stream-occupancy integral: streams × cycles summed over loops.
        // Monotonic by construction; average occupancy falls out as
        // occupancy_cycles / cycles.
        let mut occupancy_cycles = 0.0f64;
        #[allow(unused_mut)] // mutated only under fault-inject
        let mut hotspot_retry_cycles = 0.0f64;
        let handles = perf.as_deref_mut().map(PerfHandles::register);
        let mut decisions: Vec<(&'static str, ParallelizationDecision)> = Vec::new();
        let record =
            |name: &'static str,
             d: ParallelizationDecision,
             decisions: &mut Vec<(&'static str, ParallelizationDecision)>| {
                if !decisions.iter().any(|(n2, _)| *n2 == name) {
                    decisions.push((name, d));
                }
            };
        // Charge one loop: total cycles (bitwise the same value
        // `loop_cycles` returns — the breakdown is derived, not a reprice),
        // instruction count, the cycle decomposition, and the occupancy
        // integral. Returns the loop's cycles for fault-unit sizing.
        let charge = |l: &LoopDesc,
                      cycles: &mut f64,
                      instructions: &mut f64,
                      breakdown: &mut MtaCycleBreakdown,
                      occupancy_cycles: &mut f64|
         -> f64 {
            let parts = self.processor.loop_cycle_parts(l);
            *cycles += parts.cycles;
            *instructions += l.total_instructions();
            breakdown.startup += parts.startup;
            breakdown.issue += parts.issue;
            breakdown.stall += parts.stall;
            *occupancy_cycles += parts.streams as f64 * parts.cycles;
            parts.cycles
        };

        // Shared PE accumulator in tagged memory (the restructured reduction
        // uses full/empty atomic adds from every stream).
        let mut tagged = FullEmptyMemory::new_full(1, 0.0);

        // One fault session per run. The physics pass below is computed on
        // pristine data regardless of the schedule; injected failures only
        // charge the cost of re-issued work.
        #[cfg(feature = "fault-inject")]
        let mut fault = self.fault_plan.map(sim_fault::FaultSession::new);

        let mut pe = 0.0f64;
        for eval in 0..=steps {
            if eval > 0 {
                let l = self.integration_loop("step1-advance-velocities", n);
                record(l.name, analyze_loop(&l), &mut decisions);
                charge(
                    &l,
                    &mut cycles,
                    &mut instructions,
                    &mut breakdown,
                    &mut occupancy_cycles,
                );
                vv.kick_drift(sys);
            }

            // Step 2: forces. Each simulated stream owns one atom's gather
            // row; rows run as an order-preserving indexed map (host-parallel
            // when requested), then the reductions — the full/empty PE
            // accumulator and the interaction count — fold serially in row
            // order, so the result is bitwise identical at any thread count.
            tagged.write(0, 0.0);
            let mut interactions: u64 = 0;
            let box_len = sys.box_len;
            let inv_m = sys.mass.recip();
            let soa = md_core::forces::SoaPositions::from_positions(&sys.positions);
            // Physics-once split (DESIGN.md §17): under the memo each
            // stream's row runs the shared batched kernel — bitwise the
            // scalar row, so the closed-form loop charge below replays
            // unchanged.
            let rows = md_core::parallel::map_indexed(par, n, |i| {
                if self.eval_memo {
                    md_core::shared_eval::host_row(&soa, i, box_len, &sub, inv_m)
                } else {
                    md_core::forces::gather_row(&soa, i, box_len, &sub, inv_m)
                }
            });
            for (i, row) in rows.into_iter().enumerate() {
                interactions += row.interactions;
                sys.accelerations[i] = row.acc;
                // Reduction inside the loop body: full/empty atomic add.
                tagged
                    .atomic_add(0, row.pe)
                    // sim-vet: allow(panic-discipline): full/empty-bit protocol violation is a simulator bug, not a recoverable data error
                    .expect("accumulator protocol is lock/unlock per atom");
            }
            pe = tagged.read(0) * 0.5;

            // Interaction cost: the LJ baseline plus whatever extra work the
            // scenario's potential costs (zero for the paper-faithful run).
            let per_iter = (n as f64 - 1.0) * INSTR_PER_PAIR
                + (interactions as f64 / n as f64) * (INSTR_PER_INTERACTION + sub.extra_eval_ops())
                + self.processor.config.sync_instructions;
            let step2 = LoopDesc {
                name: "step2-forces",
                iterations: n as u64,
                instructions_per_iteration: per_iter,
                // loads dominate the gather loop
                memory_fraction: 0.4,
                has_unresolved_reduction: true,
                pragma_no_dependence: mode == ThreadingMode::FullyMultithreaded,
            };
            record(step2.name, analyze_loop(&step2), &mut decisions);
            #[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
            let step2_cycles = charge(
                &step2,
                &mut cycles,
                &mut instructions,
                &mut breakdown,
                &mut occupancy_cycles,
            );
            #[cfg(feature = "fault-inject")]
            {
                let cfg = &self.processor.config;
                // The runtime hands the loop fewer streams than requested:
                // the starved share of the iteration space is re-issued,
                // paying the loop startup again plus a quarter of the loop.
                let starvation_extra = resolve_degradable(
                    &mut fault,
                    sim_fault::FaultSite::new(
                        sim_fault::FaultKind::StreamStarvation,
                        eval as u64,
                        0,
                        0,
                    ),
                    cfg.loop_startup_cycles + 0.25 * step2_cycles,
                    cfg.clock_hz,
                );
                cycles += starvation_extra;
                breakdown.stall += starvation_extra;
                // Hot-spotting on the full/empty PE accumulator: every
                // stream retries its synchronized add once.
                let hotspot_extra = resolve_degradable(
                    &mut fault,
                    sim_fault::FaultSite::new(
                        sim_fault::FaultKind::HotSpotRetry,
                        eval as u64,
                        0,
                        1,
                    ),
                    cfg.sync_instructions
                        * cfg.stream_issue_interval
                        * cfg.streams_per_processor as f64,
                    cfg.clock_hz,
                );
                cycles += hotspot_extra;
                breakdown.stall += hotspot_extra;
                hotspot_retry_cycles += hotspot_extra;
            }

            if eval > 0 {
                let l = self.integration_loop("step3-4-move-update", n);
                record(l.name, analyze_loop(&l), &mut decisions);
                charge(
                    &l,
                    &mut cycles,
                    &mut instructions,
                    &mut breakdown,
                    &mut occupancy_cycles,
                );
                vv.kick(sys);

                // Ensemble work: the thermostat's velocity rescale is one
                // more O(N) parallel loop. Absent under NVE, so the
                // paper-faithful runs charge (and record) nothing.
                let ens_ops = sub.extra_step_ops_per_atom();
                if ens_ops > 0.0 {
                    let l = LoopDesc {
                        name: "step6-thermostat",
                        iterations: n as u64,
                        instructions_per_iteration: ens_ops,
                        memory_fraction: 0.3,
                        has_unresolved_reduction: false,
                        pragma_no_dependence: false,
                    };
                    record(l.name, analyze_loop(&l), &mut decisions);
                    charge(
                        &l,
                        &mut cycles,
                        &mut instructions,
                        &mut breakdown,
                        &mut occupancy_cycles,
                    );
                }
                sub.apply_thermostat(sys);

                // Step 5: kinetic/total energies (parallelized without code
                // modification, per the paper).
                let l = LoopDesc {
                    name: "step5-energies",
                    iterations: n as u64,
                    instructions_per_iteration: INSTR_ENERGY,
                    memory_fraction: 0.3,
                    has_unresolved_reduction: false,
                    pragma_no_dependence: false,
                };
                record(l.name, analyze_loop(&l), &mut decisions);
                charge(
                    &l,
                    &mut cycles,
                    &mut instructions,
                    &mut breakdown,
                    &mut occupancy_cycles,
                );
            }

            if let (Some(p), Some(h)) = (perf.as_deref_mut(), handles) {
                p.record_total(h.instructions, instructions);
                p.record_total(h.startup, breakdown.startup);
                p.record_total(h.issue, breakdown.issue);
                p.record_total(h.phantom, breakdown.stall);
                p.record_total(h.occupancy, occupancy_cycles);
                p.record_total(h.hotspot_retries, hotspot_retry_cycles);
                p.sample_all(cycles / self.processor.config.clock_hz);
            }
        }

        MtaRun {
            sim_seconds: cycles / self.processor.config.clock_hz,
            cycles,
            breakdown,
            energies: EnergyReport::measure(sys, pe),
            mode,
            decisions,
            instructions,
            #[cfg(feature = "fault-inject")]
            faults: fault.map_or_else(sim_fault::FaultStats::default, |f| f.stats()),
        }
    }

    fn integration_loop(&self, name: &'static str, n: usize) -> LoopDesc {
        LoopDesc {
            name,
            iterations: n as u64,
            instructions_per_iteration: INSTR_INTEGRATE,
            memory_fraction: 0.3,
            has_unresolved_reduction: false,
            pragma_no_dependence: false,
        }
    }
}

/// Era-appropriate MTA counters, registered once per instrumented run.
#[derive(Clone, Copy)]
struct PerfHandles {
    instructions: sim_perf::CounterHandle,
    startup: sim_perf::CounterHandle,
    issue: sim_perf::CounterHandle,
    phantom: sim_perf::CounterHandle,
    occupancy: sim_perf::CounterHandle,
    hotspot_retries: sim_perf::CounterHandle,
}

impl PerfHandles {
    fn register(perf: &mut sim_perf::PerfMonitor) -> Self {
        Self {
            instructions: perf.register("mta.instructions", "instrs"),
            startup: perf.register("mta.cycles.startup", "cycles"),
            issue: perf.register("mta.cycles.issue", "cycles"),
            phantom: perf.register("mta.cycles.phantom", "cycles"),
            occupancy: perf.register("mta.stream.occupancy_cycles", "stream-cycles"),
            hotspot_retries: perf.register("mta.hotspot.retry_cycles", "cycles"),
        }
    }
}

/// Apply the armed fault schedule to one injection site, returning the extra
/// cycles to charge. The MTA runner is infallible, so retry-budget
/// exhaustion degrades instead of erroring: a modeled slow path (one
/// conservative re-issue at 4x cost) is charged and
/// `FaultStats::exhausted` is incremented — the harness supervisor treats a
/// nonzero count as a failed segment.
#[cfg(feature = "fault-inject")]
fn resolve_degradable(
    fault: &mut Option<sim_fault::FaultSession>,
    site: sim_fault::FaultSite,
    unit_cycles: f64,
    clock_hz: f64,
) -> f64 {
    let Some(sess) = fault.as_mut() else {
        return 0.0;
    };
    let out = sess.outcome(site);
    let mut extra = unit_cycles * f64::from(out.failures);
    if out.exhausted {
        extra += 4.0 * unit_cycles;
    }
    if extra > 0.0 {
        sess.charge(extra / clock_hz);
    }
    extra
}

/// An [`MtaMdSimulation`] bound to one [`ThreadingMode`], so the two Figure 8
/// configurations appear as distinct devices behind the device-neutral
/// [`md_core::device::MdDevice`] interface.
pub struct MtaMd {
    pub sim: MtaMdSimulation,
    pub mode: ThreadingMode,
}

impl MtaMd {
    pub fn new(sim: MtaMdSimulation, mode: ThreadingMode) -> Self {
        Self { sim, mode }
    }

    /// The paper's 40-processor MTA-2 in the given threading mode.
    pub fn paper_mta2(mode: ThreadingMode) -> Self {
        Self::new(MtaMdSimulation::paper_mta2(), mode)
    }
}

impl md_core::device::MdDevice for MtaMd {
    fn label(&self) -> String {
        match self.mode {
            ThreadingMode::FullyMultithreaded => "mta2-full-mt".to_string(),
            ThreadingMode::PartiallyMultithreaded => "mta2-partial-mt".to_string(),
        }
    }

    /// One instruction per processor per cycle, fully saturated.
    fn peak_ops_per_second(&self) -> f64 {
        let c = &self.sim.processor.config;
        c.clock_hz * c.n_processors as f64
    }

    #[cfg(feature = "fault-inject")]
    fn resalt(&mut self, salt: u64) {
        self.sim.fault_plan = self.sim.fault_plan.map(|p| p.with_salt(salt));
    }

    fn run(
        &mut self,
        sim: &SimConfig,
        mut opts: md_core::device::RunOptions<'_>,
    ) -> Result<md_core::device::DeviceRun, md_core::device::DeviceError> {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = opts.fault_plan {
            self.sim.fault_plan = Some(plan);
        }
        let (mut sys, start_step): (ParticleSystem<f64>, u64) = match opts.start {
            Some(cp) => (cp.restore(), cp.step),
            None => (init::initialize(sim), 0),
        };
        // Stream occupancy is only reported through the counter layer, so
        // observe with a local monitor when the caller didn't pass one
        // (observation is free: the counted run is bitwise-identical).
        let mut local = sim_perf::PerfMonitor::new();
        let perf = match opts.perf.take() {
            Some(p) => p,
            None => &mut local,
        };
        let r = self.sim.run_md_impl(
            &mut sys,
            sim,
            opts.steps,
            self.mode,
            Some(perf),
            opts.host_parallelism,
        );
        let clk = self.sim.processor.config.clock_hz;
        let phantom_fraction = if r.sim_seconds == 0.0 {
            0.0
        } else {
            (r.breakdown.stall / clk) / r.sim_seconds
        };
        let mut derived = vec![("phantom_fraction", phantom_fraction)];
        if r.cycles > 0.0 {
            let occ = md_core::device::counter_total(perf, "mta.stream.occupancy_cycles");
            derived.push(("avg_stream_occupancy", occ / r.cycles));
        }
        let run = md_core::device::DeviceRun {
            sim_seconds: r.sim_seconds,
            energies: r.energies,
            checkpoint: md_core::checkpoint::SystemCheckpoint::capture(
                &sys,
                start_step + opts.steps as u64,
            ),
            attribution: vec![
                ("issue", r.breakdown.issue / clk),
                ("loop_startup", r.breakdown.startup / clk),
                ("phantom_stall", r.breakdown.stall / clk),
            ],
            derived,
            // All traffic is word-granular loads the cycle model already
            // charges, so there are no off-node bytes to report.
            ops: r.instructions,
            bytes_moved: 0.0,
            #[cfg(feature = "fault-inject")]
            faults: r.faults,
            #[cfg(not(feature = "fault-inject"))]
            faults: md_core::device::FaultStats::default(),
        };
        if let Some(led) = opts.ledger.take() {
            let label = md_core::device::MdDevice::label(self);
            md_core::device::ledger_record_run(led, &label, &run, Some(perf));
        }
        Ok(run)
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use md_core::forces::{AllPairsFullKernel, ForceKernel};

    /// Test-local shorthand over the single run path (the public surface is
    /// [`md_core::device::MdDevice::run`] on [`MtaMd`]).
    fn run_md(m: &MtaMdSimulation, sim: &SimConfig, steps: usize, mode: ThreadingMode) -> MtaRun {
        let mut sys: ParticleSystem<f64> = init::initialize(sim);
        m.run_md_impl(
            &mut sys,
            sim,
            steps,
            mode,
            None,
            md_core::device::HostParallelism::Serial,
        )
    }

    fn run_md_perf(
        m: &MtaMdSimulation,
        sim: &SimConfig,
        steps: usize,
        mode: ThreadingMode,
        perf: &mut sim_perf::PerfMonitor,
    ) -> MtaRun {
        let mut sys: ParticleSystem<f64> = init::initialize(sim);
        m.run_md_impl(
            &mut sys,
            sim,
            steps,
            mode,
            Some(perf),
            md_core::device::HostParallelism::Serial,
        )
    }

    fn run_md_from(
        m: &MtaMdSimulation,
        sys: &mut ParticleSystem<f64>,
        sim: &SimConfig,
        steps: usize,
        mode: ThreadingMode,
    ) -> MtaRun {
        m.run_md_impl(
            sys,
            sim,
            steps,
            mode,
            None,
            md_core::device::HostParallelism::Serial,
        )
    }

    #[test]
    fn physics_matches_reference_and_is_mode_independent() {
        let sim = SimConfig::reduced_lj(108);
        let m = MtaMdSimulation::paper_mta2();
        let full = run_md(&m, &sim, 3, ThreadingMode::FullyMultithreaded);
        let partial = run_md(&m, &sim, 3, ThreadingMode::PartiallyMultithreaded);
        assert_eq!(full.energies.total, partial.energies.total);

        let mut sys: ParticleSystem<f64> = init::initialize(&sim);
        let sub = sim.substrate::<f64>();
        let vv = VelocityVerlet::new(sim.dt);
        let mut kernel = AllPairsFullKernel;
        let mut pe = kernel.compute(&mut sys, &sub);
        for _ in 0..3 {
            pe = vv.step(&mut sys, &mut kernel, &sub);
        }
        let expect = EnergyReport::measure(&sys, pe);
        assert!(
            (full.energies.total - expect.total).abs() < 1e-9 * expect.total.abs(),
            "MTA {} vs reference {}",
            full.energies.total,
            expect.total
        );
    }

    #[test]
    fn figure8_fully_mt_much_faster() {
        let sim = SimConfig::reduced_lj(256);
        let m = MtaMdSimulation::paper_mta2();
        let full = run_md(&m, &sim, 2, ThreadingMode::FullyMultithreaded);
        let partial = run_md(&m, &sim, 2, ThreadingMode::PartiallyMultithreaded);
        let ratio = partial.sim_seconds / full.sim_seconds;
        assert!(
            ratio > 10.0,
            "serialized step 2 should dominate: {ratio:.1}x"
        );
    }

    #[test]
    fn figure8_gap_grows_with_atoms() {
        let m = MtaMdSimulation::paper_mta2();
        let gap = |n: usize| {
            let sim = SimConfig::reduced_lj(n);
            let full = run_md(&m, &sim, 1, ThreadingMode::FullyMultithreaded);
            let partial = run_md(&m, &sim, 1, ThreadingMode::PartiallyMultithreaded);
            partial.sim_seconds - full.sim_seconds
        };
        assert!(gap(1024) > 10.0 * gap(256), "absolute gap grows ~N²");
    }

    #[test]
    fn compiler_decisions_reported() {
        let sim = SimConfig::reduced_lj(108);
        let m = MtaMdSimulation::paper_mta2();
        let partial = run_md(&m, &sim, 1, ThreadingMode::PartiallyMultithreaded);
        let step2 = partial
            .decisions
            .iter()
            .find(|(n, _)| *n == "step2-forces")
            .expect("step 2 analyzed");
        assert!(!step2.1.parallel);
        let others_parallel = partial
            .decisions
            .iter()
            .filter(|(n, _)| *n != "step2-forces")
            .all(|(_, d)| d.parallel);
        assert!(others_parallel, "rest of the kernel parallelizes untouched");

        let full = run_md(&m, &sim, 1, ThreadingMode::FullyMultithreaded);
        let step2 = full
            .decisions
            .iter()
            .find(|(n, _)| *n == "step2-forces")
            .unwrap();
        assert!(step2.1.parallel);
    }

    #[test]
    fn figure9_runtime_tracks_instruction_count() {
        // The MTA's runtime growth must be proportional to the instruction
        // (≈ flop) growth — no cache knee.
        let m = MtaMdSimulation::paper_mta2();
        let run = |n: usize| {
            run_md(
                &m,
                &SimConfig::reduced_lj(n),
                1,
                ThreadingMode::FullyMultithreaded,
            )
        };
        let small = run(256);
        let large = run(2048);
        let time_ratio = large.sim_seconds / small.sim_seconds;
        let instr_ratio = large.instructions / small.instructions;
        assert!(
            (time_ratio / instr_ratio - 1.0).abs() < 0.02,
            "time x{time_ratio:.1} vs instructions x{instr_ratio:.1}"
        );
    }

    #[test]
    fn breakdown_partitions_the_run() {
        let sim = SimConfig::reduced_lj(256);
        let m = MtaMdSimulation::paper_mta2();
        for mode in [
            ThreadingMode::FullyMultithreaded,
            ThreadingMode::PartiallyMultithreaded,
        ] {
            let run = run_md(&m, &sim, 2, mode);
            let b = run.breakdown;
            assert!(
                (b.total() - run.cycles).abs() <= 1e-9 * run.cycles,
                "{mode:?}: {b:?} vs {}",
                run.cycles
            );
            // Figure 8's mechanism, visible in the attribution: the
            // serialized step 2 shows up as phantom cycles.
            if mode == ThreadingMode::PartiallyMultithreaded {
                assert!(b.stall > b.issue, "serialized run is stall-dominated");
            } else {
                assert!(
                    b.stall < 0.01 * b.issue,
                    "saturated run is nearly stall-free"
                );
            }
        }
    }

    #[test]
    fn perf_counters_are_free_and_populated() {
        let sim = SimConfig::reduced_lj(108);
        let m = MtaMdSimulation::paper_mta2();
        let mode = ThreadingMode::FullyMultithreaded;
        let plain = run_md(&m, &sim, 3, mode);
        let mut perf = sim_perf::PerfMonitor::new();
        let counted = run_md_perf(&m, &sim, 3, mode, &mut perf);

        // Observability is free: bitwise-identical outcome.
        assert_eq!(plain.sim_seconds, counted.sim_seconds);
        assert_eq!(plain.energies.total, counted.energies.total);
        assert_eq!(plain.instructions, counted.instructions);

        let instr = perf.find("mta.instructions").expect("registered");
        assert_eq!(instr.value(), counted.instructions);
        // One sample per evaluation: steps + 1 priming evaluation.
        assert_eq!(instr.samples().len(), 4);
        let phantom = perf.find("mta.cycles.phantom").expect("registered");
        assert_eq!(phantom.value(), counted.breakdown.stall);
        let occ = perf
            .find("mta.stream.occupancy_cycles")
            .expect("registered");
        // Saturated parallel loops run at 128 streams, so the occupancy
        // integral sits near 128 x cycles.
        let avg = occ.value() / counted.cycles;
        assert!((100.0..=128.0).contains(&avg), "avg occupancy {avg:.1}");
        let retries = perf.find("mta.hotspot.retry_cycles").expect("registered");
        assert_eq!(retries.value(), 0.0, "no faults armed");
    }

    #[test]
    fn deterministic() {
        let sim = SimConfig::reduced_lj(108);
        let m = MtaMdSimulation::paper_mta2();
        let a = run_md(&m, &sim, 2, ThreadingMode::FullyMultithreaded);
        let b = run_md(&m, &sim, 2, ThreadingMode::FullyMultithreaded);
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.energies.total, b.energies.total);
    }

    #[test]
    fn segmented_run_matches_unsegmented_run_bitwise() {
        let sim = SimConfig::reduced_lj(108);
        let m = MtaMdSimulation::paper_mta2();
        let mode = ThreadingMode::FullyMultithreaded;
        let mut whole: ParticleSystem<f64> = init::initialize(&sim);
        run_md_from(&m, &mut whole, &sim, 10, mode);
        let mut segmented: ParticleSystem<f64> = init::initialize(&sim);
        run_md_from(&m, &mut segmented, &sim, 5, mode);
        run_md_from(&m, &mut segmented, &sim, 5, mode);
        assert_eq!(whole.positions, segmented.positions);
        assert_eq!(whole.velocities, segmented.velocities);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_faults_leave_physics_untouched_and_slow_the_run() {
        let sim = SimConfig::reduced_lj(108);
        let mode = ThreadingMode::FullyMultithreaded;
        let clean = run_md(&MtaMdSimulation::paper_mta2(), &sim, 5, mode);
        let faulty = run_md(
            &MtaMdSimulation::paper_mta2().with_fault_plan(sim_fault::FaultPlan::new(9, 0.4)),
            &sim,
            5,
            mode,
        );
        assert_eq!(clean.energies.total, faulty.energies.total);
        assert_eq!(clean.instructions, faulty.instructions);
        assert!(faulty.faults.any());
        assert!(faulty.sim_seconds > clean.sim_seconds);
        // The MTA charges every retry on the single-processor timeline, so
        // the slowdown equals the charged recovery time.
        assert!(
            (faulty.sim_seconds - clean.sim_seconds - faulty.faults.extra_seconds).abs()
                < 1e-9 * faulty.sim_seconds
        );
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn exhaustion_degrades_instead_of_failing() {
        let sim = SimConfig::reduced_lj(108);
        let run = run_md(
            &MtaMdSimulation::paper_mta2().with_fault_plan(sim_fault::FaultPlan::new(0, 1.0)),
            &sim,
            1,
            ThreadingMode::FullyMultithreaded,
        );
        assert!(run.faults.exhausted > 0);
        assert!(run.energies.total.is_finite());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fault_schedule_is_reproducible_across_runs() {
        let sim = SimConfig::reduced_lj(108);
        let mk = || {
            run_md(
                &MtaMdSimulation::paper_mta2().with_fault_plan(sim_fault::FaultPlan::new(21, 0.3)),
                &sim,
                3,
                ThreadingMode::FullyMultithreaded,
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.sim_seconds, b.sim_seconds);
    }
}
