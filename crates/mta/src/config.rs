//! MTA-2 machine parameters.

/// Non-uniform memory model for the XMT projection.
///
/// The paper: the XMT "will not have the MTA-2's nearly uniform memory
/// access latency, so data placement and access locality will be an
/// important consideration". Modeled as extra latency on the fraction of
/// memory references that go to remote memory; a stream that issued a remote
/// load cannot issue again until it returns, so remote-heavy loops need more
/// concurrency than the hardware has and the processor desaturates.
#[derive(Clone, Copy, Debug)]
pub struct RemoteMemoryModel {
    /// Fraction of memory references that are remote (locality-blind MD
    /// gather code: high; blocked/placed data: low).
    pub remote_fraction: f64,
    /// Additional cycles a remote reference takes over a local one.
    pub remote_extra_cycles: f64,
}

/// Parameters of the simulated MTA-2 system.
#[derive(Clone, Copy, Debug)]
pub struct MtaConfig {
    /// Processor clock in Hz. The paper notes the MTA-2's clock is "about
    /// 11x slower than the 2.2 GHz Opteron": 200 MHz.
    pub clock_hz: f64,
    /// Hardware streams per processor (128 on the MTA-2).
    pub streams_per_processor: usize,
    /// Number of processor modules (the largest MTA-2 had 256; the paper's
    /// kernel study uses one).
    pub n_processors: usize,
    /// Minimum cycles between consecutive issues from the *same* stream (the
    /// pipeline depth / lookahead). A serial loop — one stream — pays this on
    /// every instruction; a saturated processor hides it completely.
    pub stream_issue_interval: f64,
    /// Per-parallel-loop startup: stream creation/teardown and iteration
    /// scheduling, cycles.
    pub loop_startup_cycles: f64,
    /// Instruction charge for one `readfe`/`writeef` full/empty
    /// synchronization pair.
    pub sync_instructions: f64,
    /// `None` for the MTA-2's nearly uniform memory; `Some` for the XMT's
    /// non-uniform network (see [`RemoteMemoryModel`]).
    pub remote_memory: Option<RemoteMemoryModel>,
}

impl MtaConfig {
    /// The paper's MTA-2.
    pub fn paper_mta2() -> Self {
        Self {
            clock_hz: 200e6,
            streams_per_processor: 128,
            n_processors: 1,
            stream_issue_interval: 21.0,
            loop_startup_cycles: 1500.0,
            sync_instructions: 2.0,
            remote_memory: None,
        }
    }

    /// The announced follow-on the paper anticipates: the Cray XMT —
    /// multithreaded processors at a higher clock, scalable to thousands of
    /// processors. This constructor is the optimistic projection with
    /// perfectly placed data (no remote penalty); see [`Self::xmt_nonuniform`]
    /// for the locality-blind case the paper warns about.
    pub fn xmt(n_processors: usize) -> Self {
        Self {
            clock_hz: 500e6,
            streams_per_processor: 128,
            n_processors,
            stream_issue_interval: 21.0,
            loop_startup_cycles: 3000.0,
            sync_instructions: 2.0,
            remote_memory: None,
        }
    }

    /// XMT with the non-uniform memory the paper anticipates: a
    /// locality-blind O(N²) gather sends most references across the network,
    /// and 128 streams can no longer hide the latency.
    pub fn xmt_nonuniform(n_processors: usize, remote_fraction: f64) -> Self {
        Self {
            remote_memory: Some(RemoteMemoryModel {
                remote_fraction,
                remote_extra_cycles: 600.0,
            }),
            ..Self::xmt(n_processors)
        }
    }
}

impl Default for MtaConfig {
    fn default() -> Self {
        Self::paper_mta2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_ratio() {
        let c = MtaConfig::paper_mta2();
        assert!(
            (2.2e9 / c.clock_hz - 11.0).abs() < 0.1,
            "11x slower than the Opteron"
        );
        assert_eq!(c.streams_per_processor, 128);
    }

    #[test]
    fn xmt_scales_out() {
        let x = MtaConfig::xmt(64);
        assert!(x.clock_hz > MtaConfig::paper_mta2().clock_hz);
        assert_eq!(x.n_processors, 64);
    }
}
