//! Functional simulator of the Cray MTA-2 (paper sections 3.3 and 5.3).
//!
//! The MTA-2 attacks the memory wall with massive hardware multithreading
//! instead of caches: each processor holds the full execution context of 128
//! hardware streams and can switch streams every clock cycle, so as long as
//! enough concurrent streams exist, memory latency is completely hidden and
//! every memory access costs the same ("there is no penalty for accessing
//! atoms ... in an irregular fashion").
//!
//! The pieces modeled here:
//!
//! - [`MtaProcessor`]: the stream-issue timing model. A saturated processor
//!   issues one instruction per cycle; a single stream can only issue once
//!   every ~21 cycles (the pipeline lookahead), which is why a loop the
//!   compiler *fails* to parallelize runs an order of magnitude slower —
//!   Figure 8's "fully vs partially multithreaded" gap.
//! - [`compiler`]: a model of the MTA auto-parallelizing compiler: it
//!   parallelizes loops unless it detects a dependence (the PE reduction in
//!   step 2), and accepts the `#pragma mta assert no dependence` hint the
//!   paper adds after restructuring the reduction.
//! - [`FullEmptyMemory`]: the MTA's tagged memory (every word carries a
//!   full/empty bit for fine-grained synchronization); the cross-stream PE
//!   reduction uses `readfe`/`writeef` on it.
//! - [`MtaMdSimulation`]: the MD kernel (double precision, as the paper's
//!   MTA port) run through the above, producing simulated runtimes.

pub mod compiler;
mod config;
mod kernel;
mod memory;
mod processor;

pub use compiler::{analyze_loop, LoopDesc, ParallelizationDecision};
pub use config::{MtaConfig, RemoteMemoryModel};
pub use kernel::{MtaCycleBreakdown, MtaMd, MtaMdSimulation, MtaRun, ThreadingMode};
pub use memory::{FullEmptyError, FullEmptyMemory};
pub use processor::{LoopCycleParts, MtaProcessor};
