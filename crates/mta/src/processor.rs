//! The MTA stream-issue timing model.
//!
//! "The key to obtaining high performance on the MTA-2 is to keep its
//! processors saturated, so that each processor always has a thread whose
//! next instruction can be executed."
//!
//! Model: a processor issues at most one instruction per cycle, drawn from
//! any ready stream. A stream becomes ready again `stream_issue_interval`
//! cycles after its last issue (pipeline lookahead / memory latency — the
//! MTA's uniform-latency memory means this interval covers loads too). Thus:
//!
//! - with `s` active streams, the issue rate is `min(1, s / interval)`
//!   instructions per cycle;
//! - a serial loop (one stream) crawls at `1 / interval` of peak;
//! - `interval` or more streams saturate the processor at one instruction
//!   per cycle — at which point memory access patterns are irrelevant, the
//!   property Figure 9 demonstrates.

use crate::compiler::{analyze_loop, LoopDesc};
use crate::config::MtaConfig;

/// The simulated multithreaded processor (or a uniform collection of them).
#[derive(Clone, Copy, Debug)]
pub struct MtaProcessor {
    pub config: MtaConfig,
}

impl MtaProcessor {
    pub fn new(config: MtaConfig) -> Self {
        Self { config }
    }

    pub fn paper_mta2() -> Self {
        Self::new(MtaConfig::paper_mta2())
    }

    /// Effective issue rate (instructions/cycle/processor) with `streams`
    /// concurrent streams.
    pub fn issue_rate(&self, streams: usize) -> f64 {
        (streams as f64 / self.config.stream_issue_interval).min(1.0)
    }

    /// Mean cycles between issues from one stream executing this loop: the
    /// pipeline lookahead, stretched by remote-memory stalls on a
    /// non-uniform machine (a stream with an outstanding remote load cannot
    /// issue until it returns).
    pub fn effective_interval(&self, desc: &LoopDesc) -> f64 {
        let mut interval = self.config.stream_issue_interval;
        if let Some(remote) = self.config.remote_memory {
            interval += desc.memory_fraction * remote.remote_fraction * remote.remote_extra_cycles;
        }
        interval
    }

    /// Cycles to execute a loop, honoring the compiler's parallelization
    /// decision. A parallel loop fans its iterations across all streams of
    /// all processors; a serialized loop runs on a single stream.
    pub fn loop_cycles(&self, desc: &LoopDesc) -> f64 {
        let decision = analyze_loop(desc);
        let total = desc.total_instructions();
        let interval = self.effective_interval(desc);
        if !decision.parallel {
            // One stream: one instruction per (effective) issue interval.
            return total * interval;
        }
        // Concurrency available: min(iterations, hardware streams).
        let hw = self.config.streams_per_processor * self.config.n_processors;
        let streams = (desc.iterations as usize).min(hw).max(1);
        let per_stream = streams.div_ceil(self.config.n_processors);
        let per_proc_rate = (per_stream as f64 / interval).min(1.0);
        let rate = per_proc_rate * self.config.n_processors as f64;
        self.config.loop_startup_cycles + total / rate
    }

    /// Simulated seconds for a loop.
    pub fn loop_seconds(&self, desc: &LoopDesc) -> f64 {
        self.loop_cycles(desc) / self.config.clock_hz
    }

    /// Decompose [`loop_cycles`] into where the cycles go:
    ///
    /// - `startup`: the parallel-loop spin-up cost (0 for serialized loops);
    /// - `issue`: the ideal instruction-issue time — total instructions at
    ///   one instruction per cycle per processor, the floor a fully
    ///   saturated machine achieves;
    /// - `stall`: everything above the floor — phantom (no-op) issue slots
    ///   from under-saturation or serialization.
    ///
    /// `streams` is the concurrency the loop actually ran with. The parts
    /// are derived from the same expression as [`loop_cycles`], so
    /// `startup + issue + stall == cycles` exactly for saturated parallel
    /// loops and to within float rounding otherwise.
    ///
    /// [`loop_cycles`]: MtaProcessor::loop_cycles
    pub fn loop_cycle_parts(&self, desc: &LoopDesc) -> LoopCycleParts {
        let cycles = self.loop_cycles(desc);
        let decision = analyze_loop(desc);
        let issue = desc.total_instructions() / self.config.n_processors as f64;
        let (startup, streams) = if decision.parallel {
            let hw = self.config.streams_per_processor * self.config.n_processors;
            (
                self.config.loop_startup_cycles,
                (desc.iterations as usize).min(hw).max(1),
            )
        } else {
            (0.0, 1)
        };
        LoopCycleParts {
            cycles,
            startup,
            issue,
            stall: (cycles - startup - issue).max(0.0),
            streams,
        }
    }
}

/// Where one loop's cycles went (see [`MtaProcessor::loop_cycle_parts`]).
#[derive(Clone, Copy, Debug)]
pub struct LoopCycleParts {
    /// Total, identical to [`MtaProcessor::loop_cycles`].
    pub cycles: f64,
    pub startup: f64,
    pub issue: f64,
    /// Phantom/no-op issue slots.
    pub stall: f64,
    /// Concurrent streams the loop ran with (1 when serialized).
    pub streams: usize,
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn loop_desc(iters: u64, reduction: bool, pragma: bool) -> LoopDesc {
        LoopDesc {
            name: "l",
            iterations: iters,
            instructions_per_iteration: 20.0,
            memory_fraction: 0.4,
            has_unresolved_reduction: reduction,
            pragma_no_dependence: pragma,
        }
    }

    #[test]
    fn saturation_at_full_streams() {
        let p = MtaProcessor::paper_mta2();
        assert_eq!(p.issue_rate(128), 1.0);
        assert_eq!(p.issue_rate(21), 1.0);
        assert!((p.issue_rate(1) - 1.0 / 21.0).abs() < 1e-12);
        assert!(p.issue_rate(10) < 0.5);
    }

    #[test]
    fn serialized_loop_pays_issue_interval() {
        let p = MtaProcessor::paper_mta2();
        let parallel = p.loop_cycles(&loop_desc(100_000, true, true));
        let serial = p.loop_cycles(&loop_desc(100_000, true, false));
        let ratio = serial / parallel;
        assert!(
            (15.0..22.0).contains(&ratio),
            "serialized loop should be ~21x slower: {ratio:.1}"
        );
    }

    #[test]
    fn few_iterations_underutilize() {
        // A loop with 8 iterations can only feed 8 streams.
        let p = MtaProcessor::paper_mta2();
        let tiny = p.loop_cycles(&loop_desc(8, false, false));
        // 8 streams -> rate 8/21; 160 instructions at that rate + startup.
        let expected = 1500.0 + 160.0 / (8.0 / 21.0);
        assert!((tiny - expected).abs() < 1e-6, "{tiny} vs {expected}");
    }

    #[test]
    fn multiprocessor_scales_saturated_loops() {
        let one = MtaProcessor::new(MtaConfig::paper_mta2());
        let four = MtaProcessor::new(MtaConfig {
            n_processors: 4,
            ..MtaConfig::paper_mta2()
        });
        let d = loop_desc(1_000_000, false, false);
        let speedup = one.loop_cycles(&d) / four.loop_cycles(&d);
        assert!(
            (3.5..=4.0).contains(&speedup),
            "4 processors ≈ 4x on a saturated loop: {speedup:.2}"
        );
    }

    #[test]
    fn cycle_parts_sum_to_loop_cycles() {
        let p = MtaProcessor::paper_mta2();
        for (iters, reduction, pragma) in [
            (2048, false, false),
            (8, false, false),
            (100_000, true, false),
        ] {
            let d = loop_desc(iters, reduction, pragma);
            let parts = p.loop_cycle_parts(&d);
            let total = p.loop_cycles(&d);
            assert_eq!(parts.cycles, total);
            assert!(
                (parts.startup + parts.issue + parts.stall - total).abs() <= 1e-9 * total,
                "parts must partition the loop: {parts:?} vs {total}"
            );
        }
    }

    #[test]
    fn saturated_loop_has_no_stall() {
        // 2048 iterations on 128 streams with interval 21: fully saturated,
        // so every cycle above startup is a useful issue slot.
        let p = MtaProcessor::paper_mta2();
        let parts = p.loop_cycle_parts(&loop_desc(2048, false, false));
        assert_eq!(parts.stall, 0.0, "{parts:?}");
        assert_eq!(parts.streams, 128);
    }

    #[test]
    fn serialized_loop_is_stall_dominated() {
        let p = MtaProcessor::paper_mta2();
        let parts = p.loop_cycle_parts(&loop_desc(100_000, true, false));
        assert_eq!(parts.streams, 1);
        assert_eq!(parts.startup, 0.0);
        assert!(parts.stall > 10.0 * parts.issue, "{parts:?}");
    }

    #[test]
    fn loop_seconds_uses_clock() {
        let p = MtaProcessor::paper_mta2();
        let d = loop_desc(1000, false, false);
        assert!((p.loop_seconds(&d) - p.loop_cycles(&d) / 200e6).abs() < 1e-18);
    }

    #[test]
    fn nonuniform_memory_desaturates_remote_heavy_loops() {
        // The paper's XMT caution: without data placement, remote latency
        // exceeds what 128 streams can hide.
        let uniform = MtaProcessor::new(MtaConfig::xmt(1));
        let blind = MtaProcessor::new(MtaConfig::xmt_nonuniform(1, 0.8));
        let placed = MtaProcessor::new(MtaConfig::xmt_nonuniform(1, 0.05));
        let d = loop_desc(1_000_000, false, false);

        let t_uniform = uniform.loop_cycles(&d);
        let t_blind = blind.loop_cycles(&d);
        let t_placed = placed.loop_cycles(&d);

        assert!(
            t_blind > 1.3 * t_uniform,
            "locality-blind code should lose saturation: {:.2}x",
            t_blind / t_uniform
        );
        // Good placement keeps the effective interval under the stream count.
        assert!(
            t_placed < 1.01 * t_uniform,
            "placed data stays saturated: {:.3}x",
            t_placed / t_uniform
        );
        // Interval math is visible directly.
        assert!(blind.effective_interval(&d) > 128.0);
        assert!(placed.effective_interval(&d) < 128.0);
    }

    #[test]
    fn mta2_unaffected_by_memory_fraction() {
        // Uniform memory: the same loop with different memory mixes costs
        // the same — the property the paper's Figure 9 rests on.
        let p = MtaProcessor::paper_mta2();
        let mut a = loop_desc(10_000, false, false);
        let mut b = loop_desc(10_000, false, false);
        a.memory_fraction = 0.1;
        b.memory_fraction = 0.9;
        assert_eq!(p.loop_cycles(&a), p.loop_cycles(&b));
    }
}
