//! Tagged (full/empty bit) memory.
//!
//! Every word of MTA memory carries a full/empty bit enabling word-granular
//! producer/consumer synchronization: `readfe` blocks until the word is full,
//! reads it, and marks it empty; `writeef` blocks until empty, writes, and
//! marks it full. Bokhari & Sauer's MTA-2 sequence alignment work (cited in
//! the paper's related work) leans on exactly this mechanism, and the MD
//! kernel's cross-stream PE reduction uses it as a per-word lock.
//!
//! The simulator executes streams sequentially, so a "block" that could never
//! be satisfied is a protocol bug and surfaces as an error.

/// A full/empty synchronization violation (would block forever in the
/// sequential simulation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FullEmptyError {
    /// `readfe` on an empty word.
    ReadOfEmpty { index: usize },
    /// `writeef` on a full word.
    WriteOfFull { index: usize },
}

impl std::fmt::Display for FullEmptyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ReadOfEmpty { index } => {
                write!(f, "readfe on empty word {index} would block forever")
            }
            Self::WriteOfFull { index } => {
                write!(f, "writeef on full word {index} would block forever")
            }
        }
    }
}

impl std::error::Error for FullEmptyError {}

/// A bank of f64 words, each tagged with a full/empty bit.
#[derive(Clone, Debug)]
pub struct FullEmptyMemory {
    words: Vec<f64>,
    full: Vec<bool>,
}

impl FullEmptyMemory {
    /// All words initialized full with the given value (the normal state of
    /// ordinary data).
    pub fn new_full(len: usize, value: f64) -> Self {
        Self {
            words: vec![value; len],
            full: vec![true; len],
        }
    }

    /// All words empty (producer/consumer handoff cells).
    pub fn new_empty(len: usize) -> Self {
        Self {
            words: vec![0.0; len],
            full: vec![false; len],
        }
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    pub fn is_full(&self, i: usize) -> bool {
        self.full[i]
    }

    /// Ordinary (unsynchronized) read; ignores the tag bit.
    pub fn read(&self, i: usize) -> f64 {
        self.words[i]
    }

    /// Ordinary write; leaves the word full.
    pub fn write(&mut self, i: usize, v: f64) {
        self.words[i] = v;
        self.full[i] = true;
    }

    /// `readfe`: read a full word and mark it empty.
    pub fn readfe(&mut self, i: usize) -> Result<f64, FullEmptyError> {
        if !self.full[i] {
            return Err(FullEmptyError::ReadOfEmpty { index: i });
        }
        self.full[i] = false;
        Ok(self.words[i])
    }

    /// `writeef`: write an empty word and mark it full.
    pub fn writeef(&mut self, i: usize, v: f64) -> Result<(), FullEmptyError> {
        if self.full[i] {
            return Err(FullEmptyError::WriteOfFull { index: i });
        }
        self.words[i] = v;
        self.full[i] = true;
        Ok(())
    }

    /// Atomic accumulate implemented the MTA way: lock the word by reading it
    /// empty, add, write it back full. This is how concurrent streams safely
    /// update the shared PE accumulator.
    pub fn atomic_add(&mut self, i: usize, v: f64) -> Result<(), FullEmptyError> {
        let old = self.readfe(i)?;
        self.writeef(i, old + v)
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn readfe_writeef_handoff() {
        let mut m = FullEmptyMemory::new_empty(2);
        assert!(!m.is_full(0));
        m.writeef(0, 3.5).unwrap();
        assert!(m.is_full(0));
        assert_eq!(m.readfe(0).unwrap(), 3.5);
        assert!(!m.is_full(0));
    }

    #[test]
    fn blocking_violations_detected() {
        let mut m = FullEmptyMemory::new_empty(1);
        assert_eq!(m.readfe(0), Err(FullEmptyError::ReadOfEmpty { index: 0 }));
        m.writeef(0, 1.0).unwrap();
        assert_eq!(
            m.writeef(0, 2.0),
            Err(FullEmptyError::WriteOfFull { index: 0 })
        );
    }

    #[test]
    fn atomic_add_accumulates() {
        let mut m = FullEmptyMemory::new_full(1, 10.0);
        m.atomic_add(0, 2.5).unwrap();
        m.atomic_add(0, -0.5).unwrap();
        assert_eq!(m.read(0), 12.0);
        assert!(m.is_full(0), "lock released after accumulate");
    }

    #[test]
    fn ordinary_access_ignores_tags() {
        let mut m = FullEmptyMemory::new_empty(1);
        m.write(0, 7.0);
        assert_eq!(m.read(0), 7.0);
        assert!(m.is_full(0));
    }

    #[test]
    fn error_messages_name_the_word() {
        let mut m = FullEmptyMemory::new_empty(3);
        let e = m.readfe(2).unwrap_err();
        assert!(e.to_string().contains("word 2"));
    }
}
