//! vet-path: crates/sim-perf/src/fixture.rs
//!
//! Seeded observer-purity violation: the observability layer charging a
//! cost. Counters must be free — counters-on stays bitwise-identical to
//! counters-off.

pub fn sample(spe: &mut Spe) -> f64 {
    spe.charge(4.0); // vet-expect(observer-purity)
    spe.cycles()
}
