//! vet-path: crates/md-core/src/shared_eval.rs
//!
//! Seeded eval-purity violations: the shared evaluator charging costs.
//! Physics-once execution (DESIGN.md §17) only stays bitwise-safe if the
//! shared kernel computes physics and nothing else — simulated time charged
//! here would be double-counted into every device that replays the result.

pub fn row(spe: &mut Spe, r2: f32) -> f32 {
    spe.charge(4.0); // vet-expect(eval-purity)
    1.0 / r2
}

pub fn slice(s: &mut Session) -> f64 {
    s.charge_cycles(4, 7) // vet-expect(eval-purity)
}

/// Pure physics is the sanctioned shape: the caller's replay layer charges.
pub fn pair_energy(inv_r2: f32) -> f32 {
    let s6 = inv_r2 * inv_r2 * inv_r2;
    s6 * (s6 - 1.0)
}
