//! vet-path: crates/cell-be/src/fixture.rs
//!
//! Seeded violations of the v1-ported device rules: hash collection in a
//! device crate, unwrap on a hot path, and a buffer mutator that reports no
//! cost.

use std::collections::HashMap; // vet-expect(determinism)

pub fn pick(v: &[f32]) -> f32 {
    *v.first().unwrap() // vet-expect(panic-discipline)
}

pub fn scribble(buf: &mut [f32]) { // vet-expect(cost-conservation)
    buf[0] = 0.0;
}
