//! vet-path: crates/opteron/src/fixture.rs
//!
//! Seeded dead-waiver violations: one waiver still suppresses a real
//! finding (legal), one suppresses nothing, and one names a rule that does
//! not exist. The stale two are findings so the waiver inventory cannot rot.

pub fn live(v: &[f32]) -> f32 {
    *v.first().unwrap() // sim-vet: allow(panic-discipline): fixture-sanctioned
}

pub fn stale() -> u32 {
    0 // sim-vet: allow(panic-discipline): nothing panics -- vet-expect(dead-waiver)
}

pub fn typo() -> u32 {
    0 // sim-vet: allow(determinsim): misspelled rule -- vet-expect(dead-waiver)
}
