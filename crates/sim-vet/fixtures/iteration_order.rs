//! vet-path: crates/md-core/src/fixture.rs
//!
//! Seeded iteration-order violations: iterating a `HashMap` field and
//! draining a `HashSet` parameter. Point lookups stay legal — only
//! *iteration* is order-nondeterministic.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    pub entries: HashMap<u64, f32>,
}

impl Registry {
    pub fn total(&self) -> f32 {
        let mut acc = 0.0f32;
        for v in self.entries.values() { // vet-expect(iteration-order)
            acc += v;
        }
        acc
    }

    pub fn lookup(&self, k: u64) -> Option<f32> {
        self.entries.get(&k).copied()
    }
}

pub fn drain_all(mut seen: HashSet<u64>) -> usize {
    seen.drain().count() // vet-expect(iteration-order)
}
