//! vet-path: crates/gpu/src/fixture.rs
//!
//! Seeded sim-time unit violations: simulated seconds divided by a host
//! wall-clock value in one expression, and a bare float literal folded into
//! a sim-time accumulator outside a cost-model module. Adding a *named*
//! cost-model field is the sanctioned shape.

pub fn speedup(sim_seconds: f64, wall_seconds: f64) -> f64 {
    sim_seconds / wall_seconds // vet-expect(sim-time-units)
}

pub fn accumulate(mut sim_seconds: f64) -> f64 {
    sim_seconds += 1.5e-6; // vet-expect(sim-time-units)
    sim_seconds
}

pub fn sanctioned(mut sim_seconds: f64, dispatch_overhead_s: f64) -> f64 {
    sim_seconds += dispatch_overhead_s;
    sim_seconds
}
