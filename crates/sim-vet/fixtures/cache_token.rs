//! vet-path: crates/harness/src/device.rs
//!
//! Seeded cache-token violations: the config struct gained a field
//! (`jit_startup_s`) and the enum gained a variant knob (`mode`) that the
//! `cache_token()` encoding never mentions — exactly the drift that would
//! silently serve stale cached sweep results. Findings land at the field
//! definitions.

pub struct FixtureGpuConfig {
    pub clock_hz: f64,
    pub n_pipes: usize,
    pub jit_startup_s: f64, // vet-expect(cache-token)
}

pub enum DeviceKind {
    Gpu { model: u32 },
    Mta { mode: u8 }, // vet-expect(cache-token)
}

impl DeviceKind {
    pub fn cache_token(&self) -> String {
        let c: FixtureGpuConfig = fixture_config();
        format!("gpu:model={}:clk={}:pipes={}", 0, c.clock_hz, c.n_pipes)
    }
}
