//! vet-path: crates/md-core/src/scenario.rs
//!
//! Seeded cache-token violation on a scenario struct: the spec gained a
//! `precision` knob that its own `cache_token()` never encodes, so a warm
//! sweep cache would serve one precision policy's results for another.
//! The struct *self* type is an expansion root (not just the types
//! constructed in the body), which is what catches this drift.

pub struct FixtureScenarioSpec {
    pub potential: u32,
    pub ensemble: u32,
    pub precision: u32, // vet-expect(cache-token)
}

impl FixtureScenarioSpec {
    pub fn cache_token(&self) -> String {
        format!("{}/{}", self.potential, self.ensemble)
    }
}
