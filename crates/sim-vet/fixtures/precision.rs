//! vet-path: crates/gpu/src/shader.rs
//!
//! Seeded precision violation inside a declared f32 kernel module.

pub fn lj(r2: f32) -> f32 {
    let e: f64 = 4.0; // vet-expect(precision-discipline)
    (e as f32) * r2
}
