//! vet-path: crates/sim-obs/src/fixture.rs
//!
//! Seeded observer-purity violations in the run-ledger crate: the ledger
//! records what a run did; it must never charge simulated cost itself. A
//! run with a ledger attached stays bitwise-identical to one without.

pub fn record(spe: &mut Spe, ledger: &mut RunLedger) -> f64 {
    spe.charge(2.0); // vet-expect(observer-purity)
    let cycles = charge_cycles(4); // vet-expect(observer-purity)
    ledger.counter("spe", "cycles", 0.0, cycles, "cycles");
    spe.cycles()
}
