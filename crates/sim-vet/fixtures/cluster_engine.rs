//! vet-path: crates/sim-cluster/src/fixture.rs
//!
//! Seeded cluster-engine violations under the Engine profile: the
//! interconnect cost model gained a field (`migration_bytes_per_atom`) the
//! `cache_token()` encoding never mentions; the halo exchange reads the
//! host wall clock; recovery time is charged through the fault session
//! instead of accumulated observably; and a literal latency is folded
//! straight into a sim-time accumulator outside a cost-model module.

pub struct FixtureInterconnect {
    pub latency_s: f64,
    pub bandwidth_bytes_per_s: f64,
    pub migration_bytes_per_atom: f64, // vet-expect(cache-token)
}

pub struct FixtureClusterKind {
    pub nodes: usize,
}

impl FixtureClusterKind {
    pub fn cache_token(&self) -> String {
        let net: FixtureInterconnect = fixture_net();
        format!(
            "cluster:nodes={},latency_s={},bandwidth_bytes_per_s={}",
            self.nodes, net.latency_s, net.bandwidth_bytes_per_s
        )
    }

    pub fn exchange_halo(&self, session: &mut FixtureSession) -> f64 {
        let started = Instant::now(); // vet-expect(determinism)
        session.charge(5.0e-6); // vet-expect(observer-purity)
        let mut sim_seconds = 0.0;
        sim_seconds += 1.0e-6; // vet-expect(sim-time-units)
        let _ = started;
        sim_seconds
    }
}
