//! `sim-vet` — a workspace invariant linter for the device simulators.
//!
//! The paper's evaluation methodology only works because every device model
//! is *numerically checkable* against the f64 reference kernel while charging
//! deterministic cycle costs. Four source-level disciplines keep that true,
//! and this crate enforces them mechanically:
//!
//! | rule | invariant |
//! |---|---|
//! | `precision-discipline` | f32 device kernel modules contain no `f64` types, casts, or literals — single precision *is* the modeled hardware |
//! | `determinism` | device crates never iterate `HashMap`/`HashSet` — cycle accounting must be order-stable run to run |
//! | `panic-discipline` | device hot paths don't `unwrap()`/`expect(`/`panic!` — failures must surface as typed errors, not aborts that skip cost accounting |
//! | `cost-conservation` | `pub fn`s in device crates that mutate buffers report a cost (no `&mut`-buffer mutators returning `()`) — every data movement is charged |
//!
//! The linter is a *lightweight line/token scanner*, not a full parser: it
//! strips comments and string literals, tracks `#[cfg(test)]` modules (rules
//! apply to shipping code only), and matches rule-specific tokens. Known-good
//! exceptions are waived inline:
//!
//! ```text
//! let cycles: f64 = ...; // sim-vet: allow(precision-discipline): cycle accounting, not physics
//! // sim-vet: begin-allow(precision-discipline): explicit DP kernel section
//! ...
//! // sim-vet: end-allow(precision-discipline)
//! // sim-vet: allow-file(determinism): <file-wide reason>
//! ```
//!
//! A bare-line waiver (`// sim-vet: allow(rule)` alone on a line) applies to
//! the next line. The binary (`cargo run -p sim-vet`) scans the workspace and
//! exits nonzero with `file:line` diagnostics for every unwaived finding.

mod rules;
mod scanner;
mod waiver;

pub use rules::{applicable_rules, Rule};
pub use scanner::strip_comments_and_strings;
pub use waiver::Waivers;

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation (or waived near-violation) at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// True if an inline/region/file waiver covers this finding.
    pub waived: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}{}",
            self.path,
            self.line,
            self.rule.name(),
            self.message,
            if self.waived { " (waived)" } else { "" }
        )
    }
}

/// Result of linting a whole tree.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived)
    }

    pub fn is_clean(&self) -> bool {
        self.unwaived().next().is_none()
    }
}

/// Lint one file's source text. `rel_path` selects which rules apply (see
/// [`applicable_rules`]); the text never touches the filesystem, so tests can
/// lint synthetic sources.
pub fn scan_source(rel_path: &str, text: &str) -> Vec<Finding> {
    let rules = applicable_rules(rel_path);
    if rules.is_empty() {
        return Vec::new();
    }
    let waivers = Waivers::parse(text);
    let stripped = strip_comments_and_strings(text);
    let mut findings = Vec::new();
    for rule in rules {
        rule.check(rel_path, &stripped, &mut findings);
    }
    for f in &mut findings {
        f.waived = waivers.covers(f.rule, f.line);
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Lint every `.rs` file under `root`, skipping build output and VCS state.
///
/// `root` should be the workspace root; paths in the report are relative to
/// it. Returns an error only for I/O failures, not findings.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for path in files {
        let text = std::fs::read_to_string(root.join(&path))?;
        report.files_scanned += 1;
        report.findings.extend(scan_source(&path, &text));
    }
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "results" | ".github") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(relative_slash_path(root, &path));
        }
    }
    Ok(())
}

fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = "pub fn transfer(len: usize) -> f32 { len as f32 }\n";
        assert!(scan_source("crates/cell-be/src/kernel.rs", src).is_empty());
    }

    #[test]
    fn non_device_paths_are_out_of_scope() {
        let src = "pub fn host() -> f64 { std::collections::HashMap::<u8, u8>::new(); 0.0 }\n";
        assert!(scan_source("crates/md-core/src/forces.rs", src).is_empty());
        assert!(scan_source("src/cli.rs", src).is_empty());
    }

    #[test]
    fn findings_are_ordered_and_displayed() {
        let src = "use std::collections::HashMap;\nfn f() { panic!(\"x\") }\n";
        let found = scan_source("crates/gpu/src/shader.rs", src);
        assert!(found.len() >= 2);
        assert!(found.windows(2).all(|w| w[0].line <= w[1].line));
        let shown = found[0].to_string();
        assert!(shown.contains("crates/gpu/src/shader.rs:1:"), "{shown}");
        assert!(shown.contains("[determinism]"), "{shown}");
    }
}
