//! `sim-vet` — a workspace invariant linter for the device simulators.
//!
//! The paper's evaluation methodology only works because every device model
//! is *numerically checkable* against the f64 reference kernel while charging
//! deterministic cycle costs. Source-level disciplines keep that true, and
//! this crate enforces them mechanically. v2 replaced the v1 line/regex
//! scanner with a real analysis pipeline:
//!
//! 1. **[`lexer`]** — a Rust token stream with byte spans and line/column
//!    positions. Rules match whole tokens, so `buf64` no longer trips the
//!    f64 check and a waiver inside a string literal waives nothing.
//! 2. **[`items`]** — brace-matched item extraction: structs with typed
//!    fields, enums with variants, fns with signatures and body spans,
//!    `#[cfg(test)]` gating.
//! 3. **[`symbols`]** — a workspace-wide symbol table, so rules can follow a
//!    type from a `DeviceKind` variant in `harness` to a cost-model struct
//!    three crates away.
//! 4. **[`rules`]** — per-file token rules plus cross-file semantic rules
//!    (`cache-token`, `iteration-order`, `sim-time-units`, `dead-waiver`).
//! 5. **[`discover`]** — scan targets come from the workspace `Cargo.toml`
//!    members and each member's `[package.metadata.simvet]` profile, not a
//!    hand-maintained directory list.
//!
//! Known-good exceptions are waived inline:
//!
//! ```text
//! let cycles: f64 = ...; // sim-vet: allow(precision-discipline): cycle accounting, not physics
//! // sim-vet: begin-allow(precision-discipline): explicit DP kernel section
//! ...
//! // sim-vet: end-allow(precision-discipline)
//! // sim-vet: allow-file(determinism): <file-wide reason>
//! ```
//!
//! A bare-line waiver (`// sim-vet: allow(rule)` alone on a line) applies to
//! the next line. A waiver that no longer suppresses anything is itself a
//! finding (`dead-waiver`), so the exception inventory cannot rot. The
//! binary (`cargo run -p sim-vet`) scans the workspace and exits nonzero
//! with `file:line` diagnostics for every unwaived finding; `--format
//! json|sarif` emits machine-readable reports.

pub mod discover;
pub mod items;
pub mod lexer;
pub mod output;
pub mod rules;
mod scanner;
pub mod selfcheck;
pub mod symbols;
pub mod waiver;

pub use discover::{discover_targets, Profile, Target};
pub use rules::{applicable_rules, Rule};
pub use scanner::strip_comments_and_strings;
pub use waiver::Waivers;

use rules::{check_cache_token, check_rule, profile_rules, AnalyzedFile, FileContext};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use symbols::SymbolTable;

/// One rule violation (or waived near-violation) at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (byte-based).
    pub col: usize,
    pub message: String,
    /// True if an inline/region/file waiver covers this finding.
    pub waived: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}{}",
            self.path,
            self.line,
            self.rule.name(),
            self.message,
            if self.waived { " (waived)" } else { "" }
        )
    }
}

/// Result of linting a whole tree.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived)
    }

    pub fn is_clean(&self) -> bool {
        self.unwaived().next().is_none()
    }
}

/// Which rules bind `rel_path` given the discovered targets; empty when the
/// path is out of scope. With no targets (manifest-less tree), falls back to
/// the built-in path map in [`applicable_rules`].
fn rules_for_path(targets: &[Target], rel_path: &str) -> Vec<Rule> {
    if targets.is_empty() {
        return applicable_rules(rel_path);
    }
    // Longest-prefix match, so `crates/cell-be` wins over the root `.`.
    let mut best: Option<(&Target, usize)> = None;
    for t in targets {
        let prefix = if t.dir == "." {
            String::new()
        } else {
            format!("{}/", t.dir)
        };
        if rel_path.starts_with(&prefix) && best.is_none_or(|(_, l)| prefix.len() > l) {
            best = Some((t, prefix.len()));
        }
    }
    let Some((target, prefix_len)) = best else {
        return Vec::new();
    };
    // Invariant rules bind shipping code only.
    if !rel_path[prefix_len..].starts_with("src/") {
        return Vec::new();
    }
    match target.profile {
        Some(p) => profile_rules(
            p,
            target.f32_kernel_modules.iter().any(|m| m == rel_path),
            target.shared_eval_modules.iter().any(|m| m == rel_path),
        ),
        None => Vec::new(),
    }
}

/// Run the full pipeline over in-memory sources. `targets` scopes rules per
/// file (empty → built-in path map). This is the engine behind
/// [`scan_source`], [`scan_workspace`], and the fixture selfcheck.
pub fn analyze_sources(sources: &[(String, String)], targets: &[Target]) -> Report {
    struct Prepared {
        path: String,
        tokens: Vec<lexer::Token>,
        code: Vec<usize>,
        items: items::Items,
        waivers: Waivers,
        rules: Vec<Rule>,
    }
    let mut prepared = Vec::with_capacity(sources.len());
    let mut symbols = SymbolTable::default();
    for (path, text) in sources {
        let tokens = lexer::lex(text);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| lexer::is_code(&tokens[i]))
            .collect();
        let file_items = items::extract(text, &tokens);
        symbols.add_file(path, &file_items);
        prepared.push(Prepared {
            path: path.clone(),
            tokens,
            code,
            items: file_items,
            waivers: Waivers::parse(text),
            rules: rules_for_path(targets, path),
        });
    }

    let mut findings = Vec::new();
    // Per-file rules.
    for (p, (_, text)) in prepared.iter().zip(sources) {
        let ctx = FileContext {
            path: &p.path,
            src: text,
            tokens: &p.tokens,
            code: &p.code,
            items: &p.items,
        };
        for &rule in &p.rules {
            check_rule(rule, &ctx, &symbols, &mut findings);
        }
    }
    // Workspace rules: cache-token completeness over in-scope files only
    // (exempt crates and test trees keep v1's out-of-scope behavior).
    let in_scope: Vec<AnalyzedFile<'_>> = prepared
        .iter()
        .zip(sources)
        .filter(|(p, _)| !p.rules.is_empty())
        .map(|(p, (_, text))| AnalyzedFile {
            path: &p.path,
            src: text,
            tokens: &p.tokens,
            code: &p.code,
            items: &p.items,
        })
        .collect();
    check_cache_token(&in_scope, &symbols, &mut findings);
    // Unclassified workspace members are findings: coverage can't rot.
    for t in targets {
        if t.profile.is_none() {
            let detail = match &t.bad_profile {
                Some(bad) => format!("unrecognized simvet profile `{bad}`"),
                None => "no [package.metadata.simvet] profile".to_string(),
            };
            findings.push(Finding {
                rule: Rule::TargetDiscovery,
                path: discover::join_rel(&t.dir, "Cargo.toml"),
                line: 1,
                col: 1,
                message: format!(
                    "{detail} — every member must opt into a discipline (device|observer|engine|core|host|exempt)"
                ),
                waived: false,
            });
        }
    }

    // Waiver marking, using the waivers of the file each finding lands in
    // (cache-token findings land at field *definitions*, possibly far from
    // the cache_token fn).
    let waivers_by_path: BTreeMap<&str, &Waivers> = prepared
        .iter()
        .map(|p| (p.path.as_str(), &p.waivers))
        .collect();
    for f in &mut findings {
        if let Some(w) = waivers_by_path.get(f.path.as_str()) {
            f.waived = w.covers(f.rule, f.line);
        }
    }

    // Dead-waiver audit: every directive in an in-scope file must still
    // suppress at least one finding.
    let mut dead = Vec::new();
    for p in &prepared {
        if p.rules.is_empty() {
            continue;
        }
        for e in p.waivers.entries() {
            let verdict = match e.rule {
                None => Some(format!(
                    "waiver names unknown rule `{}` — it can never suppress anything",
                    e.raw
                )),
                Some(Rule::DeadWaiver) => None,
                Some(rule) => {
                    let used = findings
                        .iter()
                        .any(|f| f.path == p.path && f.rule == rule && e.covers(f.rule, f.line));
                    (!used).then(|| {
                        format!(
                            "dead waiver: `allow({})` no longer suppresses any finding — remove it",
                            e.raw
                        )
                    })
                }
            };
            if let Some(message) = verdict {
                dead.push(Finding {
                    rule: Rule::DeadWaiver,
                    path: p.path.clone(),
                    line: e.line,
                    col: 1,
                    waived: p.waivers.covers(Rule::DeadWaiver, e.line),
                    message,
                });
            }
        }
    }
    findings.extend(dead);

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Report {
        findings,
        files_scanned: sources.len(),
    }
}

/// Lint one file's source text. `rel_path` selects which rules apply via the
/// built-in path map (see [`applicable_rules`]); the text never touches the
/// filesystem, so tests can lint synthetic sources.
pub fn scan_source(rel_path: &str, text: &str) -> Vec<Finding> {
    let sources = vec![(rel_path.to_string(), text.to_string())];
    analyze_sources(&sources, &[]).findings
}

/// Lint every `.rs` file under `root`, skipping build output, VCS state, and
/// seeded `fixtures/` trees. Scan targets and rule scoping come from the
/// workspace manifest; a tree without one falls back to the built-in path
/// map (synthetic test trees). Returns an error only for I/O failures.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let targets = discover_targets(root)?;
    let mut files = Vec::new();
    discover::collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let text = std::fs::read_to_string(root.join(&path))?;
        sources.push((path, text));
    }
    Ok(analyze_sources(&sources, &targets))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = "pub fn transfer(len: usize) -> f32 { len as f32 }\n";
        assert!(scan_source("crates/cell-be/src/kernel.rs", src).is_empty());
    }

    #[test]
    fn non_device_paths_are_out_of_scope() {
        let src = "pub fn host() -> f64 { let m = std::collections::HashMap::<u8, u8>::new(); m.len() as f64 }\n";
        assert!(scan_source("crates/vecmath/src/forces.rs", src).is_empty());
        assert!(scan_source("src/cli.rs", src).is_empty());
    }

    #[test]
    fn findings_are_ordered_and_displayed() {
        let src = "use std::collections::HashMap;\nfn f() { panic!(\"x\") }\n";
        let found = scan_source("crates/gpu/src/shader.rs", src);
        assert!(found.len() >= 2);
        assert!(found.windows(2).all(|w| w[0].line <= w[1].line));
        let shown = found[0].to_string();
        assert!(shown.contains("crates/gpu/src/shader.rs:1:"), "{shown}");
        assert!(shown.contains("[determinism]"), "{shown}");
    }

    #[test]
    fn cache_token_rule_demands_every_cost_model_field() {
        let sources = vec![
            (
                "crates/harness/src/device.rs".to_string(),
                r#"
pub enum DeviceKind {
    Opteron,
}
impl DeviceKind {
    pub fn cache_token(&self) -> String {
        let c = OpteronConfig::paper_node();
        format!("opteron:clk={}:cpf={}", c.clock_hz, c.cycles_per_flop)
    }
}
"#
                .to_string(),
            ),
            (
                "crates/opteron/src/config.rs".to_string(),
                "pub struct OpteronConfig {\n    pub clock_hz: f64,\n    pub cycles_per_flop: f64,\n    pub prefetch: bool,\n}\n"
                    .to_string(),
            ),
        ];
        let report = analyze_sources(&sources, &[]);
        let ct: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::CacheToken)
            .collect();
        assert_eq!(ct.len(), 1, "{:?}", report.findings);
        // The finding lands at the missing field's definition site.
        assert_eq!(ct[0].path, "crates/opteron/src/config.rs");
        assert_eq!(ct[0].line, 4);
        assert!(ct[0].message.contains("prefetch"), "{}", ct[0].message);
    }

    #[test]
    fn cache_token_rule_follows_nested_structs_and_let_ascriptions() {
        let sources = vec![
            (
                "crates/harness/src/device.rs".to_string(),
                r#"
impl DeviceKind {
    pub fn cache_token(&self) -> String {
        let c: CellConfig = config();
        format!("cell:clk={}:lj={}", c.clock_hz, c.costs.lj_eval)
    }
}
"#
                .to_string(),
            ),
            (
                "crates/cell-be/src/config.rs".to_string(),
                "pub struct CellConfig {\n    pub clock_hz: f64,\n    pub costs: SpeCostModel,\n}\npub struct SpeCostModel {\n    pub lj_eval: f64,\n    pub per_atom: f64,\n}\n"
                    .to_string(),
            ),
        ];
        let report = analyze_sources(&sources, &[]);
        let ct: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::CacheToken)
            .collect();
        // `per_atom` (nested, two levels down) is missing; everything else is
        // mentioned either as a field access or inside the format string.
        assert_eq!(ct.len(), 1, "{ct:?}");
        assert!(ct[0].message.contains("per_atom"));
    }

    #[test]
    fn dead_waiver_is_flagged_and_live_waiver_is_not() {
        let live =
            "use std::collections::HashMap; // sim-vet: allow(determinism): keyed by atom id\n";
        let found = scan_source("crates/mta/src/kernel.rs", live);
        assert!(found
            .iter()
            .any(|f| f.rule == Rule::Determinism && f.waived));
        assert!(
            found.iter().all(|f| f.rule != Rule::DeadWaiver),
            "{found:?}"
        );

        let dead = "pub fn f() -> u32 { 0 } // sim-vet: allow(determinism): nothing here\n";
        let found = scan_source("crates/mta/src/kernel.rs", dead);
        let dw: Vec<&Finding> = found
            .iter()
            .filter(|f| f.rule == Rule::DeadWaiver)
            .collect();
        assert_eq!(dw.len(), 1, "{found:?}");
        assert_eq!(dw[0].line, 1);
        assert!(!dw[0].waived);
    }

    #[test]
    fn unknown_rule_waiver_is_a_dead_waiver_finding() {
        let src = "// sim-vet: allow(determinsim): typo\npub fn f() -> u32 { 0 }\n";
        let found = scan_source("crates/gpu/src/device.rs", src);
        assert!(
            found
                .iter()
                .any(|f| f.rule == Rule::DeadWaiver && f.message.contains("determinsim")),
            "{found:?}"
        );
    }

    #[test]
    fn unclassified_member_is_a_target_discovery_finding() {
        let targets = vec![Target {
            dir: "crates/newthing".to_string(),
            profile: None,
            bad_profile: None,
            f32_kernel_modules: Vec::new(),
            shared_eval_modules: Vec::new(),
        }];
        let sources = vec![(
            "crates/newthing/src/lib.rs".to_string(),
            "pub fn f() {}\n".to_string(),
        )];
        let report = analyze_sources(&sources, &targets);
        let td: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::TargetDiscovery)
            .collect();
        assert_eq!(td.len(), 1);
        assert_eq!(td[0].path, "crates/newthing/Cargo.toml");
    }

    #[test]
    fn waiver_in_string_literal_does_not_waive() {
        let src = "pub fn f() { let s = \"x // sim-vet: allow(panic-discipline)\"; s.chars().next().unwrap(); }\n";
        let found = scan_source("crates/cell-be/src/dma.rs", src);
        let panic = found
            .iter()
            .find(|f| f.rule == Rule::PanicDiscipline)
            .expect("panic finding");
        assert!(!panic.waived);
    }
}
