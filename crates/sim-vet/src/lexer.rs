//! A Rust lexer producing a token stream with byte spans and line/column
//! positions — the foundation the v2 rules run on.
//!
//! This replaces v1's "strip comments and strings, then substring-match"
//! approach: rules now see *tokens*, so `HashMap` inside a longer identifier,
//! a path segment in prose, or a pattern inside a macro-generated name can
//! never fire. Comments are kept as tokens (the waiver parser reads them);
//! string literals are kept with their content (the cache-token rule reads
//! `{field}` interpolations out of format strings).
//!
//! It is a *lexer*, not a parser: it recognizes identifiers, literals,
//! lifetimes, comments, and multi-char operators, and leaves grammar to the
//! item extractor ([`crate::items`]).

/// What a token is. Content lives in the source text; tokens carry spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `struct`, `HashMap`, `r#match`, …).
    Ident,
    /// Integer or float literal, suffix included (`1.0f64`, `0x10u32`).
    Number,
    /// String/byte-string literal (ordinary or raw), quotes included.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// `// …` or `//! …` or `/// …` comment, newline excluded.
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// Operator or delimiter; multi-char forms (`::`, `->`, `+=`, …) are one
    /// token.
    Punct,
}

/// One lexed token: kind plus location. `text` is borrowed back out of the
/// source via [`Token::text`].
#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte range in the source.
    pub start: usize,
    pub end: usize,
    /// 1-based source line of the token's first byte.
    pub line: usize,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: usize,
}

impl Token {
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    pub fn is(&self, src: &str, kind: TokenKind, text: &str) -> bool {
        self.kind == kind && self.text(src) == text
    }
}

/// Multi-char operators, longest first so greedy matching is correct.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex `src` into a token vector. Never fails: unexpected bytes become
/// single-char `Punct` tokens, unterminated literals run to end of input —
/// a linter must degrade gracefully on code that doesn't compile yet.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
        out: Vec::with_capacity(src.len() / 4),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    b: &'s [u8],
    i: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(1),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.i),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                _ if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Advance `n` bytes, tracking line/col.
    fn bump(&mut self, n: usize) {
        for _ in 0..n {
            if self.i >= self.b.len() {
                break;
            }
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.i += 1;
        }
    }

    fn emit_from(&mut self, kind: TokenKind, start: usize, line: usize, col: usize) {
        self.out.push(Token {
            kind,
            start,
            end: self.i,
            line,
            col,
        });
    }

    fn line_comment(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col);
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.bump(1);
        }
        self.emit_from(TokenKind::LineComment, start, line, col);
    }

    fn block_comment(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col);
        let mut depth = 0usize;
        while self.i < self.b.len() {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump(2);
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump(2);
                if depth == 0 {
                    break;
                }
            } else {
                self.bump(1);
            }
        }
        self.emit_from(TokenKind::BlockComment, start, line, col);
    }

    /// Ordinary (or byte) string starting at the opening quote; `start` may
    /// precede `self.i` when a `b` prefix was already consumed.
    fn string(&mut self, start: usize) {
        let (line, col) = (self.line, self.col);
        self.bump(1); // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.bump(2),
                b'"' => {
                    self.bump(1);
                    break;
                }
                _ => self.bump(1),
            }
        }
        self.emit_from(TokenKind::Str, start, line, col);
    }

    /// `r"…"`, `r#"…"#`, `br"…"`, `b"…"` — returns false (consuming nothing)
    /// when the `r`/`b` at the cursor is just an identifier start.
    fn raw_or_byte_string(&mut self) -> bool {
        let start = self.i;
        let mut j = self.i;
        if self.b[j] == b'b' {
            j += 1;
        }
        let raw = self.b.get(j) == Some(&b'r');
        if raw {
            j += 1;
        }
        let mut hashes = 0;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.b.get(j) != Some(&b'"') || (!raw && hashes > 0) {
            return false;
        }
        if !raw {
            // b"…": plain escape rules.
            let (line, col) = (self.line, self.col);
            self.bump(j - self.i); // the `b`
            let _ = (line, col);
            self.string(start);
            return true;
        }
        let (line, col) = (self.line, self.col);
        self.bump(j + 1 - self.i); // prefix + opening quote
        'scan: while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                let mut h = 0;
                while h < hashes && self.peek(1 + h) == Some(b'#') {
                    h += 1;
                }
                if h == hashes {
                    self.bump(1 + hashes);
                    break 'scan;
                }
            }
            self.bump(1);
        }
        self.emit_from(TokenKind::Str, start, line, col);
        true
    }

    /// `'x'` / `'\n'` are char literals; `'a` in `&'a str` or `'outer:` is a
    /// lifetime/label. Disambiguation: a lifetime is `'` + ident not followed
    /// by a closing `'`.
    fn char_or_lifetime(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col);
        let is_char = match self.peek(1) {
            Some(b'\\') => true,
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() => {
                // `'a'` char vs `'a` lifetime: look for the closing quote
                // right after one identifier char.
                self.peek(2) == Some(b'\'')
            }
            Some(_) => true, // `'('` etc.
            None => false,
        };
        if is_char {
            self.bump(1); // opening quote
                          // Scan to the closing quote, consuming escapes (`'\u{1f}'`) and
                          // whole UTF-8 sequences (`'π'`); bounded so an unterminated
                          // quote can't swallow the file.
            let mut budget = 12usize;
            loop {
                match self.peek(0) {
                    None => break,
                    Some(b'\'') => {
                        self.bump(1);
                        break;
                    }
                    Some(b'\\') => self.bump(2),
                    Some(c) if c >= 0x80 => {
                        self.bump(1);
                        while self.peek(0).is_some_and(|b| b & 0xC0 == 0x80) {
                            self.bump(1);
                        }
                    }
                    Some(_) => self.bump(1),
                }
                budget = budget.saturating_sub(1);
                if budget == 0 {
                    break;
                }
            }
            self.emit_from(TokenKind::Char, start, line, col);
        } else {
            self.bump(1);
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.bump(1);
            }
            self.emit_from(TokenKind::Lifetime, start, line, col);
        }
    }

    fn ident(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col);
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.bump(1);
        }
        self.emit_from(TokenKind::Ident, start, line, col);
    }

    /// Number literal with suffix: `1_000`, `0xFF`, `1.5e-3`, `1.0f64`,
    /// `2.5f32`, `10usize`. `1.` followed by an identifier or `.` is left as
    /// integer + punct (`1..n`, `x.1.0` tuple indexing is close enough for a
    /// linter).
    fn number(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col);
        let radix_prefix = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'));
        if radix_prefix {
            self.bump(2);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump(1);
            }
            self.emit_from(TokenKind::Number, start, line, col);
            return;
        }
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_digit() || c == b'_')
        {
            self.bump(1);
        }
        // Fraction: only when a digit follows the dot (not `1..` or `1.f()`).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump(1);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                self.bump(1);
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            self.bump(2);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                self.bump(1);
            }
        }
        // Type suffix (`f32`, `f64`, `u8`, `usize`, …).
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump(1);
        }
        self.emit_from(TokenKind::Number, start, line, col);
    }

    fn punct(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col);
        // Non-ASCII in code position (a Unicode ident char, `π` in a const
        // name, stray bytes): consume the whole UTF-8 sequence so the cursor
        // never lands inside a multi-byte char.
        if self.b[self.i] >= 0x80 {
            self.bump(1);
            while self.peek(0).is_some_and(|c| c & 0xC0 == 0x80) {
                self.bump(1);
            }
            self.emit_from(TokenKind::Punct, start, line, col);
            return;
        }
        let rest = &self.src[self.i..];
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                self.bump(op.len());
                self.emit_from(TokenKind::Punct, start, line, col);
                return;
            }
        }
        self.bump(1);
        self.emit_from(TokenKind::Punct, start, line, col);
    }
}

/// Convenience: the token's text equals `t` and it is an identifier.
pub fn ident_eq(tok: &Token, src: &str, t: &str) -> bool {
    tok.kind == TokenKind::Ident && tok.text(src) == t
}

/// Is this token one rules should look at (not a comment)?
pub fn is_code(tok: &Token) -> bool {
    !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn f(x: &mut [f32]) -> f64 {}");
        let texts: Vec<&str> = toks.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "f", "(", "x", ":", "&", "mut", "[", "f32", "]", ")", "->", "f64", "{", "}"]
        );
        assert_eq!(toks[0].0, TokenKind::Ident);
        assert_eq!(toks[11].0, TokenKind::Punct); // ->
    }

    #[test]
    fn multi_char_ops_are_single_tokens() {
        let toks = kinds("a::b += c 1..=2 x >>= y");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ops, ["::", "+=", "..=", ">>="]);
    }

    #[test]
    fn comments_are_tokens_with_lines() {
        let src = "let x = 1; // trailing\n/* block\nspans lines */ let y = 2;\n";
        let toks = lex(src);
        let lc = toks
            .iter()
            .find(|t| t.kind == TokenKind::LineComment)
            .unwrap();
        assert_eq!(lc.text(src), "// trailing");
        assert_eq!(lc.line, 1);
        let bc = toks
            .iter()
            .find(|t| t.kind == TokenKind::BlockComment)
            .unwrap();
        assert_eq!(bc.line, 2);
        let y = toks.iter().find(|t| ident_eq(t, src, "y")).unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn strings_keep_content_and_never_leak_tokens() {
        let src = r#"format!("cell:nspes={n_spes},clk={}", c.clock_hz)"#;
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert!(s.text(src).contains("{n_spes}"));
        // No Ident token for words inside the string.
        assert!(!toks.iter().any(|t| ident_eq(t, src, "nspes")));
        assert!(toks.iter().any(|t| ident_eq(t, src, "clock_hz")));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = r##"let a = r#"quote " inside"#; let b = "esc \" f64"; f64"##;
        let toks = lex(src);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(strs.len(), 2, "{strs:?}");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text(src) == "f64")
            .map(|t| t.text(src))
            .collect();
        assert_eq!(
            idents.len(),
            1,
            "f64 inside the string must not lex as code"
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'f' }";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text(src) == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text(src) == "'f'"));
    }

    #[test]
    fn float_suffixes_lex_as_one_number() {
        let src = "let a = 1.0f64 + 2e-3 + 0xFFu32 + 1_000;";
        let nums: Vec<String> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(nums, ["1.0f64", "2e-3", "0xFFu32", "1_000"]);
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let src = "for i in 0..n {}";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is(src, TokenKind::Punct, "..")));
        assert!(toks.iter().any(|t| t.is(src, TokenKind::Number, "0")));
    }

    #[test]
    fn line_and_col_positions() {
        let src = "ab\n  cd\n";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn byte_strings() {
        let src = r#"let a = b"bytes"; let p = br"raw"; ptr"#;
        let toks = lex(src);
        let strs = toks.iter().filter(|t| t.kind == TokenKind::Str).count();
        assert_eq!(strs, 2);
        assert!(toks.iter().any(|t| ident_eq(t, src, "ptr")));
    }
}
