//! `sim-vet` CLI: lint the workspace, print `file:line` diagnostics, exit
//! nonzero when any unwaived finding remains.
//!
//! Usage: `cargo run -p sim-vet [-- --root <dir>] [--verbose]
//!         [--format text|json|sarif] [--output <file>] [--selfcheck]`

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut format = Format::Text;
    let mut output: Option<PathBuf> = None;
    let mut selfcheck = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--verbose" | "-v" => verbose = true,
            "--output" | "-o" => output = args.next().map(PathBuf::from),
            "--selfcheck" => selfcheck = true,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!(
                            "sim-vet: unknown format `{}` (expected text|json|sarif)",
                            other.unwrap_or("")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("sim-vet: workspace invariant linter");
                println!("  --root <dir>     lint this tree (default: workspace root)");
                println!("  --verbose        also list waived findings (text format)");
                println!("  --format <fmt>   text (default), json, or sarif");
                println!("  --output <file>  write the report there instead of stdout");
                println!("  --selfcheck      run the seeded-violation fixture corpus");
                println!("rules:");
                for rule in sim_vet::Rule::ALL {
                    println!("  {:22} {}", rule.name(), rule.description());
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sim-vet: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace the binary was built from, so plain
    // `cargo run -p sim-vet` does the right thing from any cwd.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map_or_else(|| PathBuf::from("."), PathBuf::from)
    });

    if selfcheck {
        let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        return match sim_vet::selfcheck::run(&fixtures) {
            Ok(outcome) => {
                for failure in &outcome.failures {
                    eprintln!("sim-vet selfcheck: {failure}");
                }
                println!(
                    "sim-vet selfcheck: {} fixture(s), {} seeded expectation(s), {} failure(s)",
                    outcome.fixtures,
                    outcome.expectations,
                    outcome.failures.len()
                );
                if outcome.ok() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("sim-vet: failed to read {}: {e}", fixtures.display());
                ExitCode::from(2)
            }
        };
    }

    let report = match sim_vet::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sim-vet: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let rendered = match format {
        Format::Json => Some(sim_vet::output::to_json(&report)),
        Format::Sarif => Some(sim_vet::output::to_sarif(&report)),
        Format::Text => None,
    };
    match (&output, rendered) {
        (Some(path), Some(body)) => {
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("sim-vet: failed to write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        (None, Some(body)) => print!("{body}"),
        (Some(path), None) => {
            let mut body = String::new();
            for f in report.unwaived() {
                body.push_str(&f.to_string());
                body.push('\n');
            }
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("sim-vet: failed to write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        (None, None) => {
            for f in report.unwaived() {
                println!("{f}");
            }
            if verbose {
                for f in report.waived() {
                    println!("{f}");
                }
            }
        }
    }
    let unwaived = report.unwaived().count();
    let waived = report.waived().count();
    let summary = format!(
        "sim-vet: {} files scanned, {} finding(s) ({} waived)",
        report.files_scanned, unwaived, waived
    );
    // Keep machine-readable stdout clean; the summary goes to stderr there.
    if matches!(format, Format::Text) || output.is_some() {
        println!("{summary}");
    } else {
        eprintln!("{summary}");
    }
    if unwaived == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
