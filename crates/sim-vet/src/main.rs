//! `sim-vet` CLI: lint the workspace, print `file:line` diagnostics, exit
//! nonzero when any unwaived finding remains.
//!
//! Usage: `cargo run -p sim-vet [-- --root <dir>] [--verbose]`

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!("sim-vet: workspace invariant linter");
                println!("  --root <dir>   lint this tree (default: workspace root)");
                println!("  --verbose      also list waived findings");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sim-vet: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace the binary was built from, so plain
    // `cargo run -p sim-vet` does the right thing from any cwd.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map_or_else(|| PathBuf::from("."), PathBuf::from)
    });

    let report = match sim_vet::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sim-vet: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for f in report.unwaived() {
        println!("{f}");
    }
    if verbose {
        for f in report.waived() {
            println!("{f}");
        }
    }
    let unwaived = report.unwaived().count();
    let waived = report.waived().count();
    println!(
        "sim-vet: {} files scanned, {} finding(s) ({} waived)",
        report.files_scanned, unwaived, waived
    );
    if unwaived == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
