//! The invariant rules, v2: token/AST-level checks with cross-file semantic
//! rules resolved through the workspace symbol table.
//!
//! Five ported v1 rules (`precision-discipline`, `determinism`,
//! `panic-discipline`, `cost-conservation`, `observer-purity`) now match
//! whole tokens instead of substrings — an identifier merely *containing*
//! `HashMap` or a pattern inside a macro-generated path can no longer fire.
//! Four new rules see structure v1 could not:
//!
//! | rule | invariant |
//! |---|---|
//! | `cache-token` | every field of every cost-model/config struct reachable from `DeviceKind` is encoded in `cache_token()` — adding a cost parameter can never silently serve stale cached sweep results |
//! | `iteration-order` | `HashMap`/`HashSet` values are never *iterated* (`.iter()`, `.values()`, `.drain()`, `for … in`) in ordering-sensitive crates — use `BTreeMap` or sort explicitly |
//! | `sim-time-units` | no arithmetic mixes host wall-clock identifiers with simulated-seconds accumulators; no float literal is added to sim-time outside cost-model modules |
//! | `dead-waiver` | a waiver that no longer suppresses any finding is itself a finding — the waiver inventory stays honest |

use crate::discover::Profile;
use crate::items::Items;
use crate::lexer::{Token, TokenKind};
use crate::symbols::{mentions_hash_type, SymbolTable};
use crate::Finding;
use std::collections::BTreeSet;

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    PrecisionDiscipline,
    Determinism,
    PanicDiscipline,
    CostConservation,
    ObserverPurity,
    EvalPurity,
    CacheToken,
    IterationOrder,
    SimTimeUnits,
    DeadWaiver,
    TargetDiscovery,
}

impl Rule {
    pub const ALL: [Rule; 11] = [
        Rule::PrecisionDiscipline,
        Rule::Determinism,
        Rule::PanicDiscipline,
        Rule::CostConservation,
        Rule::ObserverPurity,
        Rule::EvalPurity,
        Rule::CacheToken,
        Rule::IterationOrder,
        Rule::SimTimeUnits,
        Rule::DeadWaiver,
        Rule::TargetDiscovery,
    ];

    /// Stable rule id — the SARIF `ruleId` and the name waivers use.
    pub fn name(self) -> &'static str {
        match self {
            Rule::PrecisionDiscipline => "precision-discipline",
            Rule::Determinism => "determinism",
            Rule::PanicDiscipline => "panic-discipline",
            Rule::CostConservation => "cost-conservation",
            Rule::ObserverPurity => "observer-purity",
            Rule::EvalPurity => "eval-purity",
            Rule::CacheToken => "cache-token",
            Rule::IterationOrder => "iteration-order",
            Rule::SimTimeUnits => "sim-time-units",
            Rule::DeadWaiver => "dead-waiver",
            Rule::TargetDiscovery => "target-discovery",
        }
    }

    /// One-line description for SARIF rule metadata and `--help`.
    pub fn description(self) -> &'static str {
        match self {
            Rule::PrecisionDiscipline => {
                "f32 device kernel modules contain no f64 types, casts, or literals"
            }
            Rule::Determinism => {
                "device crates use no hash collections, wall clocks, or unordered parallel reductions"
            }
            Rule::PanicDiscipline => {
                "device hot paths surface failures as typed errors, never unwrap/expect/panic"
            }
            Rule::CostConservation => {
                "pub device fns that mutate buffers report a cost — every data movement is charged"
            }
            Rule::ObserverPurity => {
                "the observability layer observes costs and never charges them"
            }
            Rule::EvalPurity => {
                "shared-eval modules evaluate physics only and never charge costs"
            }
            Rule::CacheToken => {
                "every cost-model field reachable from DeviceKind is encoded in cache_token()"
            }
            Rule::IterationOrder => {
                "HashMap/HashSet values are never iterated in ordering-sensitive crates"
            }
            Rule::SimTimeUnits => {
                "no arithmetic mixes host wall-clock values with simulated-seconds accumulators"
            }
            Rule::DeadWaiver => "every inline waiver still suppresses at least one finding",
            Rule::TargetDiscovery => {
                "every workspace member declares a [package.metadata.simvet] profile"
            }
        }
    }

    pub fn from_name(name: &str) -> Option<Self> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

/// Per-file context the rules run over.
pub struct FileContext<'a> {
    pub path: &'a str,
    pub src: &'a str,
    pub tokens: &'a [Token],
    /// Indices of non-comment tokens in `tokens`.
    pub code: &'a [usize],
    pub items: &'a Items,
}

impl FileContext<'_> {
    fn tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    fn text(&self, ci: usize) -> &str {
        self.tok(ci).text(self.src)
    }

    fn is_ident(&self, ci: usize, t: &str) -> bool {
        let tok = self.tok(ci);
        tok.kind == TokenKind::Ident && tok.text(self.src) == t
    }

    fn is_punct(&self, ci: usize, t: &str) -> bool {
        let tok = self.tok(ci);
        tok.kind == TokenKind::Punct && tok.text(self.src) == t
    }

    fn emit(&self, out: &mut Vec<Finding>, rule: Rule, ci: usize, message: String) {
        let tok = self.tok(ci);
        if !self.items.in_test_code(tok.line) {
            out.push(Finding {
                rule,
                path: self.path.to_string(),
                line: tok.line,
                col: tok.col,
                message,
                waived: false,
            });
        }
    }
}

/// Which per-file rules a profile applies to a crate-`src` file.
pub fn profile_rules(profile: Profile, is_f32_kernel: bool, is_shared_eval: bool) -> Vec<Rule> {
    let mut rules = Vec::new();
    // Physics-once execution (DESIGN.md §17): a declared shared-eval module
    // computes physics and nothing else, whatever its crate's profile — cost
    // interpretation belongs to each device's replay layer.
    if is_shared_eval {
        rules.push(Rule::EvalPurity);
    }
    match profile {
        Profile::Device => {
            if is_f32_kernel {
                rules.push(Rule::PrecisionDiscipline);
            }
            rules.extend([
                Rule::Determinism,
                Rule::PanicDiscipline,
                Rule::CostConservation,
                Rule::IterationOrder,
                Rule::SimTimeUnits,
            ]);
        }
        Profile::Observer => rules.extend([Rule::ObserverPurity, Rule::IterationOrder]),
        Profile::Engine => rules.extend([
            Rule::Determinism,
            Rule::ObserverPurity,
            Rule::IterationOrder,
            Rule::SimTimeUnits,
        ]),
        Profile::Core | Profile::Host => {
            rules.extend([Rule::IterationOrder, Rule::SimTimeUnits]);
        }
        Profile::Exempt => {}
    }
    rules
}

/// Built-in path → profile fallback, mirroring the shipped
/// `[package.metadata.simvet]` tables. Used by [`crate::scan_source`] on
/// synthetic paths and by workspace scans of trees without manifests;
/// `tests/static_analysis.rs` asserts it agrees with the real metadata.
pub fn builtin_profile(rel_path: &str) -> (Profile, bool) {
    const F32_KERNEL_MODULES: &[&str] = &[
        "crates/cell-be/src/kernel.rs",
        "crates/gpu/src/mdshader.rs",
        "crates/gpu/src/shader.rs",
    ];
    let profile = if [
        "crates/cell-be/",
        "crates/gpu/",
        "crates/mta/",
        "crates/opteron/",
        "crates/sim-fault/",
    ]
    .iter()
    .any(|p| rel_path.starts_with(p))
    {
        Profile::Device
    } else if rel_path.starts_with("crates/sim-perf/") || rel_path.starts_with("crates/sim-obs/") {
        Profile::Observer
    } else if rel_path.starts_with("crates/sim-sweep/")
        || rel_path.starts_with("crates/sim-cluster/")
    {
        Profile::Engine
    } else if rel_path.starts_with("crates/md-core/") {
        Profile::Core
    } else if rel_path.starts_with("crates/harness/") {
        Profile::Host
    } else {
        Profile::Exempt
    };
    (profile, F32_KERNEL_MODULES.contains(&rel_path))
}

/// Built-in shared-eval module list, mirroring the shipped
/// `shared-eval-modules` metadata entries (see [`builtin_profile`]).
pub fn builtin_shared_eval(rel_path: &str) -> bool {
    const SHARED_EVAL_MODULES: &[&str] = &["crates/md-core/src/shared_eval.rs"];
    SHARED_EVAL_MODULES.contains(&rel_path)
}

/// Which rules apply to a workspace-relative path under the built-in
/// fallback scoping. Invariant rules bind shipping code (`…/src/…`) only.
pub fn applicable_rules(rel_path: &str) -> Vec<Rule> {
    if !rel_path.contains("/src/") {
        return Vec::new();
    }
    let (profile, f32) = builtin_profile(rel_path);
    profile_rules(profile, f32, builtin_shared_eval(rel_path))
}

/// Run one per-file rule.
pub fn check_rule(
    rule: Rule,
    ctx: &FileContext<'_>,
    symbols: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    match rule {
        Rule::PrecisionDiscipline => check_precision(ctx, out),
        Rule::Determinism => check_determinism(ctx, out),
        Rule::PanicDiscipline => check_panic(ctx, out),
        Rule::CostConservation => check_cost_conservation(ctx, out),
        Rule::ObserverPurity => check_observer_purity(ctx, out),
        Rule::EvalPurity => check_eval_purity(ctx, out),
        Rule::IterationOrder => check_iteration_order(ctx, symbols, out),
        Rule::SimTimeUnits => check_sim_time_units(ctx, out),
        // Workspace-level rules are driven by `lib.rs`, not per file.
        Rule::CacheToken | Rule::DeadWaiver | Rule::TargetDiscovery => {}
    }
}

// ---------------------------------------------------------------------------
// precision-discipline

fn check_precision(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for ci in 0..ctx.code.len() {
        let tok = ctx.tok(ci);
        let hit = match tok.kind {
            TokenKind::Ident => tok.text(ctx.src) == "f64",
            TokenKind::Number => tok.text(ctx.src).ends_with("f64"),
            _ => false,
        };
        if hit {
            ctx.emit(
                out,
                Rule::PrecisionDiscipline,
                ci,
                "`f64` in an f32 device kernel module — single precision is the modeled datapath"
                    .into(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// determinism

fn check_determinism(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let n = ctx.code.len();
    for ci in 0..n {
        // Hash collections anywhere in a device crate.
        for word in ["HashMap", "HashSet"] {
            if ctx.is_ident(ci, word) {
                ctx.emit(
                    out,
                    Rule::Determinism,
                    ci,
                    format!("`{word}` in a device crate — iteration order breaks run-to-run determinism of cycle accounting"),
                );
            }
        }
        // Wall-clock reads: `std::time::…`, `Instant::now(`, `SystemTime::now(`.
        if ci + 3 < n
            && ctx.is_ident(ci, "std")
            && ctx.is_punct(ci + 1, "::")
            && ctx.is_ident(ci + 2, "time")
            && ctx.is_punct(ci + 3, "::")
        {
            ctx.emit(
                out,
                Rule::Determinism,
                ci,
                "`std::time::` in a device crate — host wall-clock reads break deterministic simulated-time accounting".into(),
            );
        }
        for ty in ["Instant", "SystemTime"] {
            if ci + 3 < n
                && ctx.is_ident(ci, ty)
                && ctx.is_punct(ci + 1, "::")
                && ctx.is_ident(ci + 2, "now")
                && ctx.is_punct(ci + 3, "(")
            {
                ctx.emit(
                    out,
                    Rule::Determinism,
                    ci,
                    format!("`{ty}::now()` in a device crate — host wall-clock reads break deterministic simulated-time accounting"),
                );
            }
        }
        // Unordered parallel reductions (DESIGN.md §12): reducing on the
        // pool makes float accumulation order depend on work stealing.
        for meth in ["par_iter", "par_iter_mut", "into_par_iter"] {
            if ci + 5 < n
                && ctx.is_punct(ci, ".")
                && ctx.is_ident(ci + 1, meth)
                && ctx.is_punct(ci + 2, "(")
                && ctx.is_punct(ci + 3, ")")
                && ctx.is_punct(ci + 4, ".")
                && (ctx.is_ident(ci + 5, "sum") || ctx.is_ident(ci + 5, "reduce"))
            {
                ctx.emit(
                    out,
                    Rule::Determinism,
                    ci + 5,
                    format!("`.{meth}().{}` — unordered parallel reduction; lane results must be collected by an order-preserving map and folded serially so parallel runs stay bitwise-identical to serial", ctx.text(ci + 5)),
                );
            }
        }
        if ci + 2 < n
            && ctx.is_punct(ci, ".")
            && ctx.is_ident(ci + 1, "par_bridge")
            && ctx.is_punct(ci + 2, "(")
        {
            ctx.emit(
                out,
                Rule::Determinism,
                ci + 1,
                "`.par_bridge()` — unordered parallel iteration detaches results from the deterministic fold".into(),
            );
        }
        if ci + 2 < n
            && ctx.is_ident(ci, "rayon")
            && ctx.is_punct(ci + 1, "::")
            && ctx.is_ident(ci + 2, "spawn")
        {
            ctx.emit(
                out,
                Rule::Determinism,
                ci,
                "`rayon::spawn` — detached work escapes the deterministic serial fold entirely"
                    .into(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// panic-discipline

fn check_panic(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let n = ctx.code.len();
    for ci in 0..n {
        if ci + 3 < n
            && ctx.is_punct(ci, ".")
            && ctx.is_ident(ci + 1, "unwrap")
            && ctx.is_punct(ci + 2, "(")
            && ctx.is_punct(ci + 3, ")")
        {
            ctx.emit(
                out,
                Rule::PanicDiscipline,
                ci + 1,
                "`unwrap()` in a device hot path — failures must surface as typed errors so cost accounting is not skipped".into(),
            );
        }
        if ci + 2 < n
            && ctx.is_punct(ci, ".")
            && ctx.is_ident(ci + 1, "expect")
            && ctx.is_punct(ci + 2, "(")
        {
            ctx.emit(
                out,
                Rule::PanicDiscipline,
                ci + 1,
                "`expect()` in a device hot path — failures must surface as typed errors so cost accounting is not skipped".into(),
            );
        }
        if ci + 1 < n && ctx.is_ident(ci, "panic") && ctx.is_punct(ci + 1, "!") {
            ctx.emit(
                out,
                Rule::PanicDiscipline,
                ci,
                "`panic!` in a device hot path — failures must surface as typed errors so cost accounting is not skipped".into(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// cost-conservation

fn check_cost_conservation(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for f in &ctx.items.fns {
        if f.in_test || !f.is_pub || f.ret != "()" {
            continue;
        }
        let params = split_params(&f.params);
        let mut mut_self = false;
        let mut mut_buffer_param = false;
        let mut data_param = false;
        for (i, p) in params.iter().enumerate() {
            let p = p.trim();
            let is_self =
                i == 0 && (p == "self" || p.ends_with(" self") || p == "&self" || p == "& self");
            if is_self {
                mut_self = p.contains("mut self");
                continue;
            }
            if p.contains("& mut ") || p.contains("* mut ") {
                mut_buffer_param = true;
            }
            if p.contains('[') || p.contains("Vec <") {
                data_param = true;
            }
        }
        if mut_buffer_param || (mut_self && data_param) {
            out.push(Finding {
                rule: Rule::CostConservation,
                path: ctx.path.to_string(),
                line: f.line,
                col: 1,
                message:
                    "pub device fn mutates a buffer but returns `()` — every data movement must report its cost"
                        .into(),
                waived: false,
            });
        }
    }
}

/// Split a rendered parameter token string at top-level commas.
fn split_params(params: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for tok in params.split(' ') {
        match tok {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            "," if depth <= 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        if !cur.is_empty() {
            cur.push(' ');
        }
        cur.push_str(tok);
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------------------
// observer-purity

/// Cost-charging device/clock API calls that observability *and* shared-eval
/// modules must never make (counters-on must stay bitwise-identical to
/// counters-off; the shared evaluator computes physics once, costs are
/// replayed per device).
const COST_CHARGING_CALLS: &[&str] = &[
    "charge_cycles",
    "advance_cycles",
    "transfer_cycles",
    "integration_cycles",
    "scale_kernel_cycles",
    "loop_cycles",
    "loop_seconds",
    "upload_seconds",
    "readback_seconds",
];

fn check_observer_purity(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    check_cost_charging(
        ctx,
        Rule::ObserverPurity,
        "in the observability layer — observers watch costs, they never charge them",
        out,
    );
}

/// Physics-once execution (DESIGN.md §17): a shared-eval module computes
/// each evaluation's physics exactly once; charging simulated time or cycles
/// there would double-count it into every device that replays the result.
fn check_eval_purity(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    check_cost_charging(
        ctx,
        Rule::EvalPurity,
        "in a shared-eval module — the shared evaluator computes physics once; cost interpretation belongs to each device's replay layer",
        out,
    );
}

fn check_cost_charging(ctx: &FileContext<'_>, rule: Rule, why: &str, out: &mut Vec<Finding>) {
    let n = ctx.code.len();
    for ci in 0..n {
        if ci + 2 < n
            && ctx.is_punct(ci, ".")
            && ctx.is_ident(ci + 1, "charge")
            && ctx.is_punct(ci + 2, "(")
        {
            ctx.emit(out, rule, ci + 1, format!("`.charge()` {why}"));
        }
        if ci + 1 < n && ctx.is_punct(ci + 1, "(") {
            let tok = ctx.tok(ci);
            if tok.kind == TokenKind::Ident {
                let t = tok.text(ctx.src);
                if COST_CHARGING_CALLS.contains(&t) {
                    ctx.emit(out, rule, ci, format!("`{t}()` {why}"));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// iteration-order (new in v2)

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "values",
    "values_mut",
    "keys",
    "drain",
    "into_iter",
    "into_values",
    "into_keys",
    "retain",
];

/// Deny iteration over `HashMap`/`HashSet` receivers. Receivers are resolved
/// three ways: local `let` bindings whose initializer/type names a hash
/// collection, fn parameters typed with one, and struct fields typed with
/// one anywhere in the *workspace* (the cross-file case: a cache struct
/// defined in one file, iterated via `self.entries.iter()` in another).
fn check_iteration_order(ctx: &FileContext<'_>, symbols: &SymbolTable, out: &mut Vec<Finding>) {
    let n = ctx.code.len();
    // 1. Hash-typed local bindings: `let [mut] NAME …(HashMap|HashSet)… ;`
    //    scanning the statement up to `;` catches both `let m: HashMap<…>`
    //    and `let m = HashMap::new()`.
    let mut hash_locals: BTreeSet<String> = BTreeSet::new();
    for ci in 0..n {
        if !ctx.is_ident(ci, "let") {
            continue;
        }
        let mut j = ci + 1;
        if j < n && ctx.is_ident(j, "mut") {
            j += 1;
        }
        if j >= n || ctx.tok(j).kind != TokenKind::Ident {
            continue;
        }
        let name = ctx.text(j).to_string();
        let mut saw_hash = false;
        let mut k = j + 1;
        let mut depth = 0i32;
        while k < n {
            let t = ctx.text(k);
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                "HashMap" | "HashSet" => saw_hash = true,
                _ => {}
            }
            k += 1;
        }
        if saw_hash {
            hash_locals.insert(name);
        }
    }
    // 2. Hash-typed fn parameters in this file.
    for f in &ctx.items.fns {
        for p in split_params(&f.params) {
            if let Some((name, ty)) = p.trim().split_once(':') {
                if mentions_hash_type(ty) {
                    hash_locals.insert(name.trim().trim_start_matches("mut ").to_string());
                }
            }
        }
    }
    // 3. Hash-typed struct fields, workspace-wide.
    let hash_fields: BTreeSet<String> = symbols
        .hash_typed_fields()
        .into_values()
        .flatten()
        .collect();

    let is_hash_receiver = |ci: usize| -> Option<String> {
        let tok = ctx.tok(ci);
        if tok.kind != TokenKind::Ident {
            return None;
        }
        let name = tok.text(ctx.src);
        if hash_locals.contains(name) {
            return Some(name.to_string());
        }
        // `self.FIELD` / `x.FIELD` where FIELD is hash-typed in the symbol
        // table: the ident before the receiver position must be a `.` chain.
        if hash_fields.contains(name) && ci > 0 && ctx.is_punct(ci - 1, ".") {
            return Some(format!(".{name}"));
        }
        None
    };

    for ci in 0..n {
        // `RECV.method(` where method iterates.
        if ci + 2 < n && ctx.is_punct(ci + 1, ".") && ctx.tok(ci + 2).kind == TokenKind::Ident {
            let meth = ctx.text(ci + 2);
            if HASH_ITER_METHODS.contains(&meth) && ci + 3 < n && ctx.is_punct(ci + 3, "(") {
                if let Some(recv) = is_hash_receiver(ci) {
                    ctx.emit(
                        out,
                        Rule::IterationOrder,
                        ci + 2,
                        format!("`{recv}.{meth}()` iterates a hash collection — order is nondeterministic across runs; use `BTreeMap`/`BTreeSet` or collect and sort explicitly"),
                    );
                }
            }
        }
        // `for X in [&][mut] RECV` — direct iteration.
        if ctx.is_ident(ci, "for") {
            // Find `in` at depth 0 within a few tokens (patterns can nest).
            let mut j = ci + 1;
            let mut depth = 0i32;
            while j < n && j < ci + 24 {
                let t = ctx.text(j);
                match t {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" => break,
                    "in" if depth <= 0 && ctx.tok(j).kind == TokenKind::Ident => break,
                    _ => {}
                }
                j += 1;
            }
            if j < n && ctx.is_ident(j, "in") {
                let mut k = j + 1;
                while k < n && (ctx.is_punct(k, "&") || ctx.is_ident(k, "mut")) {
                    k += 1;
                }
                // `self . field` chains: land on the last ident of the chain.
                let mut recv = k;
                while recv + 2 < n
                    && ctx.tok(recv).kind == TokenKind::Ident
                    && ctx.is_punct(recv + 1, ".")
                    && ctx.tok(recv + 2).kind == TokenKind::Ident
                {
                    recv += 2;
                }
                if recv < n {
                    if let Some(name) = is_hash_receiver(recv) {
                        ctx.emit(
                            out,
                            Rule::IterationOrder,
                            recv,
                            format!("`for … in {name}` iterates a hash collection — order is nondeterministic across runs; use `BTreeMap`/`BTreeSet` or collect and sort explicitly"),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// sim-time-units (new in v2)

/// Does an identifier name a simulated-seconds accumulator?
fn is_sim_time_ident(name: &str) -> bool {
    name.contains("sim_seconds")
        || name.contains("sim_time")
        || name.contains("simulated_seconds")
        || name.contains("sim_elapsed")
        || name == "sim_s"
}

/// Does an identifier name a host wall-clock value?
fn is_wall_ident(name: &str) -> bool {
    name.contains("wall")
}

/// Is this file a cost-model module, where literal seconds/cycles constants
/// legitimately enter sim-time?
fn is_cost_model_module(path: &str) -> bool {
    let file = path.rsplit('/').next().unwrap_or(path);
    file == "config.rs" || file.contains("cost") || file.contains("calibrat")
}

fn check_sim_time_units(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let n = ctx.code.len();
    // Locals derived from a wall clock: `let X = …Instant…/…elapsed()…;`
    let mut wall_locals: BTreeSet<String> = BTreeSet::new();
    for ci in 0..n {
        if !ctx.is_ident(ci, "let") {
            continue;
        }
        let mut j = ci + 1;
        if j < n && ctx.is_ident(j, "mut") {
            j += 1;
        }
        if j >= n || ctx.tok(j).kind != TokenKind::Ident {
            continue;
        }
        let name = ctx.text(j).to_string();
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut from_wall = false;
        while k < n {
            let t = ctx.text(k);
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                "Instant" | "SystemTime" | "elapsed" => from_wall = true,
                _ => from_wall = from_wall || is_wall_ident(t),
            }
            k += 1;
        }
        if from_wall {
            wall_locals.insert(name);
        }
    }
    let wall_like = |name: &str| is_wall_ident(name) || wall_locals.contains(name);

    // Statement-wise scan: a statement mixing sim-time and wall-clock
    // identifiers around arithmetic is a unit violation.
    let mut stmt_start = 0usize;
    let mut ci = 0usize;
    while ci <= n {
        let at_break = ci == n || {
            let t = ctx.text(ci);
            t == ";" || t == "{" || t == "}"
        };
        if at_break {
            let stmt = stmt_start..ci;
            let mut sim_at: Option<usize> = None;
            let mut wall_at: Option<usize> = None;
            let mut has_arith = false;
            for k in stmt.clone() {
                let tok = ctx.tok(k);
                match tok.kind {
                    TokenKind::Ident => {
                        let t = tok.text(ctx.src);
                        if is_sim_time_ident(t) && sim_at.is_none() {
                            sim_at = Some(k);
                        }
                        if wall_like(t) && wall_at.is_none() {
                            wall_at = Some(k);
                        }
                    }
                    TokenKind::Punct => {
                        if matches!(
                            tok.text(ctx.src),
                            "+" | "-" | "*" | "/" | "+=" | "-=" | "*=" | "/="
                        ) {
                            has_arith = true;
                        }
                    }
                    _ => {}
                }
            }
            if let (Some(sim), Some(_wall), true) = (sim_at, wall_at, has_arith) {
                ctx.emit(
                    out,
                    Rule::SimTimeUnits,
                    sim,
                    format!("arithmetic mixes simulated seconds (`{}`) with a host wall-clock value (`{}`) — the two clocks must never meet in one expression", ctx.text(sim), ctx.text(wall_at.unwrap_or(sim))),
                );
            }
            // Float literal folded straight into a sim-time accumulator,
            // outside cost-model modules: `sim_x += 1.5e-6` / `sim_x + 0.3`.
            if !is_cost_model_module(ctx.path) {
                for k in stmt.clone() {
                    if ctx.tok(k).kind != TokenKind::Ident || !is_sim_time_ident(ctx.text(k)) {
                        continue;
                    }
                    if k + 1 < ci {
                        let op = ctx.text(k + 1);
                        if (op == "+=" || op == "+" || op == "-")
                            && k + 2 < ci
                            && is_float_literal(ctx.tok(k + 2), ctx.src)
                        {
                            ctx.emit(
                                out,
                                Rule::SimTimeUnits,
                                k + 2,
                                format!("float literal `{}` added directly to sim-time `{}` outside a cost-model module — name the constant in the device's cost model instead", ctx.text(k + 2), ctx.text(k)),
                            );
                        }
                    }
                    if k >= 2 && ctx.text(k - 1) == "+" && is_float_literal(ctx.tok(k - 2), ctx.src)
                    {
                        ctx.emit(
                            out,
                            Rule::SimTimeUnits,
                            k - 2,
                            format!("float literal `{}` added directly to sim-time `{}` outside a cost-model module — name the constant in the device's cost model instead", ctx.text(k - 2), ctx.text(k)),
                        );
                    }
                }
            }
            stmt_start = ci + 1;
        }
        ci += 1;
    }
}

fn is_float_literal(tok: &Token, src: &str) -> bool {
    if tok.kind != TokenKind::Number {
        return false;
    }
    let t = tok.text(src);
    let t = t.trim_end_matches("f32").trim_end_matches("f64");
    (t.contains('.') || t.contains('e') || t.contains('E')) && !t.starts_with("0x") && t != "0.0"
}

// ---------------------------------------------------------------------------
// cache-token (new in v2) — workspace rule

/// One analyzed file handed to workspace rules.
pub struct AnalyzedFile<'a> {
    pub path: &'a str,
    pub src: &'a str,
    pub tokens: &'a [Token],
    pub code: &'a [usize],
    pub items: &'a Items,
}

/// Every field of every cost-model/config struct reachable from a
/// `cache_token()` fn must be *mentioned* in its body — as a field access
/// (`c.clock_hz`), a destructured binding (`n_spes`), or a format-string
/// interpolation (`{n_spes}`). Struct roots are the types constructed in
/// the body (`CellConfig::paper_blade()`, `let c: GpuConfig = …`); nested
/// struct-typed fields are expanded recursively, so a parameter added three
/// levels down (`costs.lj_eval`) still demands encoding. Missing fields are
/// reported *at the field's definition*, which is where the fix (or the
/// waiver, with justification) belongs.
pub fn check_cache_token(
    files: &[AnalyzedFile<'_>],
    symbols: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    for fnsym in symbols.fns_named("cache_token") {
        if fnsym.item.in_test {
            continue;
        }
        let Some((body_lo, body_hi)) = fnsym.item.body else {
            continue;
        };
        let Some(file) = files.iter().find(|f| f.path == fnsym.path) else {
            continue;
        };
        // Mentioned identifiers: code idents in the body plus words inside
        // the body's string literals (format interpolations).
        let mut mentioned: BTreeSet<String> = BTreeSet::new();
        let mut roots: Vec<String> = Vec::new();
        let body_code: Vec<usize> = file
            .code
            .iter()
            .copied()
            .filter(|&ti| ti >= body_lo && ti <= body_hi)
            .collect();
        for (bi, &ti) in body_code.iter().enumerate() {
            let tok = &file.tokens[ti];
            match tok.kind {
                TokenKind::Ident => {
                    let t = tok.text(file.src).to_string();
                    // Root detection: `T::ctor(` and `let x: T =`.
                    if symbols.has_struct(&t) {
                        let next = body_code
                            .get(bi + 1)
                            .map(|&nt| file.tokens[nt].text(file.src));
                        let prev = bi
                            .checked_sub(1)
                            .and_then(|p| body_code.get(p))
                            .map(|&pt| file.tokens[pt].text(file.src));
                        if next == Some("::") || prev == Some(":") {
                            roots.push(t.clone());
                        }
                    }
                    mentioned.insert(t);
                }
                TokenKind::Str => {
                    let text = tok.text(file.src);
                    for word in text.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
                        if !word.is_empty() {
                            mentioned.insert(word.to_string());
                        }
                    }
                }
                _ => {}
            }
        }
        let fn_label = match &fnsym.item.self_ty {
            Some(ty) => format!("{ty}::cache_token"),
            None => "cache_token".to_string(),
        };
        // The enclosing type's own fields are configuration knobs too. A
        // struct self type (e.g. a scenario spec) joins the expansion roots
        // so its fields — and any struct-typed fields below them — must all
        // be encoded; an enum self type gets its variant fields checked
        // directly.
        if let Some(self_ty) = &fnsym.item.self_ty {
            if symbols.has_struct(self_ty) {
                roots.push(self_ty.clone());
            }
            if let Some(en) = symbols.enumeration(self_ty) {
                for v in &en.item.variants {
                    for f in &v.fields {
                        if !mentioned.contains(&f.name) {
                            out.push(Finding {
                                rule: Rule::CacheToken,
                                path: en.path.clone(),
                                line: f.line,
                                col: f.col,
                                message: format!(
                                    "variant field `{}::{}.{}` is not encoded in `{fn_label}` — changing it would silently serve stale cached results",
                                    self_ty, v.name, f.name
                                ),
                                waived: false,
                            });
                        }
                    }
                }
            }
        }
        // Recursive struct expansion.
        let mut visited: BTreeSet<String> = BTreeSet::new();
        let mut queue = roots;
        while let Some(name) = queue.pop() {
            if !visited.insert(name.clone()) {
                continue;
            }
            let Some(sym) = symbols.structure(&name) else {
                continue;
            };
            for f in &sym.item.fields {
                if !mentioned.contains(&f.name) {
                    out.push(Finding {
                        rule: Rule::CacheToken,
                        path: sym.path.clone(),
                        line: f.line,
                        col: f.col,
                        message: format!(
                            "cost-model field `{}.{}` is not encoded in `{fn_label}` — changing it would silently serve stale cached results",
                            name, f.name
                        ),
                        waived: false,
                    });
                }
                if let Some(nested) = symbols.resolve_field_struct(&f.ty) {
                    queue.push(nested.item.name.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_source;

    fn check(path: &str, src: &str, rule: Rule) -> Vec<Finding> {
        scan_source(path, src)
            .into_iter()
            .filter(|f| f.rule == rule)
            .collect()
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
            assert!(!r.description().is_empty());
        }
        assert_eq!(Rule::from_name("nope"), None);
    }

    #[test]
    fn scoping() {
        assert!(
            applicable_rules("crates/cell-be/src/kernel.rs").contains(&Rule::PrecisionDiscipline)
        );
        assert!(applicable_rules("crates/cell-be/src/dma.rs").contains(&Rule::PanicDiscipline));
        assert!(!applicable_rules("crates/cell-be/src/dma.rs").contains(&Rule::PrecisionDiscipline));
        assert!(applicable_rules("crates/sim-fault/src/plan.rs").contains(&Rule::Determinism));
        assert!(applicable_rules("crates/md-core/src/lj.rs").contains(&Rule::IterationOrder));
        assert!(!applicable_rules("crates/md-core/src/lj.rs").contains(&Rule::PanicDiscipline));
        assert!(applicable_rules("crates/cell-be/tests/integration.rs").is_empty());
        assert!(applicable_rules("src/main.rs").is_empty());
        assert_eq!(
            applicable_rules("crates/sim-perf/src/counter.rs"),
            vec![Rule::ObserverPurity, Rule::IterationOrder],
        );
        // sim-obs is the second observer crate: same profile, same rules.
        assert_eq!(
            applicable_rules("crates/sim-obs/src/ledger.rs"),
            vec![Rule::ObserverPurity, Rule::IterationOrder],
        );
        assert!(applicable_rules("crates/sim-sweep/src/engine.rs").contains(&Rule::Determinism));
        assert!(applicable_rules("crates/harness/src/device.rs").contains(&Rule::SimTimeUnits));
        // The declared shared-eval module carries eval-purity on top of its
        // crate's core profile; sibling md-core files do not.
        assert!(applicable_rules("crates/md-core/src/shared_eval.rs").contains(&Rule::EvalPurity));
        assert!(!applicable_rules("crates/md-core/src/lj.rs").contains(&Rule::EvalPurity));
    }

    #[test]
    fn eval_purity_flags_cost_charging_in_shared_eval_modules() {
        let path = "crates/md-core/src/shared_eval.rs";
        for src in [
            "pub fn row(spe: &mut Spe) { spe.charge(4.0); }\n",
            "pub fn row(s: &mut Session) { s.charge_cycles(4, 3.2e9); }\n",
            "pub fn row(g: &Gpu, t: &Texture) -> f64 { g.upload_seconds(t) }\n",
        ] {
            assert_eq!(check(path, src, Rule::EvalPurity).len(), 1, "{src}");
        }
        // Pure physics — and cost charging *outside* the shared evaluator
        // (a device's replay layer) — are both fine.
        let pure = "pub fn row(r2: f32) -> f32 { 1.0 / r2 }\n";
        assert!(check(path, pure, Rule::EvalPurity).is_empty());
        let replay = "pub fn f(spe: &mut Spe) { spe.charge(4.0); }\n";
        assert!(check("crates/cell-be/src/kernel.rs", replay, Rule::EvalPurity).is_empty());
    }

    #[test]
    fn precision_flags_types_casts_and_suffixes() {
        let path = "crates/gpu/src/shader.rs";
        for src in [
            "pub fn f(x: f64) {}\n",
            "pub fn f() { let y = 1u32 as f64; }\n",
            "pub fn f() { let z = 1.0f64; }\n",
            "const K: f64 = 0.5;\n",
        ] {
            assert_eq!(
                check(path, src, Rule::PrecisionDiscipline).len(),
                1,
                "{src}"
            );
        }
        // Identifiers merely containing the substring are fine — and so are
        // macro-generated names and doc comments mentioning f64.
        for src in [
            "pub fn f() { let buf64 = 0u32; }\n",
            "/// Returns f64-quality error bounds (prose, not code).\npub fn f() {}\n",
            "pub fn f() { let s = \"f64\"; }\n",
        ] {
            assert!(
                check(path, src, Rule::PrecisionDiscipline).is_empty(),
                "{src}"
            );
        }
    }

    #[test]
    fn determinism_flags_hash_collections_and_clocks() {
        let path = "crates/mta/src/kernel.rs";
        assert_eq!(
            check(
                path,
                "use std::collections::{HashMap, HashSet};\n",
                Rule::Determinism
            )
            .len(),
            2
        );
        assert!(check(path, "use std::collections::BTreeMap;\n", Rule::Determinism).is_empty());
        for src in [
            "use std::time::Instant;\n",
            "pub fn f() { let t0 = Instant::now(); }\n",
            "pub fn f() { let t0 = SystemTime::now(); }\n",
        ] {
            assert!(!check(path, src, Rule::Determinism).is_empty(), "{src}");
        }
        // Identifiers *containing* the words don't fire at token level.
        for src in [
            "pub fn f(clock: &FaultClock) -> f64 { clock.now() }\n",
            "pub struct MyHashMapLike;\n",
            "pub fn f() { let t = clock.now(); }\n",
        ] {
            assert!(check(path, src, Rule::Determinism).is_empty(), "{src}");
        }
    }

    #[test]
    fn determinism_flags_unordered_parallel_reductions() {
        let path = "crates/opteron/src/cpu.rs";
        for src in [
            "pub fn pe(rows: &[f32]) -> f32 { rows.par_iter().sum() }\n",
            "pub fn pe(rows: &[f32]) -> f32 { rows.par_iter().reduce(|| 0.0, |a, b| a + b) }\n",
            "pub fn pe(n: usize) -> f32 { (0..n).into_par_iter().sum::<f32>() }\n",
            "pub fn f(rows: &[u8]) { rows.iter().par_bridge().for_each(drop); }\n",
            "pub fn go() { rayon::spawn(move || work()); }\n",
        ] {
            assert_eq!(check(path, src, Rule::Determinism).len(), 1, "{src}");
        }
        for src in [
            "pub fn f(rows: &[Row]) -> Vec<Out> { rows.par_iter().map(run).collect() }\n",
            "pub fn f(outs: &[Out]) -> f32 { outs.iter().map(|o| o.pe).sum() }\n",
        ] {
            assert!(check(path, src, Rule::Determinism).is_empty(), "{src}");
        }
    }

    #[test]
    fn panic_discipline_flags_the_three_forms() {
        let path = "crates/cell-be/src/dma.rs";
        let src = "pub fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); }\n";
        assert_eq!(check(path, src, Rule::PanicDiscipline).len(), 3);
        // `unwrap_or` and custom macros with panic in the name don't count.
        let ok = "pub fn f() { x.unwrap_or(0); my_panic!(); }\n";
        assert!(check(path, ok, Rule::PanicDiscipline).is_empty());
    }

    #[test]
    fn cost_conservation_flags_unit_buffer_mutators() {
        let path = "crates/cell-be/src/localstore.rs";
        let bad = "pub fn write_bytes(&mut self, offset: usize, data: &[u8]) {\n}\n";
        assert_eq!(check(path, bad, Rule::CostConservation).len(), 1);
        let bad2 = "pub fn fill(dst: &mut [f32], v: f32) {\n}\n";
        assert_eq!(check(path, bad2, Rule::CostConservation).len(), 1);
        let good = "pub fn write_bytes(&mut self, offset: usize, data: &[u8]) -> u64 {\n0\n}\n";
        assert!(check(path, good, Rule::CostConservation).is_empty());
        let state = "pub fn reset(&mut self) {\n}\n";
        assert!(check(path, state, Rule::CostConservation).is_empty());
        let private = "fn scribble(dst: &mut [u8]) {\n}\n";
        assert!(check(path, private, Rule::CostConservation).is_empty());
        // Multiline signatures report the `fn` keyword's line.
        let multi = "pub fn upload(\n    &mut self,\n    data: &[f32],\n) {\n}\n";
        let found = check("crates/gpu/src/device.rs", multi, Rule::CostConservation);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn observer_purity_flags_cost_charging_calls() {
        let path = "crates/sim-perf/src/counter.rs";
        for src in [
            "pub fn f(spe: &mut Spe) { spe.charge(12.0); }\n",
            "pub fn f(s: &mut Session) { s.charge_cycles(4, 3.2e9); }\n",
            "pub fn f(d: &Dma) -> f64 { d.transfer_cycles(1024) }\n",
            "pub fn f(g: &Gpu, t: &Texture) -> f64 { g.upload_seconds(t) }\n",
        ] {
            assert_eq!(check(path, src, Rule::ObserverPurity).len(), 1, "{src}");
        }
        for src in [
            "pub fn f(m: &RunMetrics) -> f64 { m.attribution_seconds(\"dma\") }\n",
            "pub fn f(c: &CounterSeries) -> f64 { c.value() }\n",
        ] {
            assert!(check(path, src, Rule::ObserverPurity).is_empty(), "{src}");
        }
    }

    #[test]
    fn iteration_order_flags_hash_iteration() {
        let path = "crates/md-core/src/registry.rs";
        for src in [
            "pub fn f() { let m: HashMap<u32, f32> = HashMap::new(); for (k, v) in m.iter() { use_it(k, v); } }\n",
            "pub fn f() { let m = HashMap::<u32, f32>::new(); let v: Vec<_> = m.values().collect(); }\n",
            "pub fn f(m: &HashMap<u32, f32>) { for v in m.values() { go(v); } }\n",
            "pub fn f() { let mut s = HashSet::new(); s.drain().count(); }\n",
            "pub fn f(m: HashMap<u32, f32>) { for (k, v) in m { go(k, v); } }\n",
        ] {
            assert!(!check(path, src, Rule::IterationOrder).is_empty(), "{src}");
        }
        for src in [
            // Lookup is deterministic; only iteration is nondeterministic.
            "pub fn f(m: &HashMap<u32, f32>) -> Option<&f32> { m.get(&3) }\n",
            "pub fn f() { let m: BTreeMap<u32, f32> = BTreeMap::new(); for v in m.values() { go(v); } }\n",
            "pub fn f(rows: &[f32]) { for v in rows.iter() { go(v); } }\n",
        ] {
            assert!(check(path, src, Rule::IterationOrder).is_empty(), "{src}");
        }
    }

    #[test]
    fn sim_time_units_flags_mixed_clock_arithmetic() {
        let path = "crates/gpu/src/device.rs";
        let mixed = "pub fn f(sim_seconds: f64, host_wall_seconds: f64) -> f64 { sim_seconds + host_wall_seconds }\n";
        assert_eq!(check(path, mixed, Rule::SimTimeUnits).len(), 1);
        let lit = "pub fn f(mut sim_seconds: f64) -> f64 { sim_seconds += 1.5e-6; sim_seconds }\n";
        assert_eq!(check(path, lit, Rule::SimTimeUnits).len(), 1);
        // Cost-model modules may introduce calibrated literal costs.
        assert!(check("crates/gpu/src/config.rs", lit, Rule::SimTimeUnits).is_empty());
        // Adding a named cost-model field is the sanctioned shape.
        let ok = "pub fn f(mut sim_seconds: f64, c: &GpuConfig) -> f64 { sim_seconds += c.dispatch_overhead_s; sim_seconds }\n";
        assert!(check(path, ok, Rule::SimTimeUnits).is_empty());
        // Wall-clock math on its own (throughput reporting) is fine.
        let wall_only =
            "pub fn f(host_wall_seconds: f64, n: f64) -> f64 { n / host_wall_seconds }\n";
        assert!(check(path, wall_only, Rule::SimTimeUnits).is_empty());
    }
}
