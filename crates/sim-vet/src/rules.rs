//! The five invariant rules and their file scoping.

use crate::Finding;

/// Kernel modules that model f32-only device datapaths: the Cell SPE kernel
/// and the GPU fragment shaders. The paper's single-precision error analysis
/// assumes no double-precision sneaks into these.
const F32_KERNEL_MODULES: &[&str] = &[
    "crates/cell-be/src/kernel.rs",
    "crates/gpu/src/mdshader.rs",
    "crates/gpu/src/shader.rs",
];

/// Crates that model devices and charge cycle costs. `sim-fault` is held to
/// the same bar: its schedules and clocks feed every device's accounting, so
/// nondeterminism or wall-clock reads there poison all of them.
const DEVICE_CRATE_PREFIXES: &[&str] = &[
    "crates/cell-be/",
    "crates/gpu/",
    "crates/mta/",
    "crates/opteron/",
    "crates/sim-fault/",
];

/// Cost-charging device/clock API calls the observability layer must never
/// make: sim-perf *observes* runs, it never advances simulated time or bills
/// cycles. A counter read that charged cost would break the counters-are-free
/// invariant (counters-on bitwise-identical to counters-off).
const COST_CHARGING_CALLS: &[&str] = &[
    ".charge(",
    "charge_cycles(",
    "advance_cycles(",
    "transfer_cycles(",
    "integration_cycles(",
    "scale_kernel_cycles(",
    "loop_cycles(",
    "loop_seconds(",
    "upload_seconds(",
    "readback_seconds(",
];

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    PrecisionDiscipline,
    Determinism,
    PanicDiscipline,
    CostConservation,
    ObserverPurity,
}

impl Rule {
    pub const ALL: [Rule; 5] = [
        Rule::PrecisionDiscipline,
        Rule::Determinism,
        Rule::PanicDiscipline,
        Rule::CostConservation,
        Rule::ObserverPurity,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::PrecisionDiscipline => "precision-discipline",
            Rule::Determinism => "determinism",
            Rule::PanicDiscipline => "panic-discipline",
            Rule::CostConservation => "cost-conservation",
            Rule::ObserverPurity => "observer-purity",
        }
    }

    pub fn from_name(name: &str) -> Option<Self> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Run this rule over comment/string-stripped source, appending findings.
    /// `#[cfg(test)]` modules are exempt — the disciplines bind shipping code.
    pub fn check(self, rel_path: &str, stripped: &str, out: &mut Vec<Finding>) {
        let lines = LineIndex::new(stripped);
        let test_lines = test_line_mask(stripped, &lines);
        let mut emit = |pos: usize, message: String| {
            let line = lines.line_of(pos);
            if !test_lines.get(line - 1).copied().unwrap_or(false) {
                out.push(Finding {
                    rule: self,
                    path: rel_path.to_string(),
                    line,
                    message,
                    waived: false,
                });
            }
        };
        match self {
            Rule::PrecisionDiscipline => {
                for pos in find_f64_tokens(stripped) {
                    emit(
                        pos,
                        "`f64` in an f32 device kernel module — single precision is the modeled datapath".into(),
                    );
                }
            }
            Rule::Determinism => {
                for word in ["HashMap", "HashSet"] {
                    for pos in find_word(stripped, word) {
                        emit(
                            pos,
                            format!("`{word}` in a device crate — iteration order breaks run-to-run determinism of cycle accounting"),
                        );
                    }
                }
                // Wall-clock reads: simulated time is the only clock device
                // code may consult. `std::time::` catches imports and
                // qualified uses; the `::now(` forms catch pre-imported types.
                for pat in ["std::time::", "Instant::now(", "SystemTime::now("] {
                    for pos in find_pattern(stripped, pat) {
                        emit(
                            pos,
                            format!("`{pat}` in a device crate — host wall-clock reads break deterministic simulated-time accounting"),
                        );
                    }
                }
                // Unordered parallel reductions: host-parallel lane work must
                // be an order-preserving map whose results fold serially
                // (DESIGN.md §12). Reducing on the pool makes the float
                // accumulation order depend on work stealing, breaking the
                // parallel==serial bitwise-identity contract; `rayon::spawn`
                // detaches work from the deterministic fold entirely.
                // (No trailing `(` on the method names: `.sum::<f32>()`
                // turbofish forms must match too.)
                for pat in [
                    "par_iter().sum",
                    "par_iter().reduce",
                    "par_iter_mut().sum",
                    "par_iter_mut().reduce",
                    "into_par_iter().sum",
                    "into_par_iter().reduce",
                    "par_bridge(",
                    "rayon::spawn",
                ] {
                    for pos in find_pattern(stripped, pat) {
                        emit(
                            pos,
                            format!("`{pat}` — unordered parallel reduction; lane results must be collected by an order-preserving map and folded serially so parallel runs stay bitwise-identical to serial"),
                        );
                    }
                }
            }
            Rule::PanicDiscipline => {
                for (pat, what) in [
                    (".unwrap()", "`unwrap()`"),
                    (".expect(", "`expect()`"),
                    ("panic!", "`panic!`"),
                ] {
                    for pos in find_pattern(stripped, pat) {
                        emit(
                            pos,
                            format!("{what} in a device hot path — failures must surface as typed errors so cost accounting is not skipped"),
                        );
                    }
                }
            }
            Rule::CostConservation => {
                for pos in find_uncosted_mutators(stripped) {
                    emit(
                        pos,
                        "pub device fn mutates a buffer but returns `()` — every data movement must report its cost".into(),
                    );
                }
            }
            Rule::ObserverPurity => {
                for pat in COST_CHARGING_CALLS {
                    for pos in find_pattern(stripped, pat) {
                        emit(
                            pos,
                            format!("`{pat}` in the observability layer — sim-perf observes costs, it never charges them"),
                        );
                    }
                }
            }
        }
    }
}

/// Which rules apply to a workspace-relative file path.
pub fn applicable_rules(rel_path: &str) -> Vec<Rule> {
    let mut rules = Vec::new();
    if F32_KERNEL_MODULES.contains(&rel_path) {
        rules.push(Rule::PrecisionDiscipline);
    }
    let in_device_src = DEVICE_CRATE_PREFIXES
        .iter()
        .any(|p| rel_path.starts_with(p))
        && rel_path.contains("/src/");
    if in_device_src {
        rules.push(Rule::Determinism);
        rules.push(Rule::PanicDiscipline);
        rules.push(Rule::CostConservation);
    }
    if rel_path.starts_with("crates/sim-perf/") && rel_path.contains("/src/") {
        rules.push(Rule::ObserverPurity);
    }
    // The sweep engine's memoization is only sound if results are pure
    // functions of their cache keys: no wall clocks or iteration-order
    // nondeterminism (Determinism), and no cost charging from the layer
    // that merely replays recorded metrics (ObserverPurity).
    if rel_path.starts_with("crates/sim-sweep/") && rel_path.contains("/src/") {
        rules.push(Rule::Determinism);
        rules.push(Rule::ObserverPurity);
    }
    rules
}

/// Byte-offset → 1-based line lookup.
struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    fn new(text: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    fn line_of(&self, pos: usize) -> usize {
        self.starts.partition_point(|&s| s <= pos)
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `f64` as a type, cast target, or literal suffix. A digit *before* is
/// allowed (that's the `1.0f64` suffix form); an identifier char after is not.
fn find_f64_tokens(text: &str) -> Vec<usize> {
    let b = text.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(off) = text[from..].find("f64") {
        let pos = from + off;
        from = pos + 3;
        let before_ok = pos == 0 || {
            let p = b[pos - 1];
            !(p.is_ascii_alphabetic() || p == b'_')
        };
        let after_ok = pos + 3 >= b.len() || !is_ident_byte(b[pos + 3]);
        if before_ok && after_ok {
            hits.push(pos);
        }
    }
    hits
}

/// Whole-word occurrences of `word`.
fn find_word(text: &str, word: &str) -> Vec<usize> {
    let b = text.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(off) = text[from..].find(word) {
        let pos = from + off;
        from = pos + word.len();
        let before_ok = pos == 0 || !is_ident_byte(b[pos - 1]);
        let end = pos + word.len();
        let after_ok = end >= b.len() || !is_ident_byte(b[end]);
        if before_ok && after_ok {
            hits.push(pos);
        }
    }
    hits
}

/// Literal pattern occurrences; patterns starting with `.`/ending with `(`
/// carry their own boundaries, `panic!` checks the leading one.
fn find_pattern(text: &str, pat: &str) -> Vec<usize> {
    let b = text.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(off) = text[from..].find(pat) {
        let pos = from + off;
        from = pos + pat.len();
        let before_ok = pat.starts_with('.') || pos == 0 || !is_ident_byte(b[pos - 1]);
        if before_ok {
            hits.push(pos);
        }
    }
    hits
}

/// Find `pub fn`s that take a mutable buffer but return `()`.
///
/// Heuristic on stripped text: a fn is flagged when it returns unit and either
/// (a) takes a non-`self` `&mut`/`*mut` parameter, or (b) takes `&mut self`
/// plus a data-carrying parameter (slice/`Vec`) it presumably copies in/out.
/// Mutating `&mut self` alone is fine — that's ordinary state update, not an
/// uncharged transfer.
fn find_uncosted_mutators(text: &str) -> Vec<usize> {
    let b = text.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(off) = text[from..].find("fn ") {
        let fn_pos = from + off;
        from = fn_pos + 3;
        if fn_pos > 0 && is_ident_byte(b[fn_pos - 1]) {
            continue;
        }
        // Public? Look back along the current line for a `pub` token.
        let line_start = text[..fn_pos].rfind('\n').map_or(0, |p| p + 1);
        let prefix = &text[line_start..fn_pos];
        if find_word(prefix, "pub").is_empty() {
            continue;
        }
        let Some(sig) = signature_after(text, fn_pos) else {
            continue;
        };
        if !sig.returns_unit {
            continue;
        }
        let params = split_top_level(&sig.params);
        let mut mut_self = false;
        let mut mut_buffer_param = false;
        let mut data_param = false;
        for (i, p) in params.iter().enumerate() {
            let p = p.trim();
            let is_self = i == 0
                && (p == "self"
                    || p == "&self"
                    || p == "&mut self"
                    || p == "mut self"
                    || (p.starts_with('&') && p.ends_with(" self")));
            if is_self {
                mut_self = p.contains("mut self");
                continue;
            }
            if p.contains("&mut ") || p.contains("*mut ") {
                mut_buffer_param = true;
            }
            if p.contains('[') || p.contains("Vec<") {
                data_param = true;
            }
        }
        if mut_buffer_param || (mut_self && data_param) {
            hits.push(fn_pos);
        }
    }
    hits
}

struct Signature {
    params: String,
    returns_unit: bool,
}

/// Extract the parameter list and unit-ness of the fn whose `fn` keyword is
/// at `fn_pos`. Returns None for malformed/truncated text.
fn signature_after(text: &str, fn_pos: usize) -> Option<Signature> {
    let b = text.as_bytes();
    let open = text[fn_pos..].find('(')? + fn_pos;
    let mut depth = 0usize;
    let mut close = None;
    for (i, &c) in b[open..].iter().enumerate() {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close?;
    let params = text[open + 1..close].to_string();
    // Return type: text up to the body `{` (or `;` for trait decls).
    let mut ret_end = None;
    let mut pdepth = 0usize;
    for (i, &c) in b[close + 1..].iter().enumerate() {
        match c {
            b'(' | b'[' => pdepth += 1,
            b')' | b']' => pdepth = pdepth.saturating_sub(1),
            b'{' | b';' if pdepth == 0 => {
                ret_end = Some(close + 1 + i);
                break;
            }
            _ => {}
        }
    }
    let ret = &text[close + 1..ret_end?];
    let returns_unit = match ret.find("->") {
        None => true,
        Some(a) => {
            let ty = ret[a + 2..].trim();
            let ty = ty.split("where").next().unwrap_or(ty).trim();
            ty == "()"
        }
    };
    Some(Signature {
        params,
        returns_unit,
    })
}

/// Split a parameter list at top-level commas (ignoring `<>`, `()`, `[]`).
fn split_top_level(params: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in params.chars() {
        match c {
            '<' | '(' | '[' => {
                depth += 1;
                cur.push(c);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth <= 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Per-line mask: true when the line sits inside a `#[cfg(test)]` item.
fn test_line_mask(text: &str, lines: &LineIndex) -> Vec<bool> {
    let total = lines.starts.len();
    let mut mask = vec![false; total];
    let b = text.as_bytes();
    let mut from = 0;
    while let Some(off) = text[from..].find("#[cfg(test)]") {
        let attr = from + off;
        from = attr + "#[cfg(test)]".len();
        // Find the item's opening brace; bail at a top-level `;` (e.g.
        // `mod tests;` — the body lives in another file).
        let mut open = None;
        for (i, &c) in b[from..].iter().enumerate() {
            match c {
                b'{' => {
                    open = Some(from + i);
                    break;
                }
                b';' => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut end = text.len();
        for (i, &c) in b[open..].iter().enumerate() {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let first = lines.line_of(attr);
        let last = lines.line_of(end.min(text.len().saturating_sub(1)));
        for line in first..=last.min(total) {
            mask[line - 1] = true;
        }
        from = end;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rule: Rule, path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        rule.check(path, src, &mut out);
        out
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }

    #[test]
    fn scoping() {
        assert_eq!(
            applicable_rules("crates/cell-be/src/kernel.rs").len(),
            4,
            "kernel module gets precision + the three device rules"
        );
        assert_eq!(applicable_rules("crates/cell-be/src/dma.rs").len(), 3);
        assert_eq!(
            applicable_rules("crates/sim-fault/src/plan.rs").len(),
            3,
            "the fault-injection crate is held to the device disciplines"
        );
        assert!(applicable_rules("crates/md-core/src/lj.rs").is_empty());
        assert!(applicable_rules("crates/cell-be/tests/integration.rs").is_empty());
        assert!(applicable_rules("src/main.rs").is_empty());
        assert_eq!(
            applicable_rules("crates/sim-perf/src/counter.rs"),
            vec![Rule::ObserverPurity],
            "the observability crate gets exactly the purity rule"
        );
        assert!(applicable_rules("crates/sim-perf/tests/api.rs").is_empty());
        assert_eq!(
            applicable_rules("crates/sim-sweep/src/engine.rs"),
            vec![Rule::Determinism, Rule::ObserverPurity],
            "the sweep engine gets determinism + observer purity"
        );
        assert!(applicable_rules("crates/sim-sweep/tests/sweep_cache.rs").is_empty());
    }

    #[test]
    fn observer_purity_flags_cost_charging_calls() {
        let path = "crates/sim-perf/src/counter.rs";
        for src in [
            "fn f(spe: &mut Spe) { spe.charge(12.0); }\n",
            "fn f(s: &mut Session) { s.charge_cycles(4, 3.2e9); }\n",
            "fn f(d: &Dma) { let c = d.transfer_cycles(1024); }\n",
            "fn f(p: &Processor, l: &LoopDesc) { let c = p.loop_cycles(l); }\n",
            "fn f(g: &GpuDevice, t: &Texture) { let s = g.upload_seconds(t); }\n",
        ] {
            assert_eq!(check(Rule::ObserverPurity, path, src).len(), 1, "{src}");
        }
        // Reading already-charged totals is what the layer is *for*.
        for src in [
            "fn f(m: &RunMetrics) { let s = m.attribution_seconds(\"dma\"); }\n",
            "fn f(r: &CellRun) { let s = r.sim_seconds; }\n",
            "fn f(c: &CounterSeries) { let v = c.value(); }\n",
        ] {
            assert!(check(Rule::ObserverPurity, path, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn precision_flags_types_casts_and_suffixes() {
        let path = "crates/gpu/src/shader.rs";
        for src in [
            "pub fn f(x: f64) {}\n",
            "let y = x as f64;\n",
            "let z = 1.0f64;\n",
            "const K: f64 = 0.5;\n",
        ] {
            assert_eq!(
                check(Rule::PrecisionDiscipline, path, src).len(),
                1,
                "{src}"
            );
        }
        // Identifiers merely containing the substring are fine.
        assert!(check(Rule::PrecisionDiscipline, path, "let buf64 = 0u32;\n").is_empty());
    }

    #[test]
    fn determinism_flags_hash_collections() {
        let path = "crates/mta/src/kernel.rs";
        let found = check(
            Rule::Determinism,
            path,
            "use std::collections::{HashMap, HashSet};\n",
        );
        assert_eq!(found.len(), 2);
        assert!(check(Rule::Determinism, path, "use std::collections::BTreeMap;\n").is_empty());
    }

    #[test]
    fn determinism_flags_wall_clock_reads() {
        let path = "crates/sim-fault/src/clock.rs";
        for src in [
            "use std::time::Instant;\n",
            "let t0 = std::time::SystemTime::now();\n",
            "let t0 = Instant::now();\n",
            "let t0 = SystemTime::now();\n",
        ] {
            assert!(!check(Rule::Determinism, path, src).is_empty(), "{src}");
        }
        // The simulated clock itself and unrelated `now` methods are fine.
        for src in [
            "let t = clock.now();\n",
            "let t = FaultClock::new();\n",
            "fn now(&self) -> f64 { self.elapsed_s }\n",
        ] {
            assert!(check(Rule::Determinism, path, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn determinism_flags_unordered_parallel_reductions() {
        let path = "crates/opteron/src/cpu.rs";
        for src in [
            "let pe: f32 = rows.par_iter().sum();\n",
            "let pe = rows.par_iter().reduce(|| 0.0, |a, b| a + b);\n",
            "let pe: f64 = lanes.par_iter_mut().sum();\n",
            "let pe = (0..n).into_par_iter().sum::<f64>();\n",
            "let pe = (0..n).into_par_iter().reduce(|| 0.0, f);\n",
            "rows.iter().par_bridge().for_each(f);\n",
            "rayon::spawn(move || work());\n",
        ] {
            assert_eq!(check(Rule::Determinism, path, src).len(), 1, "{src}");
        }
        // The sanctioned shape: order-preserving indexed map, serial fold.
        for src in [
            "let outs: Vec<RowOut> = pool.install(|| rows.par_iter().map(f).collect());\n",
            "let pe: f32 = outs.iter().map(|o| o.pe).sum();\n",
            "let outs = md_core::parallel::map_indexed(par, n, f);\n",
        ] {
            assert!(check(Rule::Determinism, path, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn panic_discipline_flags_the_three_forms() {
        let path = "crates/cell-be/src/dma.rs";
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); }\n";
        assert_eq!(check(Rule::PanicDiscipline, path, src).len(), 3);
        // `unwrap_or` and custom macros ending in the substring don't count.
        let ok = "fn f() { x.unwrap_or(0); my_panic!(); }\n";
        assert!(check(Rule::PanicDiscipline, path, ok).is_empty());
    }

    #[test]
    fn cost_conservation_flags_unit_buffer_mutators() {
        let path = "crates/cell-be/src/localstore.rs";
        let bad = "pub fn write_bytes(&mut self, offset: usize, data: &[u8]) {\n}\n";
        assert_eq!(check(Rule::CostConservation, path, bad).len(), 1);
        let bad2 = "pub fn fill(dst: &mut [f32], v: f32) {\n}\n";
        assert_eq!(check(Rule::CostConservation, path, bad2).len(), 1);
        // Returning a cost (or anything) is the fix.
        let good = "pub fn write_bytes(&mut self, offset: usize, data: &[u8]) -> u64 {\n0\n}\n";
        assert!(check(Rule::CostConservation, path, good).is_empty());
        // Plain state update through &mut self is not a transfer.
        let state = "pub fn reset(&mut self) {\n}\n";
        assert!(check(Rule::CostConservation, path, state).is_empty());
        // Private fns are the implementation's business.
        let private = "fn scribble(dst: &mut [u8]) {\n}\n";
        assert!(check(Rule::CostConservation, path, private).is_empty());
    }

    #[test]
    fn multiline_signatures_are_parsed() {
        let path = "crates/gpu/src/device.rs";
        let src = "pub fn upload(\n    &mut self,\n    data: &[f32],\n    stride: usize,\n) {\n}\n";
        let found = check(Rule::CostConservation, path, src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let path = "crates/cell-be/src/dma.rs";
        let src = "fn shipping() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        assert!(check(Rule::PanicDiscipline, path, src).is_empty());
        let src2 = "fn shipping() { x.unwrap(); }\n#[cfg(test)]\nmod tests {}\n";
        assert_eq!(check(Rule::PanicDiscipline, path, src2).len(), 1);
    }
}
