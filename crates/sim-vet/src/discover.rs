//! Target discovery from workspace manifests.
//!
//! v1 scanned a hand-maintained directory list that had to be extended by
//! hand every time a crate landed (`sim-fault` in PR 2, `sim-sweep` in
//! PR 4) — a silent coverage gap waiting to happen. v2 reads the workspace
//! `Cargo.toml`, expands its `members` globs, and reads each member's
//! `[package.metadata.simvet]` table:
//!
//! ```toml
//! [package.metadata.simvet]
//! profile = "device"               # device|observer|engine|core|host|exempt
//! f32-kernel-modules = ["src/kernel.rs"]   # precision-discipline targets
//! shared-eval-modules = ["src/shared_eval.rs"]   # eval-purity targets
//! ```
//!
//! A member with *no* profile is itself a finding: new crates must opt into
//! a discipline (or explicitly out) before the gate passes, so coverage can
//! never rot silently again.

use std::path::{Path, PathBuf};

/// Which rule families a crate opted into. See [`Profile::rules_for`] in
//  `rules.rs` for the profile → rule mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Simulated hardware charging cycle costs: the full discipline set.
    Device,
    /// Observability layer: must never charge costs; ordered output.
    Observer,
    /// Sweep/caching engine: purity of memoized results.
    Engine,
    /// Shared physics/infrastructure: ordering + sim-time unit hygiene.
    Core,
    /// Host-side orchestration (harness): ordering + sim-time unit hygiene.
    Host,
    /// No invariant rules (shims, the linter itself, pure math).
    Exempt,
}

impl Profile {
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "device" => Profile::Device,
            "observer" => Profile::Observer,
            "engine" => Profile::Engine,
            "core" => Profile::Core,
            "host" => Profile::Host,
            "exempt" => Profile::Exempt,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            Profile::Device => "device",
            Profile::Observer => "observer",
            Profile::Engine => "engine",
            Profile::Core => "core",
            Profile::Host => "host",
            Profile::Exempt => "exempt",
        }
    }
}

/// One discovered scan target (a workspace member or the root package).
#[derive(Clone, Debug)]
pub struct Target {
    /// Workspace-relative directory (`crates/cell-be`), `.` for the root.
    pub dir: String,
    /// `None` when the manifest has no `[package.metadata.simvet]` table —
    /// reported as a `target-discovery` finding.
    pub profile: Option<Profile>,
    /// Present but unrecognized profile string, kept for the diagnostic.
    pub bad_profile: Option<String>,
    /// Workspace-relative paths of declared f32 kernel modules.
    pub f32_kernel_modules: Vec<String>,
    /// Workspace-relative paths of declared shared-eval modules
    /// (eval-purity targets: physics only, no cost charging).
    pub shared_eval_modules: Vec<String>,
}

/// Discover every scan target under `root`. Falls back to "scan everything
/// as unclassified" when the root manifest is missing (synthetic test
/// trees), so seeded-tree tests keep working without manifests.
pub fn discover_targets(root: &Path) -> std::io::Result<Vec<Target>> {
    let manifest = root.join("Cargo.toml");
    let Ok(text) = std::fs::read_to_string(&manifest) else {
        return Ok(Vec::new());
    };
    let mut targets = Vec::new();
    // The root manifest may itself be a package (it is, here).
    if text.contains("[package]") {
        targets.push(target_from_manifest(root, ".", &text));
    }
    for member in expand_members(root, &parse_members(&text)) {
        let mtext =
            std::fs::read_to_string(root.join(&member).join("Cargo.toml")).unwrap_or_default();
        targets.push(target_from_manifest(root, &member, &mtext));
    }
    targets.sort_by(|a, b| a.dir.cmp(&b.dir));
    Ok(targets)
}

fn target_from_manifest(_root: &Path, dir: &str, manifest: &str) -> Target {
    let meta = metadata_table(manifest);
    let profile_str = meta.as_deref().and_then(|t| string_value(t, "profile"));
    let (profile, bad_profile) = match &profile_str {
        Some(s) => match Profile::from_name(s) {
            Some(p) => (Some(p), None),
            None => (None, Some(s.clone())),
        },
        None => (None, None),
    };
    let module_list = |key: &str| -> Vec<String> {
        meta.as_deref()
            .map(|t| {
                array_value(t, key)
                    .into_iter()
                    .map(|m| join_rel(dir, &m))
                    .collect()
            })
            .unwrap_or_default()
    };
    Target {
        dir: dir.to_string(),
        profile,
        bad_profile,
        f32_kernel_modules: module_list("f32-kernel-modules"),
        shared_eval_modules: module_list("shared-eval-modules"),
    }
}

/// `dir`-relative path joined workspace-relative with `/` separators.
pub fn join_rel(dir: &str, rel: &str) -> String {
    if dir == "." {
        rel.to_string()
    } else {
        format!("{dir}/{rel}")
    }
}

/// The `members = [...]` entries of the `[workspace]` table.
fn parse_members(manifest: &str) -> Vec<String> {
    let Some(ws) = table_body(manifest, "[workspace]") else {
        return Vec::new();
    };
    array_value(ws, "members")
}

/// Expand `crates/*`-style member globs against the filesystem (only the
/// trailing-`*` single-level form Cargo commonly uses; literal members pass
/// through).
fn expand_members(root: &Path, members: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for m in members {
        if let Some(prefix) = m.strip_suffix("/*") {
            let dir = root.join(prefix);
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            let mut found: Vec<String> = entries
                .filter_map(Result::ok)
                .filter(|e| e.path().join("Cargo.toml").is_file())
                .map(|e| format!("{prefix}/{}", e.file_name().to_string_lossy()))
                .collect();
            found.sort();
            out.extend(found);
        } else if root.join(m).join("Cargo.toml").is_file() {
            out.push(m.clone());
        }
    }
    out
}

/// The text of a named TOML table, up to the next `[` header at line start.
fn table_body<'t>(manifest: &'t str, header: &str) -> Option<&'t str> {
    let mut offset = 0;
    for line in manifest.lines() {
        if line.trim() == header {
            let start = offset + line.len();
            let rest = &manifest[start..];
            let end = rest
                .match_indices('\n')
                .find(|(i, _)| rest[i + 1..].trim_start_matches(' ').starts_with('['))
                .map_or(rest.len(), |(i, _)| i);
            return Some(&rest[..end]);
        }
        offset += line.len() + 1;
    }
    None
}

fn metadata_table(manifest: &str) -> Option<String> {
    table_body(manifest, "[package.metadata.simvet]").map(str::to_string)
}

/// `key = "value"` within a table body.
fn string_value(table: &str, key: &str) -> Option<String> {
    for line in table.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let rest = rest.trim();
                if rest.len() >= 2 && rest.starts_with('"') {
                    if let Some(close) = rest[1..].find('"') {
                        return Some(rest[1..1 + close].to_string());
                    }
                }
            }
        }
    }
    None
}

/// `key = ["a", "b"]` within a table body; tolerates multi-line arrays.
fn array_value(table: &str, key: &str) -> Vec<String> {
    let Some(pos) = table.find(key) else {
        return Vec::new();
    };
    let after = &table[pos + key.len()..];
    let Some(eq) = after.find('=') else {
        return Vec::new();
    };
    let after = &after[eq + 1..];
    let Some(open) = after.find('[') else {
        return Vec::new();
    };
    let after = &after[open + 1..];
    let Some(close) = after.find(']') else {
        return Vec::new();
    };
    after[..close]
        .split(',')
        .filter_map(|s| {
            let s = s.trim();
            (s.len() >= 2 && s.starts_with('"') && s.ends_with('"'))
                .then(|| s[1..s.len() - 1].to_string())
        })
        .collect()
}

/// Collect every `.rs` file under `dir` (recursive), workspace-relative with
/// `/` separators, skipping build output, VCS state, and seeded-violation
/// `fixtures/` corpora (they are *supposed* to scan dirty).
pub fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | ".git" | "results" | ".github" | "fixtures"
            ) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(relative_slash_path(root, &path));
        }
    }
    Ok(())
}

pub fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_members_and_expands_globs_on_the_real_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let targets = discover_targets(root).unwrap();
        let dirs: Vec<&str> = targets.iter().map(|t| t.dir.as_str()).collect();
        assert!(dirs.contains(&"."), "{dirs:?}");
        assert!(dirs.contains(&"crates/cell-be"), "{dirs:?}");
        assert!(dirs.contains(&"crates/sim-sweep"), "{dirs:?}");
        assert!(dirs.contains(&"compat/rayon"), "{dirs:?}");
    }

    #[test]
    fn string_and_array_values() {
        let t = "profile = \"device\"\nf32-kernel-modules = [\"src/kernel.rs\", \"src/b.rs\"]\n";
        assert_eq!(string_value(t, "profile").as_deref(), Some("device"));
        assert_eq!(
            array_value(t, "f32-kernel-modules"),
            vec!["src/kernel.rs".to_string(), "src/b.rs".to_string()]
        );
    }

    #[test]
    fn missing_manifest_yields_no_targets() {
        let targets = discover_targets(Path::new("/nonexistent-simvet-root")).unwrap();
        assert!(targets.is_empty());
    }

    #[test]
    fn profile_names_round_trip() {
        for p in [
            Profile::Device,
            Profile::Observer,
            Profile::Engine,
            Profile::Core,
            Profile::Host,
            Profile::Exempt,
        ] {
            assert_eq!(Profile::from_name(p.name()), Some(p));
        }
        assert_eq!(Profile::from_name("nope"), None);
    }
}
