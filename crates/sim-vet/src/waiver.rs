//! Inline waiver parsing — v2: directives are read from *comment tokens*,
//! so a waiver-shaped string literal can never waive anything, and every
//! parsed entry is kept so the `dead-waiver` rule can audit which waivers
//! still earn their place.
//!
//! Syntax (always inside a `//` comment, with an optional `: reason`):
//!
//! - `// sim-vet: allow(rule)` — trailing: waives `rule` on this line;
//!   alone on a line: waives `rule` on the next line.
//! - `// sim-vet: begin-allow(rule)` … `// sim-vet: end-allow(rule)` —
//!   waives `rule` for the region between the markers.
//! - `// sim-vet: allow-file(rule)` — waives `rule` for the whole file.

use crate::lexer::{lex, TokenKind};
use crate::rules::Rule;

/// One parsed waiver directive and the line span it suppresses.
#[derive(Clone, Debug)]
pub struct WaiverEntry {
    /// `None` when the rule name is unknown — itself a `dead-waiver` finding.
    pub rule: Option<Rule>,
    /// The rule name as written.
    pub raw: String,
    /// 1-based line of the directive.
    pub line: usize,
    /// Covered line span (inclusive); the whole file for `allow-file`.
    pub lo: usize,
    pub hi: usize,
    /// True for `allow-file` entries.
    pub file_wide: bool,
}

impl WaiverEntry {
    pub fn covers(&self, rule: Rule, line: usize) -> bool {
        self.rule == Some(rule) && (self.file_wide || (self.lo..=self.hi).contains(&line))
    }
}

/// Parsed waivers for one file.
#[derive(Clone, Debug, Default)]
pub struct Waivers {
    entries: Vec<WaiverEntry>,
}

impl Waivers {
    pub fn parse(text: &str) -> Self {
        let tokens = lex(text);
        let total_lines = text.lines().count().max(1);
        // For bare-line detection: lines that carry a code token before the
        // comment make a trailing waiver; otherwise the waiver is bare and
        // covers the *next* line.
        let mut code_on_line = vec![false; total_lines + 2];
        for t in &tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                && t.line < code_on_line.len()
            {
                code_on_line[t.line] = true;
            }
        }
        let mut entries = Vec::new();
        let mut open_regions: Vec<(usize, Option<Rule>, String, usize)> = Vec::new();
        for t in &tokens {
            if t.kind != TokenKind::LineComment {
                continue;
            }
            let comment = t.text(text);
            let Some(pos) = comment.find("sim-vet:") else {
                continue;
            };
            let directive = comment[pos + "sim-vet:".len()..].trim_start();
            for (prefix, kind) in [
                ("begin-allow(", WaiverKind::Begin),
                ("end-allow(", WaiverKind::End),
                ("allow-file(", WaiverKind::File),
                ("allow(", WaiverKind::Line),
            ] {
                let Some(rest) = directive.strip_prefix(prefix) else {
                    continue;
                };
                let Some(close) = rest.find(')') else {
                    break;
                };
                let raw = rest[..close].trim().to_string();
                let rule = Rule::from_name(&raw);
                match kind {
                    WaiverKind::Line => {
                        let covered = if code_on_line[t.line] {
                            t.line
                        } else {
                            t.line + 1
                        };
                        entries.push(WaiverEntry {
                            rule,
                            raw,
                            line: t.line,
                            lo: covered,
                            hi: covered,
                            file_wide: false,
                        });
                    }
                    WaiverKind::Begin => {
                        open_regions.push((entries.len(), rule, raw, t.line));
                        // Placeholder; span fixed by the matching end marker.
                        entries.push(WaiverEntry {
                            rule: None,
                            raw: String::new(),
                            line: t.line,
                            lo: t.line,
                            hi: t.line,
                            file_wide: false,
                        });
                    }
                    WaiverKind::End => {
                        if let Some(open_at) = open_regions.iter().rposition(|(_, r, raw2, _)| {
                            *r == rule && (r.is_some() || *raw2 == raw)
                        }) {
                            let (slot, r, raw2, start) = open_regions.remove(open_at);
                            entries[slot] = WaiverEntry {
                                rule: r,
                                raw: raw2,
                                line: start,
                                lo: start,
                                hi: t.line,
                                file_wide: false,
                            };
                        }
                    }
                    WaiverKind::File => entries.push(WaiverEntry {
                        rule,
                        raw,
                        line: t.line,
                        lo: 1,
                        hi: total_lines,
                        file_wide: true,
                    }),
                }
                break;
            }
        }
        // Unterminated regions run to end of file.
        for (slot, rule, raw, start) in open_regions {
            entries[slot] = WaiverEntry {
                rule,
                raw,
                line: start,
                lo: start,
                hi: total_lines,
                file_wide: false,
            };
        }
        Waivers { entries }
    }

    /// Does any waiver cover `rule` at `line`?
    pub fn covers(&self, rule: Rule, line: usize) -> bool {
        self.entries.iter().any(|e| e.covers(rule, line))
    }

    /// Every parsed directive, for the dead-waiver audit.
    pub fn entries(&self) -> &[WaiverEntry] {
        &self.entries
    }
}

enum WaiverKind {
    Line,
    Begin,
    End,
    File,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_waiver_covers_its_line() {
        let w = Waivers::parse("let x: f64 = 0.0; // sim-vet: allow(precision-discipline)\n");
        assert!(w.covers(Rule::PrecisionDiscipline, 1));
        assert!(!w.covers(Rule::PrecisionDiscipline, 2));
        assert!(!w.covers(Rule::Determinism, 1));
    }

    #[test]
    fn bare_line_waiver_covers_next_line() {
        let w = Waivers::parse(
            "// sim-vet: allow(panic-discipline): guarded by protocol\nx.unwrap();\n",
        );
        assert!(w.covers(Rule::PanicDiscipline, 2));
        assert!(!w.covers(Rule::PanicDiscipline, 1));
    }

    #[test]
    fn region_waiver() {
        let src = "a();\n// sim-vet: begin-allow(precision-discipline): DP section\nb();\nc();\n// sim-vet: end-allow(precision-discipline)\nd();\n";
        let w = Waivers::parse(src);
        assert!(!w.covers(Rule::PrecisionDiscipline, 1));
        assert!(w.covers(Rule::PrecisionDiscipline, 3));
        assert!(w.covers(Rule::PrecisionDiscipline, 4));
        assert!(!w.covers(Rule::PrecisionDiscipline, 6));
    }

    #[test]
    fn unterminated_region_runs_to_eof() {
        let w = Waivers::parse("// sim-vet: begin-allow(determinism)\nx();\ny();\n");
        assert!(w.covers(Rule::Determinism, 3));
    }

    #[test]
    fn file_waiver() {
        let w =
            Waivers::parse("// sim-vet: allow-file(cost-conservation): charged upstream\nx();\n");
        assert!(w.covers(Rule::CostConservation, 2));
        assert!(w.entries()[0].file_wide);
    }

    #[test]
    fn directive_inside_string_literal_is_ignored() {
        // v1's line scanner could be fooled by a string containing a
        // comment-looking waiver; token-level parsing cannot.
        let w = Waivers::parse("let s = \"// sim-vet: allow(determinism)\";\n");
        assert!(!w.covers(Rule::Determinism, 1));
        assert!(w.entries().is_empty());
    }

    #[test]
    fn unknown_rule_is_kept_for_the_dead_waiver_audit() {
        let w = Waivers::parse("// sim-vet: allow(no-such-rule)\nx();\n");
        assert!(!w.covers(Rule::Determinism, 2));
        assert_eq!(w.entries().len(), 1);
        assert!(w.entries()[0].rule.is_none());
        assert_eq!(w.entries()[0].raw, "no-such-rule");
    }

    #[test]
    fn entry_spans_are_reported() {
        let src = "// sim-vet: begin-allow(determinism)\na();\n// sim-vet: end-allow(determinism)\nb(); // sim-vet: allow(panic-discipline)\n";
        let w = Waivers::parse(src);
        let region = &w.entries()[0];
        assert_eq!((region.lo, region.hi), (1, 3));
        let line = &w.entries()[1];
        assert_eq!((line.lo, line.hi), (4, 4));
    }
}
