//! Inline waiver parsing.
//!
//! Syntax (always inside a comment, with an optional `: reason` suffix):
//!
//! - `// sim-vet: allow(rule)` — trailing: waives `rule` on this line;
//!   alone on a line: waives `rule` on the next line.
//! - `// sim-vet: begin-allow(rule)` … `// sim-vet: end-allow(rule)` —
//!   waives `rule` for the region between the markers.
//! - `// sim-vet: allow-file(rule)` — waives `rule` for the whole file.

use crate::rules::Rule;

/// Parsed waivers for one file.
#[derive(Clone, Debug, Default)]
pub struct Waivers {
    /// (rule, 1-based line) covered by a line waiver.
    lines: Vec<(Rule, usize)>,
    /// (rule, start line, inclusive end line) regions.
    regions: Vec<(Rule, usize, usize)>,
    /// Rules waived for the whole file.
    file: Vec<Rule>,
}

impl Waivers {
    pub fn parse(text: &str) -> Self {
        let mut w = Waivers::default();
        let mut open_regions: Vec<(Rule, usize)> = Vec::new();
        let mut total_lines = 0;
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            total_lines = lineno;
            let Some(pos) = line.find("sim-vet:") else {
                continue;
            };
            // Only honor the directive inside a comment.
            let Some(comment) = line.find("//") else {
                continue;
            };
            if comment > pos {
                continue;
            }
            let directive = &line[pos + "sim-vet:".len()..];
            let directive = directive.trim_start();
            for (prefix, kind) in [
                ("begin-allow(", WaiverKind::Begin),
                ("end-allow(", WaiverKind::End),
                ("allow-file(", WaiverKind::File),
                ("allow(", WaiverKind::Line),
            ] {
                let Some(rest) = directive.strip_prefix(prefix) else {
                    continue;
                };
                let Some(close) = rest.find(')') else {
                    break;
                };
                let Some(rule) = Rule::from_name(rest[..close].trim()) else {
                    break;
                };
                match kind {
                    WaiverKind::Line => {
                        // Trailing waiver covers its own line; a bare-line
                        // waiver (comment is the whole line) covers the next.
                        let bare = line.trim_start().starts_with("//");
                        w.lines.push((rule, if bare { lineno + 1 } else { lineno }));
                    }
                    WaiverKind::Begin => open_regions.push((rule, lineno)),
                    WaiverKind::End => {
                        if let Some(open_at) = open_regions.iter().rposition(|(r, _)| *r == rule) {
                            let (r, start) = open_regions.remove(open_at);
                            w.regions.push((r, start, lineno));
                        }
                    }
                    WaiverKind::File => w.file.push(rule),
                }
                break;
            }
        }
        // Unterminated regions run to end of file.
        for (rule, start) in open_regions {
            w.regions.push((rule, start, total_lines));
        }
        w
    }

    /// Does any waiver cover `rule` at `line`?
    pub fn covers(&self, rule: Rule, line: usize) -> bool {
        self.file.contains(&rule)
            || self.lines.iter().any(|&(r, l)| r == rule && l == line)
            || self
                .regions
                .iter()
                .any(|&(r, lo, hi)| r == rule && (lo..=hi).contains(&line))
    }
}

enum WaiverKind {
    Line,
    Begin,
    End,
    File,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_waiver_covers_its_line() {
        let w = Waivers::parse("let x: f64 = 0.0; // sim-vet: allow(precision-discipline)\n");
        assert!(w.covers(Rule::PrecisionDiscipline, 1));
        assert!(!w.covers(Rule::PrecisionDiscipline, 2));
        assert!(!w.covers(Rule::Determinism, 1));
    }

    #[test]
    fn bare_line_waiver_covers_next_line() {
        let w = Waivers::parse(
            "// sim-vet: allow(panic-discipline): guarded by protocol\nx.unwrap();\n",
        );
        assert!(w.covers(Rule::PanicDiscipline, 2));
        assert!(!w.covers(Rule::PanicDiscipline, 1));
    }

    #[test]
    fn region_waiver() {
        let src = "a\n// sim-vet: begin-allow(precision-discipline): DP section\nb\nc\n// sim-vet: end-allow(precision-discipline)\nd\n";
        let w = Waivers::parse(src);
        assert!(!w.covers(Rule::PrecisionDiscipline, 1));
        assert!(w.covers(Rule::PrecisionDiscipline, 3));
        assert!(w.covers(Rule::PrecisionDiscipline, 4));
        assert!(!w.covers(Rule::PrecisionDiscipline, 6));
    }

    #[test]
    fn unterminated_region_runs_to_eof() {
        let w = Waivers::parse("// sim-vet: begin-allow(determinism)\nx\ny\n");
        assert!(w.covers(Rule::Determinism, 3));
    }

    #[test]
    fn file_waiver() {
        let w = Waivers::parse("// sim-vet: allow-file(cost-conservation): charged upstream\nx\n");
        assert!(w.covers(Rule::CostConservation, 999));
    }

    #[test]
    fn directive_outside_comment_is_ignored() {
        let w = Waivers::parse("let s = \"sim-vet: allow(determinism)\";\n");
        assert!(!w.covers(Rule::Determinism, 1));
    }

    #[test]
    fn unknown_rule_is_ignored() {
        let w = Waivers::parse("// sim-vet: allow(no-such-rule)\nx\n");
        assert!(!w.covers(Rule::Determinism, 2));
    }
}
