//! Fixture selfcheck: proves the linter still *detects* what it claims to.
//!
//! Each file in `crates/sim-vet/fixtures/` is a seeded-violation corpus:
//!
//! - a `//! vet-path: <workspace-relative path>` header assigns the virtual
//!   path the fixture is linted under (scoping is path-based);
//! - every line carrying `vet-expect(rule)` in a comment must produce an
//!   unwaived finding of exactly that rule on that line;
//! - any unwaived finding *not* marked with `vet-expect` is a failure.
//!
//! A linter bug that silences a rule breaks the expectation; a rule that
//! starts over-firing breaks the no-unexpected check. CI runs this as the
//! `sim-vet --selfcheck` step; the tier-1 suite runs the same function.

use crate::{analyze_sources, Rule};
use std::collections::BTreeSet;
use std::path::Path;

/// Outcome of a fixture selfcheck run.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    pub fixtures: usize,
    pub expectations: usize,
    /// Human-readable failures; empty means the corpus passed.
    pub failures: Vec<String>,
}

impl Outcome {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the selfcheck over every `.rs` fixture in `dir`.
pub fn run(dir: &Path) -> std::io::Result<Outcome> {
    let mut outcome = Outcome::default();
    let mut names: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    if names.is_empty() {
        outcome
            .failures
            .push(format!("no fixtures found in {}", dir.display()));
        return Ok(outcome);
    }
    for path in names {
        let text = std::fs::read_to_string(&path)?;
        let fixture = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        outcome.fixtures += 1;
        check_fixture(&fixture, &text, &mut outcome);
    }
    Ok(outcome)
}

/// Check one fixture source (exposed for in-memory tests).
pub fn check_fixture(fixture: &str, text: &str, outcome: &mut Outcome) {
    let Some(vpath) = text.lines().find_map(|l| {
        l.trim()
            .strip_prefix("//! vet-path:")
            .map(|p| p.trim().to_string())
    }) else {
        outcome
            .failures
            .push(format!("{fixture}: missing `//! vet-path:` header"));
        return;
    };

    let mut expected: BTreeSet<(Rule, usize)> = BTreeSet::new();
    for (idx, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("vet-expect(") {
            rest = &rest[pos + "vet-expect(".len()..];
            let Some(close) = rest.find(')') else { break };
            let name = rest[..close].trim();
            match Rule::from_name(name) {
                Some(rule) => {
                    expected.insert((rule, idx + 1));
                }
                None => outcome.failures.push(format!(
                    "{fixture}:{}: vet-expect names unknown rule `{name}`",
                    idx + 1
                )),
            }
            rest = &rest[close..];
        }
    }
    outcome.expectations += expected.len();

    let sources = vec![(vpath.clone(), text.to_string())];
    let report = analyze_sources(&sources, &[]);
    let actual: BTreeSet<(Rule, usize)> = report.unwaived().map(|f| (f.rule, f.line)).collect();

    for (rule, line) in expected.difference(&actual) {
        outcome.failures.push(format!(
            "{fixture}:{line}: expected [{}] finding was NOT detected (as {vpath})",
            rule.name()
        ));
    }
    for (rule, line) in actual.difference(&expected) {
        outcome.failures.push(format!(
            "{fixture}:{line}: unexpected unwaived [{}] finding (as {vpath})",
            rule.name()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_fixture_corpus_passes() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let outcome = run(&dir).expect("read fixtures");
        assert!(
            outcome.ok(),
            "selfcheck failures:\n{}",
            outcome.failures.join("\n")
        );
        assert!(outcome.fixtures >= 4, "fixtures: {}", outcome.fixtures);
        assert!(
            outcome.expectations >= 8,
            "expectations: {}",
            outcome.expectations
        );
    }

    #[test]
    fn missed_detection_is_a_failure() {
        let mut outcome = Outcome::default();
        check_fixture(
            "t.rs",
            "//! vet-path: crates/gpu/src/device.rs\npub fn f() -> u32 { 0 } // vet-expect(panic-discipline)\n",
            &mut outcome,
        );
        assert!(!outcome.ok());
        assert!(outcome.failures[0].contains("NOT detected"));
    }

    #[test]
    fn unexpected_finding_is_a_failure() {
        let mut outcome = Outcome::default();
        check_fixture(
            "t.rs",
            "//! vet-path: crates/gpu/src/device.rs\npub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n",
            &mut outcome,
        );
        assert!(!outcome.ok());
        assert!(outcome.failures[0].contains("unexpected"));
    }
}
