//! Lightweight item extraction over the token stream: brace-matched
//! `struct` / `enum` / `fn` / `impl` items with their names, fields, and
//! body token ranges.
//!
//! This is deliberately *not* a Rust parser — no expressions, no generics
//! resolution, no macro expansion. It recovers exactly the structure the
//! semantic rules need: which structs exist and what fields they carry
//! (cache-token completeness), which fns exist and where their bodies start
//! and end (per-fn scanning, cost-conservation signatures), which items sit
//! under `#[cfg(test)]` (rules bind shipping code only), and which `impl`
//! block a fn belongs to (so `cache_token` can be tied to its enum).

use crate::lexer::{ident_eq, is_code, Token, TokenKind};

/// A named field of a struct or enum variant: `name: Type`.
#[derive(Clone, Debug)]
pub struct Field {
    pub name: String,
    /// The type as written, tokens joined by single spaces
    /// (`Option < RemoteMemoryModel >`).
    pub ty: String,
    /// 1-based line of the field name.
    pub line: usize,
    /// 1-based column of the field name.
    pub col: usize,
}

/// An enum variant and its fields (named for struct variants, empty for unit
/// and tuple variants — tuple payloads carry no field *names* to audit).
#[derive(Clone, Debug)]
pub struct Variant {
    pub name: String,
    pub fields: Vec<Field>,
    pub line: usize,
}

/// A fn item: signature split out, body as a token range into the file's
/// token vector.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Type name of the enclosing `impl` block, if any.
    pub self_ty: Option<String>,
    pub is_pub: bool,
    /// Parameter list tokens, rendered (`& mut self , data : & [ u8 ]`).
    pub params: String,
    /// Return type as written, `()` when omitted.
    pub ret: String,
    /// Token index range (into the lexed file) of the body, braces included.
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    pub line: usize,
    /// True when the fn (or an enclosing item) is `#[cfg(test)]`-gated.
    pub in_test: bool,
}

/// A struct with named fields. Tuple and unit structs are recorded with an
/// empty field list.
#[derive(Clone, Debug)]
pub struct StructItem {
    pub name: String,
    pub fields: Vec<Field>,
    pub line: usize,
    pub in_test: bool,
}

#[derive(Clone, Debug)]
pub struct EnumItem {
    pub name: String,
    pub variants: Vec<Variant>,
    pub line: usize,
    pub in_test: bool,
}

/// Everything extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct Items {
    pub structs: Vec<StructItem>,
    pub enums: Vec<EnumItem>,
    pub fns: Vec<FnItem>,
    /// 1-based line ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl Items {
    /// Is `line` inside a `#[cfg(test)]` item?
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// Extract items from a lexed file. `src` is the file text the tokens index.
pub fn extract(src: &str, tokens: &[Token]) -> Items {
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| is_code(&tokens[i])).collect();
    let mut items = Items::default();
    walk(src, tokens, &code, 0, code.len(), None, false, &mut items);
    items
}

/// Walk the code-token index range `[lo, hi)` of `code`, extracting items.
/// `self_ty` is the enclosing impl's type; `in_test` whether an enclosing
/// item is `#[cfg(test)]`.
#[allow(clippy::too_many_arguments)]
fn walk(
    src: &str,
    tokens: &[Token],
    code: &[usize],
    lo: usize,
    hi: usize,
    self_ty: Option<&str>,
    in_test: bool,
    items: &mut Items,
) {
    let mut i = lo;
    while i < hi {
        let tok = &tokens[code[i]];
        // Attribute: scan `#[ … ]`, noting cfg(test).
        if tok.is(src, TokenKind::Punct, "#") {
            let mut j = i + 1;
            // `#![…]` inner attributes too.
            if j < hi && tokens[code[j]].is(src, TokenKind::Punct, "!") {
                j += 1;
            }
            if j < hi && tokens[code[j]].is(src, TokenKind::Punct, "[") {
                let close = match_delim(src, tokens, code, j, hi, "[", "]");
                let attr_is_test = is_cfg_test(src, tokens, code, j + 1, close.min(hi));
                if attr_is_test {
                    // The attribute gates the *next* item: find its extent.
                    let item_end = item_extent(src, tokens, code, close + 1, hi);
                    let start_line = tok.line;
                    let end_line = if item_end > close + 1 && item_end <= hi {
                        tokens[code[item_end - 1]].line
                    } else {
                        start_line
                    };
                    items.test_ranges.push((start_line, end_line));
                    // Recurse into it as test code (items inside are still
                    // extracted, flagged in_test).
                    consume_item(
                        src,
                        tokens,
                        code,
                        close + 1,
                        item_end.min(hi),
                        self_ty,
                        true,
                        items,
                    );
                    i = item_end;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        if tok.kind == TokenKind::Ident {
            match tok.text(src) {
                "struct" | "enum" | "fn" | "impl" | "mod" | "trait" => {
                    let end = item_extent(src, tokens, code, i, hi);
                    consume_item(src, tokens, code, i, end.min(hi), self_ty, in_test, items);
                    i = end;
                    continue;
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Parse the single item starting at `code[i]` (its `struct`/`fn`/… keyword,
/// possibly preceded by visibility handled by the caller's scan) ending at
/// `end` (exclusive). Recurses into `mod`/`impl` bodies.
#[allow(clippy::too_many_arguments)]
fn consume_item(
    src: &str,
    tokens: &[Token],
    code: &[usize],
    mut i: usize,
    end: usize,
    self_ty: Option<&str>,
    in_test: bool,
    items: &mut Items,
) {
    // Skip leading visibility / qualifiers to reach the keyword.
    while i < end {
        let t = &tokens[code[i]];
        if t.kind == TokenKind::Ident {
            match t.text(src) {
                "pub" => {
                    // `pub(crate)` etc.
                    if i + 1 < end && tokens[code[i + 1]].is(src, TokenKind::Punct, "(") {
                        i = match_delim(src, tokens, code, i + 1, end, "(", ")") + 1;
                    } else {
                        i += 1;
                    }
                }
                "const" | "unsafe" | "async" | "extern" => i += 1,
                _ => break,
            }
        } else if t.kind == TokenKind::Str {
            // `extern "C"`.
            i += 1;
        } else if t.is(src, TokenKind::Punct, "#") {
            // A non-test attribute between qualifiers; skip it.
            let mut j = i + 1;
            if j < end && tokens[code[j]].is(src, TokenKind::Punct, "!") {
                j += 1;
            }
            if j < end && tokens[code[j]].is(src, TokenKind::Punct, "[") {
                i = match_delim(src, tokens, code, j, end, "[", "]") + 1;
                continue;
            }
            i += 1;
        } else {
            break;
        }
    }
    if i >= end {
        return;
    }
    let kw = tokens[code[i]].text(src);
    match kw {
        "struct" => parse_struct(src, tokens, code, i, end, in_test, items),
        "enum" => parse_enum(src, tokens, code, i, end, in_test, items),
        "fn" => parse_fn(src, tokens, code, i, end, self_ty, in_test, items),
        "impl" => {
            // `impl [<…>] [Trait for] Type { … }` — recurse with self_ty.
            let mut j = i + 1;
            if j < end && tokens[code[j]].is(src, TokenKind::Punct, "<") {
                j = match_angle(src, tokens, code, j, end) + 1;
            }
            // Collect path idents until `{` or `for`; the segment before the
            // body (after an optional `for`) is the self type.
            let mut last_ident: Option<String> = None;
            let mut after_for: Option<String> = None;
            let mut saw_for = false;
            while j < end {
                let t = &tokens[code[j]];
                if t.is(src, TokenKind::Punct, "{") {
                    break;
                }
                if t.kind == TokenKind::Ident {
                    if t.text(src) == "for" {
                        saw_for = true;
                    } else if t.text(src) != "where" {
                        if saw_for {
                            after_for.get_or_insert_with(|| t.text(src).to_string());
                            // keep last path segment after `for`
                            after_for = Some(t.text(src).to_string());
                        } else {
                            last_ident = Some(t.text(src).to_string());
                        }
                    }
                } else if t.is(src, TokenKind::Punct, "<") {
                    j = match_angle(src, tokens, code, j, end) + 1;
                    continue;
                }
                j += 1;
            }
            let ty = after_for.or(last_ident);
            if j < end && tokens[code[j]].is(src, TokenKind::Punct, "{") {
                let close = match_delim(src, tokens, code, j, end, "{", "}");
                walk(
                    src,
                    tokens,
                    code,
                    j + 1,
                    close.min(end),
                    ty.as_deref(),
                    in_test,
                    items,
                );
            }
        }
        "mod" | "trait" => {
            // Recurse into the body if there is one.
            let mut j = i + 1;
            while j < end && !tokens[code[j]].is(src, TokenKind::Punct, "{") {
                if tokens[code[j]].is(src, TokenKind::Punct, ";") {
                    return;
                }
                j += 1;
            }
            if j < end {
                let close = match_delim(src, tokens, code, j, end, "{", "}");
                walk(
                    src,
                    tokens,
                    code,
                    j + 1,
                    close.min(end),
                    None,
                    in_test,
                    items,
                );
            }
        }
        _ => {}
    }
}

fn parse_struct(
    src: &str,
    tokens: &[Token],
    code: &[usize],
    i: usize,
    end: usize,
    in_test: bool,
    items: &mut Items,
) {
    let Some(name_tok) = code.get(i + 1).map(|&ti| &tokens[ti]) else {
        return;
    };
    if name_tok.kind != TokenKind::Ident || i + 1 >= end {
        return;
    }
    let name = name_tok.text(src).to_string();
    let line = tokens[code[i]].line;
    let mut j = i + 2;
    if j < end && tokens[code[j]].is(src, TokenKind::Punct, "<") {
        j = match_angle(src, tokens, code, j, end) + 1;
    }
    // Tuple struct `( … );`, unit struct `;`, or named fields `{ … }`.
    let mut fields = Vec::new();
    while j < end {
        let t = &tokens[code[j]];
        if t.is(src, TokenKind::Punct, ";") || t.is(src, TokenKind::Punct, "(") {
            break;
        }
        if t.is(src, TokenKind::Punct, "{") {
            let close = match_delim(src, tokens, code, j, end, "{", "}");
            fields = parse_fields(src, tokens, code, j + 1, close.min(end));
            break;
        }
        j += 1;
    }
    items.structs.push(StructItem {
        name,
        fields,
        line,
        in_test,
    });
}

fn parse_enum(
    src: &str,
    tokens: &[Token],
    code: &[usize],
    i: usize,
    end: usize,
    in_test: bool,
    items: &mut Items,
) {
    let Some(name_tok) = code.get(i + 1).map(|&ti| &tokens[ti]) else {
        return;
    };
    if name_tok.kind != TokenKind::Ident {
        return;
    }
    let name = name_tok.text(src).to_string();
    let line = tokens[code[i]].line;
    let mut j = i + 2;
    while j < end && !tokens[code[j]].is(src, TokenKind::Punct, "{") {
        j += 1;
    }
    let mut variants = Vec::new();
    if j < end {
        let close = match_delim(src, tokens, code, j, end, "{", "}");
        let mut k = j + 1;
        while k < close.min(end) {
            let t = &tokens[code[k]];
            if t.is(src, TokenKind::Punct, "#") {
                // Variant attribute.
                let mut a = k + 1;
                if a < end && tokens[code[a]].is(src, TokenKind::Punct, "[") {
                    k = match_delim(src, tokens, code, a, end, "[", "]") + 1;
                    continue;
                }
                a += 1;
                k = a;
                continue;
            }
            if t.kind == TokenKind::Ident {
                let vname = t.text(src).to_string();
                let vline = t.line;
                let mut fields = Vec::new();
                let mut n = k + 1;
                if n < close && tokens[code[n]].is(src, TokenKind::Punct, "{") {
                    let vclose = match_delim(src, tokens, code, n, close, "{", "}");
                    fields = parse_fields(src, tokens, code, n + 1, vclose.min(close));
                    n = vclose + 1;
                } else if n < close && tokens[code[n]].is(src, TokenKind::Punct, "(") {
                    n = match_delim(src, tokens, code, n, close, "(", ")") + 1;
                }
                // Skip discriminant `= expr` up to the comma.
                while n < close && !tokens[code[n]].is(src, TokenKind::Punct, ",") {
                    n += 1;
                }
                variants.push(Variant {
                    name: vname,
                    fields,
                    line: vline,
                });
                k = n + 1;
                continue;
            }
            k += 1;
        }
    }
    items.enums.push(EnumItem {
        name,
        variants,
        line,
        in_test,
    });
}

/// Parse `name: Type, …` field lists (struct bodies and struct-variant
/// bodies). Attributes and visibility are skipped.
fn parse_fields(src: &str, tokens: &[Token], code: &[usize], lo: usize, hi: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &tokens[code[i]];
        if t.is(src, TokenKind::Punct, "#") {
            if i + 1 < hi && tokens[code[i + 1]].is(src, TokenKind::Punct, "[") {
                i = match_delim(src, tokens, code, i + 1, hi, "[", "]") + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident && t.text(src) == "pub" {
            if i + 1 < hi && tokens[code[i + 1]].is(src, TokenKind::Punct, "(") {
                i = match_delim(src, tokens, code, i + 1, hi, "(", ")") + 1;
            } else {
                i += 1;
            }
            continue;
        }
        if t.kind == TokenKind::Ident
            && i + 1 < hi
            && tokens[code[i + 1]].is(src, TokenKind::Punct, ":")
        {
            let name = t.text(src).to_string();
            let (line, col) = (t.line, t.col);
            // Type runs to the next top-level comma.
            let mut j = i + 2;
            let mut ty_tokens: Vec<String> = Vec::new();
            let mut depth = 0i32;
            while j < hi {
                let tt = &tokens[code[j]];
                let txt = tt.text(src);
                match txt {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "," if depth <= 0 => break,
                    _ => {}
                }
                ty_tokens.push(txt.to_string());
                j += 1;
            }
            fields.push(Field {
                name,
                ty: ty_tokens.join(" "),
                line,
                col,
            });
            i = j + 1;
            continue;
        }
        i += 1;
    }
    fields
}

#[allow(clippy::too_many_arguments)]
fn parse_fn(
    src: &str,
    tokens: &[Token],
    code: &[usize],
    i: usize,
    end: usize,
    self_ty: Option<&str>,
    in_test: bool,
    items: &mut Items,
) {
    let Some(name_tok) = code.get(i + 1).map(|&ti| &tokens[ti]) else {
        return;
    };
    if name_tok.kind != TokenKind::Ident {
        return;
    }
    let name = name_tok.text(src).to_string();
    // `pub` appears before the extent start the caller computed from the
    // keyword; re-scan the raw token line for it.
    let kw_tok = &tokens[code[i]];
    let is_pub = {
        // Look back over immediately preceding code tokens on the same
        // logical item (qualifiers only).
        let mut p = i;
        let mut found = false;
        while p > 0 {
            p -= 1;
            let t = &tokens[code[p]];
            match (t.kind, t.text(src)) {
                (TokenKind::Ident, "pub") => {
                    found = true;
                    break;
                }
                (TokenKind::Ident, "const" | "unsafe" | "async" | "extern") => {}
                (TokenKind::Punct, ")") => {} // pub(crate) closer
                (TokenKind::Ident, "crate" | "super" | "in" | "self") => {}
                (TokenKind::Punct, "(") => {}
                (TokenKind::Str, _) => {}
                _ => break,
            }
        }
        found
    };
    let mut j = i + 2;
    if j < end && tokens[code[j]].is(src, TokenKind::Punct, "<") {
        j = match_angle(src, tokens, code, j, end) + 1;
    }
    if j >= end || !tokens[code[j]].is(src, TokenKind::Punct, "(") {
        return;
    }
    let close = match_delim(src, tokens, code, j, end, "(", ")");
    let params: Vec<String> = (j + 1..close.min(end))
        .map(|k| tokens[code[k]].text(src).to_string())
        .collect();
    // Return type: tokens between `)` and the body `{` / `;` / `where`.
    let mut k = close + 1;
    let mut ret_tokens: Vec<String> = Vec::new();
    let mut body = None;
    let mut saw_arrow = false;
    let mut depth = 0i32;
    while k < end {
        let t = &tokens[code[k]];
        let txt = t.text(src);
        if depth == 0 && t.is(src, TokenKind::Punct, "{") {
            let bclose = match_delim(src, tokens, code, k, end, "{", "}");
            body = Some((code[k], code[bclose.min(end - 1)]));
            break;
        }
        if depth == 0 && t.is(src, TokenKind::Punct, ";") {
            break;
        }
        match txt {
            "->" => {
                saw_arrow = true;
                k += 1;
                continue;
            }
            "where" if depth == 0 => {
                saw_arrow = false; // ret captured already; stop collecting
                k += 1;
                continue;
            }
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            _ => {}
        }
        if saw_arrow {
            ret_tokens.push(txt.to_string());
        }
        k += 1;
    }
    let ret = if ret_tokens.is_empty() {
        "()".to_string()
    } else {
        ret_tokens.join(" ")
    };
    items.fns.push(FnItem {
        name,
        self_ty: self_ty.map(str::to_string),
        is_pub,
        params: params.join(" "),
        ret,
        body,
        line: kw_tok.line,
        in_test,
    });
    // Recurse into the body for nested items (closures' fns, nested mods).
    if let Some((b_lo, b_hi)) = body {
        let lo_idx = code.partition_point(|&ti| ti <= b_lo);
        let hi_idx = code.partition_point(|&ti| ti < b_hi);
        walk(src, tokens, code, lo_idx, hi_idx, self_ty, in_test, items);
    }
}

/// Where the item starting at `code[i]` ends (exclusive code index): after
/// its matched `{…}` body or its `;`.
fn item_extent(src: &str, tokens: &[Token], code: &[usize], i: usize, hi: usize) -> usize {
    let mut j = i;
    let mut depth = 0i32;
    while j < hi {
        let t = &tokens[code[j]];
        if t.is(src, TokenKind::Punct, "{") {
            let close = match_delim(src, tokens, code, j, hi, "{", "}");
            // A fn body / struct body terminates the item — unless we're
            // inside parens (e.g. a closure argument), which depth tracks.
            if depth == 0 {
                return close + 1;
            }
            j = close + 1;
            continue;
        }
        match t.text(src) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" if depth <= 0 => return j + 1,
            "=" if depth <= 0 => {
                // `struct X = …;` never occurs, but `type`/`const` items use
                // `=`; run to the `;`.
            }
            _ => {}
        }
        j += 1;
    }
    hi
}

/// Index of the matching closer for the opener at `code[open_idx]`.
/// Saturates at the end of range for unbalanced input.
fn match_delim(
    src: &str,
    tokens: &[Token],
    code: &[usize],
    open_idx: usize,
    hi: usize,
    open: &str,
    close: &str,
) -> usize {
    let mut depth = 0i32;
    let mut j = open_idx;
    while j < hi {
        let t = &tokens[code[j]];
        if t.is(src, TokenKind::Punct, open) {
            depth += 1;
        } else if t.is(src, TokenKind::Punct, close) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    hi.saturating_sub(1)
}

/// Match `<…>` generics, tolerating shift operators inside by counting
/// `<`/`>` characters in multi-char tokens.
fn match_angle(src: &str, tokens: &[Token], code: &[usize], open_idx: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open_idx;
    while j < hi {
        let txt = tokens[code[j]].text(src);
        for c in txt.chars() {
            match c {
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 {
            return j;
        }
        j += 1;
    }
    hi.saturating_sub(1)
}

/// Does the attribute token range contain `cfg ( test )` (or
/// `cfg ( … test … )` like `cfg(all(test, …))`)?
fn is_cfg_test(src: &str, tokens: &[Token], code: &[usize], lo: usize, hi: usize) -> bool {
    let mut saw_cfg = false;
    for &ti in code.iter().take(hi).skip(lo) {
        let t = &tokens[ti];
        if ident_eq(t, src, "cfg") {
            saw_cfg = true;
        }
        if saw_cfg && ident_eq(t, src, "test") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items_of(src: &str) -> Items {
        extract(src, &lex(src))
    }

    #[test]
    fn struct_fields_with_types_and_lines() {
        let src = "pub struct GpuConfig {\n    pub clock_hz: f64,\n    pub n_pipes: usize,\n    pub remote: Option<RemoteMemoryModel>,\n}\n";
        let items = items_of(src);
        assert_eq!(items.structs.len(), 1);
        let s = &items.structs[0];
        assert_eq!(s.name, "GpuConfig");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["clock_hz", "n_pipes", "remote"]);
        assert_eq!(s.fields[0].line, 2);
        assert!(s.fields[2].ty.contains("RemoteMemoryModel"));
    }

    #[test]
    fn enum_variants_with_named_fields() {
        let src = "pub enum DeviceKind {\n    Cell { n_spes: usize, policy: SpawnPolicy },\n    CellPpe,\n    Gpu { model: GpuModel },\n}\n";
        let items = items_of(src);
        assert_eq!(items.enums.len(), 1);
        let e = &items.enums[0];
        assert_eq!(e.variants.len(), 3);
        assert_eq!(e.variants[0].fields.len(), 2);
        assert_eq!(e.variants[0].fields[1].name, "policy");
        assert!(e.variants[1].fields.is_empty());
    }

    #[test]
    fn fns_carry_signature_and_impl_type() {
        let src = "impl DeviceKind {\n    pub fn cache_token(self) -> String {\n        let x = 1;\n        format!(\"{x}\")\n    }\n    fn helper(&self) {}\n}\n";
        let items = items_of(src);
        assert_eq!(items.fns.len(), 2);
        let f = &items.fns[0];
        assert_eq!(f.name, "cache_token");
        assert_eq!(f.self_ty.as_deref(), Some("DeviceKind"));
        assert!(f.is_pub);
        assert_eq!(f.ret, "String");
        assert!(f.body.is_some());
        assert!(!items.fns[1].is_pub);
        assert_eq!(items.fns[1].ret, "()");
    }

    #[test]
    fn trait_impl_records_the_self_type() {
        let src = "impl MdDevice for OpteronCpu {\n    fn run(&mut self) -> u32 { 0 }\n}\n";
        let items = items_of(src);
        assert_eq!(items.fns[0].self_ty.as_deref(), Some("OpteronCpu"));
    }

    #[test]
    fn cfg_test_marks_ranges_and_items() {
        let src = "fn shipping() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let items = items_of(src);
        assert!(!items.in_test_code(1));
        assert!(items.in_test_code(4));
        let t = items.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
        assert!(
            !items
                .fns
                .iter()
                .find(|f| f.name == "shipping")
                .unwrap()
                .in_test
        );
    }

    #[test]
    fn multiline_signature_line_is_the_fn_keyword() {
        let src = "pub fn upload(\n    &mut self,\n    data: &[f32],\n) {\n}\n";
        let items = items_of(src);
        let f = &items.fns[0];
        assert_eq!(f.line, 1);
        assert!(f.params.contains("data"));
        assert_eq!(f.ret, "()");
    }

    #[test]
    fn nested_mods_are_walked() {
        let src = "mod inner {\n    pub struct S { pub a: u8 }\n    pub fn f() {}\n}\n";
        let items = items_of(src);
        assert_eq!(items.structs.len(), 1);
        assert_eq!(items.fns.len(), 1);
    }

    #[test]
    fn generic_structs_and_fns() {
        let src = "pub struct Pair<T: Ord> { pub a: T, pub b: Vec<T> }\npub fn max<T: Ord>(a: T, b: T) -> T { if a > b { a } else { b } }\n";
        let items = items_of(src);
        assert_eq!(items.structs[0].fields.len(), 2);
        assert_eq!(items.fns[0].name, "max");
        assert_eq!(items.fns[0].ret, "T");
    }

    #[test]
    fn tuple_and_unit_structs_have_no_named_fields() {
        let src = "pub struct Wrapper(pub f64);\npub struct Marker;\n";
        let items = items_of(src);
        assert_eq!(items.structs.len(), 2);
        assert!(items.structs.iter().all(|s| s.fields.is_empty()));
    }
}
