//! Comment/string stripping: turns Rust source into "code-only" text with
//! identical line structure, so rule matching never fires on prose or string
//! payloads and reported line numbers stay exact.

/// Strip comments (line, nested block, doc) and string/char literals from
/// Rust source. Stripped spans are replaced with spaces; newlines are kept,
/// so `stripped.lines().nth(i)` corresponds to line `i` of the original.
///
/// This is a token-level scanner, not a parser. It handles: `//`, nested
/// `/* */`, `"…"` with escapes, raw strings `r"…"`/`r#"…"#` (any number of
/// `#`s), byte strings, char literals, and distinguishes lifetimes (`'a`)
/// from char literals.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let n = b.len();

    // Emit a char or its blank placeholder.
    fn blank(c: char) -> char {
        if c == '\n' {
            '\n'
        } else {
            ' '
        }
    }

    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nests).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"…" / r#"…"# (and br…). Keep the delimiters blanked.
        if (c == 'r' || c == 'b') && !prev_is_ident(&b, i) {
            let start = if c == 'b' && i + 1 < n && b[i + 1] == 'r' {
                i + 2
            } else if c == 'r' {
                i + 1
            } else {
                usize::MAX
            };
            if start != usize::MAX && start < n {
                let mut hashes = 0;
                let mut j = start;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    // Consume through the matching `"###…` terminator.
                    for &c in &b[i..=j] {
                        out.push(blank(c));
                    }
                    i = j + 1;
                    'raw: while i < n {
                        if b[i] == '"' {
                            let mut h = 0;
                            while h < hashes && i + 1 + h < n && b[i + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                for _ in 0..=hashes {
                                    out.push(' ');
                                }
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Ordinary (or byte) string literal.
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                    continue;
                }
                let done = b[i] == '"';
                out.push(blank(b[i]));
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime: `'x'` / `'\n'` are literals; `'a` in
        // `&'a str` or `'outer:` is not.
        if c == '\'' {
            let is_char_lit = if i + 1 < n && b[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && b[i + 2] == '\''
            };
            if is_char_lit {
                out.push(' ');
                i += 1;
                if i < n && b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if i < n {
                    out.push(blank(b[i]));
                    i += 1;
                }
                if i < n && b[i] == '\'' {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// True when the char before `i` continues an identifier — then an `r`/`b`
/// at `i` is part of a name like `ptr`, not a raw-string prefix.
fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip_comments_and_strings("let x = 1; // f64 here\n/* f64\ntoo */ let y = 2;\n");
        assert!(!s.contains("f64"));
        assert!(s.contains("let x = 1;"));
        assert!(s.contains("let y = 2;"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let s = strip_comments_and_strings("a /* outer /* inner */ still */ b");
        assert_eq!(s.trim_start().chars().next(), Some('a'));
        assert!(s.contains('b'));
        assert!(!s.contains("inner") && !s.contains("still"));
    }

    #[test]
    fn strips_strings_but_not_code() {
        let s = strip_comments_and_strings(r#"assert!(x, "f64 wanted {}", y as f32);"#);
        assert!(!s.contains("f64"));
        assert!(s.contains("as f32"));
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        let s = strip_comments_and_strings(r#"let s = "a\"f64\""; let t = f64::MAX;"#);
        assert_eq!(s.matches("f64").count(), 1, "{s}");
    }

    #[test]
    fn raw_strings() {
        let s = strip_comments_and_strings(r##"let s = r#"contains "f64" quote"#; f64"##);
        assert_eq!(s.matches("f64").count(), 1, "{s}");
    }

    #[test]
    fn lifetimes_survive_char_literals_stripped() {
        let s = strip_comments_and_strings("fn f<'a>(x: &'a str) -> char { 'f' }");
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
        assert!(!s.contains("'f'"));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "line1 /* c\nc */ line2 \"s\ntr\" line3\n";
        let s = strip_comments_and_strings(src);
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(s.lines().nth(2).unwrap().contains("line3"));
    }
}
