//! Machine-readable report writers: plain JSON for scripting, SARIF 2.1.0
//! for code-scanning UIs. Both are hand-rolled (the container has no serde)
//! but fully escaped, and the SARIF shape is pinned by a tier-1 test.

use crate::rules::Rule;
use crate::{Finding, Report};

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The whole report as plain JSON:
/// `{"files_scanned": N, "findings": [{rule, path, line, col, message, waived}]}`.
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\", \"waived\": {}}}",
            f.rule.name(),
            esc(&f.path),
            f.line,
            f.col,
            esc(&f.message),
            f.waived
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// The report as a SARIF 2.1.0 log: one run, one `sim-vet` driver carrying
/// every rule's metadata, one result per finding. Waived findings are
/// reported with an `inSource` suppression so SARIF viewers show them as
/// reviewed, not open.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"sim-vet\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/sim-vet\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in Rule::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            rule.name(),
            esc(rule.description())
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sarif_result(f));
    }
    if !report.findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn sarif_result(f: &Finding) -> String {
    let suppression = if f.waived {
        ",\n          \"suppressions\": [{\"kind\": \"inSource\"}]"
    } else {
        ""
    };
    format!(
        "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \"artifactLocation\": {{\"uri\": \"{}\"}},\n                \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n              }}\n            }}\n          ]{suppression}\n        }}",
        f.rule.name(),
        esc(&f.message),
        esc(&f.path),
        f.line,
        f.col.max(1)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: Rule::PrecisionDiscipline,
                    path: "crates/gpu/src/shader.rs".into(),
                    line: 3,
                    col: 9,
                    message: "`f64` in an f32 kernel \"module\"".into(),
                    waived: false,
                },
                Finding {
                    rule: Rule::PanicDiscipline,
                    path: "crates/cell-be/src/mailbox.rs".into(),
                    line: 68,
                    col: 14,
                    message: "unwrap".into(),
                    waived: true,
                },
            ],
            files_scanned: 2,
        }
    }

    #[test]
    fn json_has_every_field_and_escapes() {
        let j = to_json(&sample());
        assert!(j.contains("\"files_scanned\": 2"), "{j}");
        assert!(j.contains("\"rule\": \"precision-discipline\""), "{j}");
        assert!(j.contains("\\\"module\\\""), "{j}");
        assert!(j.contains("\"waived\": true"), "{j}");
    }

    #[test]
    fn sarif_has_version_rules_and_suppressions() {
        let s = to_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""), "{s}");
        assert!(s.contains("\"name\": \"sim-vet\""), "{s}");
        assert!(s.contains("\"ruleId\": \"panic-discipline\""), "{s}");
        assert!(s.contains("\"startLine\": 68"), "{s}");
        assert!(s.contains("\"suppressions\""), "{s}");
    }

    #[test]
    fn empty_report_is_valid_shapes() {
        let empty = Report::default();
        assert!(to_json(&empty).contains("\"findings\": []"));
        assert!(to_sarif(&empty).contains("\"results\": []"));
    }
}
