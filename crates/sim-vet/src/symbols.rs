//! Workspace-wide symbol table: every struct, enum, and fn extracted from
//! every scanned file, queryable by name. Cross-file rules (cache-token
//! completeness, hash-typed field iteration) resolve types through it.

use crate::items::{EnumItem, FnItem, Items, StructItem};
use std::collections::BTreeMap;

/// A struct definition and where it lives.
#[derive(Clone, Debug)]
pub struct StructSym {
    pub path: String,
    pub item: StructItem,
}

#[derive(Clone, Debug)]
pub struct EnumSym {
    pub path: String,
    pub item: EnumItem,
}

#[derive(Clone, Debug)]
pub struct FnSym {
    pub path: String,
    pub item: FnItem,
}

/// Name-keyed view over every scanned file's items. Names are unqualified
/// (`CellConfig`, not `cell_be::CellConfig`); collisions keep every
/// definition — shipping (non-test) definitions are listed first so rules
/// that take "the" definition prefer real code over test scaffolding.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    structs: BTreeMap<String, Vec<StructSym>>,
    enums: BTreeMap<String, Vec<EnumSym>>,
    fns: BTreeMap<String, Vec<FnSym>>,
}

impl SymbolTable {
    pub fn add_file(&mut self, path: &str, items: &Items) {
        for s in &items.structs {
            self.structs
                .entry(s.name.clone())
                .or_default()
                .push(StructSym {
                    path: path.to_string(),
                    item: s.clone(),
                });
        }
        for e in &items.enums {
            self.enums.entry(e.name.clone()).or_default().push(EnumSym {
                path: path.to_string(),
                item: e.clone(),
            });
        }
        for f in &items.fns {
            self.fns.entry(f.name.clone()).or_default().push(FnSym {
                path: path.to_string(),
                item: f.clone(),
            });
        }
        // Shipping definitions first.
        for v in self.structs.values_mut() {
            v.sort_by_key(|s| s.item.in_test);
        }
    }

    /// The first shipping definition of a struct by unqualified name.
    pub fn structure(&self, name: &str) -> Option<&StructSym> {
        self.structs.get(name).and_then(|v| v.first())
    }

    pub fn enumeration(&self, name: &str) -> Option<&EnumSym> {
        self.enums.get(name).and_then(|v| v.first())
    }

    /// Every fn with this name (across impls and files).
    pub fn fns_named(&self, name: &str) -> &[FnSym] {
        self.fns.get(name).map_or(&[], Vec::as_slice)
    }

    /// All struct names, for membership tests.
    pub fn has_struct(&self, name: &str) -> bool {
        self.structs.contains_key(name)
    }

    /// Fields of `name` whose type mentions `HashMap`/`HashSet` — receivers
    /// whose iteration the iteration-order rule must flag even across files.
    pub fn hash_typed_fields(&self) -> BTreeMap<String, Vec<String>> {
        let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for syms in self.structs.values() {
            for s in syms {
                for f in &s.item.fields {
                    if mentions_hash_type(&f.ty) {
                        out.entry(s.item.name.clone())
                            .or_default()
                            .push(f.name.clone());
                    }
                }
            }
        }
        out
    }

    /// Resolve a field type string to a struct in the table, looking through
    /// one layer of common wrappers (`Option<T>`, `Box<T>`, references).
    pub fn resolve_field_struct(&self, ty: &str) -> Option<&StructSym> {
        for word in ty.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
            if word.is_empty() || matches!(word, "Option" | "Box" | "Vec" | "mut") {
                continue;
            }
            if let Some(s) = self.structure(word) {
                return Some(s);
            }
            // Only look through wrappers; a first unknown concrete type ends
            // the search (e.g. `[f32; 3]`, `usize`).
            if word.chars().next().is_some_and(char::is_uppercase) {
                return None;
            }
        }
        None
    }
}

/// Does a rendered type string name a hash collection?
pub fn mentions_hash_type(ty: &str) -> bool {
    ty.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .any(|w| w == "HashMap" || w == "HashSet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::lex;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        let mut t = SymbolTable::default();
        for (path, src) in files {
            t.add_file(path, &extract(src, &lex(src)));
        }
        t
    }

    #[test]
    fn cross_file_struct_lookup() {
        let t = table(&[
            (
                "a.rs",
                "pub struct CellConfig { pub clock_hz: f64, pub costs: SpeCostModel }",
            ),
            ("b.rs", "pub struct SpeCostModel { pub lj_eval: f64 }"),
        ]);
        let c = t.structure("CellConfig").unwrap();
        assert_eq!(c.path, "a.rs");
        let nested = t.resolve_field_struct(&c.item.fields[1].ty).unwrap();
        assert_eq!(nested.item.name, "SpeCostModel");
    }

    #[test]
    fn wrappers_are_looked_through() {
        let t = table(&[(
            "m.rs",
            "pub struct RemoteMemoryModel { pub remote_fraction: f64 }",
        )]);
        assert!(t
            .resolve_field_struct("Option < RemoteMemoryModel >")
            .is_some());
        assert!(t.resolve_field_struct("f64").is_none());
        assert!(t.resolve_field_struct("Option < UnknownThing >").is_none());
    }

    #[test]
    fn shipping_definition_wins_over_test_double() {
        let t = table(&[
            (
                "t.rs",
                "#[cfg(test)]\nmod tests { pub struct Cfg { pub fake: u8 } }",
            ),
            ("s.rs", "pub struct Cfg { pub real: u8 }"),
        ]);
        assert_eq!(t.structure("Cfg").unwrap().item.fields[0].name, "real");
    }

    #[test]
    fn hash_typed_fields_found() {
        let t = table(&[(
            "s.rs",
            "pub struct Cache { pub entries: HashMap<String, u64>, pub hits: u64 }",
        )]);
        let m = t.hash_typed_fields();
        assert_eq!(m.get("Cache").unwrap(), &["entries".to_string()]);
    }
}
