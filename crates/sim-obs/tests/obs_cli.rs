//! End-to-end exit-code contract of the `obs` binary: 0 ok, 1 usage/parse
//! error, 2 regression detected by `check`. The regression case is seeded
//! synthetically — a ledger claiming a wall clock far beyond the committed
//! baseline must make `obs check` exit nonzero, which is what lets CI gate
//! on it.

use sim_obs::RunLedger;
use std::path::PathBuf;
use std::process::Command;

fn obs(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_obs"))
        .args(args)
        .output()
        .expect("obs binary runs")
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("obs-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

const BENCH: &str = r#"{
  "schema_version": 1,
  "runs": [
    {"host_threads": 1, "host_wall_seconds": 0.2, "host_atom_steps_per_s": 100000.0}
  ]
}"#;

/// A schema-v2 bench file (per-device sections, the bench_seed output shape).
const BENCH_V2: &str = r#"{
  "schema_version": 2,
  "devices": [
    {
      "device": "opteron",
      "sim_seconds": 1.5,
      "baseline": {"label": "serial, eval memo off", "host_wall_seconds": 0.9, "host_atom_steps_per_s": 20000.0},
      "runs": [
        {"host_threads": 1, "host_wall_seconds": 0.2, "host_atom_steps_per_s": 100000.0}
      ]
    },
    {
      "device": "gpu-7900gtx",
      "sim_seconds": 0.3,
      "baseline": {"label": "serial, eval memo off", "host_wall_seconds": 0.5, "host_atom_steps_per_s": 40000.0},
      "runs": [
        {"host_threads": 1, "host_wall_seconds": 0.02, "host_atom_steps_per_s": 1000000.0}
      ]
    }
  ]
}"#;

fn timed_ledger(wall: f64, tput: f64) -> String {
    let mut l = RunLedger::new("opteron", "2048 atoms x 10 steps");
    l.device_phases("opteron", &[("compute", 0.3), ("memory_stall", 0.1)]);
    l.host_value("opteron", "host_wall_seconds", wall, "s");
    l.host_value("opteron", "host_atom_steps_per_s", tput, "atom_steps/s");
    l.to_jsonl()
}

#[test]
fn check_passes_within_tolerance_and_gates_seeded_regression() {
    let dir = scratch_dir();
    let bench = dir.join("BENCH_host.json");
    std::fs::write(&bench, BENCH).unwrap();

    // Within tolerance: measured wall 0.25s vs reference 0.2s at tol 0.5.
    let good = dir.join("good.jsonl");
    std::fs::write(&good, timed_ledger(0.25, 90_000.0)).unwrap();
    let out = obs(&[
        "check",
        good.to_str().unwrap(),
        "--bench",
        bench.to_str().unwrap(),
        "--tol",
        "0.5",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Seeded synthetic regression: 10x the baseline wall clock.
    let slow = dir.join("slow.jsonl");
    std::fs::write(&slow, timed_ledger(2.0, 10_000.0)).unwrap();
    let out = obs(&[
        "check",
        slow.to_str().unwrap(),
        "--bench",
        bench.to_str().unwrap(),
        "--tol",
        "0.5",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("regression"), "{stderr}");
}

#[test]
fn check_device_filter_selects_the_matching_v2_row() {
    let dir = scratch_dir();
    let bench = dir.join("BENCH_host_v2.json");
    std::fs::write(&bench, BENCH_V2).unwrap();
    let ledger = dir.join("run.jsonl");
    std::fs::write(&ledger, timed_ledger(0.25, 90_000.0)).unwrap();

    // Against the opteron row (0.2s reference) the run passes at tol 0.5...
    let out = obs(&[
        "check",
        ledger.to_str().unwrap(),
        "--bench",
        bench.to_str().unwrap(),
        "--device",
        "opteron",
        "--tol",
        "0.5",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // ...but the same measurement is a seeded regression against the much
    // faster gpu row — proof the filter switched reference rows.
    let out = obs(&[
        "check",
        ledger.to_str().unwrap(),
        "--bench",
        bench.to_str().unwrap(),
        "--device",
        "gpu-7900gtx",
        "--tol",
        "0.5",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Multi-device file without a filter is a usage error, not a pass.
    let out = obs(&[
        "check",
        ledger.to_str().unwrap(),
        "--bench",
        bench.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--device"), "{stderr}");
}

#[test]
fn validate_accepts_real_ledgers_and_rejects_garbage() {
    let dir = scratch_dir();
    let good = dir.join("valid.jsonl");
    std::fs::write(&good, timed_ledger(0.2, 100_000.0)).unwrap();
    assert_eq!(
        obs(&["validate", good.to_str().unwrap()]).status.code(),
        Some(0)
    );

    let bad = dir.join("garbage.jsonl");
    std::fs::write(&bad, "this is not a ledger\n").unwrap();
    assert_eq!(
        obs(&["validate", bad.to_str().unwrap()]).status.code(),
        Some(1)
    );

    // Usage errors are exit 1 too.
    assert_eq!(obs(&[]).status.code(), Some(1));
    assert_eq!(obs(&["check", "nope.jsonl"]).status.code(), Some(1));
}

#[test]
fn timeline_diff_and_export_succeed_on_a_real_ledger() {
    let dir = scratch_dir();
    let a = dir.join("a.jsonl");
    let b = dir.join("b.jsonl");
    std::fs::write(&a, timed_ledger(0.2, 100_000.0)).unwrap();
    std::fs::write(&b, timed_ledger(0.3, 70_000.0)).unwrap();

    let out = obs(&["timeline", a.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compute"), "{stdout}");

    assert_eq!(
        obs(&["diff", a.to_str().unwrap(), b.to_str().unwrap()])
            .status
            .code(),
        Some(0)
    );

    let chrome = dir.join("trace.json");
    let prom = dir.join("metrics.prom");
    let out = obs(&[
        "export",
        a.to_str().unwrap(),
        "--chrome",
        chrome.to_str().unwrap(),
        "--prom",
        prom.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let trace = std::fs::read_to_string(&chrome).unwrap();
    assert!(
        trace.starts_with("[\n") && trace.ends_with("]\n"),
        "{trace}"
    );
    let metrics = std::fs::read_to_string(&prom).unwrap();
    assert!(metrics.contains("mdea_phase_seconds"), "{metrics}");
}
