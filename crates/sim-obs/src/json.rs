//! Dependency-free JSON machinery shared by every telemetry format in the
//! workspace: string escaping (used by the trace exporter and the metrics
//! writer) and a small strict recursive-descent parser (no trailing commas,
//! no comments, no NaN/Infinity) used to validate and read back emitted
//! artifacts. The container has no serde; this is the single JSON layer
//! everything above (`mdea-trace`, `sim-perf`, the ledger) builds on.

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number. Rust's `Display` for finite floats is
/// shortest-round-trip, and a bare integer form ("3") is still a valid JSON
/// number, so no fixup is needed beyond rejecting non-finite values.
pub fn json_f64(v: f64) -> String {
    assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
    format!("{v}")
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Key-value pairs in source order (duplicates rejected at parse time).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.fail(&format!("unexpected {:?}", other as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected {lit:?}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("non-UTF8 number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.fail(&format!("bad number {text:?}")))?;
        if !n.is_finite() {
            return Err(self.fail(&format!("non-finite number {text:?}")));
        }
        Ok(JsonValue::Number(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.fail("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.fail("raw control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("non-UTF8 string"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.fail("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, nothing else).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing garbage after document"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_json_string(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json_string("a\\b"), r"a\\b");
        assert_eq!(escape_json_string("line\nbreak"), r"line\nbreak");
        assert_eq!(escape_json_string("\u{1}"), "\\u0001");
        assert_eq!(escape_json_string("plain"), "plain");
    }

    #[test]
    fn parses_scalars_and_nesting() {
        let doc =
            parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\n", "d": true}}"#).expect("parses");
        assert_eq!(
            doc.get("a")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\n")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("{\"a\":1,\"a\":2}").is_err(), "duplicate keys");
        assert!(parse_json("NaN").is_err());
    }

    #[test]
    fn escaped_strings_round_trip_through_the_parser() {
        let original = "tab\tquote\"backslash\\ctrl\u{1}\nend";
        let doc = format!("{{\"k\": \"{}\"}}", escape_json_string(original));
        let parsed = parse_json(&doc).expect("escaped string parses");
        assert_eq!(parsed.get("k").and_then(JsonValue::as_str), Some(original));
    }

    proptest! {
        /// Escaped output never contains raw control characters or unescaped
        /// quotes/backslashes in positions that would break a JSON literal.
        #[test]
        fn output_is_literal_safe(s in ".*") {
            let e = escape_json_string(&s);
            let mut chars = e.chars().peekable();
            while let Some(c) = chars.next() {
                prop_assert!((c as u32) >= 0x20, "raw control char survived");
                if c == '\\' {
                    let next = chars.next();
                    prop_assert!(next.is_some(), "dangling escape");
                } else {
                    prop_assert!(c != '"', "unescaped quote");
                }
            }
        }

        /// Any string survives escape → embed → parse bit for bit.
        #[test]
        fn escape_parse_round_trip(s in ".*") {
            let doc = format!("[\"{}\"]", escape_json_string(&s));
            let parsed = parse_json(&doc).expect("escaped string must parse");
            let back = parsed.as_array().and_then(|a| a[0].as_str()).map(str::to_string);
            prop_assert_eq!(back, Some(s));
        }
    }
}
