//! `obs` — inspect, compare, export, and gate run ledgers.
//!
//! ```text
//! obs timeline <ledger.jsonl>                      render a run as text
//! obs diff <a.jsonl> <b.jsonl>                     compare two ledgers
//! obs export <ledger.jsonl> --chrome <out.json>    Chrome trace export
//! obs export <ledger.jsonl> --prom <out.prom>      Prometheus textfile
//! obs check <ledger.jsonl> --bench <BENCH_host.json> [--device <label>] [--tol <rel>]
//! obs validate <ledger.jsonl>                      schema check only
//! ```
//!
//! Exit codes: 0 ok, 1 usage/parse error, 2 regression detected by `check`.

use sim_obs::{
    check_ledger, json_f64, ledger_to_chrome, ledger_to_prometheus, parse_host_baseline, EventKind,
    RunLedger,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("obs: {msg}");
            1
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> Result<i32, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "timeline" => timeline(rest),
        "diff" => diff(rest),
        "export" => export(rest),
        "check" => check(rest),
        "validate" => validate(rest),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: obs <timeline|diff|export|check|validate> ... \
     (see crate docs for per-command flags)"
        .to_string()
}

fn load_ledger(path: &str) -> Result<RunLedger, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    RunLedger::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

fn timeline(args: &[String]) -> Result<i32, String> {
    let [path] = args else {
        return Err("usage: obs timeline <ledger.jsonl>".to_string());
    };
    let ledger = load_ledger(path)?;
    println!("run    : {}", ledger.label);
    println!("work   : {}", ledger.workload);
    println!("events : {}", ledger.events().len());
    println!();
    let mut events = ledger.events().to_vec();
    events.sort_by(|a, b| {
        a.t_s
            .total_cmp(&b.t_s)
            .then_with(|| a.kind.cmp(&b.kind))
            .then_with(|| a.source.cmp(&b.source))
            .then_with(|| a.name.cmp(&b.name))
    });
    for ev in &events {
        let mut line = format!(
            "{:>14.9}s  {:<8} {:<18} {}",
            ev.t_s,
            ev.kind.as_str(),
            ev.source,
            ev.name
        );
        if let Some(d) = ev.dur_s {
            line.push_str(&format!("  dur={}s", json_f64(d)));
        }
        if let Some(v) = ev.value {
            line.push_str(&format!("  value={}", json_f64(v)));
            if let Some(u) = &ev.unit {
                line.push_str(&format!(" {u}"));
            }
        }
        if let Some(s) = ev.step {
            line.push_str(&format!("  step={s}"));
        }
        if let Some(det) = &ev.detail {
            line.push_str(&format!("  ({det})"));
        }
        println!("{line}");
    }
    println!();
    for source in ledger.sources() {
        let total = ledger.phase_total(&source);
        if total > 0.0 {
            println!("phase total {source}: {}s", json_f64(total));
        }
    }
    Ok(0)
}

/// Final counter values per (source, name), insertion-ordered then sorted.
fn counter_finals(ledger: &RunLedger) -> Vec<(String, String, f64)> {
    let mut finals: Vec<(String, String, f64)> = Vec::new();
    for ev in ledger.events() {
        if ev.kind != EventKind::Counter {
            continue;
        }
        let value = ev.value.unwrap_or(0.0);
        match finals
            .iter_mut()
            .find(|(s, n, _)| *s == ev.source && *n == ev.name)
        {
            Some((_, _, v)) => *v = value,
            None => finals.push((ev.source.clone(), ev.name.clone(), value)),
        }
    }
    finals.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    finals
}

/// Phase totals per (source, name), sorted.
fn phase_totals(ledger: &RunLedger) -> Vec<(String, String, f64)> {
    let mut totals: Vec<(String, String, f64)> = Vec::new();
    for ev in ledger.events() {
        if ev.kind != EventKind::Phase {
            continue;
        }
        let dur = ev.dur_s.unwrap_or(0.0);
        match totals
            .iter_mut()
            .find(|(s, n, _)| *s == ev.source && *n == ev.name)
        {
            Some((_, _, t)) => *t += dur,
            None => totals.push((ev.source.clone(), ev.name.clone(), dur)),
        }
    }
    totals.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    totals
}

fn diff(args: &[String]) -> Result<i32, String> {
    let [path_a, path_b] = args else {
        return Err("usage: obs diff <a.jsonl> <b.jsonl>".to_string());
    };
    let a = load_ledger(path_a)?;
    let b = load_ledger(path_b)?;
    println!("A: {} ({})", a.label, a.workload);
    println!("B: {} ({})", b.label, b.workload);
    println!();

    let mut sources = a.sources();
    for s in b.sources() {
        if !sources.contains(&s) {
            sources.push(s);
        }
    }
    sources.sort();

    println!("sim-seconds (phase totals per source)");
    for source in &sources {
        let ta = a.phase_total(source);
        let tb = b.phase_total(source);
        println!(
            "  {source:<20} A={:<22} B={:<22} delta={}",
            json_f64(ta),
            json_f64(tb),
            json_f64(tb - ta)
        );
    }
    println!();

    println!("attribution shares (per source phase)");
    let pa = phase_totals(&a);
    let pb = phase_totals(&b);
    let mut keys: Vec<(String, String)> =
        pa.iter().map(|(s, n, _)| (s.clone(), n.clone())).collect();
    for (s, n, _) in &pb {
        if !keys.iter().any(|(ks, kn)| ks == s && kn == n) {
            keys.push((s.clone(), n.clone()));
        }
    }
    keys.sort();
    let share = |totals: &[(String, String, f64)], ledger: &RunLedger, s: &str, n: &str| -> f64 {
        let total = ledger.phase_total(s);
        if total == 0.0 {
            return 0.0;
        }
        totals
            .iter()
            .find(|(ts, tn, _)| ts == s && tn == n)
            .map_or(0.0, |(_, _, d)| d / total)
    };
    for (s, n) in &keys {
        let sa = share(&pa, &a, s, n);
        let sb = share(&pb, &b, s, n);
        println!(
            "  {s:<20} {n:<20} A={:>7.3}% B={:>7.3}% delta={:+.3}%",
            sa * 100.0,
            sb * 100.0,
            (sb - sa) * 100.0
        );
    }
    println!();

    println!("counter deltas (final values)");
    let ca = counter_finals(&a);
    let cb = counter_finals(&b);
    let mut ckeys: Vec<(String, String)> =
        ca.iter().map(|(s, n, _)| (s.clone(), n.clone())).collect();
    for (s, n, _) in &cb {
        if !ckeys.iter().any(|(ks, kn)| ks == s && kn == n) {
            ckeys.push((s.clone(), n.clone()));
        }
    }
    ckeys.sort();
    let value = |finals: &[(String, String, f64)], s: &str, n: &str| -> f64 {
        finals
            .iter()
            .find(|(fs, fn_, _)| fs == s && fn_ == n)
            .map_or(0.0, |(_, _, v)| *v)
    };
    for (s, n) in &ckeys {
        let va = value(&ca, s, n);
        let vb = value(&cb, s, n);
        println!(
            "  {s:<20} {n:<26} A={:<18} B={:<18} delta={}",
            json_f64(va),
            json_f64(vb),
            json_f64(vb - va)
        );
    }
    Ok(0)
}

fn export(args: &[String]) -> Result<i32, String> {
    let usage = "usage: obs export <ledger.jsonl> (--chrome <out.json> | --prom <out.prom>)";
    let Some(path) = args.first() else {
        return Err(usage.to_string());
    };
    let ledger = load_ledger(path)?;
    let mut wrote = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--chrome" => {
                let out = args.get(i + 1).ok_or("--chrome needs a path")?;
                std::fs::write(out, ledger_to_chrome(&ledger))
                    .map_err(|e| format!("write {out}: {e}"))?;
                println!("wrote Chrome trace to {out}");
                wrote = true;
                i += 2;
            }
            "--prom" => {
                let out = args.get(i + 1).ok_or("--prom needs a path")?;
                std::fs::write(out, ledger_to_prometheus(&ledger))
                    .map_err(|e| format!("write {out}: {e}"))?;
                println!("wrote Prometheus textfile to {out}");
                wrote = true;
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}\n{usage}")),
        }
    }
    if !wrote {
        return Err(usage.to_string());
    }
    Ok(0)
}

fn check(args: &[String]) -> Result<i32, String> {
    let usage =
        "usage: obs check <ledger.jsonl> --bench <BENCH_host.json> [--device <label>] [--tol <rel>]";
    let Some(path) = args.first() else {
        return Err(usage.to_string());
    };
    let mut bench_path: Option<&str> = None;
    let mut device: Option<&str> = None;
    let mut tolerance = 0.5;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                bench_path = Some(args.get(i + 1).ok_or("--bench needs a path")?);
                i += 2;
            }
            "--device" => {
                device = Some(args.get(i + 1).ok_or("--device needs a label")?);
                i += 2;
            }
            "--tol" => {
                tolerance = args
                    .get(i + 1)
                    .ok_or("--tol needs a value")?
                    .parse()
                    .map_err(|_| "bad --tol value")?;
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}\n{usage}")),
        }
    }
    let bench_path = bench_path.ok_or(usage)?;
    let ledger = load_ledger(path)?;
    let bench =
        std::fs::read_to_string(bench_path).map_err(|e| format!("read {bench_path}: {e}"))?;
    let baseline = parse_host_baseline(&bench, device)?;
    let results = check_ledger(&ledger, baseline, tolerance)?;
    println!(
        "checking {} against {} (tolerance {tolerance})",
        ledger.label, bench_path
    );
    let mut regressed = false;
    for r in &results {
        println!("  {}", r.render());
        regressed |= r.regressed;
    }
    if regressed {
        eprintln!("obs check: performance regression detected");
        Ok(2)
    } else {
        println!("obs check: within tolerance");
        Ok(0)
    }
}

fn validate(args: &[String]) -> Result<i32, String> {
    let [path] = args else {
        return Err("usage: obs validate <ledger.jsonl>".to_string());
    };
    let ledger = load_ledger(path)?;
    println!(
        "{path}: valid run-ledger (schema {}, {} events, label {:?})",
        sim_obs::LEDGER_SCHEMA_VERSION,
        ledger.events().len(),
        ledger.label
    );
    Ok(0)
}
