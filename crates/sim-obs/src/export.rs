//! Ledger exporters: Chrome trace-event JSON (for Perfetto / `chrome://tracing`)
//! and a Prometheus textfile (for node-exporter style scraping).

use crate::chrome::ChromeTrace;
use crate::json::json_f64;
use crate::ledger::{EventKind, RunLedger};
use std::fmt::Write as _;

/// Render a ledger as a Chrome trace. Each source gets its own track, in
/// sorted-source order; host events land on a dedicated trailing track so
/// the deterministic timeline stays visually separate from wall-clock data.
pub fn ledger_to_chrome(ledger: &RunLedger) -> String {
    let sources = ledger.sources();
    let track_of = |source: &str| -> u32 {
        sources
            .iter()
            .position(|s| s == source)
            .map_or(0, |i| u32::try_from(i).unwrap_or(0) + 1)
    };
    let host_track = u32::try_from(sources.len()).unwrap_or(0) + 1;

    let mut trace = ChromeTrace::new();
    for source in &sources {
        trace.thread_name(track_of(source), source);
    }
    if ledger.events().iter().any(|e| e.kind == EventKind::Host) {
        trace.thread_name(host_track, "host wall-clock");
    }
    for ev in ledger.events() {
        let category = ev.kind.as_str();
        match ev.kind {
            EventKind::Phase => {
                trace.span(
                    track_of(&ev.source),
                    &ev.name,
                    category,
                    ev.t_s,
                    ev.dur_s.unwrap_or(0.0),
                );
            }
            EventKind::Counter => {
                trace.counter(
                    track_of(&ev.source),
                    &ev.name,
                    category,
                    ev.t_s,
                    ev.value.unwrap_or(0.0),
                );
            }
            EventKind::Instant | EventKind::Cache | EventKind::Node | EventKind::Recovery => {
                trace.instant(track_of(&ev.source), &ev.name, category, ev.t_s);
            }
            EventKind::Host => {
                trace.counter(host_track, &ev.name, category, 0.0, ev.value.unwrap_or(0.0));
            }
        }
    }
    trace.render()
}

fn prom_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a ledger as a Prometheus textfile. Phase durations, final counter
/// values, and host measurements become gauges; event names live in labels
/// so the metric family set stays fixed.
pub fn ledger_to_prometheus(ledger: &RunLedger) -> String {
    let mut out = String::new();
    out.push_str(
        "# HELP mdea_phase_seconds Simulated seconds attributed to one phase of one source\n",
    );
    out.push_str("# TYPE mdea_phase_seconds gauge\n");
    let mut phase_totals: Vec<(String, String, f64)> = Vec::new();
    for ev in ledger.events() {
        if ev.kind != EventKind::Phase {
            continue;
        }
        let dur = ev.dur_s.unwrap_or(0.0);
        match phase_totals
            .iter_mut()
            .find(|(s, n, _)| *s == ev.source && *n == ev.name)
        {
            Some((_, _, total)) => *total += dur,
            None => phase_totals.push((ev.source.clone(), ev.name.clone(), dur)),
        }
    }
    phase_totals.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    for (source, name, total) in &phase_totals {
        let _ = writeln!(
            out,
            "mdea_phase_seconds{{source=\"{}\",phase=\"{}\"}} {}",
            prom_label(source),
            prom_label(name),
            json_f64(*total),
        );
    }

    out.push_str("# HELP mdea_counter Final value of one ledger counter\n");
    out.push_str("# TYPE mdea_counter gauge\n");
    // Last write wins per (source, name): counters report running totals.
    let mut finals: Vec<(String, String, String, f64)> = Vec::new();
    for ev in ledger.events() {
        if ev.kind != EventKind::Counter {
            continue;
        }
        let value = ev.value.unwrap_or(0.0);
        let unit = ev.unit.clone().unwrap_or_default();
        match finals
            .iter_mut()
            .find(|(s, n, _, _)| *s == ev.source && *n == ev.name)
        {
            Some(slot) => {
                slot.2 = unit;
                slot.3 = value;
            }
            None => finals.push((ev.source.clone(), ev.name.clone(), unit, value)),
        }
    }
    finals.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    for (source, name, unit, value) in &finals {
        let _ = writeln!(
            out,
            "mdea_counter{{source=\"{}\",name=\"{}\",unit=\"{}\"}} {}",
            prom_label(source),
            prom_label(name),
            prom_label(unit),
            json_f64(*value),
        );
    }

    out.push_str("# HELP mdea_host Host wall-clock measurement (non-deterministic)\n");
    out.push_str("# TYPE mdea_host gauge\n");
    let mut hosts: Vec<(String, String, f64)> = Vec::new();
    for ev in ledger.events() {
        if ev.kind != EventKind::Host {
            continue;
        }
        let value = ev.value.unwrap_or(0.0);
        match hosts
            .iter_mut()
            .find(|(s, n, _)| *s == ev.source && *n == ev.name)
        {
            Some((_, _, v)) => *v = value,
            None => hosts.push((ev.source.clone(), ev.name.clone(), value)),
        }
    }
    hosts.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    for (source, name, value) in &hosts {
        let _ = writeln!(
            out,
            "mdea_host{{source=\"{}\",name=\"{}\"}} {}",
            prom_label(source),
            prom_label(name),
            json_f64(*value),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::RunLedger;

    fn sample() -> RunLedger {
        let mut l = RunLedger::new("dev", "2048 x 10");
        l.device_phases("dev", &[("compute", 0.75), ("stall", 0.25)]);
        l.counter("dev", "ops", 0.5, 10.0, "ops");
        l.counter("dev", "ops", 1.0, 25.0, "ops");
        l.instant(EventKind::Recovery, "supervisor", "restore", 0.9);
        l.host_value("harness", "host_wall_seconds", 0.1, "s");
        l
    }

    #[test]
    fn chrome_export_assigns_tracks_and_parses() {
        let json = ledger_to_chrome(&sample());
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("host wall-clock"));
        crate::json::parse_json(&json).expect("chrome export is valid JSON");
    }

    #[test]
    fn prometheus_export_totals_phases_and_takes_final_counter() {
        let text = ledger_to_prometheus(&sample());
        assert!(text.contains("mdea_phase_seconds{source=\"dev\",phase=\"compute\"} 0.75"));
        assert!(
            text.contains("mdea_counter{source=\"dev\",name=\"ops\",unit=\"ops\"} 25"),
            "{text}"
        );
        assert!(text.contains("mdea_host{source=\"harness\",name=\"host_wall_seconds\"} 0.1"));
    }

    #[test]
    fn prometheus_labels_are_escaped() {
        let mut l = RunLedger::new("x", "w");
        l.phase("a\"b", "c\\d", 0.0, 1.0);
        let text = ledger_to_prometheus(&l);
        assert!(text.contains("source=\"a\\\"b\""));
        assert!(text.contains("phase=\"c\\\\d\""));
    }
}
