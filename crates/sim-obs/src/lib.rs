//! `sim-obs`: the unified observability layer.
//!
//! Everything in this crate observes; nothing charges cycles or mutates
//! simulated state (enforced by sim-vet's observer-purity rule, which scans
//! this crate). The crate sits at the bottom of the telemetry stack — it
//! has no dependencies, and `mdea-trace`, `sim-perf`, and `md-core` build
//! on it:
//!
//! - [`json`] — string escaping, number formatting, and a strict parser
//!   shared by every JSON emitter in the workspace
//! - [`chrome`] — the single Chrome trace-event writer (spans, instants,
//!   counters) that both `mdea-trace` and `sim-perf` render through
//! - [`ledger`] — the schema-versioned JSONL run ledger
//! - [`export`] — ledger → Chrome trace / Prometheus textfile
//! - [`check`] — ledger vs `BENCH_host.json` regression gating
//! - [`trajectory`] — the append-only `BENCH_trajectory.json` history
//!
//! The `obs` binary wraps the lot: `obs timeline`, `obs diff`,
//! `obs export`, `obs check`, `obs validate`.

pub mod check;
pub mod chrome;
pub mod export;
pub mod json;
pub mod ledger;
pub mod trajectory;

pub use check::{check_ledger, parse_host_baseline, CheckResult, HostBaseline};
pub use chrome::ChromeTrace;
pub use export::{ledger_to_chrome, ledger_to_prometheus};
pub use json::{escape_json_string, json_f64, parse_json, JsonValue};
pub use ledger::{EventKind, LedgerEvent, RunLedger, LEDGER_SCHEMA_VERSION};
pub use trajectory::{
    append_entry, parse_trajectory, render_trajectory, TrajectoryEntry, TRAJECTORY_SCHEMA_VERSION,
};
