//! Regression gating: compare a run ledger's host measurements against the
//! committed `BENCH_host.json` baselines.
//!
//! The gate reads the best (lowest-wall) measured row from the bench file's
//! `runs` array, applies a configurable relative tolerance, and flags a
//! regression when the ledger's `host_wall_seconds` exceeds the limit or
//! its `host_atom_steps_per_s` falls below it. Tolerances are deliberately
//! caller-chosen: CI on a shared 1-core runner wants a much looser band
//! than a dedicated bench host.

use crate::json::{json_f64, parse_json, JsonValue};
use crate::ledger::RunLedger;
use std::fmt::Write as _;

/// One gated comparison.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Metric name, e.g. `host_wall_seconds`.
    pub metric: String,
    /// Value read from the ledger.
    pub measured: f64,
    /// Reference value from the bench file.
    pub reference: f64,
    /// The pass/fail boundary after applying the tolerance.
    pub limit: f64,
    /// True when the measured value is on the wrong side of the limit.
    pub regressed: bool,
}

impl CheckResult {
    /// One human-readable report line.
    pub fn render(&self) -> String {
        let mut line = String::new();
        let _ = write!(
            line,
            "{} {}: measured {} vs reference {} (limit {})",
            if self.regressed { "FAIL" } else { "ok  " },
            self.metric,
            json_f64(self.measured),
            json_f64(self.reference),
            json_f64(self.limit),
        );
        line
    }
}

/// Reference host numbers parsed out of `BENCH_host.json`.
#[derive(Clone, Copy, Debug)]
pub struct HostBaseline {
    pub wall_seconds: f64,
    pub atom_steps_per_s: f64,
}

/// Extract the best measured row (lowest wall) from `BENCH_host.json` text.
///
/// Understands both schema versions: v1 carries a single top-level `runs`
/// array (one Opteron workload), v2 a `devices` array with per-device
/// `runs`. `device` selects which v2 section to read; it is required when
/// the file has more than one device and must match a recorded label. A v1
/// file has exactly one (implicit) device, so any `device` value is
/// accepted there — the caller is naming the run it measured, and a v1
/// file has nothing to cross-check it against.
pub fn parse_host_baseline(bench_json: &str, device: Option<&str>) -> Result<HostBaseline, String> {
    let doc = parse_json(bench_json).map_err(|e| format!("BENCH_host.json: {e}"))?;
    if let Some(runs) = doc.get("runs").and_then(JsonValue::as_array) {
        return best_row(runs);
    }
    let devices = doc
        .get("devices")
        .and_then(JsonValue::as_array)
        .ok_or("BENCH_host.json missing runs (schema v1) or devices (schema v2) array")?;
    let labels: Vec<&str> = devices
        .iter()
        .map(|d| {
            d.get("device")
                .and_then(JsonValue::as_str)
                .ok_or("device entry missing device label")
        })
        .collect::<Result<_, _>>()?;
    let picked = match device {
        Some(want) => devices
            .iter()
            .zip(&labels)
            .find(|(_, label)| **label == want)
            .map(|(d, _)| d)
            .ok_or_else(|| {
                format!(
                    "BENCH_host.json has no device {want:?} (known: {})",
                    labels.join(", ")
                )
            })?,
        None if devices.len() == 1 => &devices[0],
        None => {
            return Err(format!(
                "BENCH_host.json records multiple devices ({}); pass --device to pick one",
                labels.join(", ")
            ))
        }
    };
    let runs = picked
        .get("runs")
        .and_then(JsonValue::as_array)
        .ok_or("device entry missing runs array")?;
    best_row(runs)
}

fn best_row(runs: &[JsonValue]) -> Result<HostBaseline, String> {
    let mut best: Option<HostBaseline> = None;
    for run in runs {
        let wall = run
            .get("host_wall_seconds")
            .and_then(JsonValue::as_number)
            .ok_or("run missing host_wall_seconds")?;
        let tput = run
            .get("host_atom_steps_per_s")
            .and_then(JsonValue::as_number)
            .ok_or("run missing host_atom_steps_per_s")?;
        if best.is_none_or(|b| wall < b.wall_seconds) {
            best = Some(HostBaseline {
                wall_seconds: wall,
                atom_steps_per_s: tput,
            });
        }
    }
    best.ok_or_else(|| "BENCH_host.json has no runs".to_string())
}

/// Gate a ledger against a baseline. `tolerance` is relative slack: 0.5
/// allows the wall clock to be up to 50% slower (and throughput up to 33%
/// lower) than the reference before flagging.
pub fn check_ledger(
    ledger: &RunLedger,
    baseline: HostBaseline,
    tolerance: f64,
) -> Result<Vec<CheckResult>, String> {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let wall = host_metric_any_source(ledger, "host_wall_seconds")
        .ok_or("ledger has no host_wall_seconds event — was it produced by a host-timed run?")?;
    let tput = host_metric_any_source(ledger, "host_atom_steps_per_s")
        .ok_or("ledger has no host_atom_steps_per_s event")?;

    let wall_limit = baseline.wall_seconds * (1.0 + tolerance);
    let tput_limit = baseline.atom_steps_per_s / (1.0 + tolerance);
    Ok(vec![
        CheckResult {
            metric: "host_wall_seconds".to_string(),
            measured: wall,
            reference: baseline.wall_seconds,
            limit: wall_limit,
            regressed: wall > wall_limit,
        },
        CheckResult {
            metric: "host_atom_steps_per_s".to_string(),
            measured: tput,
            reference: baseline.atom_steps_per_s,
            limit: tput_limit,
            regressed: tput < tput_limit,
        },
    ])
}

fn host_metric_any_source(ledger: &RunLedger, name: &str) -> Option<f64> {
    ledger
        .events()
        .iter()
        .filter(|e| e.kind == crate::ledger::EventKind::Host && e.name == name)
        .filter_map(|e| e.value)
        .next_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::RunLedger;

    const BENCH: &str = r#"{
      "schema_version": 1,
      "runs": [
        {"host_threads": 1, "host_wall_seconds": 0.2, "host_atom_steps_per_s": 100000.0},
        {"host_threads": 2, "host_wall_seconds": 0.4, "host_atom_steps_per_s": 50000.0}
      ]
    }"#;

    const BENCH_V2: &str = r#"{
      "schema_version": 2,
      "devices": [
        {
          "device": "opteron",
          "sim_seconds": 1.5,
          "baseline": {"label": "serial, eval memo off", "host_wall_seconds": 0.9, "host_atom_steps_per_s": 20000.0},
          "runs": [
            {"host_threads": 1, "host_wall_seconds": 0.2, "host_atom_steps_per_s": 100000.0},
            {"host_threads": 2, "host_wall_seconds": 0.4, "host_atom_steps_per_s": 50000.0}
          ]
        },
        {
          "device": "gpu-7900gtx",
          "sim_seconds": 0.3,
          "baseline": {"label": "serial, eval memo off", "host_wall_seconds": 0.5, "host_atom_steps_per_s": 40000.0},
          "runs": [
            {"host_threads": 1, "host_wall_seconds": 0.1, "host_atom_steps_per_s": 200000.0}
          ]
        }
      ]
    }"#;

    fn timed_ledger(wall: f64, tput: f64) -> RunLedger {
        let mut l = RunLedger::new("opteron", "2048 x 10");
        l.host_value("harness", "host_wall_seconds", wall, "s");
        l.host_value("harness", "host_atom_steps_per_s", tput, "atom_steps/s");
        l
    }

    #[test]
    fn baseline_picks_lowest_wall_row() {
        let b = parse_host_baseline(BENCH, None).expect("parses");
        assert_eq!(b.wall_seconds, 0.2);
        assert_eq!(b.atom_steps_per_s, 100_000.0);
    }

    #[test]
    fn v1_accepts_any_device_name() {
        // A v1 file has one implicit device; the filter has nothing to
        // cross-check, so it picks the same rows.
        let b = parse_host_baseline(BENCH, Some("opteron")).expect("parses");
        assert_eq!(b.wall_seconds, 0.2);
    }

    #[test]
    fn v2_selects_the_named_device_row() {
        let b = parse_host_baseline(BENCH_V2, Some("opteron")).expect("parses");
        assert_eq!(b.wall_seconds, 0.2);
        assert_eq!(b.atom_steps_per_s, 100_000.0);
        let g = parse_host_baseline(BENCH_V2, Some("gpu-7900gtx")).expect("parses");
        assert_eq!(g.wall_seconds, 0.1);
        assert_eq!(g.atom_steps_per_s, 200_000.0);
    }

    #[test]
    fn v2_multi_device_requires_the_filter() {
        let err = parse_host_baseline(BENCH_V2, None).unwrap_err();
        assert!(err.contains("--device"), "{err}");
        assert!(err.contains("gpu-7900gtx"), "{err}");
    }

    #[test]
    fn v2_unknown_device_lists_known_labels() {
        let err = parse_host_baseline(BENCH_V2, Some("mta2-full-mt")).unwrap_err();
        assert!(err.contains("mta2-full-mt"), "{err}");
        assert!(err.contains("opteron"), "{err}");
    }

    #[test]
    fn within_tolerance_passes() {
        let b = parse_host_baseline(BENCH, None).unwrap();
        let results = check_ledger(&timed_ledger(0.25, 90_000.0), b, 0.5).expect("checks");
        assert!(results.iter().all(|r| !r.regressed), "{results:?}");
    }

    #[test]
    fn slow_wall_clock_regresses() {
        let b = parse_host_baseline(BENCH, None).unwrap();
        let results = check_ledger(&timed_ledger(0.31, 90_000.0), b, 0.5).expect("checks");
        assert!(results[0].regressed, "{results:?}");
        assert!(!results[1].regressed);
        assert!(results[0].render().starts_with("FAIL"));
    }

    #[test]
    fn low_throughput_regresses() {
        let b = parse_host_baseline(BENCH, None).unwrap();
        let results = check_ledger(&timed_ledger(0.25, 10_000.0), b, 0.5).expect("checks");
        assert!(results[1].regressed, "{results:?}");
    }

    #[test]
    fn untimed_ledger_is_an_error() {
        let b = parse_host_baseline(BENCH, None).unwrap();
        let l = RunLedger::new("opteron", "2048 x 10");
        assert!(check_ledger(&l, b, 0.5).is_err());
    }
}
