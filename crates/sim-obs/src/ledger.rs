//! The schema-versioned JSONL run ledger.
//!
//! One ledger captures everything observable about a run — device phase
//! attribution, perf counters, fault injection and recovery, cache hits,
//! cluster node events, and host wall-clock scopes — as one event per line
//! on a single simulated-time axis. Two rules keep it honest:
//!
//! 1. **Observation only.** The ledger never charges cycles or mutates
//!    simulated state; a run with a ledger attached is bitwise-identical to
//!    the same run without (pinned by `tests/obs_ledger.rs`).
//! 2. **Host time is quarantined.** Wall-clock measurements are allowed,
//!    but only in events of kind `host`, which the canonical view excludes.
//!    Determinism comparisons are therefore "identical modulo host-time
//!    fields" by construction.

use crate::json::{escape_json_string, json_f64, parse_json, JsonValue};
use std::fmt::Write as _;

/// Version of the ledger line format. Bump on any breaking change to the
/// header or event fields.
pub const LEDGER_SCHEMA_VERSION: u32 = 1;

/// What an event describes. Serialized lowercase in the `kind` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A span of simulated time attributed to one activity (`dur_s` set).
    Phase,
    /// A counter sample or total (`value`/`unit` set).
    Counter,
    /// A point event on the simulated timeline.
    Instant,
    /// Result-cache activity (hit or miss) from the sweep engine.
    Cache,
    /// A cluster node lifecycle event (fault, checkpoint, restore, …).
    Node,
    /// A supervisor recovery event (watchdog, restore, fallback, …).
    Recovery,
    /// A host wall-clock measurement. Excluded from the canonical view.
    Host,
}

impl EventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Phase => "phase",
            EventKind::Counter => "counter",
            EventKind::Instant => "instant",
            EventKind::Cache => "cache",
            EventKind::Node => "node",
            EventKind::Recovery => "recovery",
            EventKind::Host => "host",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "phase" => EventKind::Phase,
            "counter" => EventKind::Counter,
            "instant" => EventKind::Instant,
            "cache" => EventKind::Cache,
            "node" => EventKind::Node,
            "recovery" => EventKind::Recovery,
            "host" => EventKind::Host,
            _ => return None,
        })
    }
}

/// One ledger line. `t_s` is simulated seconds from the run origin except
/// for `Host` events, where it is a host wall-clock offset and explicitly
/// non-deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerEvent {
    pub t_s: f64,
    pub kind: EventKind,
    /// Emitting subsystem: a device label, "supervisor", "cluster", "sweep",
    /// "harness", …
    pub source: String,
    /// Event name: phase/counter name, recovery event kind, cache key, …
    pub name: String,
    /// Step index the event is anchored to, when one exists.
    pub step: Option<u64>,
    /// Duration in simulated seconds (phases).
    pub dur_s: Option<f64>,
    /// Numeric payload (counters, host measurements).
    pub value: Option<f64>,
    /// Unit of `value`.
    pub unit: Option<String>,
    /// Free-form detail string.
    pub detail: Option<String>,
}

impl LedgerEvent {
    fn to_json_line(&self) -> String {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"t_s\":{},\"kind\":\"{}\",\"source\":\"{}\",\"name\":\"{}\"",
            json_f64(self.t_s),
            self.kind.as_str(),
            escape_json_string(&self.source),
            escape_json_string(&self.name),
        );
        if let Some(step) = self.step {
            let _ = write!(line, ",\"step\":{step}");
        }
        if let Some(d) = self.dur_s {
            let _ = write!(line, ",\"dur_s\":{}", json_f64(d));
        }
        if let Some(v) = self.value {
            let _ = write!(line, ",\"value\":{}", json_f64(v));
        }
        if let Some(u) = &self.unit {
            let _ = write!(line, ",\"unit\":\"{}\"", escape_json_string(u));
        }
        if let Some(det) = &self.detail {
            let _ = write!(line, ",\"detail\":\"{}\"", escape_json_string(det));
        }
        line.push('}');
        line
    }

    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let t_s = v
            .get("t_s")
            .and_then(JsonValue::as_number)
            .ok_or("event missing numeric t_s")?;
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .and_then(EventKind::parse)
            .ok_or("event missing or unknown kind")?;
        let source = v
            .get("source")
            .and_then(JsonValue::as_str)
            .ok_or("event missing source")?
            .to_string();
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("event missing name")?
            .to_string();
        let step = match v.get("step") {
            Some(s) => Some(
                s.as_number()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .ok_or("step must be a non-negative integer")? as u64,
            ),
            None => None,
        };
        let num = |key: &str| -> Result<Option<f64>, String> {
            match v.get(key) {
                Some(x) => Ok(Some(
                    x.as_number().ok_or(format!("{key} must be a number"))?,
                )),
                None => Ok(None),
            }
        };
        let text = |key: &str| -> Result<Option<String>, String> {
            match v.get(key) {
                Some(x) => Ok(Some(
                    x.as_str()
                        .ok_or(format!("{key} must be a string"))?
                        .to_string(),
                )),
                None => Ok(None),
            }
        };
        Ok(LedgerEvent {
            t_s,
            kind,
            source,
            name,
            step,
            dur_s: num("dur_s")?,
            value: num("value")?,
            unit: text("unit")?,
            detail: text("detail")?,
        })
    }
}

/// An in-memory run ledger: a header plus an event list. Serialization is
/// JSONL — the header on line one, one event per following line, events
/// stably sorted by `(t_s, kind, source, name)` so equal-content runs
/// produce byte-identical files modulo host-time values.
#[derive(Clone, Debug, Default)]
pub struct RunLedger {
    /// Human label for the run ("cell-8spe-roundrobin", "cluster-4x", …).
    pub label: String,
    /// Workload description, e.g. "2048 atoms x 10 steps".
    pub workload: String,
    events: Vec<LedgerEvent>,
    /// Simulated-seconds origin for relative-time helpers; segments of a
    /// supervised run advance this so each segment lands after the last.
    sim_offset: f64,
}

impl RunLedger {
    pub fn new(label: &str, workload: &str) -> Self {
        RunLedger {
            label: label.to_string(),
            workload: workload.to_string(),
            events: Vec::new(),
            sim_offset: 0.0,
        }
    }

    /// Move the simulated-time origin used by the relative-time helpers.
    pub fn set_sim_offset(&mut self, offset_s: f64) {
        self.sim_offset = offset_s;
    }

    pub fn sim_offset(&self) -> f64 {
        self.sim_offset
    }

    pub fn events(&self) -> &[LedgerEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Push a fully-specified event at an absolute simulated time.
    pub fn push(&mut self, event: LedgerEvent) {
        self.events.push(event);
    }

    /// A phase span at `start_rel_s` past the current sim offset.
    pub fn phase(&mut self, source: &str, name: &str, start_rel_s: f64, dur_s: f64) {
        self.events.push(LedgerEvent {
            t_s: self.sim_offset + start_rel_s,
            kind: EventKind::Phase,
            source: source.to_string(),
            name: name.to_string(),
            step: None,
            dur_s: Some(dur_s),
            value: None,
            unit: None,
            detail: None,
        });
    }

    /// A counter total at `t_rel_s` past the current sim offset.
    pub fn counter(&mut self, source: &str, name: &str, t_rel_s: f64, value: f64, unit: &str) {
        self.events.push(LedgerEvent {
            t_s: self.sim_offset + t_rel_s,
            kind: EventKind::Counter,
            source: source.to_string(),
            name: name.to_string(),
            step: None,
            dur_s: None,
            value: Some(value),
            unit: Some(unit.to_string()),
            detail: None,
        });
    }

    /// An instant at `t_rel_s` past the current sim offset.
    pub fn instant(&mut self, kind: EventKind, source: &str, name: &str, t_rel_s: f64) {
        self.events.push(LedgerEvent {
            t_s: self.sim_offset + t_rel_s,
            kind,
            source: source.to_string(),
            name: name.to_string(),
            step: None,
            dur_s: None,
            value: None,
            unit: None,
            detail: None,
        });
    }

    /// Lay a device's attribution breakdown end-to-end from the current sim
    /// offset, in the order the device reported it. This is how every
    /// `DeviceRun::attribution` becomes ledger phases.
    pub fn device_phases(&mut self, source: &str, attribution: &[(&'static str, f64)]) {
        let mut cursor = 0.0;
        for &(name, dur_s) in attribution {
            self.phase(source, name, cursor, dur_s);
            cursor += dur_s;
        }
    }

    /// Run `f`, recording its host wall-clock duration as a `Host` event.
    /// The measurement never feeds back into simulated state; it exists so
    /// `obs check` can gate on host throughput.
    pub fn host_scope<T>(&mut self, source: &str, name: &str, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        let wall = start.elapsed().as_secs_f64();
        self.host_value(source, name, wall, "s");
        out
    }

    /// Record a host-side measurement (wall seconds, throughput, …).
    pub fn host_value(&mut self, source: &str, name: &str, value: f64, unit: &str) {
        self.events.push(LedgerEvent {
            t_s: 0.0,
            kind: EventKind::Host,
            source: source.to_string(),
            name: name.to_string(),
            step: None,
            dur_s: None,
            value: Some(value),
            unit: Some(unit.to_string()),
            detail: None,
        });
    }

    /// Events sorted the way serialization orders them.
    fn sorted_events(&self) -> Vec<LedgerEvent> {
        let mut evs = self.events.clone();
        evs.sort_by(|a, b| {
            a.t_s
                .total_cmp(&b.t_s)
                .then_with(|| a.kind.cmp(&b.kind))
                .then_with(|| a.source.cmp(&b.source))
                .then_with(|| a.name.cmp(&b.name))
        });
        evs
    }

    /// Serialize to JSONL: header line, then one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema_version\":{LEDGER_SCHEMA_VERSION},\"format\":\"run-ledger\",\
             \"label\":\"{}\",\"workload\":\"{}\",\"events\":{}}}",
            escape_json_string(&self.label),
            escape_json_string(&self.workload),
            self.events.len(),
        );
        out.push('\n');
        for ev in self.sorted_events() {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }

    /// The determinism-comparison view: serialized lines with every `Host`
    /// event dropped. Two runs of the same config must agree on these bytes
    /// exactly; host events are the only place wall-clock jitter may live.
    pub fn canonical_lines(&self) -> Vec<String> {
        self.sorted_events()
            .iter()
            .filter(|ev| ev.kind != EventKind::Host)
            .map(LedgerEvent::to_json_line)
            .collect()
    }

    /// Parse a JSONL ledger produced by [`RunLedger::to_jsonl`].
    pub fn parse_jsonl(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or("empty ledger")?;
        let header = parse_json(header_line).map_err(|e| format!("header: {e}"))?;
        let version = header
            .get("schema_version")
            .and_then(JsonValue::as_number)
            .ok_or("header missing schema_version")?;
        if version != f64::from(LEDGER_SCHEMA_VERSION) {
            return Err(format!(
                "unsupported ledger schema_version {version} (expected {LEDGER_SCHEMA_VERSION})"
            ));
        }
        if header.get("format").and_then(JsonValue::as_str) != Some("run-ledger") {
            return Err("header format must be \"run-ledger\"".to_string());
        }
        let label = header
            .get("label")
            .and_then(JsonValue::as_str)
            .ok_or("header missing label")?
            .to_string();
        let workload = header
            .get("workload")
            .and_then(JsonValue::as_str)
            .ok_or("header missing workload")?
            .to_string();
        let declared = header
            .get("events")
            .and_then(JsonValue::as_number)
            .ok_or("header missing events count")?;
        let mut events = Vec::new();
        for (idx, line) in lines.enumerate() {
            let v = parse_json(line).map_err(|e| format!("event line {}: {e}", idx + 2))?;
            events.push(
                LedgerEvent::from_json_value(&v)
                    .map_err(|e| format!("event line {}: {e}", idx + 2))?,
            );
        }
        if declared != events.len() as f64 {
            return Err(format!(
                "header declares {declared} events but file has {}",
                events.len()
            ));
        }
        Ok(RunLedger {
            label,
            workload,
            events,
            sim_offset: 0.0,
        })
    }

    /// Validate a serialized ledger without keeping the result.
    pub fn validate(text: &str) -> Result<(), String> {
        Self::parse_jsonl(text).map(|_| ())
    }

    /// Total simulated seconds covered by phases of one source.
    pub fn phase_total(&self, source: &str) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Phase && e.source == source)
            .filter_map(|e| e.dur_s)
            .sum()
    }

    /// Sources that emitted at least one event, in sorted order.
    pub fn sources(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for ev in &self.events {
            if !out.contains(&ev.source) {
                out.push(ev.source.clone());
            }
        }
        out.sort();
        out
    }

    /// Latest host-event value for `(source, name)`, if recorded.
    pub fn host_metric(&self, source: &str, name: &str) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Host && e.source == source && e.name == name)
            .filter_map(|e| e.value)
            .next_back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ledger() -> RunLedger {
        let mut l = RunLedger::new("cell-8spe", "2048 atoms x 10 steps");
        l.device_phases("cell-8spe", &[("compute", 0.8), ("dma_wait", 0.2)]);
        l.counter("cell-8spe", "spe.dma.bytes", 1.0, 4096.0, "bytes");
        l.instant(EventKind::Recovery, "supervisor", "checkpoint", 1.0);
        l.host_value("harness", "host_wall_seconds", 0.123, "s");
        l
    }

    #[test]
    fn round_trips_through_jsonl() {
        let l = sample_ledger();
        let text = l.to_jsonl();
        let back = RunLedger::parse_jsonl(&text).expect("parses");
        assert_eq!(back.label, l.label);
        assert_eq!(back.workload, l.workload);
        assert_eq!(back.events().len(), l.events().len());
        assert_eq!(back.to_jsonl(), text, "serialization is a fixed point");
    }

    #[test]
    fn canonical_view_excludes_host_events() {
        let l = sample_ledger();
        let canon = l.canonical_lines();
        assert_eq!(canon.len(), l.events().len() - 1);
        assert!(canon.iter().all(|line| !line.contains("\"kind\":\"host\"")));
    }

    #[test]
    fn device_phases_lay_end_to_end_from_offset() {
        let mut l = RunLedger::new("x", "w");
        l.set_sim_offset(10.0);
        l.device_phases("dev", &[("a", 1.0), ("b", 2.0)]);
        let evs = l.events();
        assert_eq!(evs[0].t_s, 10.0);
        assert_eq!(evs[1].t_s, 11.0);
        assert_eq!(l.phase_total("dev"), 3.0);
    }

    #[test]
    fn serialization_sorts_stably() {
        let mut a = RunLedger::new("x", "w");
        a.phase("dev", "late", 5.0, 1.0);
        a.phase("dev", "early", 0.0, 1.0);
        let mut b = RunLedger::new("x", "w");
        b.phase("dev", "early", 0.0, 1.0);
        b.phase("dev", "late", 5.0, 1.0);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn rejects_bad_headers_and_counts() {
        assert!(RunLedger::parse_jsonl("").is_err());
        assert!(RunLedger::parse_jsonl("{\"schema_version\":99}").is_err());
        let mut l = sample_ledger();
        l.push(LedgerEvent {
            t_s: 0.0,
            kind: EventKind::Instant,
            source: "x".into(),
            name: "y".into(),
            step: None,
            dur_s: None,
            value: None,
            unit: None,
            detail: None,
        });
        let mut text = l.to_jsonl();
        // Drop the final event line: count mismatch must be caught.
        let cut = text.trim_end().rfind('\n').unwrap();
        text.truncate(cut + 1);
        assert!(RunLedger::parse_jsonl(&text).is_err());
    }

    #[test]
    fn host_scope_returns_value_and_records_host_event() {
        let mut l = RunLedger::new("x", "w");
        let out = l.host_scope("harness", "busy", || 42);
        assert_eq!(out, 42);
        assert!(l.host_metric("harness", "busy").is_some());
        assert!(
            l.canonical_lines().is_empty(),
            "host-only ledger has empty canon"
        );
    }

    #[test]
    fn step_field_round_trips() {
        let mut l = RunLedger::new("x", "w");
        l.push(LedgerEvent {
            t_s: 0.5,
            kind: EventKind::Node,
            source: "cluster".into(),
            name: "fault".into(),
            step: Some(7),
            dur_s: None,
            value: None,
            unit: None,
            detail: Some("node 2".into()),
        });
        let back = RunLedger::parse_jsonl(&l.to_jsonl()).expect("parses");
        assert_eq!(back.events()[0].step, Some(7));
        assert_eq!(back.events()[0].detail.as_deref(), Some("node 2"));
    }
}
