//! The one Chrome trace-event JSON writer in the workspace.
//!
//! Both exporters that used to carry their own copy of this format — the
//! span/instant/counter renderer in `mdea-trace` and the `"C"` counter-event
//! export in `sim-perf` — now feed this builder, so the byte format (field
//! order, `%.3f` microsecond timestamps, the `(timestamp, track, kind)`
//! stable sort, the `[\n … \n]\n` envelope) is defined exactly once. The
//! golden-file tests in `tests/trace_golden.rs` pin the bytes.

use crate::json::escape_json_string;
use std::fmt::Write as _;

/// Builds a Chrome trace-event JSON array: thread-name metadata first, then
/// events stably sorted by `(timestamp, track, kind)` with spans before
/// instants before counters at equal keys, insertion order last. Times are
/// seconds in, microseconds (the format's native unit) out.
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    names: Vec<(u32, String)>,
    /// `(time_s, track, kind, rendered-body)` — kind 0 span, 1 instant,
    /// 2 counter.
    events: Vec<(f64, u32, u8, String)>,
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a human-readable thread name for a track (first wins).
    pub fn thread_name(&mut self, track: u32, name: &str) {
        if !self.names.iter().any(|(t, _)| *t == track) {
            self.names.push((track, name.to_string()));
        }
    }

    /// A complete `"X"` event.
    pub fn span(&mut self, track: u32, name: &str, category: &str, start_s: f64, duration_s: f64) {
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3}}}",
            escape_json_string(name),
            escape_json_string(category),
            track,
            start_s * 1e6,
            duration_s * 1e6,
        );
        self.events.push((start_s, track, 0, body));
    }

    /// A thread-scoped `"i"` instant event.
    pub fn instant(&mut self, track: u32, name: &str, category: &str, time_s: f64) {
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"s\":\"t\"}}",
            escape_json_string(name),
            escape_json_string(category),
            track,
            time_s * 1e6,
        );
        self.events.push((time_s, track, 1, body));
    }

    /// A `"C"` counter sample.
    pub fn counter(&mut self, track: u32, name: &str, category: &str, time_s: f64, value: f64) {
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"args\":{{\"value\":{}}}}}",
            escape_json_string(name),
            escape_json_string(category),
            track,
            time_s * 1e6,
            value,
        );
        self.events.push((time_s, track, 2, body));
    }

    /// A whole counter time series on one track. Series with no samples get
    /// a single point carrying `final_value` at t = 0 so they still show up
    /// as a lane in Perfetto — the rule `sim-perf` established for unsampled
    /// counters lives here now.
    pub fn counter_series(
        &mut self,
        track: u32,
        name: &str,
        category: &str,
        samples: &[(f64, f64)],
        final_value: f64,
    ) {
        if samples.is_empty() {
            self.counter(track, name, category, 0.0, final_value);
            return;
        }
        for &(t_s, value) in samples {
            self.counter(track, name, category, t_s, value);
        }
    }

    /// Render the trace: `[\n` + `,\n`-joined events + `\n]\n`.
    pub fn render(&self) -> String {
        let mut events = self.events.clone();
        // Stable sort: equal (timestamp, track, kind) keeps insertion order.
        events.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });

        let mut out = String::from("[\n");
        let mut first = true;
        let mut push = |out: &mut String, body: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(body);
        };
        for (track, name) in &self.names {
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    track,
                    escape_json_string(name)
                ),
            );
        }
        for (_, _, _, body) in &events {
            push(&mut out, body);
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_renders_empty_array() {
        assert_eq!(ChromeTrace::new().render(), "[\n\n]\n");
    }

    #[test]
    fn metadata_precedes_sorted_events() {
        let mut t = ChromeTrace::new();
        t.span(0, "late", "c", 2e-3, 1e-3);
        t.thread_name(0, "PPE");
        t.span(0, "early", "c", 0.0, 1e-3);
        let json = t.render();
        let meta = json.find("thread_name").expect("metadata present");
        let early = json.find("early").expect("early present");
        let late = json.find("late").expect("late present");
        assert!(meta < early && early < late, "{json}");
    }

    #[test]
    fn duplicate_thread_name_ignored() {
        let mut t = ChromeTrace::new();
        t.thread_name(0, "first");
        t.thread_name(0, "second");
        let json = t.render();
        assert!(json.contains("first"));
        assert!(!json.contains("second"));
    }

    #[test]
    fn counter_series_falls_back_to_origin_point() {
        let mut t = ChromeTrace::new();
        t.counter_series(9, "unsampled", "perf", &[], 7.0);
        t.counter_series(9, "sampled", "perf", &[(1e-3, 2.0), (2e-3, 5.0)], 5.0);
        let json = t.render();
        assert!(
            json.contains("\"ts\":0.000,\"args\":{\"value\":7}"),
            "{json}"
        );
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 3);
    }

    #[test]
    fn kinds_sort_span_instant_counter_at_equal_time() {
        let mut t = ChromeTrace::new();
        t.counter(1, "ctr", "perf", 1e-3, 1.0);
        t.instant(1, "inst", "c", 1e-3);
        t.span(1, "spn", "c", 1e-3, 0.0);
        let json = t.render();
        let pos = |needle: &str| json.find(needle).expect("present");
        assert!(
            pos("spn") < pos("inst") && pos("inst") < pos("ctr"),
            "{json}"
        );
    }
}
