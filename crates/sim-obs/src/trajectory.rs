//! The cross-PR performance history: `BENCH_trajectory.json`.
//!
//! Every `bench_seed` invocation appends one entry here, so the repo
//! accumulates a speed trajectory instead of overwriting a single snapshot.
//! This module owns the only `SystemTime` call in the telemetry stack —
//! the timestamp is stamped at append time, inside the observer layer,
//! never inside an engine crate.

use crate::json::{escape_json_string, json_f64, parse_json, JsonValue};
use std::fmt::Write as _;
use std::path::Path;

pub const TRAJECTORY_SCHEMA_VERSION: u32 = 1;

/// One appended measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryEntry {
    /// Unix seconds when the entry was recorded (0 when unstamped).
    pub recorded_unix_s: u64,
    /// Device label the host run measured.
    pub device: String,
    pub n_atoms: u64,
    pub steps: u64,
    /// Simulated seconds — bitwise-stable across hosts.
    pub sim_seconds: f64,
    /// Best-of host wall seconds for the run.
    pub host_wall_seconds: f64,
    pub host_atom_steps_per_s: f64,
    /// Free-form provenance note ("bench_seed host-bench, best of 3").
    pub note: String,
}

impl TrajectoryEntry {
    fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"recorded_unix_s\":{},\"device\":\"{}\",\"n_atoms\":{},\"steps\":{},\
             \"sim_seconds\":{},\"host_wall_seconds\":{},\"host_atom_steps_per_s\":{},\
             \"note\":\"{}\"}}",
            self.recorded_unix_s,
            escape_json_string(&self.device),
            self.n_atoms,
            self.steps,
            json_f64(self.sim_seconds),
            json_f64(self.host_wall_seconds),
            json_f64(self.host_atom_steps_per_s),
            escape_json_string(&self.note),
        );
        out
    }

    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let int = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_number)
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("entry missing integer {key}"))
        };
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonValue::as_number)
                .ok_or_else(|| format!("entry missing number {key}"))
        };
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry missing string {key}"))
        };
        Ok(TrajectoryEntry {
            recorded_unix_s: int("recorded_unix_s")?,
            device: text("device")?,
            n_atoms: int("n_atoms")?,
            steps: int("steps")?,
            sim_seconds: num("sim_seconds")?,
            host_wall_seconds: num("host_wall_seconds")?,
            host_atom_steps_per_s: num("host_atom_steps_per_s")?,
            note: text("note")?,
        })
    }
}

/// Parse a trajectory file's entries.
pub fn parse_trajectory(text: &str) -> Result<Vec<TrajectoryEntry>, String> {
    let doc = parse_json(text).map_err(|e| format!("BENCH_trajectory.json: {e}"))?;
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_number)
        .ok_or("trajectory missing schema_version")?;
    if version != f64::from(TRAJECTORY_SCHEMA_VERSION) {
        return Err(format!(
            "unsupported trajectory schema_version {version} (expected {TRAJECTORY_SCHEMA_VERSION})"
        ));
    }
    doc.get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("trajectory missing entries array")?
        .iter()
        .map(TrajectoryEntry::from_json_value)
        .collect()
}

/// Serialize a full trajectory file.
pub fn render_trajectory(entries: &[TrajectoryEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": {TRAJECTORY_SCHEMA_VERSION},");
    let _ = writeln!(
        out,
        "  \"description\": \"Append-only host-performance history; one entry per bench_seed invocation. Simulated seconds are bitwise-stable; host numbers are machine-dependent.\","
    );
    let _ = writeln!(out, "  \"entries\": [");
    for (i, entry) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", entry.to_json());
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Stamp `recorded_unix_s` with the current wall clock. Lives here — and
/// only here — so engine crates never touch `SystemTime`.
pub fn stamp_now(entry: &mut TrajectoryEntry) {
    entry.recorded_unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
}

/// Append one entry to the trajectory file at `path`, stamping it with the
/// current time. Creates the file if absent; existing entries are preserved
/// and re-rendered.
pub fn append_entry(path: &Path, mut entry: TrajectoryEntry) -> Result<(), String> {
    stamp_now(&mut entry);
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => parse_trajectory(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    entries.push(entry);
    std::fs::write(path, render_trajectory(&entries))
        .map_err(|e| format!("write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> TrajectoryEntry {
        TrajectoryEntry {
            recorded_unix_s: 1_700_000_000,
            device: "opteron".to_string(),
            n_atoms: 2048,
            steps: 10,
            sim_seconds: 0.41,
            host_wall_seconds: 0.21,
            host_atom_steps_per_s: 97_000.0,
            note: "best of 3".to_string(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let entries = vec![sample_entry(), {
            let mut e = sample_entry();
            e.device = "cell-8spe".to_string();
            e
        }];
        let text = render_trajectory(&entries);
        let back = parse_trajectory(&text).expect("parses");
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_trajectory_is_valid() {
        let text = render_trajectory(&[]);
        assert!(parse_trajectory(&text).expect("parses").is_empty());
    }

    #[test]
    fn append_creates_then_extends() {
        let dir = std::env::temp_dir().join(format!("obs-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_trajectory.json");
        let _ = std::fs::remove_file(&path);
        append_entry(&path, sample_entry()).expect("first append");
        append_entry(&path, sample_entry()).expect("second append");
        let text = std::fs::read_to_string(&path).unwrap();
        let entries = parse_trajectory(&text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.recorded_unix_s > 0), "stamped");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_unknown_schema() {
        assert!(parse_trajectory("{\"schema_version\": 99, \"entries\": []}").is_err());
    }
}
