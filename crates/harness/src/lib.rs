//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section from the simulated devices.
//!
//! Each experiment is a plain function returning a typed result, used by
//! three consumers: the `sweep` engine and its per-figure binaries
//! (`crates/sim-sweep`), the workspace integration tests (shape assertions),
//! and EXPERIMENTS.md.
//!
//! | Paper artifact | Function | Binary (sim-sweep) |
//! |---|---|---|
//! | Figure 5 (SPE SIMD ladder) | [`experiments::fig5`] | `fig5` |
//! | Figure 6 (SPE launch overhead) | [`experiments::fig6`] | `fig6` |
//! | Table 1 (Cell vs Opteron) | [`experiments::table1`] | `table1` |
//! | Figure 7 (GPU vs Opteron sweep) | [`experiments::fig7`] | `fig7` |
//! | Figure 8 (MTA full vs partial MT) | [`experiments::fig8`] | `fig8` |
//! | Figure 9 (relative scaling) | [`experiments::fig9`] | `fig9` |
//!
//! Devices are named by [`device::DeviceKind`] and driven uniformly through
//! [`md_core::device::MdDevice`]; [`device::DeviceKind::build`] is the single
//! construction point for every simulated machine.

pub mod cluster;
pub mod device;
pub mod error;
pub mod experiments;
pub mod perf;
pub mod report;
pub mod supervisor;

pub use cluster::{run_cluster_supervised, ClusterKind, ClusterRecovery};
pub use device::{DeviceKind, GpuModel};
pub use error::HarnessError;
pub use experiments::{
    fig5, fig6, fig7, fig8, fig9, table1, Fig5Row, Fig6Case, Fig7Row, Fig8Row, Fig9Row, Table1Data,
};
pub use perf::{
    cell_metrics, cluster_ledger, cluster_metrics, device_baseline_metrics_host, device_ledger,
    device_metrics, device_metrics_host, device_metrics_par, gpu_metrics, mta_metrics,
    opteron_baseline_metrics_host, opteron_metrics, record_host_throughput_ledger,
    standard_metrics, workload_label, write_metrics_json, write_metrics_json_in,
};
pub use report::{emit_figure, write_csv, Table};
pub use supervisor::{
    run_supervised, run_supervised_ledger, run_supervised_strict, RecoveryEvent, RecoveryReport,
    SegmentCounters, SupervisedRun, SupervisorConfig, SUPERVISOR_TRACK,
};
