//! The device factory (DESIGN.md §11): one enum naming every simulated
//! machine configuration the paper's evaluation uses, with a single place
//! that constructs the boxed [`MdDevice`] for it.
//!
//! Binaries and the sweep engine hold [`DeviceKind`] values — plain,
//! copyable data — and only call [`DeviceKind::build`] at the moment a run
//! actually executes. [`DeviceKind::cache_token`] is the device half of a
//! sweep-cache key: it encodes both the configuration knobs *and* the
//! machine constants the factory bakes in, so editing a device's clock or
//! pipe count invalidates exactly that device's cached points.

#[cfg(feature = "fault-inject")]
use cell_be::CellBeDevice;
use cell_be::{
    CellAccelProbe, CellConfig, CellMd, CellPpeMd, CellRunConfig, SpawnPolicy, SpeKernelVariant,
};
use gpu::{GpuConfig, GpuMdSimulation};
use md_core::device::MdDevice;
use mta::{MtaConfig, MtaMd, ThreadingMode};
use opteron::{OpteronConfig, OpteronCpu};

/// The GPU generations the paper compares (section 5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpuModel {
    GeForce7900Gtx,
    GeForce6800,
}

impl GpuModel {
    fn config(self) -> GpuConfig {
        match self {
            GpuModel::GeForce7900Gtx => GpuConfig::geforce_7900gtx(),
            GpuModel::GeForce6800 => GpuConfig::geforce_6800(),
        }
    }
}

/// Every device configuration the evaluation grid can name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// The Cell blade running the SPE-offload port.
    Cell {
        n_spes: usize,
        policy: SpawnPolicy,
        variant: SpeKernelVariant,
    },
    /// The PPE-only baseline (Table 1's slowest row).
    CellPpe,
    /// The Figure 5 single-SPE force-evaluation probe (steps must be 0).
    CellAccel {
        variant: SpeKernelVariant,
    },
    Gpu {
        model: GpuModel,
    },
    Mta {
        mode: ThreadingMode,
    },
    /// The 2.2 GHz Opteron reference machine.
    Opteron,
}

impl DeviceKind {
    /// The Cell blade in an arbitrary run configuration.
    pub fn cell(run: CellRunConfig) -> Self {
        DeviceKind::Cell {
            n_spes: run.n_spes,
            policy: run.policy,
            variant: run.variant,
        }
    }

    /// The paper's best Cell configuration (8 SPEs, launch-once, full SIMD).
    pub fn cell_best() -> Self {
        Self::cell(CellRunConfig::best())
    }

    /// The best configuration restricted to one SPE.
    pub fn cell_single_spe() -> Self {
        Self::cell(CellRunConfig::single_spe())
    }

    /// The Cell run configuration for the `Cell` variant.
    fn cell_run_config(self) -> Option<CellRunConfig> {
        match self {
            DeviceKind::Cell {
                n_spes,
                policy,
                variant,
            } => Some(CellRunConfig {
                n_spes,
                policy,
                variant,
            }),
            _ => None,
        }
    }

    /// The device's metric/cache label — identical to what
    /// [`MdDevice::label`] on the built device returns.
    pub fn label(self) -> String {
        match self {
            DeviceKind::Cell { n_spes, .. } => format!("cell-{n_spes}spe"),
            DeviceKind::CellPpe => "cell-ppe".to_string(),
            DeviceKind::CellAccel { variant } => {
                format!("cell-1spe-{}", variant.label().replace(' ', "-"))
            }
            DeviceKind::Gpu {
                model: GpuModel::GeForce7900Gtx,
            } => "gpu-7900gtx".to_string(),
            DeviceKind::Gpu {
                model: GpuModel::GeForce6800,
            } => "gpu-6800".to_string(),
            DeviceKind::Mta {
                mode: ThreadingMode::FullyMultithreaded,
            } => "mta2-full-mt".to_string(),
            DeviceKind::Mta {
                mode: ThreadingMode::PartiallyMultithreaded,
            } => "mta2-partial-mt".to_string(),
            DeviceKind::Opteron => "opteron".to_string(),
        }
    }

    /// Stable text encoding of the full device identity for cache keys:
    /// configuration knobs plus *every* machine constant the factory bakes
    /// in. Any change to either must change this string (and thereby
    /// invalidate cached results for this device). The `cache-token` lint
    /// rule enforces completeness: each field of each cost-model struct
    /// reachable from here must appear in the encoding, recursively.
    pub fn cache_token(self) -> String {
        // Cell machine constants, shared by the three Cell-family arms.
        let c = CellConfig::paper_blade();
        let cell_hw = format!(
            "clk={},nspes_max={},ls={},dma_lat={},dma_bpc={},dma_max={},mbox={},spawn={},ppe_svc={},ppe_cpi={}",
            c.clock_hz,
            c.n_spes,
            c.local_store_bytes,
            c.dma_latency_cycles,
            c.dma_bytes_per_cycle,
            c.dma_max_transfer,
            c.mailbox_cycles,
            c.spawn_cycles,
            c.ppe_service_cycles,
            c.ppe_cpi_factor,
        );
        let k = &c.costs;
        let cell_costs = format!(
            "rbr={},rcs={},rsi={},dsc={},dsi={},lsc={},lsi={},cut={},pld={},lj={},asc={},asi={},pa={},dpp={}",
            k.reflect_branchy,
            k.reflect_copysign,
            k.reflect_simd,
            k.direction_scalar,
            k.direction_simd,
            k.length_scalar,
            k.length_simd,
            k.cutoff_test,
            k.pair_loads,
            k.lj_eval,
            k.accel_scalar,
            k.accel_simd,
            k.per_atom,
            k.dp_penalty,
        );
        match self {
            DeviceKind::Cell {
                n_spes,
                policy,
                variant,
            } => format!(
                "cell:nspes={n_spes},policy={policy:?},variant={variant:?},{cell_hw},{cell_costs}"
            ),
            DeviceKind::CellPpe => format!("cell-ppe:{cell_hw},{cell_costs}"),
            DeviceKind::CellAccel { variant } => {
                format!("cell-accel:variant={variant:?},{cell_hw},{cell_costs}")
            }
            DeviceKind::Gpu { model } => {
                let g: GpuConfig = model.config();
                format!(
                    "gpu:model={model:?},clk={},pipes={},up_bps={},rd_bps={},xfer_lat={},disp={},jit={},cpu_lin={},max_tex={}",
                    g.clock_hz,
                    g.n_pipes,
                    g.upload_bytes_per_sec,
                    g.readback_bytes_per_sec,
                    g.transfer_latency_s,
                    g.dispatch_overhead_s,
                    g.jit_startup_s,
                    g.cpu_linear_s_per_atom,
                    g.max_input_textures,
                )
            }
            DeviceKind::Mta { mode } => {
                let m = MtaConfig::paper_mta2();
                let remote = match &m.remote_memory {
                    Some(r) => format!(
                        "rm_frac={},rm_extra={}",
                        r.remote_fraction, r.remote_extra_cycles
                    ),
                    None => "rm=none".to_string(),
                };
                format!(
                    "mta:mode={mode:?},clk={},streams={},procs={},issue={},loop_start={},sync={},{remote}",
                    m.clock_hz,
                    m.streams_per_processor,
                    m.n_processors,
                    m.stream_issue_interval,
                    m.loop_startup_cycles,
                    m.sync_instructions,
                )
            }
            DeviceKind::Opteron => {
                let o = OpteronConfig::paper_reference();
                let h = &o.memory;
                format!(
                    "opteron:clk={},cpf={},loop_ovh={},prefetch={},l1={}:{}:{},l2={}:{}:{},l1hit={},l2hit={},dram={}",
                    o.clock_hz,
                    o.cycles_per_flop,
                    o.loop_overhead_cycles,
                    o.prefetch,
                    h.l1.size_bytes,
                    h.l1.line_bytes,
                    h.l1.associativity,
                    h.l2.size_bytes,
                    h.l2.line_bytes,
                    h.l2.associativity,
                    h.l1_hit_cycles,
                    h.l2_hit_cycles,
                    h.dram_cycles,
                )
            }
        }
    }

    /// Every kind [`DeviceKind::from_str`] can produce, one per parseable
    /// label. The parse grammar and this list are maintained together: a
    /// label parses if and only if a kind here displays as it.
    pub fn parseable_roster() -> Vec<DeviceKind> {
        let mut all = vec![
            DeviceKind::CellPpe,
            DeviceKind::Gpu {
                model: GpuModel::GeForce7900Gtx,
            },
            DeviceKind::Gpu {
                model: GpuModel::GeForce6800,
            },
            DeviceKind::Mta {
                mode: ThreadingMode::FullyMultithreaded,
            },
            DeviceKind::Mta {
                mode: ThreadingMode::PartiallyMultithreaded,
            },
            DeviceKind::Opteron,
        ];
        for n_spes in 1..=CellConfig::paper_blade().n_spes {
            all.push(DeviceKind::cell(CellRunConfig {
                n_spes,
                ..CellRunConfig::best()
            }));
        }
        for variant in SpeKernelVariant::ALL {
            all.push(DeviceKind::CellAccel { variant });
        }
        all
    }

    /// Construct the simulated machine. This is the only place in the
    /// harness that builds concrete device types; everything downstream
    /// drives the trait object.
    pub fn build(self) -> Box<dyn MdDevice> {
        match self {
            DeviceKind::Cell { .. } => Box::new(CellMd::paper_blade(
                self.cell_run_config().expect("cell variant"),
            )),
            DeviceKind::CellPpe => Box::new(CellPpeMd::paper_blade()),
            DeviceKind::CellAccel { variant } => Box::new(CellAccelProbe::paper_blade(variant)),
            DeviceKind::Gpu { model } => Box::new(GpuMdSimulation::new(model.config())),
            DeviceKind::Mta { mode } => Box::new(MtaMd::paper_mta2(mode)),
            DeviceKind::Opteron => Box::new(OpteronCpu::paper_reference()),
        }
    }

    /// [`DeviceKind::build`] with the device's physics-once replay memo
    /// disabled (DESIGN.md §17): every evaluation runs the interpretive
    /// per-pair walk instead of the shared wide evaluator. Simulated results
    /// are bitwise identical to [`DeviceKind::build`] — only host wall-clock
    /// differs — which is what makes these the denominators of the
    /// single-run speedups `BENCH_host.json` records. The PPE-only and
    /// Figure 5 probe paths have no memo; they build unchanged.
    pub fn build_baseline(self) -> Box<dyn MdDevice> {
        match self {
            DeviceKind::Cell { .. } => {
                let mut md = CellMd::paper_blade(self.cell_run_config().expect("cell variant"));
                md.device.set_eval_memo(false);
                Box::new(md)
            }
            DeviceKind::CellPpe | DeviceKind::CellAccel { .. } => self.build(),
            DeviceKind::Gpu { model } => {
                let mut md = GpuMdSimulation::new(model.config());
                md.set_eval_memo(false);
                Box::new(md)
            }
            DeviceKind::Mta { mode } => {
                let mut md = MtaMd::paper_mta2(mode);
                md.sim.set_eval_memo(false);
                Box::new(md)
            }
            DeviceKind::Opteron => {
                let mut cpu = OpteronCpu::paper_reference();
                cpu.set_trace_memo(false);
                Box::new(cpu)
            }
        }
    }

    /// [`DeviceKind::build`] with a deterministic fault schedule armed.
    /// The PPE-only and Figure 5 probe paths are fault-free by design; the
    /// plan is ignored there.
    #[cfg(feature = "fault-inject")]
    pub fn build_faulted(self, plan: sim_fault::FaultPlan) -> Box<dyn MdDevice> {
        match self {
            DeviceKind::Cell { .. } => Box::new(CellMd::new(
                CellBeDevice::paper_blade().with_fault_plan(plan),
                self.cell_run_config().expect("cell variant"),
            )),
            DeviceKind::CellPpe | DeviceKind::CellAccel { .. } => self.build(),
            DeviceKind::Gpu { model } => {
                Box::new(GpuMdSimulation::new(model.config()).with_fault_plan(plan))
            }
            DeviceKind::Mta { mode } => Box::new(MtaMd::new(
                mta::MtaMdSimulation::paper_mta2().with_fault_plan(plan),
                mode,
            )),
            DeviceKind::Opteron => Box::new(OpteronCpu::paper_reference().with_fault_plan(plan)),
        }
    }

    /// [`DeviceKind::build_faulted`] with the eval memo disabled — the
    /// fault-injected interpretive baseline `tests/shared_eval.rs` pits the
    /// memoized path against. Fault schedules key off the simulated run
    /// structure, which the memo never changes, so the two must agree on
    /// every injected site.
    #[cfg(feature = "fault-inject")]
    pub fn build_baseline_faulted(self, plan: sim_fault::FaultPlan) -> Box<dyn MdDevice> {
        match self {
            DeviceKind::Cell { .. } => {
                let mut md = CellMd::new(
                    CellBeDevice::paper_blade().with_fault_plan(plan),
                    self.cell_run_config().expect("cell variant"),
                );
                md.device.set_eval_memo(false);
                Box::new(md)
            }
            DeviceKind::CellPpe | DeviceKind::CellAccel { .. } => self.build(),
            DeviceKind::Gpu { model } => {
                let mut md = GpuMdSimulation::new(model.config()).with_fault_plan(plan);
                md.set_eval_memo(false);
                Box::new(md)
            }
            DeviceKind::Mta { mode } => {
                let mut md = MtaMd::new(
                    mta::MtaMdSimulation::paper_mta2().with_fault_plan(plan),
                    mode,
                );
                md.sim.set_eval_memo(false);
                Box::new(md)
            }
            DeviceKind::Opteron => {
                let mut cpu = OpteronCpu::paper_reference().with_fault_plan(plan);
                cpu.set_trace_memo(false);
                Box::new(cpu)
            }
        }
    }
}

impl std::fmt::Display for DeviceKind {
    /// Renders [`DeviceKind::label`] — `Display` and `FromStr` round-trip
    /// through the label grammar, so every printed device name is also a
    /// valid `--device` argument.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A device name that [`DeviceKind::from_str`] does not recognize. The
/// message lists every label the grammar accepts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDeviceKindError {
    pub name: String,
}

impl std::fmt::Display for ParseDeviceKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let known: Vec<String> = DeviceKind::parseable_roster()
            .into_iter()
            .map(|k| k.label())
            .collect();
        write!(
            f,
            "unknown device '{}' (known: {})",
            self.name,
            known.join(", ")
        )
    }
}

impl std::error::Error for ParseDeviceKindError {}

impl std::str::FromStr for DeviceKind {
    type Err = ParseDeviceKindError;

    /// Parses the label grammar emitted by [`DeviceKind::label`]:
    /// `cell-<n>spe` (best-run policy and kernel variant), `cell-ppe`,
    /// `cell-1spe-<variant>` (the Figure 5 probe), `gpu-7900gtx`,
    /// `gpu-6800`, `mta2-full-mt`, `mta2-partial-mt`, and `opteron`. A few
    /// friendly aliases are accepted for CLI ergonomics (`cell`, `gpu`,
    /// `mta-full`, `mta-partial`); they parse to the canonical kind, whose
    /// `Display` is the canonical label.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Friendly aliases first; each maps onto a canonical kind below.
        match s {
            "cell" => return Ok(DeviceKind::cell_best()),
            "gpu" => {
                return Ok(DeviceKind::Gpu {
                    model: GpuModel::GeForce7900Gtx,
                })
            }
            "mta" | "mta-full" => {
                return Ok(DeviceKind::Mta {
                    mode: ThreadingMode::FullyMultithreaded,
                })
            }
            "mta-partial" => {
                return Ok(DeviceKind::Mta {
                    mode: ThreadingMode::PartiallyMultithreaded,
                })
            }
            _ => {}
        }
        // Canonical labels: exactly the strings `label()` can emit.
        for kind in DeviceKind::parseable_roster() {
            if kind.label() == s {
                return Ok(kind);
            }
        }
        Err(ParseDeviceKindError { name: s.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::device::RunOptions;
    use md_core::params::SimConfig;

    /// The full paper roster, one of each label.
    fn roster() -> Vec<DeviceKind> {
        vec![
            DeviceKind::cell_best(),
            DeviceKind::cell_single_spe(),
            DeviceKind::CellPpe,
            DeviceKind::CellAccel {
                variant: SpeKernelVariant::Original,
            },
            DeviceKind::Gpu {
                model: GpuModel::GeForce7900Gtx,
            },
            DeviceKind::Mta {
                mode: ThreadingMode::FullyMultithreaded,
            },
            DeviceKind::Opteron,
        ]
    }

    #[test]
    fn labels_match_built_devices() {
        for kind in roster() {
            assert_eq!(kind.label(), kind.build().label(), "{kind:?}");
        }
    }

    #[test]
    fn cache_tokens_are_unique() {
        let tokens: Vec<String> = roster().into_iter().map(DeviceKind::cache_token).collect();
        for (i, a) in tokens.iter().enumerate() {
            for b in &tokens[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn every_device_runs_through_the_factory() {
        let sim = SimConfig::reduced_lj(108);
        for kind in roster() {
            let steps = if matches!(kind, DeviceKind::CellAccel { .. }) {
                0
            } else {
                1
            };
            let run = kind
                .build()
                .run(&sim, RunOptions::steps(steps))
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert!(run.sim_seconds > 0.0, "{kind:?}");
            assert!(run.energies.total.is_finite(), "{kind:?}");
        }
    }

    #[test]
    fn every_parseable_label_round_trips() {
        // The grammar is finite, so this is exhaustive: each kind the parser
        // can produce displays to a label that parses back to the same kind.
        let all = DeviceKind::parseable_roster();
        assert!(all.len() >= 15, "roster covers the full grammar");
        for kind in all {
            let label = kind.to_string();
            assert_eq!(label, kind.label(), "Display renders label()");
            let back: DeviceKind = label.parse().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(back, kind, "round trip through {label:?}");
        }
    }

    #[test]
    fn friendly_aliases_parse_to_canonical_kinds() {
        for (alias, want) in [
            ("cell", DeviceKind::cell_best()),
            (
                "gpu",
                DeviceKind::Gpu {
                    model: GpuModel::GeForce7900Gtx,
                },
            ),
            (
                "mta-full",
                DeviceKind::Mta {
                    mode: ThreadingMode::FullyMultithreaded,
                },
            ),
            (
                "mta-partial",
                DeviceKind::Mta {
                    mode: ThreadingMode::PartiallyMultithreaded,
                },
            ),
        ] {
            let got: DeviceKind = alias.parse().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(got, want, "{alias}");
            // Re-parsing the canonical display is idempotent.
            assert_eq!(
                got.to_string().parse::<DeviceKind>().unwrap(),
                got,
                "{alias}"
            );
        }
    }

    #[test]
    fn unknown_names_fail_with_the_roster_in_the_message() {
        let err = "gpu-8800".parse::<DeviceKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("gpu-8800"), "{msg}");
        assert!(msg.contains("gpu-7900gtx"), "{msg}");
        assert!(msg.contains("opteron"), "{msg}");
    }

    proptest::proptest! {
        /// Any kind assembled from arbitrary in-range knobs — not just the
        /// canonical constructors — survives Display → FromStr, as long as
        /// its non-label knobs are the canonical ones the parser restores.
        #[test]
        fn arbitrary_knob_kinds_round_trip(
            n_spes in 1usize..9,
            variant_pick in 0usize..6,
            gpu_pick in 0usize..2,
            mta_pick in 0usize..2,
        ) {
            let variant = SpeKernelVariant::ALL[variant_pick];
            let kinds = [
                DeviceKind::cell(CellRunConfig { n_spes, ..CellRunConfig::best() }),
                DeviceKind::CellAccel { variant },
                DeviceKind::Gpu {
                    model: [GpuModel::GeForce7900Gtx, GpuModel::GeForce6800][gpu_pick],
                },
                DeviceKind::Mta {
                    mode: [
                        ThreadingMode::FullyMultithreaded,
                        ThreadingMode::PartiallyMultithreaded,
                    ][mta_pick],
                },
            ];
            for kind in kinds {
                let label = kind.to_string();
                let back: DeviceKind = label
                    .parse()
                    .map_err(|e: ParseDeviceKindError| {
                        proptest::test_runner::TestCaseError::fail(e.to_string())
                    })?;
                proptest::prop_assert_eq!(back, kind);
            }
        }
    }

    #[test]
    fn accel_probe_rejects_time_steps() {
        let sim = SimConfig::reduced_lj(108);
        let mut probe = DeviceKind::CellAccel {
            variant: SpeKernelVariant::SimdAcceleration,
        }
        .build();
        let err = probe.run(&sim, RunOptions::steps(3));
        assert!(matches!(
            err,
            Err(md_core::device::DeviceError::Unsupported(_))
        ));
    }
}
