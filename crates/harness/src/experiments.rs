//! The six experiments of the paper's evaluation section.
//!
//! Every experiment names its machines as [`DeviceKind`] values and drives
//! them through the unified [`MdDevice`](md_core::device::MdDevice) run API —
//! no per-experiment device construction. Fallible experiments return a typed
//! [`HarnessError`] instead of panicking; the figure binaries map errors to
//! nonzero exit codes. With the `fault-inject` feature, [`faulted`] provides
//! supervised variants of every experiment that complete under injected
//! device faults.

use crate::device::{DeviceKind, GpuModel};
use crate::error::HarnessError;
use cell_be::{SpawnPolicy, SpeKernelVariant};
use md_core::device::{DeviceRun, RunOptions};
use md_core::params::SimConfig;
use mta::{MtaConfig, MtaMd, MtaMdSimulation, ThreadingMode};

/// The paper's standard workload: 2048 atoms, 10 time steps.
pub const PAPER_ATOMS: usize = 2048;
pub const PAPER_STEPS: usize = 10;

/// Run one device kind for `steps` from the standard lattice.
fn run_kind(kind: DeviceKind, sim: &SimConfig, steps: usize) -> Result<DeviceRun, HarnessError> {
    kind.build()
        .run(sim, RunOptions::steps(steps))
        .map_err(HarnessError::from)
}

/// Seconds charged to one attribution bucket of a run (0 if absent).
fn attribution_seconds(run: &DeviceRun, name: &str) -> f64 {
    run.attribution
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0.0, |&(_, s)| s)
}

// ---------------------------------------------------------------- Figure 5

/// One bar of Figure 5: an optimization stage and the simulated runtime of
/// one acceleration-function invocation (2048 atoms, 1 SPE).
#[derive(Clone, Debug)]
pub struct Fig5Row {
    pub variant: SpeKernelVariant,
    pub label: &'static str,
    pub seconds: f64,
}

/// Figure 5: SIMD optimization ladder on a single SPE.
pub fn fig5(n_atoms: usize) -> Result<Vec<Fig5Row>, HarnessError> {
    let sim = SimConfig::reduced_lj(n_atoms);
    SpeKernelVariant::ALL
        .iter()
        .map(|&variant| {
            let probe = run_kind(DeviceKind::CellAccel { variant }, &sim, 0)?;
            Ok(Fig5Row {
                variant,
                label: variant.label(),
                seconds: probe.sim_seconds,
            })
        })
        .collect()
}

// ---------------------------------------------------------------- Figure 6

/// One bar pair of Figure 6: total runtime and the part spent launching SPE
/// threads.
#[derive(Clone, Debug)]
pub struct Fig6Case {
    pub label: String,
    pub n_spes: usize,
    pub policy: SpawnPolicy,
    pub total_seconds: f64,
    pub launch_seconds: f64,
}

impl Fig6Case {
    pub fn launch_fraction(&self) -> f64 {
        self.launch_seconds / self.total_seconds
    }

    fn from_run(n_spes: usize, policy: SpawnPolicy, run: &DeviceRun) -> Self {
        let policy_label = match policy {
            SpawnPolicy::RespawnEveryStep => "respawn every time step",
            SpawnPolicy::LaunchOnce => "launch only first time step",
        };
        Fig6Case {
            label: format!(
                "{n_spes} SPE{}, {policy_label}",
                if n_spes > 1 { "s" } else { "" }
            ),
            n_spes,
            policy,
            total_seconds: run.sim_seconds,
            launch_seconds: attribution_seconds(run, "spe_spawn"),
        }
    }
}

/// The four Figure 6 device configurations, policy-major.
fn fig6_grid() -> Vec<(usize, SpawnPolicy)> {
    let mut grid = Vec::new();
    for policy in [SpawnPolicy::RespawnEveryStep, SpawnPolicy::LaunchOnce] {
        for n_spes in [1usize, 8] {
            grid.push((n_spes, policy));
        }
    }
    grid
}

/// Figure 6: SPE thread-launch overhead, {1, 8} SPEs × {respawn, launch-once}.
pub fn fig6(n_atoms: usize, steps: usize) -> Result<Vec<Fig6Case>, HarnessError> {
    let sim = SimConfig::reduced_lj(n_atoms);
    fig6_grid()
        .into_iter()
        .map(|(n_spes, policy)| {
            let kind = DeviceKind::Cell {
                n_spes,
                policy,
                variant: SpeKernelVariant::SimdAcceleration,
            };
            let run = run_kind(kind, &sim, steps)?;
            Ok(Fig6Case::from_run(n_spes, policy, &run))
        })
        .collect()
}

// ---------------------------------------------------------------- Table 1

/// Table 1: total runtime for 2048 atoms, 10 time steps.
#[derive(Clone, Debug)]
pub struct Table1Data {
    pub n_atoms: usize,
    pub steps: usize,
    pub opteron_seconds: f64,
    pub cell_1spe_seconds: f64,
    pub cell_8spe_seconds: f64,
    pub cell_ppe_seconds: f64,
}

impl Table1Data {
    /// Paper: "better than 5x performance improvement relative to the Opteron".
    pub fn speedup_8spe_vs_opteron(&self) -> f64 {
        self.opteron_seconds / self.cell_8spe_seconds
    }
    /// Paper: "26x faster than the PPE alone".
    pub fn speedup_8spe_vs_ppe(&self) -> f64 {
        self.cell_ppe_seconds / self.cell_8spe_seconds
    }
    /// Paper: "even a single SPE just edges out the Opteron".
    pub fn speedup_1spe_vs_opteron(&self) -> f64 {
        self.opteron_seconds / self.cell_1spe_seconds
    }
}

/// Table 1: performance comparison of MD calculations.
pub fn table1(n_atoms: usize, steps: usize) -> Result<Table1Data, HarnessError> {
    let sim = SimConfig::reduced_lj(n_atoms);
    let opteron = run_kind(DeviceKind::Opteron, &sim, steps)?;
    let one = run_kind(DeviceKind::cell_single_spe(), &sim, steps)?;
    let eight = run_kind(DeviceKind::cell_best(), &sim, steps)?;
    let ppe = run_kind(DeviceKind::CellPpe, &sim, steps)?;
    Ok(Table1Data {
        n_atoms,
        steps,
        opteron_seconds: opteron.sim_seconds,
        cell_1spe_seconds: one.sim_seconds,
        cell_8spe_seconds: eight.sim_seconds,
        cell_ppe_seconds: ppe.sim_seconds,
    })
}

// ---------------------------------------------------------------- Figure 7

/// One x-position of Figure 7: runtimes at a given atom count.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    pub n_atoms: usize,
    pub opteron_seconds: f64,
    pub gpu_seconds: f64,
}

/// Figure 7: GPU vs Opteron total runtime across atom counts (GPU startup
/// excluded, per-step transfer costs included — exactly the paper's
/// accounting).
pub fn fig7(atom_counts: &[usize], steps: usize) -> Vec<Fig7Row> {
    atom_counts
        .iter()
        .map(|&n| {
            let sim = SimConfig::reduced_lj(n);
            let opteron = run_kind(DeviceKind::Opteron, &sim, steps)
                .expect("the Opteron reference device is infallible");
            let gpu = run_kind(
                DeviceKind::Gpu {
                    model: GpuModel::GeForce7900Gtx,
                },
                &sim,
                steps,
            )
            .expect("the GPU device model is infallible");
            Fig7Row {
                n_atoms: n,
                opteron_seconds: opteron.sim_seconds,
                gpu_seconds: gpu.sim_seconds,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Figure 8

/// One x-position of Figure 8.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    pub n_atoms: usize,
    pub fully_mt_seconds: f64,
    pub partially_mt_seconds: f64,
}

/// Figure 8: fully vs partially multithreaded MD kernel on the MTA-2.
pub fn fig8(atom_counts: &[usize], steps: usize) -> Vec<Fig8Row> {
    atom_counts
        .iter()
        .map(|&n| {
            let sim = SimConfig::reduced_lj(n);
            let run = |mode| {
                run_kind(DeviceKind::Mta { mode }, &sim, steps)
                    .expect("the MTA device model is infallible")
                    .sim_seconds
            };
            Fig8Row {
                n_atoms: n,
                fully_mt_seconds: run(ThreadingMode::FullyMultithreaded),
                partially_mt_seconds: run(ThreadingMode::PartiallyMultithreaded),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Figure 9

/// One x-position of Figure 9: runtime relative to the 256-atom run.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    pub n_atoms: usize,
    pub mta_relative: f64,
    pub opteron_relative: f64,
}

/// Figure 9: increase in runtime with respect to the 256-atom run, MTA vs
/// Opteron. The paper's point: the MTA's growth tracks the floating-point
/// work; the Opteron's grows faster once the arrays outgrow its caches.
pub fn fig9(atom_counts: &[usize], steps: usize) -> Result<Vec<Fig9Row>, HarnessError> {
    if atom_counts.first() != Some(&256) {
        return Err(HarnessError::InvalidInput(
            "figure 9 normalizes to the 256-atom run; pass counts starting at 256".into(),
        ));
    }
    let runs: Vec<(usize, f64, f64)> = atom_counts
        .iter()
        .map(|&n| {
            let sim = SimConfig::reduced_lj(n);
            let mta = run_kind(
                DeviceKind::Mta {
                    mode: ThreadingMode::FullyMultithreaded,
                },
                &sim,
                steps,
            )?
            .sim_seconds;
            let opt = run_kind(DeviceKind::Opteron, &sim, steps)?.sim_seconds;
            Ok((n, mta, opt))
        })
        .collect::<Result<_, HarnessError>>()?;
    let (_, mta0, opt0) = runs[0];
    Ok(runs
        .iter()
        .map(|&(n, mta, opt)| Fig9Row {
            n_atoms: n,
            mta_relative: mta / mta0,
            opteron_relative: opt / opt0,
        })
        .collect())
}

// ------------------------------------------------- XMT projection (extension)

/// One row of the XMT scaling projection.
#[derive(Clone, Debug)]
pub struct XmtRow {
    pub label: &'static str,
    pub n_processors: usize,
    pub seconds: f64,
}

/// The paper's conclusion anticipates "significant performance gains from
/// the upcoming XMT technology" while §3.3 warns that the XMT loses the
/// MTA-2's uniform memory. This extension projects both: the MTA-2 baseline,
/// the optimistic XMT (placed data), and the locality-blind XMT where 80% of
/// the gather's references go remote.
///
/// The XMT machines are hypothetical configurations outside the paper's
/// evaluation grid, so they are built directly rather than via [`DeviceKind`].
pub fn xmt_projection(n_atoms: usize, steps: usize, processors: &[usize]) -> Vec<XmtRow> {
    use md_core::device::MdDevice;
    let sim = SimConfig::reduced_lj(n_atoms);
    let seconds = |config: MtaConfig| {
        MtaMd::new(
            MtaMdSimulation::new(config),
            ThreadingMode::FullyMultithreaded,
        )
        .run(&sim, RunOptions::steps(steps))
        .expect("the MTA device model is infallible")
        .sim_seconds
    };
    let mut rows = vec![XmtRow {
        label: "MTA-2",
        n_processors: 1,
        seconds: seconds(MtaConfig::paper_mta2()),
    }];
    for &p in processors {
        rows.push(XmtRow {
            label: "XMT (placed data)",
            n_processors: p,
            seconds: seconds(MtaConfig::xmt(p)),
        });
        rows.push(XmtRow {
            label: "XMT (locality-blind)",
            n_processors: p,
            seconds: seconds(MtaConfig::xmt_nonuniform(p, 0.8)),
        });
    }
    rows
}

// ------------------------------------------------- Faulted variants

/// Supervised re-runs of every paper experiment under deterministic fault
/// injection. Each full-MD leg goes through the harness supervisor
/// (checkpoint/retry/fallback, see [`crate::supervisor`]); Cell legs that
/// need the cost breakdown use retry-with-fresh-salt and degrade to a
/// fault-free device when the budget runs out. The point is robustness, not
/// timing fidelity: reported seconds include recovery and backoff.
#[cfg(feature = "fault-inject")]
pub mod faulted {
    use super::*;
    use crate::supervisor::{run_supervised, SupervisedRun, SupervisorConfig};
    use sim_fault::FaultPlan;

    /// A fault plan plus the supervision policy applied to every experiment.
    #[derive(Clone, Copy, Debug)]
    pub struct FaultedExperiments {
        pub plan: FaultPlan,
        pub cfg: SupervisorConfig,
    }

    impl FaultedExperiments {
        pub fn new(seed: u64, rate: f64) -> Self {
            Self {
                plan: FaultPlan::new(seed, rate),
                cfg: SupervisorConfig::default(),
            }
        }

        fn supervise(&self, kind: DeviceKind, sim: &SimConfig, steps: usize) -> SupervisedRun {
            let mut dev = kind.build_faulted(self.plan);
            run_supervised(dev.as_mut(), sim, steps, &self.cfg, None)
        }

        /// Run a fallible device kind, re-salting the fault schedule on each
        /// retry; after the budget, degrade to a fault-free device.
        fn with_retry(
            &self,
            kind: DeviceKind,
            sim: &SimConfig,
            steps: usize,
        ) -> Result<DeviceRun, HarnessError> {
            for attempt in 0..self.cfg.max_attempts {
                let mut dev = kind.build_faulted(self.plan.with_salt(u64::from(attempt)));
                match dev.run(sim, RunOptions::steps(steps)) {
                    Ok(run) => return Ok(run),
                    Err(md_core::device::DeviceError::Failed(msg))
                        if msg.contains("exhausted its retry budget") => {}
                    Err(e) => return Err(e.into()),
                }
            }
            // Graceful degradation: the faults won; finish without them.
            run_kind(kind, sim, steps)
        }

        /// Figure 5 under faults. The single-SPE acceleration timer has no
        /// DMA/mailbox/launch fault sites, so this is the plain experiment —
        /// kept so `fig5`–`fig9` + `table1` all exist in one faulted suite.
        pub fn fig5(&self, n_atoms: usize) -> Result<Vec<Fig5Row>, HarnessError> {
            fig5(n_atoms)
        }

        /// Figure 6 under faults: each of the four cases retries with a
        /// fresh schedule until it completes.
        pub fn fig6(&self, n_atoms: usize, steps: usize) -> Result<Vec<Fig6Case>, HarnessError> {
            let sim = SimConfig::reduced_lj(n_atoms);
            fig6_grid()
                .into_iter()
                .map(|(n_spes, policy)| {
                    let kind = DeviceKind::Cell {
                        n_spes,
                        policy,
                        variant: SpeKernelVariant::SimdAcceleration,
                    };
                    let run = self.with_retry(kind, &sim, steps)?;
                    Ok(Fig6Case::from_run(n_spes, policy, &run))
                })
                .collect()
        }

        /// Table 1 under faults: every leg runs supervised.
        pub fn table1(&self, n_atoms: usize, steps: usize) -> Result<Table1Data, HarnessError> {
            let sim = SimConfig::reduced_lj(n_atoms);
            let opteron = self.supervise(DeviceKind::Opteron, &sim, steps);
            let one = self.supervise(DeviceKind::cell_single_spe(), &sim, steps);
            let eight = self.supervise(DeviceKind::cell_best(), &sim, steps);
            // The PPE-only path has no fault sites; run it plain.
            let ppe = run_kind(DeviceKind::CellPpe, &sim, steps)?;
            Ok(Table1Data {
                n_atoms,
                steps,
                opteron_seconds: opteron.sim_seconds,
                cell_1spe_seconds: one.sim_seconds,
                cell_8spe_seconds: eight.sim_seconds,
                cell_ppe_seconds: ppe.sim_seconds,
            })
        }

        /// Figure 7 under faults: both series supervised at every size.
        pub fn fig7(&self, atom_counts: &[usize], steps: usize) -> Vec<Fig7Row> {
            atom_counts
                .iter()
                .map(|&n| {
                    let sim = SimConfig::reduced_lj(n);
                    let opteron = self.supervise(DeviceKind::Opteron, &sim, steps);
                    let gpu = self.supervise(
                        DeviceKind::Gpu {
                            model: GpuModel::GeForce7900Gtx,
                        },
                        &sim,
                        steps,
                    );
                    Fig7Row {
                        n_atoms: n,
                        opteron_seconds: opteron.sim_seconds,
                        gpu_seconds: gpu.sim_seconds,
                    }
                })
                .collect()
        }

        /// Figure 8 under faults: both threading modes supervised.
        pub fn fig8(&self, atom_counts: &[usize], steps: usize) -> Vec<Fig8Row> {
            atom_counts
                .iter()
                .map(|&n| {
                    let sim = SimConfig::reduced_lj(n);
                    let run = |mode| {
                        self.supervise(DeviceKind::Mta { mode }, &sim, steps)
                            .sim_seconds
                    };
                    Fig8Row {
                        n_atoms: n,
                        fully_mt_seconds: run(ThreadingMode::FullyMultithreaded),
                        partially_mt_seconds: run(ThreadingMode::PartiallyMultithreaded),
                    }
                })
                .collect()
        }

        /// Figure 9 under faults: both series supervised, same 256-atom
        /// normalization rule as the clean experiment.
        pub fn fig9(
            &self,
            atom_counts: &[usize],
            steps: usize,
        ) -> Result<Vec<Fig9Row>, HarnessError> {
            if atom_counts.first() != Some(&256) {
                return Err(HarnessError::InvalidInput(
                    "figure 9 normalizes to the 256-atom run; pass counts starting at 256".into(),
                ));
            }
            let runs: Vec<(usize, f64, f64)> = atom_counts
                .iter()
                .map(|&n| {
                    let sim = SimConfig::reduced_lj(n);
                    let mta = self
                        .supervise(
                            DeviceKind::Mta {
                                mode: ThreadingMode::FullyMultithreaded,
                            },
                            &sim,
                            steps,
                        )
                        .sim_seconds;
                    let opt = self.supervise(DeviceKind::Opteron, &sim, steps).sim_seconds;
                    (n, mta, opt)
                })
                .collect();
            let (_, mta0, opt0) = runs[0];
            Ok(runs
                .iter()
                .map(|&(n, mta, opt)| Fig9Row {
                    n_atoms: n,
                    mta_relative: mta / mta0,
                    opteron_relative: opt / opt0,
                })
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    //! Small-scale smoke tests; the full paper-scale shape checks live in the
    //! workspace integration tests.
    use super::*;

    #[test]
    fn fig5_ladder_monotone() {
        let rows = fig5(256).expect("paper workload fits the local store");
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            assert!(
                w[1].seconds < w[0].seconds,
                "{} !< {}",
                w[1].label,
                w[0].label
            );
        }
    }

    #[test]
    fn fig6_cases_cover_the_grid() {
        let cases = fig6(256, 3).expect("paper workload fits the local store");
        assert_eq!(cases.len(), 4);
        assert!(cases
            .iter()
            .any(|c| c.n_spes == 8 && c.policy == SpawnPolicy::LaunchOnce));
        for c in &cases {
            assert!(c.launch_seconds < c.total_seconds);
        }
    }

    #[test]
    fn fig7_has_both_series() {
        let rows = fig7(&[128, 256], 1);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].opteron_seconds > rows[0].opteron_seconds);
    }

    #[test]
    fn fig9_normalized_to_first() {
        let rows = fig9(&[256, 512], 1).expect("256-atom baseline present");
        assert_eq!(rows[0].mta_relative, 1.0);
        assert_eq!(rows[0].opteron_relative, 1.0);
        assert!(rows[1].mta_relative > 1.0);
    }

    #[test]
    fn fig9_requires_256_baseline() {
        let err = fig9(&[512, 1024], 1).expect_err("baseline rule must be enforced");
        assert!(
            err.to_string().contains("256"),
            "error should name the required baseline: {err}"
        );
    }
}
