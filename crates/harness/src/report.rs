//! Output formatting: aligned console tables and CSV files.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (c, h) in self.header.iter().enumerate() {
            widths[c] = widths[c].max(h.len());
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[c]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Write rows as CSV under `results/` (creating the directory), returning the
/// path written.
pub fn write_csv(
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut body = header.join(",");
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    fs::write(&path, body)?;
    Ok(path)
}

/// Emit one figure artifact the way every per-figure binary does: title,
/// blank line, aligned table, the paper-vs-measured shape-check lines, then
/// the CSV under `results/` with a trailing "wrote <path>" note. Centralizing
/// the sequence keeps the binaries byte-compatible with each other (and with
/// their recorded baselines in EXPERIMENTS.md).
pub fn emit_figure(
    title: &str,
    table: &Table,
    checks: &[String],
    csv_name: &str,
    csv_header: &[&str],
    csv_rows: &[Vec<String>],
) -> io::Result<()> {
    println!("{title}\n");
    println!("{}", table.render());
    println!("paper-vs-measured shape checks:");
    for line in checks {
        println!("{line}");
    }
    let path = write_csv(csv_name, csv_header, csv_rows)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

/// Format seconds compactly.
pub fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1.0".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(secs(2.5), "2.500 s");
        assert_eq!(secs(0.0025), "2.500 ms");
        assert_eq!(secs(2.5e-6), "2.5 µs");
    }
}
