//! Performance-counter collection and time attribution for every device
//! model (DESIGN.md §10).
//!
//! Each `*_metrics` function runs one device with a fresh
//! [`PerfMonitor`] attached, then folds the result into a
//! [`RunMetrics`] record: the device's own cost breakdown becomes a
//! time attribution that sums to `sim_seconds` (within
//! [`sim_perf::ATTRIBUTION_REL_TOL`]), the raw counters are absorbed
//! verbatim, and a handful of derived quantities (utilization,
//! achieved GFLOP/s vs device peak, bytes/flop, stall fractions) are
//! computed from them. The `perf_report` binary renders these records;
//! `results/metrics/*.json` archives them.
//!
//! Counters are observers, never inputs: the numbers here are read off
//! runs whose trajectory and simulated clock are bitwise-identical to
//! uninstrumented runs (asserted by `tests/perf_observability.rs`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::error::HarnessError;
use cell_be::{CellBeDevice, CellRunConfig};
use gpu::GpuMdSimulation;
use md_core::params::SimConfig;
use mta::{MtaMdSimulation, ThreadingMode};
use opteron::OpteronCpu;
use sim_perf::{PerfMonitor, RunMetrics};

/// Each SPE retires up to a 4-wide single-precision FMA per cycle.
const CELL_SPE_FLOPS_PER_CYCLE: f64 = 8.0;
/// Every Opteron demand reference moves one 8-byte word (f64 port).
const OPTERON_BYTES_PER_REF: f64 = 8.0;

/// Counters + attribution for a Cell run at `run.n_spes` SPEs.
pub fn cell_metrics(
    sim: &SimConfig,
    steps: usize,
    run: CellRunConfig,
) -> Result<(RunMetrics, PerfMonitor), HarnessError> {
    let device = CellBeDevice::paper_blade();
    let mut perf = PerfMonitor::new();
    let r = device.run_md_perf(sim, steps, run, &mut perf)?;
    let clk = device.config.clock_hz;
    let mut m = RunMetrics::new(
        format!("cell-{}spe", run.n_spes),
        sim.n_atoms,
        steps,
        r.sim_seconds,
    );
    m.push_attribution("compute", r.breakdown.compute / clk);
    m.push_attribution("dma_wait", r.breakdown.dma / clk);
    m.push_attribution("mailbox", r.breakdown.mailbox / clk);
    m.push_attribution("spe_spawn", r.breakdown.spawn / clk);
    m.push_attribution("ppe_serial", r.breakdown.ppe / clk);
    m.absorb_counters(&perf);
    let flops = m.counter_value("cell.flops.simd") + m.counter_value("cell.flops.scalar");
    let bytes = m.counter_value("cell.dma.bytes_in") + m.counter_value("cell.dma.bytes_out");
    let peak = clk * CELL_SPE_FLOPS_PER_CYCLE * run.n_spes as f64;
    m.derive_rates(flops, peak, bytes);
    let dma_fraction = m.attribution_fraction("dma_wait");
    let launch_fraction = m.attribution_fraction("spe_spawn");
    m.push_derived("dma_fraction", dma_fraction);
    m.push_derived("launch_fraction", launch_fraction);
    Ok((m, perf))
}

/// Counters + attribution for a GeForce 7900 GTX run.
pub fn gpu_metrics(sim: &SimConfig, steps: usize) -> (RunMetrics, PerfMonitor) {
    let device = GpuMdSimulation::geforce_7900gtx();
    let mut perf = PerfMonitor::new();
    let r = device.run_md_perf(sim, steps, &mut perf);
    let b = r.breakdown;
    let mut m = RunMetrics::new("gpu-7900gtx", sim.n_atoms, steps, r.sim_seconds);
    m.push_attribution("shader_compute", b.shader);
    m.push_attribution("pcie_upload", b.upload);
    m.push_attribution("pcie_readback", b.readback);
    m.push_attribution("dispatch_overhead", b.dispatch_overhead);
    m.push_attribution("cpu_serial", b.cpu);
    m.push_attribution("gpu_reduction", b.gpu_reduction);
    m.absorb_counters(&perf);
    let bytes =
        m.counter_value("gpu.pcie.bytes_to_device") + m.counter_value("gpu.pcie.bytes_from_device");
    m.derive_rates(r.total_ops as f64, device.config.ops_per_second(), bytes);
    // The paper's small-N story: everything that exists only because the
    // GPU sits across a bus (transfers, per-dispatch driver overhead)
    // versus the work itself.
    let total = r.sim_seconds.max(f64::MIN_POSITIVE);
    m.push_derived(
        "transfer_overhead_fraction",
        (b.upload + b.readback + b.dispatch_overhead) / total,
    );
    m.push_derived(
        "compute_fraction",
        (b.shader + b.cpu + b.gpu_reduction) / total,
    );
    (m, perf)
}

/// Counters + attribution for the Opteron reference run.
pub fn opteron_metrics(sim: &SimConfig, steps: usize) -> (RunMetrics, PerfMonitor) {
    let mut cpu = OpteronCpu::paper_reference();
    let mut perf = PerfMonitor::new();
    let r = cpu.run_md_perf(sim, steps, &mut perf);
    let clk = cpu.config.clock_hz;
    let mut m = RunMetrics::new("opteron", sim.n_atoms, steps, r.sim_seconds);
    m.push_attribution("compute", r.flop_cycles / clk);
    m.push_attribution("memory_stall", r.memory_cycles / clk);
    m.absorb_counters(&perf);
    let bytes = (r.loads + r.stores) as f64 * OPTERON_BYTES_PER_REF;
    m.derive_rates(r.flops, clk / cpu.config.cycles_per_flop, bytes);
    let stall_fraction = m.attribution_fraction("memory_stall");
    m.push_derived("memory_stall_fraction", stall_fraction);
    m.push_derived("l1_miss_rate", r.memory.l1.miss_rate());
    m.push_derived("l2_miss_rate", r.memory.l2.miss_rate());
    (m, perf)
}

/// Counters + attribution for an MTA-2 run in `mode`.
pub fn mta_metrics(
    sim: &SimConfig,
    steps: usize,
    mode: ThreadingMode,
) -> (RunMetrics, PerfMonitor) {
    let device = MtaMdSimulation::paper_mta2();
    let mut perf = PerfMonitor::new();
    let r = device.run_md_perf(sim, steps, mode, &mut perf);
    let clk = device.processor.config.clock_hz;
    let label = match mode {
        ThreadingMode::FullyMultithreaded => "mta2-full-mt",
        ThreadingMode::PartiallyMultithreaded => "mta2-partial-mt",
    };
    let mut m = RunMetrics::new(label, sim.n_atoms, steps, r.sim_seconds);
    m.push_attribution("issue", r.breakdown.issue / clk);
    m.push_attribution("loop_startup", r.breakdown.startup / clk);
    m.push_attribution("phantom_stall", r.breakdown.stall / clk);
    m.absorb_counters(&perf);
    let peak = clk * device.processor.config.n_processors as f64;
    // The MTA has no off-node transfers in this kernel: all traffic is
    // word-granular loads the cycle model already charges, so bytes = 0.
    m.derive_rates(r.instructions, peak, 0.0);
    let phantom_fraction = m.attribution_fraction("phantom_stall");
    m.push_derived("phantom_fraction", phantom_fraction);
    if r.cycles > 0.0 {
        let occ = m.counter_value("mta.stream.occupancy_cycles");
        m.push_derived("avg_stream_occupancy", occ / r.cycles);
    }
    (m, perf)
}

/// One record per device (Cell best-config, GPU, Opteron, MTA full-MT)
/// at the same workload, in report order.
pub fn standard_metrics(sim: &SimConfig, steps: usize) -> Result<Vec<RunMetrics>, HarnessError> {
    Ok(vec![
        cell_metrics(sim, steps, CellRunConfig::best())?.0,
        gpu_metrics(sim, steps).0,
        opteron_metrics(sim, steps).0,
        mta_metrics(sim, steps, ThreadingMode::FullyMultithreaded).0,
    ])
}

/// Schema version of the `BENCH_seed.json` document.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Render the `BENCH_seed.json` document: simulated seconds for every paper
/// figure/device at the paper's workload sizes, in a stable order. This is
/// the performance baseline future changes diff against — any change to a
/// device's cost model shows up as a drifted number here.
pub fn bench_seed_json(steps: usize) -> Result<String, HarnessError> {
    use crate::experiments::{self, PAPER_ATOMS};
    use std::fmt::Write as _;

    let mut entries: Vec<(&'static str, String, usize, f64)> = Vec::new();

    let t1 = experiments::table1(PAPER_ATOMS, steps)?;
    entries.push(("table1", "opteron".into(), PAPER_ATOMS, t1.opteron_seconds));
    entries.push((
        "table1",
        "cell-ppe".into(),
        PAPER_ATOMS,
        t1.cell_ppe_seconds,
    ));
    entries.push((
        "table1",
        "cell-1spe".into(),
        PAPER_ATOMS,
        t1.cell_1spe_seconds,
    ));
    entries.push((
        "table1",
        "cell-8spe".into(),
        PAPER_ATOMS,
        t1.cell_8spe_seconds,
    ));

    for r in experiments::fig5(PAPER_ATOMS)? {
        let device = format!("cell-1spe-{}", r.label.replace(' ', "-"));
        entries.push(("fig5", device, PAPER_ATOMS, r.seconds));
    }

    for r in experiments::fig7(&[128, 256, 512, 1024, 2048, 4096, 8192], steps) {
        entries.push(("fig7", "opteron".into(), r.n_atoms, r.opteron_seconds));
        entries.push(("fig7", "gpu-7900gtx".into(), r.n_atoms, r.gpu_seconds));
    }

    for r in experiments::fig8(&[256, 512, 1024, 2048], steps) {
        entries.push(("fig8", "mta2-full-mt".into(), r.n_atoms, r.fully_mt_seconds));
        entries.push((
            "fig8",
            "mta2-partial-mt".into(),
            r.n_atoms,
            r.partially_mt_seconds,
        ));
    }

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    let _ = writeln!(
        out,
        "  \"description\": \"Simulated-seconds baseline per paper figure/device; regenerate with the bench_seed binary.\","
    );
    let _ = writeln!(out, "  \"steps\": {steps},");
    out.push_str("  \"benchmarks\": [\n");
    for (i, (figure, device, n_atoms, seconds)) in entries.iter().enumerate() {
        assert!(seconds.is_finite(), "{figure}/{device}: non-finite seconds");
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"figure\": \"{figure}\", \"device\": \"{}\", \"n_atoms\": {n_atoms}, \"sim_seconds\": {seconds}}}{comma}",
            mdea_trace::escape_json_string(device),
        );
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

/// Write one record to `results/metrics/<device>_n<atoms>_s<steps>.json`
/// (schema-versioned; validated by [`sim_perf::validate_run_metrics_json`]).
pub fn write_metrics_json(m: &RunMetrics) -> io::Result<PathBuf> {
    write_metrics_json_in(Path::new("results").join("metrics"), m)
}

/// [`write_metrics_json`] with an explicit output directory (created if
/// missing). Returns the path of the written file.
pub fn write_metrics_json_in(dir: impl AsRef<Path>, m: &RunMetrics) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}_n{}_s{}.json", m.device, m.n_atoms, m.steps));
    fs::write(&path, m.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimConfig {
        SimConfig::reduced_lj(108)
    }

    #[test]
    fn every_device_record_validates() {
        let sim = small();
        for m in standard_metrics(&sim, 3).expect("runs succeed") {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.device));
            assert!(m.sim_seconds > 0.0, "{}", m.device);
            sim_perf::validate_run_metrics_json(&m.to_json())
                .unwrap_or_else(|e| panic!("{}: {e}", m.device));
        }
    }

    #[test]
    fn cell_metrics_carry_flops_and_dma_traffic() {
        let sim = small();
        let (m, _) = cell_metrics(&sim, 2, CellRunConfig::best()).expect("cell run");
        assert_eq!(m.device, "cell-8spe");
        assert!(m.counter_value("cell.flops.simd") > 0.0);
        assert!(m.counter_value("cell.dma.bytes_in") > 0.0);
        assert!(m.derived_value("utilization") > 0.0);
        assert!(m.derived_value("bytes_per_op") > 0.0);
    }

    #[test]
    fn gpu_fractions_cover_the_whole_run() {
        let sim = small();
        let (m, _) = gpu_metrics(&sim, 2);
        let t = m.derived_value("transfer_overhead_fraction");
        let c = m.derived_value("compute_fraction");
        assert!(((t + c) - 1.0).abs() < 1e-9, "{t} + {c} != 1");
    }

    #[test]
    fn opteron_attribution_is_two_buckets() {
        let sim = small();
        let (m, _) = opteron_metrics(&sim, 2);
        let sum = m.attribution_seconds("compute") + m.attribution_seconds("memory_stall");
        assert!((sum - m.sim_seconds).abs() <= 1e-9 * m.sim_seconds);
        let f = m.derived_value("memory_stall_fraction");
        assert!((0.0..=1.0).contains(&f), "stall fraction out of range: {f}");
    }

    #[test]
    fn mta_full_mt_keeps_streams_busy() {
        let sim = small();
        let (m, _) = mta_metrics(&sim, 2, ThreadingMode::FullyMultithreaded);
        let occ = m.derived_value("avg_stream_occupancy");
        assert!(occ > 1.0, "full-MT run should use many streams: {occ}");
        let phantom = m.derived_value("phantom_fraction");
        assert!(phantom < 0.05, "full-MT run should be nearly stall-free");
    }

    #[test]
    fn bench_seed_document_is_valid_json() {
        // Tiny step count: this exercises document shape, not paper scale.
        let json = bench_seed_json(1).expect("bench runs");
        let doc = sim_perf::parse_json(&json).expect("parses");
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_number()),
            Some(f64::from(BENCH_SCHEMA_VERSION))
        );
        let benchmarks = doc
            .get("benchmarks")
            .and_then(|b| b.as_array())
            .expect("benchmarks array");
        assert!(benchmarks.len() >= 20, "got {}", benchmarks.len());
        for b in benchmarks {
            let s = b
                .get("sim_seconds")
                .and_then(|v| v.as_number())
                .expect("numeric seconds");
            assert!(s > 0.0);
        }
    }

    #[test]
    fn metrics_json_round_trips_to_disk() {
        let sim = small();
        let (m, _) = opteron_metrics(&sim, 1);
        let dir = std::env::temp_dir().join("mdea-perf-roundtrip");
        let path = write_metrics_json_in(&dir, &m).expect("write");
        let text = fs::read_to_string(&path).expect("read back");
        sim_perf::validate_run_metrics_json(&text).expect("valid");
        let _ = fs::remove_dir_all(&dir);
    }
}
