//! Performance-counter collection and time attribution for every device
//! model (DESIGN.md §10).
//!
//! One generic path replaces the per-device metric builders: run a
//! [`DeviceKind`] with a fresh [`PerfMonitor`] attached, then let
//! [`md_core::device::collect_metrics`] fold the [`md_core::device::DeviceRun`] into a
//! [`RunMetrics`] record — the device's own cost breakdown becomes a time
//! attribution that sums to `sim_seconds` (within
//! [`sim_perf::ATTRIBUTION_REL_TOL`]), the raw counters are absorbed
//! verbatim, and the device's derived quantities (utilization, achieved
//! GFLOP/s vs peak, bytes/flop, stall fractions) ride along. The
//! `perf_report` binary renders these records; `results/metrics/*.json`
//! archives them.
//!
//! Counters are observers, never inputs: the numbers here are read off
//! runs whose trajectory and simulated clock are bitwise-identical to
//! uninstrumented runs (asserted by `tests/perf_observability.rs`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::device::{DeviceKind, GpuModel};
use crate::error::HarnessError;
use cell_be::CellRunConfig;
use md_core::device::{collect_metrics, HostParallelism, MdDevice, RunOptions};
use md_core::params::SimConfig;
use mta::ThreadingMode;
use sim_obs::RunLedger;
use sim_perf::{PerfMonitor, RunMetrics};

/// Run one device kind with a monitor attached and fold the result into a
/// schema-versioned [`RunMetrics`] record.
pub fn device_metrics(
    kind: DeviceKind,
    sim: &SimConfig,
    steps: usize,
) -> Result<(RunMetrics, PerfMonitor), HarnessError> {
    device_metrics_par(kind, sim, steps, HostParallelism::Serial)
}

/// [`device_metrics`] with the device's simulated lanes executed on host
/// threads. The record is bitwise identical at any `par` (lane maps are
/// order-preserving and every reduction folds serially — DESIGN.md §12),
/// which is what lets the sweep cache serve a result computed at one
/// thread count to a sweep running at another.
pub fn device_metrics_par(
    kind: DeviceKind,
    sim: &SimConfig,
    steps: usize,
    par: HostParallelism,
) -> Result<(RunMetrics, PerfMonitor), HarnessError> {
    let mut dev = kind.build();
    let mut perf = PerfMonitor::new();
    let r = dev.run(
        sim,
        RunOptions::steps(steps)
            .with_perf(&mut perf)
            .with_host_parallelism(par),
    )?;
    let m = collect_metrics(dev.as_ref(), &r, sim.n_atoms, steps, &perf);
    Ok((m, perf))
}

/// Counters + attribution for one fault-free run of a simulated cluster
/// (DESIGN.md §14): the same run-and-collect path as [`device_metrics`],
/// with [`crate::ClusterKind`] as the construction point instead of
/// [`DeviceKind`]. The record's attribution carries the cluster timeline
/// buckets (compute / halo_exchange / all_reduce / recovery).
pub fn cluster_metrics(
    kind: crate::ClusterKind,
    sim: &SimConfig,
    steps: usize,
) -> Result<(RunMetrics, PerfMonitor), HarnessError> {
    let mut cluster = kind.build();
    let mut perf = PerfMonitor::new();
    let r = cluster.run(sim, RunOptions::steps(steps).with_perf(&mut perf))?;
    let m = collect_metrics(&cluster, &r, sim.n_atoms, steps, &perf);
    Ok((m, perf))
}

/// Run one device kind with a [`RunLedger`] attached and the run host-timed
/// from outside. The returned ledger carries the device's phase attribution,
/// counter series, any fault totals, and the two host measurements `obs
/// check` gates on (`host_wall_seconds`, `host_atom_steps_per_s`). The run
/// itself is bitwise-identical to an uninstrumented one (`tests/obs_ledger.rs`).
pub fn device_ledger(
    kind: DeviceKind,
    sim: &SimConfig,
    steps: usize,
) -> Result<(RunMetrics, RunLedger), HarnessError> {
    let mut dev = kind.build();
    let label = dev.label();
    let mut perf = PerfMonitor::new();
    let mut ledger = RunLedger::new(&label, &workload_label(sim, steps));
    let t0 = std::time::Instant::now();
    let r = dev.run(
        sim,
        RunOptions::steps(steps)
            .with_perf(&mut perf)
            .with_ledger(&mut ledger),
    )?;
    let wall = t0.elapsed().as_secs_f64();
    let mut m = collect_metrics(dev.as_ref(), &r, sim.n_atoms, steps, &perf);
    m.record_host_throughput(wall);
    record_host_throughput_ledger(&mut ledger, &label, sim, steps, wall);
    Ok((m, ledger))
}

/// [`device_ledger`] for a simulated cluster: node lifecycle events, per-rank
/// counters, and recovery activity all land in the same ledger format.
pub fn cluster_ledger(
    kind: crate::ClusterKind,
    sim: &SimConfig,
    steps: usize,
) -> Result<(RunMetrics, RunLedger), HarnessError> {
    let mut cluster = kind.build();
    let label = cluster.label();
    let mut perf = PerfMonitor::new();
    let mut ledger = RunLedger::new(&label, &workload_label(sim, steps));
    let t0 = std::time::Instant::now();
    let r = cluster.run(
        sim,
        RunOptions::steps(steps)
            .with_perf(&mut perf)
            .with_ledger(&mut ledger),
    )?;
    let wall = t0.elapsed().as_secs_f64();
    let mut m = collect_metrics(&cluster, &r, sim.n_atoms, steps, &perf);
    m.record_host_throughput(wall);
    record_host_throughput_ledger(&mut ledger, &label, sim, steps, wall);
    Ok((m, ledger))
}

/// The ledger's human-readable workload field, shared by every producer so
/// `obs diff` compares like against like.
pub fn workload_label(sim: &SimConfig, steps: usize) -> String {
    // The scenario token rides in the workload identity so ledgers from
    // different scenarios never alias. The faithful default appends
    // nothing, keeping pre-substrate ledger text byte-identical.
    if sim.scenario == md_core::scenario::ScenarioSpec::default() {
        format!("{} atoms x {} steps", sim.n_atoms, steps)
    } else {
        format!(
            "{} atoms x {} steps @ {}",
            sim.n_atoms,
            steps,
            sim.scenario_token()
        )
    }
}

/// Fold an externally measured wall-clock duration into a ledger as the two
/// host events the `obs check` gate reads. Host events are quarantined from
/// the canonical view, so recording them cannot perturb determinism checks.
pub fn record_host_throughput_ledger(
    ledger: &mut RunLedger,
    source: &str,
    sim: &SimConfig,
    steps: usize,
    wall_seconds: f64,
) {
    ledger.host_value(source, "host_wall_seconds", wall_seconds, "s");
    if wall_seconds > 0.0 {
        let atom_steps = sim.n_atoms as f64 * steps as f64;
        ledger.host_value(
            source,
            "host_atom_steps_per_s",
            atom_steps / wall_seconds,
            "atom_steps/s",
        );
    }
}

/// [`device_metrics`] with the device's simulated lanes executed on host
/// threads, plus a wall-clock measurement folded into the record
/// (`host_wall_seconds` / `host_atom_steps_per_s`).
///
/// The run itself is bitwise identical to [`device_metrics`] at any `par` —
/// only the wall-clock derived metrics differ between hosts. Device
/// simulators never read the host clock (sim-vet's wall-clock-discipline
/// rule), so the harness is the layer that times the run from outside.
pub fn device_metrics_host(
    kind: DeviceKind,
    sim: &SimConfig,
    steps: usize,
    par: HostParallelism,
) -> Result<(RunMetrics, PerfMonitor), HarnessError> {
    let t0 = std::time::Instant::now();
    let (mut m, perf) = device_metrics_par(kind, sim, steps, par)?;
    m.record_host_throughput(t0.elapsed().as_secs_f64());
    Ok((m, perf))
}

/// [`device_metrics_host`] for the wall-clock *baseline* configuration: the
/// device with its physics-once replay memo disabled
/// ([`DeviceKind::build_baseline`]), i.e. the interpretive per-pair path on
/// every evaluation. Simulated results are bitwise identical to
/// [`device_metrics_host`] — only host wall-clock differs — which is what
/// makes these the denominators of the single-run speedups
/// `BENCH_host.json` records.
pub fn device_baseline_metrics_host(
    kind: DeviceKind,
    sim: &SimConfig,
    steps: usize,
    par: HostParallelism,
) -> Result<(RunMetrics, PerfMonitor), HarnessError> {
    let mut dev = kind.build_baseline();
    let mut perf = PerfMonitor::new();
    let t0 = std::time::Instant::now();
    let r = dev.run(
        sim,
        RunOptions::steps(steps)
            .with_perf(&mut perf)
            .with_host_parallelism(par),
    )?;
    let mut m = collect_metrics(dev.as_ref(), &r, sim.n_atoms, steps, &perf);
    m.record_host_throughput(t0.elapsed().as_secs_f64());
    Ok((m, perf))
}

/// [`device_baseline_metrics_host`] for the Opteron reference (the original
/// memo-off baseline; kept as a named shorthand for its callers).
pub fn opteron_baseline_metrics_host(
    sim: &SimConfig,
    steps: usize,
) -> Result<(RunMetrics, PerfMonitor), HarnessError> {
    device_baseline_metrics_host(DeviceKind::Opteron, sim, steps, HostParallelism::Serial)
}

/// Counters + attribution for a Cell run at `run.n_spes` SPEs.
pub fn cell_metrics(
    sim: &SimConfig,
    steps: usize,
    run: CellRunConfig,
) -> Result<(RunMetrics, PerfMonitor), HarnessError> {
    device_metrics(DeviceKind::cell(run), sim, steps)
}

/// Counters + attribution for a GeForce 7900 GTX run.
pub fn gpu_metrics(sim: &SimConfig, steps: usize) -> (RunMetrics, PerfMonitor) {
    device_metrics(
        DeviceKind::Gpu {
            model: GpuModel::GeForce7900Gtx,
        },
        sim,
        steps,
    )
    .expect("the GPU device model is infallible")
}

/// Counters + attribution for the Opteron reference run.
pub fn opteron_metrics(sim: &SimConfig, steps: usize) -> (RunMetrics, PerfMonitor) {
    device_metrics(DeviceKind::Opteron, sim, steps)
        .expect("the Opteron reference device is infallible")
}

/// Counters + attribution for an MTA-2 run in `mode`.
pub fn mta_metrics(
    sim: &SimConfig,
    steps: usize,
    mode: ThreadingMode,
) -> (RunMetrics, PerfMonitor) {
    device_metrics(DeviceKind::Mta { mode }, sim, steps)
        .expect("the MTA device model is infallible")
}

/// One record per device (Cell best-config, GPU, Opteron, MTA full-MT)
/// at the same workload, in report order.
pub fn standard_metrics(sim: &SimConfig, steps: usize) -> Result<Vec<RunMetrics>, HarnessError> {
    Ok(vec![
        cell_metrics(sim, steps, CellRunConfig::best())?.0,
        gpu_metrics(sim, steps).0,
        opteron_metrics(sim, steps).0,
        mta_metrics(sim, steps, ThreadingMode::FullyMultithreaded).0,
    ])
}

/// Write one record to `results/metrics/<device>_n<atoms>_s<steps>.json`
/// (schema-versioned; validated by [`sim_perf::validate_run_metrics_json`]).
pub fn write_metrics_json(m: &RunMetrics) -> io::Result<PathBuf> {
    write_metrics_json_in(Path::new("results").join("metrics"), m)
}

/// [`write_metrics_json`] with an explicit output directory (created if
/// missing). Returns the path of the written file.
pub fn write_metrics_json_in(dir: impl AsRef<Path>, m: &RunMetrics) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}_n{}_s{}.json", m.device, m.n_atoms, m.steps));
    fs::write(&path, m.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimConfig {
        SimConfig::reduced_lj(108)
    }

    #[test]
    fn every_device_record_validates() {
        let sim = small();
        for m in standard_metrics(&sim, 3).expect("runs succeed") {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.device));
            assert!(m.sim_seconds > 0.0, "{}", m.device);
            sim_perf::validate_run_metrics_json(&m.to_json())
                .unwrap_or_else(|e| panic!("{}: {e}", m.device));
        }
    }

    #[test]
    fn cell_metrics_carry_flops_and_dma_traffic() {
        let sim = small();
        let (m, _) = cell_metrics(&sim, 2, CellRunConfig::best()).expect("cell run");
        assert_eq!(m.device, "cell-8spe");
        assert!(m.counter_value("cell.flops.simd") > 0.0);
        assert!(m.counter_value("cell.dma.bytes_in") > 0.0);
        assert!(m.derived_value("utilization") > 0.0);
        assert!(m.derived_value("bytes_per_op") > 0.0);
    }

    #[test]
    fn gpu_fractions_cover_the_whole_run() {
        let sim = small();
        let (m, _) = gpu_metrics(&sim, 2);
        let t = m.derived_value("transfer_overhead_fraction");
        let c = m.derived_value("compute_fraction");
        assert!(((t + c) - 1.0).abs() < 1e-9, "{t} + {c} != 1");
    }

    #[test]
    fn opteron_attribution_is_two_buckets() {
        let sim = small();
        let (m, _) = opteron_metrics(&sim, 2);
        let sum = m.attribution_seconds("compute") + m.attribution_seconds("memory_stall");
        assert!((sum - m.sim_seconds).abs() <= 1e-9 * m.sim_seconds);
        let f = m.derived_value("memory_stall_fraction");
        assert!((0.0..=1.0).contains(&f), "stall fraction out of range: {f}");
    }

    #[test]
    fn mta_full_mt_keeps_streams_busy() {
        let sim = small();
        let (m, _) = mta_metrics(&sim, 2, ThreadingMode::FullyMultithreaded);
        let occ = m.derived_value("avg_stream_occupancy");
        assert!(occ > 1.0, "full-MT run should use many streams: {occ}");
        let phantom = m.derived_value("phantom_fraction");
        assert!(phantom < 0.05, "full-MT run should be nearly stall-free");
    }

    #[test]
    fn host_parallel_metrics_match_serial_and_carry_throughput() {
        let sim = small();
        for kind in [DeviceKind::Opteron, DeviceKind::cell_best()] {
            let (serial, _) = device_metrics(kind, &sim, 2).expect("serial run");
            let (par, _) = device_metrics_host(kind, &sim, 2, HostParallelism::Threads(2))
                .expect("threaded run");
            // Host threads only change wall-clock, never the simulation.
            assert_eq!(par.sim_seconds, serial.sim_seconds, "{}", serial.device);
            assert_eq!(par.attribution, serial.attribution, "{}", serial.device);
            assert_eq!(par.counters, serial.counters, "{}", serial.device);
            assert!(par.derived_value("host_wall_seconds") > 0.0);
            assert!(par.derived_value("host_atom_steps_per_s") > 0.0);
            par.validate().expect("record stays valid");
        }
    }

    #[test]
    fn metrics_json_round_trips_to_disk() {
        let sim = small();
        let (m, _) = opteron_metrics(&sim, 1);
        let dir = std::env::temp_dir().join("mdea-perf-roundtrip");
        let path = write_metrics_json_in(&dir, &m).expect("write");
        let text = fs::read_to_string(&path).expect("read back");
        sim_perf::validate_run_metrics_json(&text).expect("valid");
        let _ = fs::remove_dir_all(&dir);
    }
}
