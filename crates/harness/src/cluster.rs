//! Cluster roster integration: name a cluster the way [`DeviceKind`] names
//! a device, and supervise it with full recovery reporting (DESIGN.md §14).
//!
//! [`ClusterKind`] is the copyable description (`which device × how many
//! nodes × how many spares`) the sweep engine and binaries hold;
//! [`ClusterKind::build`] is the single construction point, exactly like
//! [`DeviceKind::build`]. [`run_cluster_supervised`] wraps the supervisor
//! around a built [`ClusterMd`] and folds the cluster's own membership log
//! into a [`ClusterRecovery`] record, which serializes to the JSON artifact
//! the CI `cluster-recovery` job uploads.

use crate::device::DeviceKind;
use crate::supervisor::{run_supervised, RecoveryEvent, SupervisedRun, SupervisorConfig};
use md_core::params::SimConfig;
use mdea_trace::Tracer;
use sim_cluster::{ClusterMd, ClusterPolicy, InterconnectModel, NodeEvent};

/// A named cluster configuration: plain, copyable data like [`DeviceKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterKind {
    /// The per-node device. Must support checkpoint resume, which every
    /// roster device except the PPE-only baseline and the Figure 5 probe
    /// does.
    pub device: DeviceKind,
    /// Initial member count (also the fixed slab count).
    pub nodes: usize,
    /// Warm spares provisioned for migration targets.
    pub spares: usize,
}

impl ClusterKind {
    /// A cluster of `nodes` members with the default one warm spare.
    pub fn new(device: DeviceKind, nodes: usize) -> Self {
        Self {
            device,
            nodes,
            spares: ClusterPolicy::default_policy().spares,
        }
    }

    /// Same, with an explicit spare count.
    #[must_use]
    pub fn with_spares(mut self, spares: usize) -> Self {
        self.spares = spares;
        self
    }

    /// The cluster's metric/cache label — identical to what the built
    /// [`ClusterMd`] returns from its `label()`.
    pub fn label(self) -> String {
        format!("cluster-{}x-{}", self.nodes, self.device.label())
    }

    /// Stable text encoding of the full cluster identity for cache keys:
    /// topology knobs, *every* interconnect cost-model constant, *every*
    /// recovery-policy constant, and the inner device's own token. The
    /// `cache-token` lint rule enforces completeness, exactly as for
    /// [`DeviceKind::cache_token`].
    pub fn cache_token(self) -> String {
        let net = InterconnectModel::paper_2006();
        let pol = ClusterPolicy::default_policy();
        format!(
            "cluster:nodes={},spares={},latency_s={},bandwidth_bytes_per_s={},halo_bytes_per_atom={},allreduce_payload_bytes={},migration_bytes_per_atom={},max_halo_resends={},slow_node_factor={},inner={}",
            self.nodes,
            self.spares,
            net.latency_s,
            net.bandwidth_bytes_per_s,
            net.halo_bytes_per_atom,
            net.allreduce_payload_bytes,
            net.migration_bytes_per_atom,
            pol.max_halo_resends,
            pol.slow_node_factor,
            self.device.cache_token(),
        )
    }

    /// Construct the simulated cluster: `nodes + spares` identically
    /// configured devices from the [`DeviceKind`] factory, the paper-era
    /// interconnect, and the default recovery policy with this kind's spare
    /// count.
    ///
    /// # Panics
    ///
    /// The PPE-only baseline and the Figure 5 probe cannot resume from
    /// checkpoints, so they cannot be cluster nodes.
    pub fn build(self) -> ClusterMd {
        assert!(
            !matches!(
                self.device,
                DeviceKind::CellPpe | DeviceKind::CellAccel { .. }
            ),
            "{:?} does not support checkpoint resume and cannot be a cluster node",
            self.device
        );
        let policy = ClusterPolicy {
            spares: self.spares,
            ..ClusterPolicy::default_policy()
        };
        ClusterMd::new(
            (0..self.nodes).map(|_| self.device.build()).collect(),
            (0..self.spares).map(|_| self.device.build()).collect(),
            InterconnectModel::paper_2006(),
            policy,
        )
    }

    /// [`ClusterKind::build`] with the node-granularity fault schedule
    /// armed. Node-level faults live entirely in the cluster model, so no
    /// feature gate is needed (device-level injection still requires
    /// `fault-inject`).
    pub fn build_with_node_faults(self, plan: sim_fault::FaultPlan) -> ClusterMd {
        self.build().with_node_fault_plan(plan)
    }
}

/// A supervised cluster run plus the cluster's own recovery story: the
/// supervisor's segment/restore log joined with the membership events the
/// engine recorded (kills, partitions, migrations, re-provisioning).
#[derive(Clone, Debug)]
pub struct ClusterRecovery {
    pub run: SupervisedRun,
    /// Node-level events in occurrence order, across all attempts.
    pub node_events: Vec<NodeEvent>,
    /// Members alive at the end of the run.
    pub alive_nodes: usize,
    /// Member slots ever provisioned (initial nodes + joined spares).
    pub total_nodes: usize,
    /// Warm spares still unused.
    pub spares_left: usize,
    /// Domain migrations performed.
    pub migrations: u64,
}

impl ClusterRecovery {
    /// Did the run survive node-level trouble without degrading?
    pub fn recovered_cleanly(&self) -> bool {
        !self.run.report.fell_back
    }

    /// Serialize the recovery story as a small self-contained JSON document
    /// (the CI `cluster-recovery` artifact). Hand-rolled like the rest of
    /// the workspace's JSON writers — no serde in the tree.
    pub fn to_json(&self) -> String {
        let r = &self.run.report;
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"mdea.cluster_recovery.v1\",\n");
        out.push_str(&format!("  \"sim_seconds\": {},\n", self.run.sim_seconds));
        out.push_str(&format!(
            "  \"final_step\": {},\n  \"final_total_energy\": {},\n",
            self.run.checkpoint.step, self.run.energies.total
        ));
        out.push_str(&format!(
            "  \"attempts\": {}, \"checkpoints\": {}, \"restores\": {}, \"watchdog_timeouts\": {}, \"fell_back\": {},\n",
            r.attempts, r.checkpoints, r.restores, r.watchdog_timeouts, r.fell_back
        ));
        out.push_str(&format!(
            "  \"faults\": {{\"injected\": {}, \"retries\": {}, \"exhausted\": {}, \"extra_seconds\": {}}},\n",
            r.faults.injected, r.faults.retries, r.faults.exhausted, r.faults.extra_seconds
        ));
        out.push_str(&format!(
            "  \"alive_nodes\": {}, \"total_nodes\": {}, \"spares_left\": {}, \"migrations\": {},\n",
            self.alive_nodes, self.total_nodes, self.spares_left, self.migrations
        ));
        out.push_str("  \"supervisor_events\": [\n");
        let events: Vec<String> = r
            .events
            .iter()
            .map(|e| format!("    {}", supervisor_event_json(e)))
            .collect();
        out.push_str(&events.join(",\n"));
        out.push_str("\n  ],\n  \"node_events\": [\n");
        let nevents: Vec<String> = self
            .node_events
            .iter()
            .map(|e| format!("    {}", node_event_json(e)))
            .collect();
        out.push_str(&nevents.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn supervisor_event_json(e: &RecoveryEvent) -> String {
    match e {
        RecoveryEvent::Checkpoint { step } => {
            format!("{{\"event\": \"checkpoint\", \"step\": {step}}}")
        }
        RecoveryEvent::Restore {
            step,
            attempt,
            cause,
        } => format!(
            "{{\"event\": \"restore\", \"step\": {step}, \"attempt\": {attempt}, \"cause\": \"{}\"}}",
            json_escape(cause)
        ),
        RecoveryEvent::WatchdogTimeout { step, attempt } => format!(
            "{{\"event\": \"watchdog_timeout\", \"step\": {step}, \"attempt\": {attempt}}}"
        ),
        RecoveryEvent::Fallback { step, reason } => format!(
            "{{\"event\": \"fallback\", \"step\": {step}, \"reason\": \"{}\"}}",
            json_escape(reason)
        ),
    }
}

fn node_event_json(e: &NodeEvent) -> String {
    match e {
        NodeEvent::Killed { node, step, cause } => format!(
            "{{\"event\": \"killed\", \"node\": {node}, \"step\": {step}, \"cause\": \"{}\"}}",
            json_escape(cause)
        ),
        NodeEvent::Partitioned { node, step } => {
            format!("{{\"event\": \"partitioned\", \"node\": {node}, \"step\": {step}}}")
        }
        NodeEvent::SlowNode { node, step } => {
            format!("{{\"event\": \"slow_node\", \"node\": {node}, \"step\": {step}}}")
        }
        NodeEvent::Reprovisioned { node, step } => {
            format!("{{\"event\": \"reprovisioned\", \"node\": {node}, \"step\": {step}}}")
        }
        NodeEvent::Migrated {
            from,
            to,
            atoms,
            step,
        } => format!(
            "{{\"event\": \"migrated\", \"from\": {from}, \"to\": {to}, \"atoms\": {atoms}, \"step\": {step}}}"
        ),
    }
}

/// Supervise a cluster through `steps` time steps: the checkpoint/restore/
/// retry machinery of [`run_supervised`] drives the [`ClusterMd`] like any
/// single device (node crashes surface as failed segments; `resalt` runs
/// the membership repair), then the cluster's membership log is joined into
/// the returned [`ClusterRecovery`].
///
/// Take the cluster by value or pre-script kills on it first — for example
/// `cluster.kill_node_at_step(2, 5)` for the CI demo — then pass it in.
pub fn run_cluster_supervised(
    cluster: &mut ClusterMd,
    sim: &SimConfig,
    steps: usize,
    cfg: &SupervisorConfig,
    tracer: Option<&mut Tracer>,
) -> ClusterRecovery {
    let run = run_supervised(cluster, sim, steps, cfg, tracer);
    ClusterRecovery {
        run,
        node_events: cluster.events().to_vec(),
        alive_nodes: cluster.alive_nodes(),
        total_nodes: cluster.total_nodes(),
        spares_left: cluster.spares_left(),
        migrations: cluster.migrations(),
    }
}

#[cfg(test)]
// Bitwise f64 equality is the determinism invariant under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use md_core::device::{MdDevice, RunOptions};

    fn small() -> SimConfig {
        SimConfig::reduced_lj(108)
    }

    #[test]
    fn labels_and_tokens_match_built_clusters() {
        for kind in [
            ClusterKind::new(DeviceKind::Opteron, 4),
            ClusterKind::new(DeviceKind::cell_best(), 2),
            ClusterKind::new(
                DeviceKind::Mta {
                    mode: mta::ThreadingMode::FullyMultithreaded,
                },
                3,
            ),
        ] {
            assert_eq!(kind.label(), kind.build().label(), "{kind:?}");
            assert!(kind.cache_token().contains(&kind.device.cache_token()));
        }
        // Different topologies must never share a cache key.
        let a = ClusterKind::new(DeviceKind::Opteron, 4).cache_token();
        let b = ClusterKind::new(DeviceKind::Opteron, 8).cache_token();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot be a cluster node")]
    fn ppe_baseline_is_rejected_as_a_node() {
        let _ = ClusterKind::new(DeviceKind::CellPpe, 2).build();
    }

    #[test]
    fn supervised_cluster_matches_single_device_bitwise() {
        let sim = small();
        let cfg = SupervisorConfig::default();
        let mut single = DeviceKind::Opteron.build();
        let plain = single
            .run(&sim, RunOptions::steps(6))
            .expect("opteron runs");
        let mut cluster = ClusterKind::new(DeviceKind::Opteron, 4).build();
        let rec = run_cluster_supervised(&mut cluster, &sim, 6, &cfg, None);
        assert!(rec.recovered_cleanly());
        assert_eq!(rec.run.checkpoint.positions, plain.checkpoint.positions);
        assert_eq!(rec.run.checkpoint.velocities, plain.checkpoint.velocities);
        assert_eq!(rec.run.energies.total, plain.energies.total);
        // The cluster timeline pays interconnect overhead on top.
        assert!(rec.run.sim_seconds > 0.0);
    }

    #[test]
    fn killed_node_recovers_bit_exactly() {
        let sim = small();
        let cfg = SupervisorConfig::default();

        let mut clean = ClusterKind::new(DeviceKind::Opteron, 4).build();
        let clean_rec = run_cluster_supervised(&mut clean, &sim, 6, &cfg, None);

        let mut faulted = ClusterKind::new(DeviceKind::Opteron, 4).build();
        faulted.kill_node_at_step(2, 3);
        let rec = run_cluster_supervised(&mut faulted, &sim, 6, &cfg, None);

        assert!(
            rec.recovered_cleanly(),
            "events: {:?}",
            rec.run.report.events
        );
        assert_eq!(
            rec.run.checkpoint.positions,
            clean_rec.run.checkpoint.positions
        );
        assert_eq!(rec.run.energies.total, clean_rec.run.energies.total);
        assert!(rec.run.sim_seconds > clean_rec.run.sim_seconds);
        assert_eq!(rec.migrations, 1);
        assert!(rec
            .node_events
            .iter()
            .any(|e| matches!(e, NodeEvent::Killed { node: 2, .. })));
        assert_eq!(rec.run.report.restores, 1);
    }

    #[test]
    fn recovery_json_is_well_formed_enough() {
        let sim = small();
        let mut cluster = ClusterKind::new(DeviceKind::Opteron, 2).build();
        cluster.kill_node_at_step(0, 1);
        let rec = run_cluster_supervised(&mut cluster, &sim, 4, &SupervisorConfig::default(), None);
        let json = rec.to_json();
        assert!(json.contains("\"schema\": \"mdea.cluster_recovery.v1\""));
        assert!(json.contains("\"event\": \"killed\""));
        assert!(json.contains("\"event\": \"migrated\""));
        assert!(json.contains("\"event\": \"restore\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains("\n\n"));
    }
}
