//! Regenerates Figure 8: fully vs partially multithreaded MD kernel on the
//! Cray MTA-2.

use harness::report::{secs, Table};
use harness::{experiments, write_csv};

fn main() {
    let counts = [256usize, 512, 1024, 2048, 4096];
    let steps = experiments::PAPER_STEPS;
    println!(
        "Figure 8 — fully vs partially multithreaded MD kernel on the MTA-2 ({steps} steps)\n"
    );
    let rows = experiments::fig8(&counts, steps);

    let mut table = Table::new(&[
        "atoms",
        "fully multithreaded",
        "partially multithreaded",
        "gap",
    ]);
    let mut csv = Vec::new();
    for r in &rows {
        table.row(&[
            r.n_atoms.to_string(),
            secs(r.fully_mt_seconds),
            secs(r.partially_mt_seconds),
            format!("{:.1}x", r.partially_mt_seconds / r.fully_mt_seconds),
        ]);
        csv.push(vec![
            r.n_atoms.to_string(),
            format!("{:.9}", r.fully_mt_seconds),
            format!("{:.9}", r.partially_mt_seconds),
        ]);
    }
    println!("{}", table.render());

    let first_gap = rows[0].partially_mt_seconds - rows[0].fully_mt_seconds;
    let last_gap =
        rows.last().unwrap().partially_mt_seconds - rows.last().unwrap().fully_mt_seconds;
    println!("paper-vs-measured shape checks:");
    println!(
        "  fully MT faster everywhere: {}",
        rows.iter()
            .all(|r| r.fully_mt_seconds < r.partially_mt_seconds)
    );
    println!(
        "  performance difference grows with atoms: {:.3} s -> {:.3} s \
         (paper: 'increases with the increase in the number of atoms')",
        first_gap, last_gap
    );

    if let Ok(path) = write_csv(
        "fig8_mta_threading",
        &["atoms", "fully_mt_seconds", "partially_mt_seconds"],
        &csv,
    ) {
        println!("\nwrote {}", path.display());
    }
}
