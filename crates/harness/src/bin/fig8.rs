//! Regenerates Figure 8: fully vs partially multithreaded MD kernel on the
//! Cray MTA-2.

use harness::report::{secs, Table};
use harness::{experiments, write_csv, HarnessError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig8: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), HarnessError> {
    let counts = [256usize, 512, 1024, 2048, 4096];
    let steps = experiments::PAPER_STEPS;
    println!(
        "Figure 8 — fully vs partially multithreaded MD kernel on the MTA-2 ({steps} steps)\n"
    );
    let rows = experiments::fig8(&counts, steps);

    let mut table = Table::new(&[
        "atoms",
        "fully multithreaded",
        "partially multithreaded",
        "gap",
    ]);
    let mut csv = Vec::new();
    for r in &rows {
        table.row(&[
            r.n_atoms.to_string(),
            secs(r.fully_mt_seconds),
            secs(r.partially_mt_seconds),
            format!("{:.1}x", r.partially_mt_seconds / r.fully_mt_seconds),
        ]);
        csv.push(vec![
            r.n_atoms.to_string(),
            format!("{:.9}", r.fully_mt_seconds),
            format!("{:.9}", r.partially_mt_seconds),
        ]);
    }
    println!("{}", table.render());

    let (first, last) = match (rows.first(), rows.last()) {
        (Some(f), Some(l)) => (f, l),
        _ => return Err(HarnessError::MissingRow("any atom-count row")),
    };
    let first_gap = first.partially_mt_seconds - first.fully_mt_seconds;
    let last_gap = last.partially_mt_seconds - last.fully_mt_seconds;
    println!("paper-vs-measured shape checks:");
    println!(
        "  fully MT faster everywhere: {}",
        rows.iter()
            .all(|r| r.fully_mt_seconds < r.partially_mt_seconds)
    );
    println!(
        "  performance difference grows with atoms: {:.3} s -> {:.3} s \
         (paper: 'increases with the increase in the number of atoms')",
        first_gap, last_gap
    );

    let path = write_csv(
        "fig8_mta_threading",
        &["atoms", "fully_mt_seconds", "partially_mt_seconds"],
        &csv,
    )?;
    println!("\nwrote {}", path.display());
    Ok(())
}
