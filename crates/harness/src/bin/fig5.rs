//! Regenerates Figure 5: SIMD optimization ladder for the MD kernel on one
//! SPE (runtime of the acceleration computation, 2048 atoms).

use harness::report::{secs, Table};
use harness::{experiments, write_csv, HarnessError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig5: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), HarnessError> {
    let n = experiments::PAPER_ATOMS;
    println!("Figure 5 — SIMD optimization for the MD kernel ({n} atoms, 1 SPE, 1 force eval)\n");
    let rows = experiments::fig5(n)?;

    let mut table = Table::new(&["optimization stage", "simulated runtime", "vs original"]);
    let base = rows
        .first()
        .ok_or(HarnessError::MissingRow("the original (scalar) stage"))?
        .seconds;
    let mut csv = Vec::new();
    for r in &rows {
        table.row(&[
            r.label.to_string(),
            secs(r.seconds),
            format!("{:.2}x", base / r.seconds),
        ]);
        csv.push(vec![r.label.to_string(), format!("{:.9}", r.seconds)]);
    }
    println!("{}", table.render());

    if rows.len() < 6 {
        return Err(HarnessError::MissingRow("all six optimization stages"));
    }
    let v = |i: usize| rows[i].seconds;
    println!("paper-vs-measured shape checks:");
    println!(
        "  copysign gives a small speedup:            {:.1}%  (paper: 'small')",
        (v(0) / v(1) - 1.0) * 100.0
    );
    println!(
        "  SIMD unit cell vs original:                {:.2}x  (paper: 'over 1.5x')",
        v(0) / v(2)
    );
    println!(
        "  SIMD direction improvement:                {:.0}%  (paper: 21%)",
        (v(2) / v(3) - 1.0) * 100.0
    );
    println!(
        "  SIMD length improvement:                   {:.0}%  (paper: 15%)",
        (v(3) / v(4) - 1.0) * 100.0
    );
    println!(
        "  SIMD acceleration improvement:             {:.1}%  (paper: ~3%, 'very little runtime')",
        (v(4) / v(5) - 1.0) * 100.0
    );

    let path = write_csv("fig5_simd_ladder", &["stage", "seconds"], &csv)?;
    println!("\nwrote {}", path.display());
    Ok(())
}
