//! Regenerates Figure 9: increase in runtime relative to the 256-atom run,
//! MTA-2 vs Opteron.

use harness::report::Table;
use harness::{experiments, write_csv, HarnessError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig9: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), HarnessError> {
    let counts = [256usize, 512, 1024, 2048, 4096, 8192];
    let steps = experiments::PAPER_STEPS;
    println!("Figure 9 — increase in runtime with respect to the 256-atom run ({steps} steps)\n");
    let rows = experiments::fig9(&counts, steps)?;

    let mut table = Table::new(&["atoms", "MTA (relative)", "Opteron (relative)"]);
    let mut csv = Vec::new();
    for r in &rows {
        table.row(&[
            r.n_atoms.to_string(),
            format!("{:.1}", r.mta_relative),
            format!("{:.1}", r.opteron_relative),
        ]);
        csv.push(vec![
            r.n_atoms.to_string(),
            format!("{:.4}", r.mta_relative),
            format!("{:.4}", r.opteron_relative),
        ]);
    }
    println!("{}", table.render());

    // The two curves track each other while the Opteron's arrays still fit
    // in cache; the divergence appears "as the array sizes become larger
    // than the cache capacities" (24·N bytes > 64 KB L1 at N ≳ 2700).
    let last = rows
        .last()
        .ok_or(HarnessError::MissingRow("any atom-count row"))?;
    println!("paper-vs-measured shape checks:");
    println!(
        "  Opteron grows faster than MTA past cache capacity: {}",
        rows.iter()
            .filter(|r| r.n_atoms >= 4096)
            .all(|r| r.opteron_relative > r.mta_relative)
    );
    println!(
        "  at {} atoms: Opteron x{:.0} vs MTA x{:.0} \
         (paper: 'runtime on the Opteron increases at a relatively faster rate \
         ... the effect of cache misses')",
        last.n_atoms, last.opteron_relative, last.mta_relative
    );
    println!("  MTA growth tracks flop growth (proportional to N² work), no cache knee");

    let path = write_csv(
        "fig9_relative_scaling",
        &["atoms", "mta_relative", "opteron_relative"],
        &csv,
    )?;
    println!("\nwrote {}", path.display());
    Ok(())
}
