//! Runs every experiment in sequence (Figure 5, 6, 7, 8, 9 and Table 1),
//! printing each regenerated artifact. This is the one-command reproduction
//! of the paper's evaluation section; see EXPERIMENTS.md for the recorded
//! paper-vs-measured comparison.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for name in [
        "fig5",
        "fig6",
        "table1",
        "fig7",
        "fig8",
        "fig9",
        "xmt_projection",
    ] {
        let path = dir.join(name);
        println!("\n{0}\n▶ {name}\n{0}", "=".repeat(72));
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        assert!(status.success(), "{name} exited with {status}");
    }
    println!("\nAll experiments complete. CSVs are under results/.");
}
