//! Regenerates Table 1: performance comparison of the MD calculation,
//! Opteron vs Cell (1 SPE / 8 SPEs / PPE only), 2048 atoms, 10 time steps.

use harness::report::{secs, Table};
use harness::{experiments, write_csv, HarnessError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("table1: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), HarnessError> {
    let (n, steps) = (experiments::PAPER_ATOMS, experiments::PAPER_STEPS);
    println!("Table 1 — performance comparison of MD calculations ({n} atoms, {steps} steps)\n");
    let t = experiments::table1(n, steps)?;

    let mut table = Table::new(&["system", "simulated runtime"]);
    table.row(&["Opteron (2.2 GHz)".into(), secs(t.opteron_seconds)]);
    table.row(&["Cell, 1 SPE".into(), secs(t.cell_1spe_seconds)]);
    table.row(&["Cell, 8 SPEs".into(), secs(t.cell_8spe_seconds)]);
    table.row(&["Cell, PPE only".into(), secs(t.cell_ppe_seconds)]);
    println!("{}", table.render());

    println!("paper-vs-measured shape checks:");
    println!(
        "  1 SPE vs Opteron:   {:.2}x  (paper: 'just edges out the Opteron')",
        t.speedup_1spe_vs_opteron()
    );
    println!(
        "  8 SPEs vs Opteron:  {:.2}x  (paper: 'better than 5x')",
        t.speedup_8spe_vs_opteron()
    );
    println!(
        "  8 SPEs vs PPE only: {:.1}x  (paper: '26x faster than the PPE alone')",
        t.speedup_8spe_vs_ppe()
    );

    let csv = vec![
        vec!["opteron".into(), format!("{:.9}", t.opteron_seconds)],
        vec!["cell_1spe".into(), format!("{:.9}", t.cell_1spe_seconds)],
        vec!["cell_8spe".into(), format!("{:.9}", t.cell_8spe_seconds)],
        vec!["cell_ppe".into(), format!("{:.9}", t.cell_ppe_seconds)],
    ];
    let path = write_csv("table1_cell_vs_opteron", &["system", "seconds"], &csv)?;
    println!("\nwrote {}", path.display());
    Ok(())
}
