//! Extension experiment: the Cray XMT projection the paper's conclusion
//! anticipates — with and without the data-placement work its non-uniform
//! memory demands.

use harness::report::{secs, Table};
use harness::{experiments, write_csv, HarnessError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xmt_projection: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), HarnessError> {
    let (n, steps) = (2048usize, 4usize);
    println!("XMT projection — MD kernel, {n} atoms, {steps} steps (extension)\n");
    let rows = experiments::xmt_projection(n, steps, &[1, 4, 16, 64]);

    let baseline = rows
        .first()
        .ok_or(HarnessError::MissingRow("the MTA-2 baseline"))?
        .seconds;
    let mut table = Table::new(&["system", "processors", "runtime", "vs MTA-2"]);
    let mut csv = Vec::new();
    for r in &rows {
        table.row(&[
            r.label.to_string(),
            r.n_processors.to_string(),
            secs(r.seconds),
            format!("{:.1}x", baseline / r.seconds),
        ]);
        csv.push(vec![
            r.label.to_string(),
            r.n_processors.to_string(),
            format!("{:.9}", r.seconds),
        ]);
    }
    println!("{}", table.render());

    println!("observations:");
    println!(
        "  - the optimistic XMT gains the clock ratio (2.5x) per processor and \
         scales with processor count (the paper's anticipated 'significant gains');"
    );
    println!(
        "  - the locality-blind port loses a large factor to remote latency that \
         128 streams cannot hide — the paper's own caveat that on the XMT \
         'data placement and access locality will be an important consideration'."
    );

    let path = write_csv("xmt_projection", &["system", "processors", "seconds"], &csv)?;
    println!("\nwrote {}", path.display());
    Ok(())
}
