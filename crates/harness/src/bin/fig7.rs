//! Regenerates Figure 7: GPU vs Opteron runtime across atom counts
//! (GPU startup excluded; per-step PCIe transfers included).

use harness::report::{secs, Table};
use harness::{experiments, write_csv, HarnessError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig7: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), HarnessError> {
    let counts = [128usize, 256, 512, 1024, 2048, 4096, 8192];
    let steps = experiments::PAPER_STEPS;
    println!("Figure 7 — performance results on GPU vs Opteron ({steps} time steps)\n");
    let rows = experiments::fig7(&counts, steps);

    let mut table = Table::new(&["atoms", "Opteron", "NVIDIA GPU", "GPU speedup"]);
    let mut csv = Vec::new();
    for r in &rows {
        table.row(&[
            r.n_atoms.to_string(),
            secs(r.opteron_seconds),
            secs(r.gpu_seconds),
            format!("{:.2}x", r.opteron_seconds / r.gpu_seconds),
        ]);
        csv.push(vec![
            r.n_atoms.to_string(),
            format!("{:.9}", r.opteron_seconds),
            format!("{:.9}", r.gpu_seconds),
        ]);
    }
    println!("{}", table.render());

    let crossover = rows
        .windows(2)
        .find(|w| {
            w[0].gpu_seconds >= w[0].opteron_seconds && w[1].gpu_seconds < w[1].opteron_seconds
        })
        .map(|w| (w[0].n_atoms, w[1].n_atoms));
    let at2048 = rows
        .iter()
        .find(|r| r.n_atoms == 2048)
        .ok_or(HarnessError::MissingRow("the 2048-atom point"))?;

    println!("paper-vs-measured shape checks:");
    match crossover {
        Some((lo, hi)) => println!(
            "  GPU slower at very small N, crossover between {lo} and {hi} atoms \
             (paper: 'longer to run ... at very small numbers of atoms')"
        ),
        None => println!(
            "  crossover: GPU {} at the smallest size measured",
            if rows[0].gpu_seconds > rows[0].opteron_seconds {
                "slower"
            } else {
                "faster"
            }
        ),
    }
    println!(
        "  GPU speedup at 2048 atoms: {:.2}x  (paper: 'almost 6x faster than the CPU')",
        at2048.opteron_seconds / at2048.gpu_seconds
    );

    let path = write_csv(
        "fig7_gpu_vs_opteron",
        &["atoms", "opteron_seconds", "gpu_seconds"],
        &csv,
    )?;
    println!("\nwrote {}", path.display());
    Ok(())
}
