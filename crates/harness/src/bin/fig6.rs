//! Regenerates Figure 6: SPE thread-launch overhead on the MD kernel,
//! respawn-every-step vs launch-once, 1 vs 8 SPEs.

use harness::report::{secs, Table};
use harness::{experiments, write_csv, HarnessError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig6: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), HarnessError> {
    let (n, steps) = (experiments::PAPER_ATOMS, experiments::PAPER_STEPS);
    println!("Figure 6 — SPE launch overhead on MD ({n} atoms, {steps} time steps)\n");
    let cases = experiments::fig6(n, steps)?;

    let mut table = Table::new(&[
        "configuration",
        "total runtime",
        "SPE launch overhead",
        "launch fraction",
    ]);
    let mut csv = Vec::new();
    for c in &cases {
        table.row(&[
            c.label.clone(),
            secs(c.total_seconds),
            secs(c.launch_seconds),
            format!("{:.1}%", c.launch_fraction() * 100.0),
        ]);
        csv.push(vec![
            c.label.clone(),
            format!("{:.9}", c.total_seconds),
            format!("{:.9}", c.launch_seconds),
        ]);
    }
    println!("{}", table.render());

    let find = |spes: usize, once: bool| {
        cases
            .iter()
            .find(|c| c.n_spes == spes && (c.policy == cell_be::SpawnPolicy::LaunchOnce) == once)
            .ok_or(HarnessError::MissingRow("a fig6 SPE/policy combination"))
    };
    let r1 = find(1, false)?;
    let r8 = find(8, false)?;
    let o1 = find(1, true)?;
    let o8 = find(8, true)?;

    println!("paper-vs-measured shape checks:");
    println!(
        "  1 SPE respawn, launch is a small fraction:  {:.1}%  (paper: 'small fraction')",
        r1.launch_fraction() * 100.0
    );
    println!(
        "  8 SPE respawn vs 1 SPE respawn:             {:.2}x  (paper: 'only about 1.5x faster')",
        r1.total_seconds / r8.total_seconds
    );
    println!(
        "  launch overhead grows with SPE count:       {:.1}x  (paper: 'by a factor of eight')",
        r8.launch_seconds / r1.launch_seconds
    );
    println!(
        "  8 SPE launch-once vs 1 SPE launch-once:     {:.2}x  (paper: '4.5x faster')",
        o1.total_seconds / o8.total_seconds
    );

    let path = write_csv(
        "fig6_launch_overhead",
        &["configuration", "total_seconds", "launch_seconds"],
        &csv,
    )?;
    println!("\nwrote {}", path.display());
    Ok(())
}
