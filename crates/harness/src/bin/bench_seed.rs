//! Regenerates `BENCH_seed.json`: the simulated-seconds baseline for every
//! paper figure/device at the paper's workload sizes. Run from the repo root
//! after any intentional cost-model change and commit the result; CI and
//! reviewers diff against it to catch unintended timing drift.

use harness::{experiments, perf, HarnessError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_seed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), HarnessError> {
    let json = perf::bench_seed_json(experiments::PAPER_STEPS)?;
    std::fs::write("BENCH_seed.json", &json)?;
    println!(
        "wrote BENCH_seed.json ({} benchmark entries, {} steps each)",
        json.matches("\"figure\"").count(),
        experiments::PAPER_STEPS
    );
    Ok(())
}
