//! Per-device performance-counter report: runs every device model with the
//! perf layer attached and emits time attribution, raw counters, and derived
//! rates — to the console as tables and to `results/metrics/*.json` as
//! schema-versioned [`sim_perf::RunMetrics`] records.
//!
//! ```text
//! perf_report [--atoms N] [--steps S]   # default: the paper's 2048 × 10
//! perf_report --device NAME             # one device only (cell, gpu,
//!                                       #   opteron, mta-full, mta-partial)
//! perf_report --ledger PATH             # also write a merged run ledger
//! perf_report --validate FILE...        # schema-check existing records
//! ```
//!
//! With `--ledger`, every device runs with a [`sim_obs::RunLedger`]
//! attached and the merged JSONL ledger (one source per device, plus host
//! wall-clock events) is written to PATH for `obs timeline` / `obs check`.

use harness::perf;
use harness::report::{secs, Table};
use harness::{experiments, HarnessError};
use md_core::params::SimConfig;
use mta::ThreadingMode;
use sim_perf::{format_quantity, JsonValue};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perf_report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), HarnessError> {
    if args.first().map(String::as_str) == Some("--validate") {
        return validate(&args[1..]);
    }

    let mut atoms = experiments::PAPER_ATOMS;
    let mut steps = experiments::PAPER_STEPS;
    let mut ledger_path: Option<String> = None;
    let mut only_device: Option<harness::DeviceKind> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| -> Result<usize, HarnessError> {
            it.next()
                .ok_or_else(|| HarnessError::InvalidInput(format!("{flag} needs a value")))?
                .parse()
                .map_err(|e| HarnessError::InvalidInput(format!("{flag}: {e}")))
        };
        match flag.as_str() {
            "--atoms" => atoms = value(&mut it)?,
            "--steps" => steps = value(&mut it)?,
            "--ledger" => {
                ledger_path = Some(
                    it.next()
                        .ok_or_else(|| {
                            HarnessError::InvalidInput("--ledger needs a path".to_string())
                        })?
                        .clone(),
                );
            }
            "--device" => {
                let name = it.next().ok_or_else(|| {
                    HarnessError::InvalidInput("--device needs a name".to_string())
                })?;
                only_device = Some(
                    name.parse::<harness::DeviceKind>()
                        .map_err(|e| HarnessError::InvalidInput(e.to_string()))?,
                );
            }
            other => {
                return Err(HarnessError::InvalidInput(format!(
                    "unknown flag {other} (expected --atoms, --steps, --device, --ledger, or --validate)"
                )))
            }
        }
    }

    let sim = SimConfig::reduced_lj(atoms);
    println!("Performance report — {atoms} atoms, {steps} time steps\n");

    let kinds: Vec<harness::DeviceKind> = match only_device {
        Some(kind) => vec![kind],
        None => vec![
            harness::DeviceKind::cell_best(),
            harness::DeviceKind::Gpu {
                model: harness::GpuModel::GeForce7900Gtx,
            },
            harness::DeviceKind::Opteron,
            harness::DeviceKind::Mta {
                mode: ThreadingMode::FullyMultithreaded,
            },
            harness::DeviceKind::Mta {
                mode: ThreadingMode::PartiallyMultithreaded,
            },
        ],
    };
    let mut all = Vec::with_capacity(kinds.len());
    let mut combined = sim_obs::RunLedger::new("perf-report", &perf::workload_label(&sim, steps));
    for kind in kinds {
        if ledger_path.is_some() {
            // The ledger-attached run is bitwise-identical to the plain one
            // (tests/obs_ledger.rs), so the tables below are unaffected.
            let (m, led) = perf::device_ledger(kind, &sim, steps)?;
            for ev in led.events() {
                combined.push(ev.clone());
            }
            all.push(m);
        } else {
            all.push(perf::device_metrics(kind, &sim, steps)?.0);
        }
    }

    let mut summary = Table::new(&["device", "sim time", "achieved", "peak", "util", "bytes/op"]);
    for m in &all {
        m.validate().map_err(HarnessError::InvalidInput)?;
        summary.row(&[
            m.device.clone(),
            secs(m.sim_seconds),
            format!(
                "{} op/s",
                format_quantity(m.derived_value("achieved_gops_per_s") * 1e9)
            ),
            format!(
                "{} op/s",
                format_quantity(m.derived_value("peak_gops_per_s") * 1e9)
            ),
            format!("{:.2}%", m.derived_value("utilization") * 100.0),
            format!("{:.2}", m.derived_value("bytes_per_op")),
        ]);
    }
    println!("{}", summary.render());

    println!("time attribution (each device's run partitioned into buckets):\n");
    let mut attribution = Table::new(&["device", "bucket", "time", "share"]);
    for m in &all {
        for (name, s) in &m.attribution {
            attribution.row(&[
                m.device.clone(),
                name.clone(),
                secs(*s),
                format!("{:.1}%", 100.0 * s / m.sim_seconds.max(f64::MIN_POSITIVE)),
            ]);
        }
    }
    println!("{}", attribution.render());

    println!("headline counters:\n");
    let mut counters = Table::new(&["device", "counter", "value"]);
    for m in &all {
        for (name, v, unit) in &m.counters {
            counters.row(&[
                m.device.clone(),
                name.clone(),
                format!("{} {unit}", format_quantity(*v)),
            ]);
        }
    }
    println!("{}", counters.render());

    for m in &all {
        let path = perf::write_metrics_json(m)?;
        println!("wrote {}", path.display());
    }
    if let Some(path) = &ledger_path {
        std::fs::write(path, combined.to_jsonl())?;
        println!(
            "wrote run ledger {path} ({} events)",
            combined.events().len()
        );
    }
    Ok(())
}

/// `--validate FILE...`: schema-check records written by a previous run.
fn validate(files: &[String]) -> Result<(), HarnessError> {
    if files.is_empty() {
        return Err(HarnessError::InvalidInput(
            "--validate needs at least one file".into(),
        ));
    }
    for f in files {
        let text = std::fs::read_to_string(f)?;
        sim_perf::validate_run_metrics_json(&text)
            .map_err(|e| HarnessError::InvalidInput(format!("{f}: {e}")))?;
        let doc = sim_perf::parse_json(&text)
            .map_err(|e| HarnessError::InvalidInput(format!("{f}: {e}")))?;
        let device = doc.get("device").and_then(JsonValue::as_str).unwrap_or("?");
        let atoms = doc
            .get("n_atoms")
            .and_then(JsonValue::as_number)
            .unwrap_or(0.0);
        println!("{f}: OK (schema-valid {device} record, {atoms} atoms)");
    }
    Ok(())
}
