//! Typed errors for the experiment harness.
//!
//! Every experiment binary returns `Result<(), HarnessError>` from its run
//! function and maps the error to a nonzero exit code in `main` — the
//! harness never panics on a failure it can describe.

use std::fmt;
use std::process::ExitStatus;

/// Any failure of an experiment run.
#[derive(Debug)]
pub enum HarnessError {
    /// The Cell device model rejected the run (sizing, DMA protocol, or an
    /// injected fault that exhausted its retry budget).
    Cell(cell_be::CellError),
    /// A device driven through the unified [`md_core::device::MdDevice`] run
    /// API failed or rejected its options.
    Device(md_core::device::DeviceError),
    /// An experiment was invoked with arguments it cannot honor.
    InvalidInput(String),
    /// A computed result table is missing a row the analysis needs — a bug
    /// in the experiment definition, reported instead of unwrapped.
    MissingRow(&'static str),
    /// Writing a CSV artifact failed.
    Io(std::io::Error),
    /// A child experiment process could not be spawned or exited nonzero
    /// (only `all_experiments` runs children).
    ExperimentFailed {
        name: &'static str,
        status: ExitStatus,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Cell(e) => write!(f, "Cell device error: {e}"),
            HarnessError::Device(e) => write!(f, "device error: {e}"),
            HarnessError::InvalidInput(msg) => write!(f, "invalid experiment input: {msg}"),
            HarnessError::MissingRow(what) => {
                write!(f, "experiment produced no row for {what}")
            }
            HarnessError::Io(e) => write!(f, "I/O error: {e}"),
            HarnessError::ExperimentFailed { name, status } => {
                write!(f, "experiment {name} failed with {status}")
            }
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Cell(e) => Some(e),
            HarnessError::Device(e) => Some(e),
            HarnessError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cell_be::CellError> for HarnessError {
    fn from(e: cell_be::CellError) -> Self {
        HarnessError::Cell(e)
    }
}

impl From<md_core::device::DeviceError> for HarnessError {
    fn from(e: md_core::device::DeviceError) -> Self {
        HarnessError::Device(e)
    }
}

impl From<std::io::Error> for HarnessError {
    fn from(e: std::io::Error) -> Self {
        HarnessError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = HarnessError::InvalidInput("needs a 256-atom baseline".into());
        assert!(e.to_string().contains("256-atom"));
        assert!(HarnessError::MissingRow("2048 atoms")
            .to_string()
            .contains("2048"));
        let io = HarnessError::from(std::io::Error::other("disk on fire"));
        assert!(io.to_string().contains("disk on fire"));
    }

    #[test]
    fn wraps_cell_errors() {
        let cell = cell_be::CellError::Dma(cell_be::DmaError::UnalignedLength { len: 20 });
        let e = HarnessError::from(cell);
        assert!(e.to_string().contains("multiple of 16"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
