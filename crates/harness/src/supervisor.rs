//! Supervised execution: checkpoint/restart, retry with backoff, and
//! graceful degradation to the Opteron reference (DESIGN.md §9).
//!
//! A supervised run splits the workload into segments of
//! `checkpoint_interval` steps. Each segment starts from the last good
//! [`SystemCheckpoint`]; a segment that fails — an injected fault exhausted
//! its retry budget, or the watchdog saw the segment's simulated time blow
//! past its budget — is rolled back and re-run with a fresh fault-schedule
//! salt, paying an exponential backoff in *simulated* seconds. A segment
//! that keeps failing triggers graceful degradation: the remaining steps run
//! on the fault-free Opteron reference model and the run is marked
//! `fell_back`. The recovered trajectory is bit-identical to a fault-free
//! run on the same device (devices re-prime accelerations from positions at
//! every checkpointed entry, so segment boundaries are invisible to the
//! physics); only the simulated clock shows the recovery work.
//!
//! The supervisor drives any [`MdDevice`] — it holds a `&mut dyn MdDevice`
//! and never knows which architecture is underneath (DESIGN.md §11).

use crate::error::HarnessError;
use md_core::checkpoint::SystemCheckpoint;
use md_core::device::{MdDevice, RunOptions};
use md_core::init;
use md_core::observables::EnergyReport;
use md_core::params::SimConfig;
use md_core::system::ParticleSystem;
use mdea_trace::{TraceTrack, Tracer};
use opteron::OpteronCpu;
use sim_fault::FaultStats;
use sim_obs::{EventKind, LedgerEvent, RunLedger};
use sim_perf::PerfMonitor;

/// The trace track supervisor events are emitted on.
pub const SUPERVISOR_TRACK: TraceTrack = TraceTrack(200);

/// Retry/checkpoint/fallback policy. All times are simulated seconds.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Attempts per segment before degrading to the reference device.
    pub max_attempts: u32,
    /// Steps per segment (checkpoint cadence). Clamped to at least 1.
    pub checkpoint_interval: usize,
    /// First retry waits this long; each further retry doubles it.
    pub backoff_base_s: f64,
    /// A segment whose simulated time exceeds `watchdog_s_per_step × steps`
    /// is treated as hung and rolled back.
    pub watchdog_s_per_step: f64,
    /// Relative total-energy drift vs the untimed f64 reference that is
    /// tolerated before the whole run is redone on the reference device.
    /// Loose enough for the f32 devices' genuine precision gap.
    pub energy_drift_tol: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            checkpoint_interval: 2,
            backoff_base_s: 1e-4,
            watchdog_s_per_step: 10.0,
            energy_drift_tol: 1e-2,
        }
    }
}

/// Why the supervisor abandoned a segment attempt or the whole device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// State captured after a successfully completed segment.
    Checkpoint { step: u64 },
    /// A segment attempt failed and was rolled back to the checkpoint.
    Restore {
        step: u64,
        attempt: u32,
        cause: String,
    },
    /// The watchdog cut a segment whose simulated time exceeded its budget.
    WatchdogTimeout { step: u64, attempt: u32 },
    /// Remaining steps were handed to the fault-free Opteron reference.
    Fallback { step: u64, reason: String },
}

impl RecoveryEvent {
    /// Short machine name for the ledger's `name` field.
    fn kind_name(&self) -> &'static str {
        match self {
            RecoveryEvent::Checkpoint { .. } => "checkpoint",
            RecoveryEvent::Restore { .. } => "restore",
            RecoveryEvent::WatchdogTimeout { .. } => "watchdog_timeout",
            RecoveryEvent::Fallback { .. } => "fallback",
        }
    }

    /// Step the event is anchored to.
    fn step(&self) -> u64 {
        match self {
            RecoveryEvent::Checkpoint { step }
            | RecoveryEvent::Restore { step, .. }
            | RecoveryEvent::WatchdogTimeout { step, .. }
            | RecoveryEvent::Fallback { step, .. } => *step,
        }
    }

    fn label(&self) -> String {
        match self {
            RecoveryEvent::Checkpoint { step } => format!("supervisor: checkpoint @ step {step}"),
            RecoveryEvent::Restore {
                step,
                attempt,
                cause,
            } => format!("supervisor: restore to step {step} (attempt {attempt}: {cause})"),
            RecoveryEvent::WatchdogTimeout { step, attempt } => {
                format!("supervisor: watchdog timeout in segment @ step {step} (attempt {attempt})")
            }
            RecoveryEvent::Fallback { step, reason } => {
                format!("supervisor: fallback to Opteron reference @ step {step} ({reason})")
            }
        }
    }
}

/// Performance-counter deltas for one *accepted* segment. Each segment
/// runs with a fresh [`PerfMonitor`], so the values are per-segment deltas,
/// not cumulative totals; failed attempts (rolled back) are not recorded.
#[derive(Clone, Debug, Default)]
pub struct SegmentCounters {
    /// Step the segment started from (its base checkpoint).
    pub start_step: u64,
    /// Steps the segment advanced.
    pub steps: usize,
    /// Simulated seconds charged for the segment.
    pub sim_seconds: f64,
    /// Final `(name, value, unit)` of every counter the device registered.
    pub counters: Vec<(String, f64, &'static str)>,
}

/// What happened during a supervised run, beyond the physics.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Segment attempts, including first tries.
    pub attempts: u64,
    /// Checkpoints captured (one per completed segment, plus the initial).
    pub checkpoints: u64,
    /// Rollbacks to a checkpoint after a failed attempt.
    pub restores: u64,
    /// Watchdog cuts (a subset of the restores' causes).
    pub watchdog_timeouts: u64,
    /// Whether the run finished on the Opteron reference instead.
    pub fell_back: bool,
    /// Merged per-device fault accounting across all attempts (zero without
    /// the `fault-inject` feature).
    pub faults: FaultStats,
    /// Ordered log of everything the supervisor did.
    pub events: Vec<RecoveryEvent>,
    /// Counter deltas per accepted segment (device segments and, when the
    /// run degrades, one final entry for the reference remainder).
    pub segments: Vec<SegmentCounters>,
}

/// Result of a supervised run: final physics plus the recovery story.
#[derive(Clone, Debug)]
pub struct SupervisedRun {
    /// Simulated seconds including retries, backoff, and any fallback run.
    pub sim_seconds: f64,
    /// Final state of the trajectory (from the last completed segment).
    pub checkpoint: SystemCheckpoint,
    pub energies: EnergyReport,
    pub report: RecoveryReport,
}

/// One completed segment as the supervisor sees it.
struct Segment {
    after: SystemCheckpoint,
    sim_seconds: f64,
    energies: EnergyReport,
    faults: FaultStats,
    counters: Vec<(String, f64, &'static str)>,
}

/// Snapshot a monitor's final values for a [`SegmentCounters`] record.
fn snapshot_counters(perf: &PerfMonitor) -> Vec<(String, f64, &'static str)> {
    perf.counters()
        .iter()
        .map(|c| (c.name.clone(), c.value(), c.unit))
        .collect()
}

/// Degradation-style devices absorb exhaustion into their timeline; the
/// supervisor still treats it as a failed segment so the retry/rollback
/// path is uniform across devices.
fn reject_exhausted(faults: &FaultStats, device: &str) -> Result<(), String> {
    if faults.exhausted > 0 {
        Err(format!(
            "{device} reported {} exhausted fault site(s)",
            faults.exhausted
        ))
    } else {
        Ok(())
    }
}

/// Run one segment from `cp`. `Err` is the cause string for the restore
/// event; devices that report exhaustion through their fault stats rather
/// than a typed error have it promoted to a failure here.
fn run_segment(
    device: &mut dyn MdDevice,
    cp: Option<&SystemCheckpoint>,
    sim: &SimConfig,
    steps: usize,
) -> Result<Segment, String> {
    let mut perf = PerfMonitor::new();
    // The first segment (no checkpoint yet) starts the device fresh. f32
    // devices initialize natively in their own precision, so resuming from
    // a capture of the f64 initial state can disagree with a fresh start
    // in the last bit — segment transparency is only contractual for
    // checkpoints the device itself produced.
    let base = RunOptions::steps(steps).with_perf(&mut perf);
    let opts = match cp {
        Some(c) => base.from_checkpoint(c),
        None => base,
    };
    let r = device.run(sim, opts).map_err(|e| e.to_string())?;
    reject_exhausted(&r.faults, &device.label())?;
    Ok(Segment {
        after: r.checkpoint,
        sim_seconds: r.sim_seconds,
        energies: r.energies,
        faults: r.faults,
        counters: snapshot_counters(&perf),
    })
}

/// Record one accepted segment in the ledger: a `supervisor` phase spanning
/// the segment's simulated time, plus the device's final counter values at
/// the segment's end. Failed (rolled back) attempts are never recorded — the
/// ledger shows the run the physics actually kept.
fn ledger_segment(
    ledger: &mut Option<&mut RunLedger>,
    source: &str,
    start_s: f64,
    seg: &SegmentCounters,
) {
    let Some(led) = ledger.as_deref_mut() else {
        return;
    };
    led.push(LedgerEvent {
        t_s: start_s,
        kind: EventKind::Phase,
        source: "supervisor".to_string(),
        name: "segment".to_string(),
        step: Some(seg.start_step),
        dur_s: Some(seg.sim_seconds),
        value: None,
        unit: None,
        detail: None,
    });
    for (name, value, unit) in &seg.counters {
        led.push(LedgerEvent {
            t_s: start_s + seg.sim_seconds,
            kind: EventKind::Counter,
            source: source.to_string(),
            name: name.clone(),
            step: Some(seg.start_step),
            dur_s: None,
            value: Some(*value),
            unit: Some(unit.to_string()),
            detail: None,
        });
    }
}

/// Drive `device` through `steps` time steps of `sim` under the supervisor's
/// retry/checkpoint/fallback policy. Never panics and always completes: the
/// worst case degrades to the fault-free Opteron reference model.
///
/// Pass a [`Tracer`] to get every supervisor decision as an instant event on
/// [`SUPERVISOR_TRACK`], stamped in accumulated simulated time.
pub fn run_supervised(
    device: &mut dyn MdDevice,
    sim: &SimConfig,
    steps: usize,
    cfg: &SupervisorConfig,
    tracer: Option<&mut Tracer>,
) -> SupervisedRun {
    run_supervised_ledger(device, sim, steps, cfg, tracer, None)
}

/// [`run_supervised`] with an optional [`RunLedger`] receiving the full
/// recovery story: every supervisor decision as a `recovery` event at its
/// accumulated simulated time, plus one `supervisor` phase and the device's
/// counter totals per *accepted* segment. The ledger is observation only —
/// attaching it cannot change the trajectory, the timings, or the report.
pub fn run_supervised_ledger(
    device: &mut dyn MdDevice,
    sim: &SimConfig,
    steps: usize,
    cfg: &SupervisorConfig,
    mut tracer: Option<&mut Tracer>,
    mut ledger: Option<&mut RunLedger>,
) -> SupervisedRun {
    let device_label = device.label();
    let interval = cfg.checkpoint_interval.max(1);
    let mut report = RecoveryReport::default();
    let mut total_s = 0.0f64;
    let sys: ParticleSystem<f64> = init::initialize(sim);
    let mut cp = SystemCheckpoint::capture(&sys, 0);
    // Whether `cp` came out of a device run. Until it has, segments start
    // the device fresh (see `run_segment`); the f64 initial capture is only
    // ever resumed by the f64 reference device during fallback.
    let mut device_produced = false;
    let mut energies: Option<EnergyReport> = None;

    if let Some(t) = tracer.as_deref_mut() {
        t.name_track(SUPERVISOR_TRACK, "supervisor");
    }
    let emit = |report: &mut RecoveryReport,
                tracer: &mut Option<&mut Tracer>,
                ledger: &mut Option<&mut RunLedger>,
                at_s: f64,
                ev: RecoveryEvent| {
        if let Some(t) = tracer.as_deref_mut() {
            t.instant(SUPERVISOR_TRACK, ev.label(), "supervisor", at_s);
        }
        if let Some(led) = ledger.as_deref_mut() {
            led.push(LedgerEvent {
                t_s: at_s,
                kind: EventKind::Recovery,
                source: "supervisor".to_string(),
                name: ev.kind_name().to_string(),
                step: Some(ev.step()),
                dur_s: None,
                value: None,
                unit: None,
                detail: Some(ev.label()),
            });
        }
        report.events.push(ev);
    };

    emit(
        &mut report,
        &mut tracer,
        &mut ledger,
        total_s,
        RecoveryEvent::Checkpoint { step: 0 },
    );
    report.checkpoints = 1;

    let mut done = 0usize;
    'segments: while done < steps {
        let seg_steps = interval.min(steps - done);
        let watchdog_budget = cfg.watchdog_s_per_step * seg_steps as f64;

        for attempt in 0..cfg.max_attempts {
            report.attempts += 1;
            // Fresh, deterministic schedule per (segment, attempt): the salt
            // folds both so replays of the same run see the same faults.
            device.resalt((cp.step << 8) | u64::from(attempt));

            let failure = match run_segment(device, device_produced.then_some(&cp), sim, seg_steps)
            {
                Ok(seg) if seg.sim_seconds > watchdog_budget => {
                    // The watchdog fires at its budget; the segment's work
                    // past that point is lost, not charged.
                    total_s += watchdog_budget;
                    report.watchdog_timeouts += 1;
                    report.faults.merge(&seg.faults);
                    emit(
                        &mut report,
                        &mut tracer,
                        &mut ledger,
                        total_s,
                        RecoveryEvent::WatchdogTimeout {
                            step: cp.step,
                            attempt,
                        },
                    );
                    "watchdog timeout".to_string()
                }
                Ok(seg) => {
                    let seg_start = total_s;
                    total_s += seg.sim_seconds;
                    report.faults.merge(&seg.faults);
                    let counters = SegmentCounters {
                        start_step: cp.step,
                        steps: seg_steps,
                        sim_seconds: seg.sim_seconds,
                        counters: seg.counters,
                    };
                    ledger_segment(&mut ledger, &device_label, seg_start, &counters);
                    report.segments.push(counters);
                    energies = Some(seg.energies);
                    cp = seg.after;
                    device_produced = true;
                    report.checkpoints += 1;
                    emit(
                        &mut report,
                        &mut tracer,
                        &mut ledger,
                        total_s,
                        RecoveryEvent::Checkpoint { step: cp.step },
                    );
                    done += seg_steps;
                    continue 'segments;
                }
                // A typed abort (Cell) or promoted exhaustion: the aborted
                // attempt's work is abandoned, not charged — the backoff
                // below is the recovery cost the timeline sees.
                Err(cause) => cause,
            };

            let backoff = cfg.backoff_base_s * f64::from(1u32 << attempt.min(20));
            total_s += backoff;
            report.restores += 1;
            emit(
                &mut report,
                &mut tracer,
                &mut ledger,
                total_s,
                RecoveryEvent::Restore {
                    step: cp.step,
                    attempt,
                    cause: failure,
                },
            );
        }

        // Retry budget exhausted: degrade to the fault-free reference for
        // everything that remains.
        emit(
            &mut report,
            &mut tracer,
            &mut ledger,
            total_s,
            RecoveryEvent::Fallback {
                step: cp.step,
                reason: format!("segment failed {} attempts", cfg.max_attempts),
            },
        );
        let (s, e, after, counters) = reference_remainder(&cp, sim, steps - done);
        let seg = SegmentCounters {
            start_step: cp.step,
            steps: steps - done,
            sim_seconds: s,
            counters,
        };
        ledger_segment(&mut ledger, "opteron-reference", total_s, &seg);
        report.segments.push(seg);
        total_s += s;
        energies = Some(e);
        cp = after;
        report.fell_back = true;
        break;
    }

    // Safety net: a recovered run whose energies drifted from the untimed
    // f64 reference beyond tolerance is redone on the reference device. By
    // construction (faults never touch data) this should never fire; it
    // guards the invariant rather than assuming it.
    if !report.fell_back && steps > 0 {
        let reference = OpteronCpu::untimed_energies(sim, steps);
        let drifted = energies.is_none_or(|e| {
            (e.total - reference.total).abs() > cfg.energy_drift_tol * reference.total.abs()
        });
        if drifted {
            emit(
                &mut report,
                &mut tracer,
                &mut ledger,
                total_s,
                RecoveryEvent::Fallback {
                    step: cp.step,
                    reason: "energy drift beyond tolerance".to_string(),
                },
            );
            let start: ParticleSystem<f64> = init::initialize(sim);
            let (s, e, after, counters) =
                reference_remainder(&SystemCheckpoint::capture(&start, 0), sim, steps);
            let seg = SegmentCounters {
                start_step: 0,
                steps,
                sim_seconds: s,
                counters,
            };
            ledger_segment(&mut ledger, "opteron-reference", total_s, &seg);
            report.segments.push(seg);
            total_s += s;
            energies = Some(e);
            cp = after;
            report.fell_back = true;
        }
    }

    SupervisedRun {
        sim_seconds: total_s,
        energies: energies.unwrap_or_else(|| {
            // steps == 0: nothing ran; measure the initial state directly.
            let sys: ParticleSystem<f64> = cp.restore();
            EnergyReport::measure(&sys, 0.0)
        }),
        checkpoint: cp,
        report,
    }
}

/// Run the remaining steps on the fault-free Opteron reference model.
fn reference_remainder(
    cp: &SystemCheckpoint,
    sim: &SimConfig,
    steps: usize,
) -> (
    f64,
    EnergyReport,
    SystemCheckpoint,
    Vec<(String, f64, &'static str)>,
) {
    let mut cpu = OpteronCpu::paper_reference();
    let mut perf = PerfMonitor::new();
    let r = cpu
        .run(
            sim,
            RunOptions::steps(steps)
                .from_checkpoint(cp)
                .with_perf(&mut perf),
        )
        .expect("the Opteron reference device is infallible");
    (
        r.sim_seconds,
        r.energies,
        r.checkpoint,
        snapshot_counters(&perf),
    )
}

/// Convenience: supervised run that must not have fallen back — used where
/// the experiment's point is the device's own timing.
pub fn run_supervised_strict(
    device: &mut dyn MdDevice,
    sim: &SimConfig,
    steps: usize,
    cfg: &SupervisorConfig,
) -> Result<SupervisedRun, HarnessError> {
    let run = run_supervised(device, sim, steps, cfg, None);
    if run.report.fell_back {
        return Err(HarnessError::InvalidInput(format!(
            "supervised run degraded to the reference device after {} restores",
            run.report.restores
        )));
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cell_be::{CellMd, CellRunConfig};
    use gpu::GpuMdSimulation;
    use mta::{MtaMd, ThreadingMode};

    fn small() -> SimConfig {
        SimConfig::reduced_lj(108)
    }

    #[test]
    fn supervised_matches_unsupervised_without_faults() {
        let sim = small();
        let mut dev = MtaMd::paper_mta2(ThreadingMode::FullyMultithreaded);
        let run = run_supervised(&mut dev, &sim, 6, &SupervisorConfig::default(), None);
        let plain = MtaMd::paper_mta2(ThreadingMode::FullyMultithreaded)
            .run(&sim, RunOptions::steps(6))
            .expect("mta runs");
        assert_eq!(run.energies.total, plain.energies.total);
        assert!(!run.report.fell_back);
        assert_eq!(run.report.restores, 0);
        // 6 steps at interval 2 → initial + 3 segment checkpoints.
        assert_eq!(run.report.checkpoints, 4);
        assert_eq!(run.checkpoint.step, 6);
        // Segments are each timed cold, so totals match the unsegmented run
        // only approximately; both must be positive and close.
        assert!(run.sim_seconds > 0.0);
    }

    #[test]
    fn supervised_cell_run_completes() {
        let sim = small();
        let mut dev = CellMd::paper_blade(CellRunConfig::best());
        let run = run_supervised(&mut dev, &sim, 4, &SupervisorConfig::default(), None);
        assert!(!run.report.fell_back);
        assert!(run.energies.total.is_finite());
        assert_eq!(run.checkpoint.step, 4);
    }

    /// Regression: the supervisor must start the first segment fresh, not
    /// resume it from a capture of the f64 initial state. Cell initializes
    /// natively in f32, so the round-tripped start disagreed with a plain
    /// run in the last bit for a fraction of atoms at this size.
    #[test]
    fn supervised_cell_is_bitwise_identical_to_plain() {
        let sim = SimConfig::reduced_lj(2048);
        let mut dev = CellMd::paper_blade(CellRunConfig::best());
        let run = run_supervised(&mut dev, &sim, 4, &SupervisorConfig::default(), None);
        let plain = CellMd::paper_blade(CellRunConfig::best())
            .run(&sim, RunOptions::steps(4))
            .expect("cell runs");
        assert!(!run.report.fell_back);
        assert_eq!(run.checkpoint.positions, plain.checkpoint.positions);
        assert_eq!(run.checkpoint.velocities, plain.checkpoint.velocities);
        assert_eq!(run.energies.total.to_bits(), plain.energies.total.to_bits());
    }

    #[test]
    fn watchdog_degrades_to_reference() {
        let sim = small();
        let mut dev = GpuMdSimulation::geforce_7900gtx();
        let cfg = SupervisorConfig {
            // Impossible budget: every attempt "hangs", forcing fallback.
            watchdog_s_per_step: 1e-30,
            ..SupervisorConfig::default()
        };
        let mut tracer = Tracer::new();
        let run = run_supervised(&mut dev, &sim, 4, &cfg, Some(&mut tracer));
        assert!(run.report.fell_back);
        assert_eq!(run.report.watchdog_timeouts, cfg.max_attempts as u64);
        // The fallback still produces the reference physics.
        let reference = OpteronCpu::untimed_energies(&sim, 4);
        assert!((run.energies.total - reference.total).abs() < 1e-9 * reference.total.abs());
        // Every decision is on the trace.
        let json = tracer.to_chrome_json();
        assert!(json.contains("watchdog timeout"));
        assert!(json.contains("fallback to Opteron reference"));
        assert!(run
            .report
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Fallback { .. })));
        // Every device attempt was cut, so the only recorded segment is the
        // reference remainder covering the whole run.
        assert_eq!(run.report.segments.len(), 1);
        assert_eq!(run.report.segments[0].steps, 4);
        assert_eq!(run.report.segments[0].start_step, 0);
    }

    #[test]
    fn strict_mode_rejects_fallback() {
        let sim = small();
        let mut dev = OpteronCpu::paper_reference();
        let cfg = SupervisorConfig {
            watchdog_s_per_step: 1e-30,
            ..SupervisorConfig::default()
        };
        let err = run_supervised_strict(&mut dev, &sim, 2, &cfg);
        assert!(err.is_err());
    }

    #[test]
    fn segments_carry_counter_deltas() {
        let sim = small();
        let mut dev = OpteronCpu::paper_reference();
        let run = run_supervised(&mut dev, &sim, 4, &SupervisorConfig::default(), None);
        assert!(!run.report.fell_back);
        // 4 steps at interval 2 → two accepted segments, each with its own
        // fresh-monitor counter deltas.
        assert_eq!(run.report.segments.len(), 2);
        assert_eq!(run.report.segments[0].start_step, 0);
        assert_eq!(run.report.segments[1].start_step, 2);
        let total: f64 = run.report.segments.iter().map(|s| s.sim_seconds).sum();
        assert!((total - run.sim_seconds).abs() <= 1e-9 * run.sim_seconds);
        for seg in &run.report.segments {
            assert_eq!(seg.steps, 2);
            let flops = seg.counters.iter().find(|(n, _, _)| n == "opteron.flops");
            assert!(
                flops.is_some_and(|(_, v, _)| *v > 0.0),
                "segment at step {} missing flop counter",
                seg.start_step
            );
        }
    }

    #[test]
    fn ledger_records_segments_and_recovery_without_perturbing_the_run() {
        let sim = small();
        let cfg = SupervisorConfig::default();
        let mut led = RunLedger::new("supervised-opteron", "108 atoms x 4 steps");
        let mut dev = OpteronCpu::paper_reference();
        let run = run_supervised_ledger(&mut dev, &sim, 4, &cfg, None, Some(&mut led));
        let mut plain_dev = OpteronCpu::paper_reference();
        let plain = run_supervised(&mut plain_dev, &sim, 4, &cfg, None);
        // Observation only: the ledger-attached run is bitwise-identical.
        assert_eq!(run.energies.total.to_bits(), plain.energies.total.to_bits());
        assert_eq!(run.checkpoint.positions, plain.checkpoint.positions);
        assert_eq!(run.sim_seconds.to_bits(), plain.sim_seconds.to_bits());
        // Initial + 2 segment checkpoints land as recovery events.
        let recoveries = led
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Recovery)
            .count();
        assert_eq!(recoveries, 3);
        // One supervisor phase per accepted segment, laid end-to-end.
        let segs: Vec<_> = led
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Phase && e.name == "segment")
            .collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].step, Some(0));
        assert_eq!(segs[1].step, Some(2));
        let total: f64 = segs.iter().filter_map(|e| e.dur_s).sum();
        assert!((total - run.sim_seconds).abs() <= 1e-9 * run.sim_seconds);
        // Device counters land under the device's label at segment ends.
        assert!(led.events().iter().any(|e| {
            e.kind == EventKind::Counter && e.name == "opteron.flops" && e.source == "opteron"
        }));
        // The recovery story round-trips through the JSONL format.
        assert!(RunLedger::parse_jsonl(&led.to_jsonl()).is_ok());
    }

    #[test]
    fn zero_steps_is_a_noop() {
        let sim = small();
        let mut dev = OpteronCpu::paper_reference();
        let run = run_supervised(&mut dev, &sim, 0, &SupervisorConfig::default(), None);
        assert_eq!(run.sim_seconds, 0.0);
        assert_eq!(run.checkpoint.step, 0);
        assert!(run.energies.total.is_finite());
    }

    #[cfg(feature = "fault-inject")]
    mod faulted {
        use super::*;
        use cell_be::CellBeDevice;
        use sim_fault::FaultPlan;

        #[test]
        fn recovery_reproduces_the_fault_free_trajectory() {
            let sim = small();
            let cfg = SupervisorConfig::default();

            let mut clean_dev = CellMd::paper_blade(CellRunConfig::best());
            let clean = run_supervised(&mut clean_dev, &sim, 6, &cfg, None);

            let device = CellBeDevice::paper_blade().with_fault_plan(FaultPlan::new(13, 0.05));
            let mut faulty_dev = CellMd::new(device, CellRunConfig::best());
            let faulty = run_supervised(&mut faulty_dev, &sim, 6, &cfg, None);

            assert!(!faulty.report.fell_back, "recovery should succeed");
            assert!(faulty.report.faults.any(), "faults should have fired");
            assert_eq!(
                faulty.checkpoint.positions, clean.checkpoint.positions,
                "recovered trajectory must be bit-identical"
            );
            assert_eq!(faulty.checkpoint.velocities, clean.checkpoint.velocities);
            assert_eq!(faulty.energies.total, clean.energies.total);
            assert!(
                faulty.sim_seconds > clean.sim_seconds,
                "recovery must cost simulated time: {} !> {}",
                faulty.sim_seconds,
                clean.sim_seconds
            );
        }

        #[test]
        fn hopeless_device_degrades_to_reference() {
            let sim = small();
            let device = CellBeDevice::paper_blade().with_fault_plan(FaultPlan::new(0, 1.0));
            let mut dev = CellMd::new(device, CellRunConfig::best());
            let mut tracer = Tracer::new();
            let run = run_supervised(
                &mut dev,
                &sim,
                4,
                &SupervisorConfig::default(),
                Some(&mut tracer),
            );
            assert!(run.report.fell_back);
            let reference = OpteronCpu::untimed_energies(&sim, 4);
            assert!((run.energies.total - reference.total).abs() < 1e-9 * reference.total.abs());
            assert!(tracer.to_chrome_json().contains("restore to step"));
        }

        #[test]
        fn supervised_runs_are_deterministic() {
            let sim = small();
            let cfg = SupervisorConfig::default();
            let run = || {
                let device = CellBeDevice::paper_blade().with_fault_plan(FaultPlan::new(99, 0.08));
                let mut dev = CellMd::new(device, CellRunConfig::best());
                run_supervised(&mut dev, &sim, 6, &cfg, None)
            };
            let a = run();
            let b = run();
            assert_eq!(a.sim_seconds, b.sim_seconds);
            assert_eq!(a.report.restores, b.report.restores);
            assert_eq!(a.report.faults.injected, b.report.faults.injected);
            assert_eq!(a.checkpoint.positions, b.checkpoint.positions);
        }
    }
}
