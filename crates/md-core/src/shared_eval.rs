//! Physics-once shared evaluation layer (DESIGN.md §17).
//!
//! Every device simulator splits its hot loop in two:
//!
//! 1. **Physics evaluation** — the actual forces/energies each simulated
//!    lane (SPE slice, fragment batch, MTA stream, Opteron row chunk) would
//!    compute. Under the replay memo this runs *once per step* through the
//!    kernels in this module, which batch the distance pass across 4 (f64)
//!    or 8 (f32) pair lanes.
//! 2. **Cost interpretation** — the device crate replays its cost model
//!    (cycles, DMA, mailboxes, fragment ops, stream schedules) against the
//!    evaluated row without re-touching positions or forces.
//!
//! The contract is the PR 5 observability guarantee extended to the memo:
//! memo-on and memo-off runs are **bitwise identical** in positions,
//! velocities, energies, sim-seconds, and perf counters at every thread
//! count. The kernels here guarantee their half of that contract by
//! construction: the batched distance pass performs exactly the per-pair
//! IEEE operations of each device's interpretive loop (same operations, same
//! associativity, same rounding), and the data-dependent accumulation runs
//! serially in ascending-j order over the surviving lanes. Restructuring
//! *across* pairs never changes *per-pair* rounding, so equality is an
//! identity, not a tolerance.
//!
//! Three per-device arithmetic flavors are provided:
//!
//! - [`host_row`] — the f64 select-form minimum image of
//!   [`crate::forces::gather_row`] (Opteron rows, MTA streams).
//! - [`cell_row`] — the Cell SPE `SimdAcceleration` variant: compare/select
//!   unit-cell shift, FMA accumulate, per-atom PE in the fourth lane.
//! - [`gpu_texel`] — the fragment shader's predicated sequential-conditional
//!   minimum image and `(d * f_over_r) * inv_mass` accumulate.
//!
//! On x86-64 hosts with AVX2 each flavor runs hand-written intrinsics with a
//! movemask early-skip of non-interacting lane groups; elsewhere the
//! portable [`vecmath::wide`] lanes execute the same batched structure. Both
//! paths are bitwise-equal to the scalar interpretive loops (pinned by unit
//! tests here and by `tests/shared_eval.rs` per device).
//!
//! This module evaluates physics only. It never charges simulated time or
//! cycles — sim-vet's eval-purity rule denies cost-charging calls here, so
//! the eval/cost split stays machine-enforced.

use crate::forces::{GatherRow, SoaPositions};
use crate::scenario::Substrate;
use std::ops::{Add, Mul, Sub};
use vecmath::{pbc, Real, Vec3};
use vecmath::{F32x8, F64x4};

/// Do the fused AVX2 kernels run on this host? (Cached feature probe;
/// portable wide lanes are used when false. Both paths are bitwise-equal, so
/// this only ever changes speed.)
pub fn wide_kernels_native() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Host flavor (f64): Opteron row chunks and MTA stream chunks.

/// Atom `i`'s gather row, bitwise identical to
/// [`crate::forces::gather_row`] but batched 4-wide.
///
/// The mixed-precision policy needs no special casing here: for `T = f64`
/// the widen/narrow steps of the mixed accumulator are identities, so the
/// native accumulation below already matches `gather_row`'s internal
/// dispatch bit for bit (pinned by a unit test).
#[inline]
pub fn host_row(
    soa: &SoaPositions<f64>,
    i: usize,
    box_len: f64,
    sub: &Substrate<f64>,
    inv_mass: f64,
) -> GatherRow<f64> {
    #[cfg(target_arch = "x86_64")]
    if wide_kernels_native() {
        // SAFETY: AVX2 support was verified at runtime just above.
        return unsafe { host_row_avx2(soa, i, box_len, sub, inv_mass) };
    }
    host_row_batched(soa, i, box_len, sub, inv_mass)
}

/// Portable batched host row: the same structure as the AVX2 kernel, built
/// on [`vecmath::F64x4`] per-lane ops.
fn host_row_batched(
    soa: &SoaPositions<f64>,
    i: usize,
    box_len: f64,
    sub: &Substrate<f64>,
    inv_mass: f64,
) -> GatherRow<f64> {
    let n = soa.len();
    let cutoff2 = sub.cutoff2();
    let (xi, yi, zi) = (soa.x[i], soa.y[i], soa.z[i]);
    let mut acc = Vec3::zero();
    let mut pe = 0.0f64;
    let mut interactions = 0u64;

    let l = F64x4::splat(box_len);
    let half = F64x4::splat(box_len * 0.5);
    let neg_half = F64x4::splat(-(box_len * 0.5));
    let vcut = F64x4::splat(cutoff2);
    let pxi = F64x4::splat(xi);
    let pyi = F64x4::splat(yi);
    let pzi = F64x4::splat(zi);

    let mut k = 0;
    while k + 4 <= n {
        // Select-form minimum image, per lane exactly
        // `pbc::min_image_coord_select`.
        let fold = |pi: F64x4, src: &[f64]| -> F64x4 {
            let c = pi.sub(F64x4::from_slice(&src[k..]));
            let down = c.sub(l);
            let up = c.add(l);
            let folded = F64x4::select(c.cmp_gt(half), down, c);
            F64x4::select(c.cmp_lt(neg_half), up, folded)
        };
        let dx = fold(pxi, &soa.x);
        let dy = fold(pyi, &soa.y);
        let dz = fold(pzi, &soa.z);
        let r2 = dx.mul(dx).add(dy.mul(dy)).add(dz.mul(dz));
        let m = r2.cmp_lt(vcut);
        if m.any() {
            for lane in 0..4 {
                if m.test(lane) {
                    let r2v = r2.lane(lane);
                    if r2v != 0.0 {
                        let (e, f_over_r) = sub.energy_force(r2v);
                        pe += e;
                        let s = f_over_r * inv_mass;
                        acc.x += dx.lane(lane) * s;
                        acc.y += dy.lane(lane) * s;
                        acc.z += dz.lane(lane) * s;
                        interactions += 1;
                    }
                }
            }
        }
        k += 4;
    }
    host_row_tail(
        soa,
        k,
        (xi, yi, zi),
        box_len,
        cutoff2,
        sub,
        inv_mass,
        &mut acc,
        &mut pe,
        &mut interactions,
    );
    GatherRow {
        acc,
        pe,
        interactions,
    }
}

/// Scalar remainder of a host row: atoms `k..n`, the exact
/// `gather_row` arithmetic.
#[allow(clippy::too_many_arguments)]
#[inline]
fn host_row_tail(
    soa: &SoaPositions<f64>,
    mut k: usize,
    (xi, yi, zi): (f64, f64, f64),
    box_len: f64,
    cutoff2: f64,
    sub: &Substrate<f64>,
    inv_mass: f64,
    acc: &mut Vec3<f64>,
    pe: &mut f64,
    interactions: &mut u64,
) {
    let n = soa.len();
    while k < n {
        let dx = pbc::min_image_coord_select(xi - soa.x[k], box_len);
        let dy = pbc::min_image_coord_select(yi - soa.y[k], box_len);
        let dz = pbc::min_image_coord_select(zi - soa.z[k], box_len);
        let r2 = dx * dx + dy * dy + dz * dz;
        if r2 < cutoff2 && r2 != 0.0 {
            let (e, f_over_r) = sub.energy_force(r2);
            *pe += e;
            let s = f_over_r * inv_mass;
            acc.x += dx * s;
            acc.y += dy * s;
            acc.z += dz * s;
            *interactions += 1;
        }
        k += 1;
    }
}

/// Fused AVX2 host row: 4-wide distance pass with a movemask early-skip of
/// non-interacting lane groups, serial in-order accumulate of the survivors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn host_row_avx2(
    soa: &SoaPositions<f64>,
    i: usize,
    box_len: f64,
    sub: &Substrate<f64>,
    inv_mass: f64,
) -> GatherRow<f64> {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_blendv_pd, _mm256_cmp_pd, _mm256_loadu_pd, _mm256_movemask_pd,
        _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd, _mm256_sub_pd, _CMP_GT_OQ, _CMP_LT_OQ,
    };
    let n = soa.len();
    let cutoff2 = sub.cutoff2();
    let (xi, yi, zi) = (soa.x[i], soa.y[i], soa.z[i]);
    let mut acc = Vec3::zero();
    let mut pe = 0.0f64;
    let mut interactions = 0u64;

    let l = _mm256_set1_pd(box_len);
    let half = _mm256_set1_pd(box_len * 0.5);
    let neg_half = _mm256_set1_pd(-(box_len * 0.5));
    let vcut = _mm256_set1_pd(cutoff2);
    let pxi = _mm256_set1_pd(xi);
    let pyi = _mm256_set1_pd(yi);
    let pzi = _mm256_set1_pd(zi);

    let mut dxs = [0.0f64; 4];
    let mut dys = [0.0f64; 4];
    let mut dzs = [0.0f64; 4];
    let mut r2s = [0.0f64; 4];

    let mut k = 0;
    while k + 4 <= n {
        macro_rules! axis {
            ($pi:expr, $src:expr) => {{
                let pj = _mm256_loadu_pd($src.as_ptr().add(k));
                let c = _mm256_sub_pd($pi, pj);
                let down = _mm256_sub_pd(c, l);
                let up = _mm256_add_pd(c, l);
                let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(c, half);
                let folded = _mm256_blendv_pd(c, down, gt);
                let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(c, neg_half);
                _mm256_blendv_pd(folded, up, lt)
            }};
        }
        let dx = axis!(pxi, soa.x);
        let dy = axis!(pyi, soa.y);
        let dz = axis!(pzi, soa.z);
        let r2 = _mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
            _mm256_mul_pd(dz, dz),
        );
        let mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(r2, vcut));
        if mask != 0 {
            _mm256_storeu_pd(dxs.as_mut_ptr(), dx);
            _mm256_storeu_pd(dys.as_mut_ptr(), dy);
            _mm256_storeu_pd(dzs.as_mut_ptr(), dz);
            _mm256_storeu_pd(r2s.as_mut_ptr(), r2);
            for lane in 0..4 {
                if mask & (1 << lane) != 0 {
                    let r2v = r2s[lane];
                    if r2v != 0.0 {
                        let (e, f_over_r) = sub.energy_force(r2v);
                        pe += e;
                        let s = f_over_r * inv_mass;
                        acc.x += dxs[lane] * s;
                        acc.y += dys[lane] * s;
                        acc.z += dzs[lane] * s;
                        interactions += 1;
                    }
                }
            }
        }
        k += 4;
    }
    host_row_tail(
        soa,
        k,
        (xi, yi, zi),
        box_len,
        cutoff2,
        sub,
        inv_mass,
        &mut acc,
        &mut pe,
        &mut interactions,
    );
    GatherRow {
        acc,
        pe,
        interactions,
    }
}

// ---------------------------------------------------------------------------
// Single-precision SoA shared by the Cell and GPU flavors.

/// Positions in f32 structure-of-arrays layout, as the single-precision
/// device flavors consume them (built from local-store quads or position
/// texels; the fourth quad lane is padding on both devices).
#[derive(Clone, Debug, Default)]
pub struct SoaPositionsF32 {
    pub x: Vec<f32>,
    pub y: Vec<f32>,
    pub z: Vec<f32>,
}

impl SoaPositionsF32 {
    /// Transpose `[x, y, z, pad]` quads (local-store image or texture).
    pub fn from_quads(quads: impl Iterator<Item = [f32; 4]>) -> Self {
        let mut soa = Self::default();
        for q in quads {
            soa.x.push(q[0]);
            soa.y.push(q[1]);
            soa.z.push(q[2]);
        }
        soa
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// One SPE row evaluated by the shared kernel: the acceleration triple, the
/// atom's (unhalved) PE contribution — the value the SPE kernel stores in
/// the quad's fourth lane — and the interaction count the cost interpreter
/// charges per-interaction cycles for.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CellRow {
    pub acc: [f32; 3],
    pub pe: f32,
    pub interactions: u64,
}

// ---------------------------------------------------------------------------
// Cell flavor (f32): the SPE `SimdAcceleration` kernel arithmetic.

/// Atom `i`'s row exactly as the fully SIMDized SPE kernel
/// (`SpeKernelVariant::SimdAcceleration`) computes it: compare/select
/// unit-cell shift on all axes, `dir = pi - (pj + shift)`, left-folded dot,
/// and — for surviving pairs — FMA accumulation (native policy) or widened
/// f64 row sums narrowed once (mixed policy). The self-pair the interpretive
/// loop skips with a branch is excluded here by the `r2 > 0` predicate,
/// which rejects exactly the same pairs.
#[inline]
pub fn cell_row(
    soa: &SoaPositionsF32,
    i: usize,
    box_len: f32,
    sub: &Substrate<f32>,
    inv_mass: f32,
) -> CellRow {
    #[cfg(target_arch = "x86_64")]
    if wide_kernels_native() {
        // SAFETY: AVX2 support was verified at runtime just above.
        return unsafe { cell_row_avx2(soa, i, box_len, sub, inv_mass) };
    }
    cell_row_batched(soa, i, box_len, sub, inv_mass)
}

/// Accumulator state for one cell row; finishes by narrowing the mixed
/// sums if the policy widened them.
struct CellAccum {
    mixed: bool,
    acc: [f32; 3],
    pe: f32,
    acc64: [f64; 3],
    pe64: f64,
    interactions: u64,
}

impl CellAccum {
    fn new(mixed: bool) -> Self {
        Self {
            mixed,
            acc: [0.0; 3],
            pe: 0.0,
            acc64: [0.0; 3],
            pe64: 0.0,
            interactions: 0,
        }
    }

    /// One surviving pair, exactly the SPE kernel's accumulate stage.
    #[inline]
    fn pair(&mut self, dir: [f32; 3], r2: f32, sub: &Substrate<f32>, inv_mass: f32) {
        self.interactions += 1;
        let (e, f_over_r) = sub.energy_force(r2);
        if self.mixed {
            self.pe64 += f64::from(e);
            let s = f_over_r * inv_mass;
            self.acc64[0] += f64::from(dir[0] * s);
            self.acc64[1] += f64::from(dir[1] * s);
            self.acc64[2] += f64::from(dir[2] * s);
        } else {
            self.pe += e;
            let s = f_over_r * inv_mass;
            // `F32x4::madd`: per-lane fused multiply-add.
            self.acc[0] = dir[0].mul_add(s, self.acc[0]);
            self.acc[1] = dir[1].mul_add(s, self.acc[1]);
            self.acc[2] = dir[2].mul_add(s, self.acc[2]);
        }
    }

    fn finish(self) -> CellRow {
        if self.mixed {
            CellRow {
                acc: [
                    f32::from_f64(self.acc64[0]),
                    f32::from_f64(self.acc64[1]),
                    f32::from_f64(self.acc64[2]),
                ],
                pe: f32::from_f64(self.pe64),
                interactions: self.interactions,
            }
        } else {
            CellRow {
                acc: self.acc,
                pe: self.pe,
                interactions: self.interactions,
            }
        }
    }
}

/// Scalar remainder of a cell row: atoms `k..n`, per-lane exactly the
/// `F32x4` compare/select arithmetic.
#[inline]
#[allow(clippy::too_many_arguments)]
fn cell_row_tail(
    soa: &SoaPositionsF32,
    mut k: usize,
    pi: [f32; 3],
    box_len: f32,
    cutoff2: f32,
    sub: &Substrate<f32>,
    inv_mass: f32,
    st: &mut CellAccum,
) {
    let n = soa.len();
    let l = box_len;
    let half_l = 0.5 * l;
    while k < n {
        let pj = [soa.x[k], soa.y[k], soa.z[k]];
        let mut dir = [0.0f32; 3];
        for a in 0..3 {
            let d = pi[a] - pj[a];
            let s1 = if d > half_l { l } else { 0.0 };
            let s2 = if -half_l > d { -l } else { 0.0 };
            let shift = s1 + s2;
            dir[a] = pi[a] - (pj[a] + shift);
        }
        let r2 = dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2];
        if r2 < cutoff2 && r2 > 0.0 {
            st.pair(dir, r2, sub, inv_mass);
        }
        k += 1;
    }
}

/// Portable batched cell row on [`vecmath::F32x8`] lanes.
fn cell_row_batched(
    soa: &SoaPositionsF32,
    i: usize,
    box_len: f32,
    sub: &Substrate<f32>,
    inv_mass: f32,
) -> CellRow {
    let n = soa.len();
    let cutoff2 = sub.cutoff2();
    let pi = [soa.x[i], soa.y[i], soa.z[i]];
    let mut st = CellAccum::new(sub.accumulate_f64);

    let l = F32x8::splat(box_len);
    let neg_l = F32x8::splat(-box_len);
    let half = F32x8::splat(0.5 * box_len);
    let neg_half = F32x8::splat(-(0.5 * box_len));
    let vcut = F32x8::splat(cutoff2);
    let px = [
        F32x8::splat(pi[0]),
        F32x8::splat(pi[1]),
        F32x8::splat(pi[2]),
    ];

    let mut k = 0;
    while k + 8 <= n {
        let axis = |pa: F32x8, src: &[f32]| -> F32x8 {
            let pj = F32x8::from_slice(&src[k..]);
            let d = pa.sub(pj);
            let s1 = F32x8::select(d.cmp_gt(half), l, F32x8::ZERO);
            let s2 = F32x8::select(d.cmp_lt(neg_half), neg_l, F32x8::ZERO);
            let shift = s1.add(s2);
            pa.sub(pj.add(shift))
        };
        let dx = axis(px[0], &soa.x);
        let dy = axis(px[1], &soa.y);
        let dz = axis(px[2], &soa.z);
        let r2 = dx.mul(dx).add(dy.mul(dy)).add(dz.mul(dz));
        let m = r2.cmp_lt(vcut).and(r2.cmp_gt(F32x8::ZERO));
        if m.any() {
            for lane in 0..8 {
                if m.test(lane) {
                    st.pair(
                        [dx.lane(lane), dy.lane(lane), dz.lane(lane)],
                        r2.lane(lane),
                        sub,
                        inv_mass,
                    );
                }
            }
        }
        k += 8;
    }
    cell_row_tail(soa, k, pi, box_len, cutoff2, sub, inv_mass, &mut st);
    st.finish()
}

/// Fused AVX2 cell row: 8-wide f32 distance pass, movemask early-skip,
/// serial in-order accumulate of the survivors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn cell_row_avx2(
    soa: &SoaPositionsF32,
    i: usize,
    box_len: f32,
    sub: &Substrate<f32>,
    inv_mass: f32,
) -> CellRow {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_and_ps, _mm256_blendv_ps, _mm256_cmp_ps, _mm256_loadu_ps,
        _mm256_movemask_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
        _mm256_sub_ps, _CMP_GT_OQ, _CMP_LT_OQ,
    };
    let n = soa.len();
    let cutoff2 = sub.cutoff2();
    let pi = [soa.x[i], soa.y[i], soa.z[i]];
    let mut st = CellAccum::new(sub.accumulate_f64);

    let l = _mm256_set1_ps(box_len);
    let neg_l = _mm256_set1_ps(-box_len);
    let half = _mm256_set1_ps(0.5 * box_len);
    let neg_half = _mm256_set1_ps(-(0.5 * box_len));
    let vcut = _mm256_set1_ps(cutoff2);
    let zero = _mm256_setzero_ps();
    let pxi = _mm256_set1_ps(pi[0]);
    let pyi = _mm256_set1_ps(pi[1]);
    let pzi = _mm256_set1_ps(pi[2]);

    let mut dxs = [0.0f32; 8];
    let mut dys = [0.0f32; 8];
    let mut dzs = [0.0f32; 8];
    let mut r2s = [0.0f32; 8];

    let mut k = 0;
    while k + 8 <= n {
        macro_rules! axis {
            ($pa:expr, $src:expr) => {{
                let pj = _mm256_loadu_ps($src.as_ptr().add(k));
                let d = _mm256_sub_ps($pa, pj);
                let hi = _mm256_cmp_ps::<_CMP_GT_OQ>(d, half);
                let lo = _mm256_cmp_ps::<_CMP_LT_OQ>(d, neg_half);
                let s1 = _mm256_blendv_ps(zero, l, hi);
                let s2 = _mm256_blendv_ps(zero, neg_l, lo);
                let shift = _mm256_add_ps(s1, s2);
                _mm256_sub_ps($pa, _mm256_add_ps(pj, shift))
            }};
        }
        let dx = axis!(pxi, soa.x);
        let dy = axis!(pyi, soa.y);
        let dz = axis!(pzi, soa.z);
        let r2 = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
            _mm256_mul_ps(dz, dz),
        );
        let keep = _mm256_and_ps(
            _mm256_cmp_ps::<_CMP_LT_OQ>(r2, vcut),
            _mm256_cmp_ps::<_CMP_GT_OQ>(r2, zero),
        );
        let mask = _mm256_movemask_ps(keep);
        if mask != 0 {
            _mm256_storeu_ps(dxs.as_mut_ptr(), dx);
            _mm256_storeu_ps(dys.as_mut_ptr(), dy);
            _mm256_storeu_ps(dzs.as_mut_ptr(), dz);
            _mm256_storeu_ps(r2s.as_mut_ptr(), r2);
            for lane in 0..8 {
                if mask & (1 << lane) != 0 {
                    st.pair([dxs[lane], dys[lane], dzs[lane]], r2s[lane], sub, inv_mass);
                }
            }
        }
        k += 8;
    }
    cell_row_tail(soa, k, pi, box_len, cutoff2, sub, inv_mass, &mut st);
    st.finish()
}

// ---------------------------------------------------------------------------
// GPU flavor (f32): the predicated fragment-shader arithmetic.

/// Atom `i`'s output texel `[ax, ay, az, pe]` exactly as the acceleration
/// shader computes it: sequential-conditional minimum image per axis (the
/// second compare tests the *updated* coordinate), predicated cutoff mask,
/// `(d[k] * f_over_r) * inv_mass` accumulation — native or mixed policy.
/// The self-pair is examined and predicated off, as on hardware.
#[inline]
pub fn gpu_texel(
    soa: &SoaPositionsF32,
    i: usize,
    box_len: f32,
    sub: &Substrate<f32>,
    inv_mass: f32,
) -> [f32; 4] {
    #[cfg(target_arch = "x86_64")]
    if wide_kernels_native() {
        // SAFETY: AVX2 support was verified at runtime just above.
        return unsafe { gpu_texel_avx2(soa, i, box_len, sub, inv_mass) };
    }
    gpu_texel_batched(soa, i, box_len, sub, inv_mass)
}

/// Accumulator state for one GPU texel.
struct GpuAccum {
    mixed: bool,
    acc: [f32; 3],
    pe: f32,
    acc64: [f64; 3],
    pe64: f64,
}

impl GpuAccum {
    fn new(mixed: bool) -> Self {
        Self {
            mixed,
            acc: [0.0; 3],
            pe: 0.0,
            acc64: [0.0; 3],
            pe64: 0.0,
        }
    }

    /// One surviving (unmasked) pair, exactly the shader's accumulate.
    #[inline]
    fn pair(&mut self, d: [f32; 3], r2: f32, sub: &Substrate<f32>, inv_mass: f32) {
        let (e, f_over_r) = sub.energy_force(r2);
        if self.mixed {
            self.pe64 += f64::from(e);
            for (acc, dk) in self.acc64.iter_mut().zip(d) {
                *acc += f64::from(dk * f_over_r * inv_mass);
            }
        } else {
            self.pe += e;
            for (acc, dk) in self.acc.iter_mut().zip(d) {
                *acc += dk * f_over_r * inv_mass;
            }
        }
    }

    fn finish(mut self) -> [f32; 4] {
        if self.mixed {
            for k in 0..3 {
                self.acc[k] = f32::from_f64(self.acc64[k]);
            }
            self.pe = f32::from_f64(self.pe64);
        }
        [self.acc[0], self.acc[1], self.acc[2], self.pe]
    }
}

/// Scalar remainder of a GPU texel: atoms `k..n`, the exact shader
/// arithmetic.
#[inline]
#[allow(clippy::too_many_arguments)]
fn gpu_texel_tail(
    soa: &SoaPositionsF32,
    mut k: usize,
    pi: [f32; 3],
    box_len: f32,
    cutoff2: f32,
    sub: &Substrate<f32>,
    inv_mass: f32,
    st: &mut GpuAccum,
) {
    let n = soa.len();
    let l = box_len;
    let half_l = 0.5 * l;
    while k < n {
        let pj = [soa.x[k], soa.y[k], soa.z[k]];
        let mut d = [0.0f32; 3];
        for a in 0..3 {
            let mut dk = pi[a] - pj[a];
            dk += if dk > half_l { -l } else { 0.0 };
            dk += if dk < -half_l { l } else { 0.0 };
            d[a] = dk;
        }
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        if r2 < cutoff2 && r2 > 0.0 {
            st.pair(d, r2, sub, inv_mass);
        }
        k += 1;
    }
}

/// Portable batched GPU texel on [`vecmath::F32x8`] lanes.
fn gpu_texel_batched(
    soa: &SoaPositionsF32,
    i: usize,
    box_len: f32,
    sub: &Substrate<f32>,
    inv_mass: f32,
) -> [f32; 4] {
    let n = soa.len();
    let cutoff2 = sub.cutoff2();
    let pi = [soa.x[i], soa.y[i], soa.z[i]];
    let mut st = GpuAccum::new(sub.accumulate_f64);

    let l = F32x8::splat(box_len);
    let neg_l = F32x8::splat(-box_len);
    let half = F32x8::splat(0.5 * box_len);
    let neg_half = F32x8::splat(-(0.5 * box_len));
    let vcut = F32x8::splat(cutoff2);
    let px = [
        F32x8::splat(pi[0]),
        F32x8::splat(pi[1]),
        F32x8::splat(pi[2]),
    ];

    let mut k = 0;
    while k + 8 <= n {
        let axis = |pa: F32x8, src: &[f32]| -> F32x8 {
            let pj = F32x8::from_slice(&src[k..]);
            let c = pa.sub(pj);
            let c1 = c.add(F32x8::select(c.cmp_gt(half), neg_l, F32x8::ZERO));
            c1.add(F32x8::select(c1.cmp_lt(neg_half), l, F32x8::ZERO))
        };
        let dx = axis(px[0], &soa.x);
        let dy = axis(px[1], &soa.y);
        let dz = axis(px[2], &soa.z);
        let r2 = dx.mul(dx).add(dy.mul(dy)).add(dz.mul(dz));
        let m = r2.cmp_lt(vcut).and(r2.cmp_gt(F32x8::ZERO));
        if m.any() {
            for lane in 0..8 {
                if m.test(lane) {
                    st.pair(
                        [dx.lane(lane), dy.lane(lane), dz.lane(lane)],
                        r2.lane(lane),
                        sub,
                        inv_mass,
                    );
                }
            }
        }
        k += 8;
    }
    gpu_texel_tail(soa, k, pi, box_len, cutoff2, sub, inv_mass, &mut st);
    st.finish()
}

/// Fused AVX2 GPU texel: 8-wide f32 distance pass with the shader's
/// sequential-conditional minimum image, movemask early-skip, serial
/// in-order accumulate.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gpu_texel_avx2(
    soa: &SoaPositionsF32,
    i: usize,
    box_len: f32,
    sub: &Substrate<f32>,
    inv_mass: f32,
) -> [f32; 4] {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_and_ps, _mm256_blendv_ps, _mm256_cmp_ps, _mm256_loadu_ps,
        _mm256_movemask_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
        _mm256_sub_ps, _CMP_GT_OQ, _CMP_LT_OQ,
    };
    let n = soa.len();
    let cutoff2 = sub.cutoff2();
    let pi = [soa.x[i], soa.y[i], soa.z[i]];
    let mut st = GpuAccum::new(sub.accumulate_f64);

    let l = _mm256_set1_ps(box_len);
    let neg_l = _mm256_set1_ps(-box_len);
    let half = _mm256_set1_ps(0.5 * box_len);
    let neg_half = _mm256_set1_ps(-(0.5 * box_len));
    let vcut = _mm256_set1_ps(cutoff2);
    let zero = _mm256_setzero_ps();
    let pxi = _mm256_set1_ps(pi[0]);
    let pyi = _mm256_set1_ps(pi[1]);
    let pzi = _mm256_set1_ps(pi[2]);

    let mut dxs = [0.0f32; 8];
    let mut dys = [0.0f32; 8];
    let mut dzs = [0.0f32; 8];
    let mut r2s = [0.0f32; 8];

    let mut k = 0;
    while k + 8 <= n {
        macro_rules! axis {
            ($pa:expr, $src:expr) => {{
                let pj = _mm256_loadu_ps($src.as_ptr().add(k));
                let c = _mm256_sub_ps($pa, pj);
                let m1 = _mm256_cmp_ps::<_CMP_GT_OQ>(c, half);
                let c1 = _mm256_add_ps(c, _mm256_blendv_ps(zero, neg_l, m1));
                let m2 = _mm256_cmp_ps::<_CMP_LT_OQ>(c1, neg_half);
                _mm256_add_ps(c1, _mm256_blendv_ps(zero, l, m2))
            }};
        }
        let dx = axis!(pxi, soa.x);
        let dy = axis!(pyi, soa.y);
        let dz = axis!(pzi, soa.z);
        let r2 = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
            _mm256_mul_ps(dz, dz),
        );
        let keep = _mm256_and_ps(
            _mm256_cmp_ps::<_CMP_LT_OQ>(r2, vcut),
            _mm256_cmp_ps::<_CMP_GT_OQ>(r2, zero),
        );
        let mask = _mm256_movemask_ps(keep);
        if mask != 0 {
            _mm256_storeu_ps(dxs.as_mut_ptr(), dx);
            _mm256_storeu_ps(dys.as_mut_ptr(), dy);
            _mm256_storeu_ps(dzs.as_mut_ptr(), dz);
            _mm256_storeu_ps(r2s.as_mut_ptr(), r2);
            for lane in 0..8 {
                if mask & (1 << lane) != 0 {
                    st.pair([dxs[lane], dys[lane], dzs[lane]], r2s[lane], sub, inv_mass);
                }
            }
        }
        k += 8;
    }
    gpu_texel_tail(soa, k, pi, box_len, cutoff2, sub, inv_mass, &mut st);
    st.finish()
}

#[cfg(test)]
// Bitwise assertions are the point: the memo contract is exact equality,
// not tolerance (DESIGN.md §4, §17).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::forces::gather_row;
    use crate::init::initialize;
    use crate::params::SimConfig;
    use crate::scenario::{PrecisionPolicy, ScenarioSpec};
    use crate::system::ParticleSystem;

    fn host_setup(spec: ScenarioSpec) -> (ParticleSystem<f64>, Substrate<f64>, f64) {
        let cfg = SimConfig::reduced_lj(251).with_scenario(spec);
        let sys = initialize(&cfg);
        let sub = cfg.substrate::<f64>();
        let box_len = sys.box_len;
        (sys, sub, box_len)
    }

    #[test]
    fn host_row_bitwise_matches_gather_row() {
        for spec in [
            ScenarioSpec::default(),
            ScenarioSpec::morse_nvt(),
            ScenarioSpec::default().with_precision(PrecisionPolicy::MixedF64Accumulate),
        ] {
            let (sys, sub, l) = host_setup(spec);
            let soa = SoaPositions::from_positions(&sys.positions);
            let inv_m = sys.mass.recip();
            for i in 0..sys.n() {
                let a = gather_row(&soa, i, l, &sub, inv_m);
                let b = host_row(&soa, i, l, &sub, inv_m);
                assert_eq!(a.acc.x.to_bits(), b.acc.x.to_bits(), "row {i} x");
                assert_eq!(a.acc.y.to_bits(), b.acc.y.to_bits(), "row {i} y");
                assert_eq!(a.acc.z.to_bits(), b.acc.z.to_bits(), "row {i} z");
                assert_eq!(a.pe.to_bits(), b.pe.to_bits(), "row {i} pe");
                assert_eq!(a.interactions, b.interactions, "row {i} count");
            }
        }
    }

    #[test]
    fn host_row_portable_and_native_agree() {
        let (sys, sub, l) = host_setup(ScenarioSpec::default());
        let soa = SoaPositions::from_positions(&sys.positions);
        let inv_m = sys.mass.recip();
        for i in 0..sys.n() {
            let a = host_row_batched(&soa, i, l, &sub, inv_m);
            let b = host_row(&soa, i, l, &sub, inv_m);
            assert_eq!(a, b, "row {i}");
        }
    }

    fn f32_soa(n: usize) -> (SoaPositionsF32, f32) {
        let cfg = SimConfig::reduced_lj(n);
        let sys: ParticleSystem<f64> = initialize(&cfg);
        let soa = SoaPositionsF32::from_quads(
            sys.positions
                .iter()
                .map(|p| [p.x as f32, p.y as f32, p.z as f32, 0.0]),
        );
        (soa, sys.box_len as f32)
    }

    #[test]
    fn cell_row_portable_and_native_agree() {
        let (soa, l) = f32_soa(139);
        for spec in [
            ScenarioSpec::default(),
            ScenarioSpec::default().with_precision(PrecisionPolicy::MixedF64Accumulate),
        ] {
            let sub: Substrate<f32> = spec.substrate(2.5);
            for i in 0..soa.len() {
                let a = cell_row_batched(&soa, i, l, &sub, 1.0);
                let b = cell_row(&soa, i, l, &sub, 1.0);
                assert_eq!(a, b, "row {i}");
            }
        }
    }

    #[test]
    fn gpu_texel_portable_and_native_agree() {
        let (soa, l) = f32_soa(139);
        for spec in [
            ScenarioSpec::default(),
            ScenarioSpec::morse_nvt(),
            ScenarioSpec::default().with_precision(PrecisionPolicy::MixedF64Accumulate),
        ] {
            let sub: Substrate<f32> = spec.substrate(2.5);
            for i in 0..soa.len() {
                let a = gpu_texel_batched(&soa, i, l, &sub, 1.0);
                let b = gpu_texel(&soa, i, l, &sub, 1.0);
                for k in 0..4 {
                    assert_eq!(a[k].to_bits(), b[k].to_bits(), "texel {i}.{k}");
                }
            }
        }
    }

    #[test]
    fn cell_and_gpu_rows_agree_loosely_on_physics() {
        // Different minimum-image formulations, same physics: the flavors
        // must agree to f32 tolerance even though they are not bitwise
        // comparable with each other.
        let (soa, l) = f32_soa(139);
        let sub: Substrate<f32> = ScenarioSpec::default().substrate(2.5);
        for i in 0..soa.len() {
            let c = cell_row(&soa, i, l, &sub, 1.0);
            let g = gpu_texel(&soa, i, l, &sub, 1.0);
            for (k, gk) in g.iter().enumerate().take(3) {
                assert!(
                    (c.acc[k] - gk).abs() <= 1e-3 * c.acc[k].abs().max(1.0),
                    "row {i} axis {k}: {} vs {gk}",
                    c.acc[k]
                );
            }
            assert!((c.pe - g[3]).abs() <= 1e-3 * c.pe.abs().max(1.0));
        }
    }

    #[test]
    fn self_pair_is_predicated_off() {
        let soa = SoaPositionsF32::from_quads([[5.0f32, 5.0, 5.0, 0.0]].into_iter());
        let sub: Substrate<f32> = ScenarioSpec::default().substrate(2.5);
        let t = gpu_texel(&soa, 0, 20.0, &sub, 1.0);
        assert_eq!(t, [0.0; 4]);
        let c = cell_row(&soa, 0, 20.0, &sub, 1.0);
        assert_eq!(c, CellRow::default());
    }
}
