//! Thermostats for equilibration.
//!
//! The paper's kernel is pure NVE, but realistic example workloads (melting,
//! quenching) need temperature control during equilibration. Berendsen-style
//! velocity rescaling is provided; it is simple, stable, and adequate for
//! preparing states.

use crate::system::ParticleSystem;
use vecmath::Real;

/// Velocity-rescaling thermostat with a coupling strength.
///
/// After each step: `v *= sqrt(1 + κ (T_target/T − 1))`. κ = 1 is an
/// immediate hard rescale; small κ relaxes gradually (Berendsen-like).
#[derive(Clone, Copy, Debug)]
pub struct VelocityRescale<T> {
    pub target: T,
    /// Coupling in (0, 1].
    pub kappa: T,
}

impl<T: Real> VelocityRescale<T> {
    pub fn new(target: T, kappa: T) -> Self {
        assert!(target >= T::ZERO, "target temperature must be non-negative");
        assert!(
            kappa > T::ZERO && kappa <= T::ONE,
            "coupling must be in (0, 1]"
        );
        Self { target, kappa }
    }

    /// Hard rescale to the target every application.
    pub fn hard(target: T) -> Self {
        Self::new(target, T::ONE)
    }

    /// Apply one rescale. No-op for an empty or motionless system.
    pub fn apply(&self, sys: &mut ParticleSystem<T>) {
        let current = sys.temperature();
        if current <= T::ZERO {
            return;
        }
        let ratio = self.target / current;
        let factor = (T::ONE + self.kappa * (ratio - T::ONE)).sqrt();
        for v in &mut sys.velocities {
            *v = *v * factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::params::SimConfig;

    #[test]
    fn hard_rescale_hits_target() {
        let mut sys: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(108));
        VelocityRescale::hard(1.5).apply(&mut sys);
        assert!((sys.temperature() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn soft_rescale_moves_toward_target() {
        let mut sys: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(108));
        let t0 = sys.temperature(); // 0.728
        let thermostat = VelocityRescale::new(2.0, 0.25);
        thermostat.apply(&mut sys);
        let t1 = sys.temperature();
        assert!(t1 > t0 && t1 < 2.0, "partial move: {t0} -> {t1}");
        // Repeated application converges.
        for _ in 0..100 {
            thermostat.apply(&mut sys);
        }
        assert!((sys.temperature() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn motionless_system_untouched() {
        let mut sys = ParticleSystem::<f64>::new(10, 5.0);
        VelocityRescale::hard(1.0).apply(&mut sys);
        assert_eq!(sys.temperature(), 0.0);
    }

    #[test]
    #[should_panic(expected = "coupling")]
    fn bad_coupling_rejected() {
        VelocityRescale::<f64>::new(1.0, 0.0);
    }
}
