//! Checkpoint snapshot/restore of [`ParticleSystem`] state.
//!
//! The harness supervisor (DESIGN.md §9) periodically captures the full
//! dynamic state of a run so a faulting segment can be rolled back and
//! retried without restarting from step 0. A checkpoint is *exact*: restore
//! followed by re-running a segment reproduces the uncheckpointed trajectory
//! bit for bit, because capture/restore round-trips every coordinate through
//! `f64` losslessly (both supported precisions embed exactly in `f64`).
//!
//! The byte format (for `encode`/`decode`) is deliberately trivial —
//! little-endian, fixed layout, no compression — so it can be written down
//! in one paragraph and parsed from anything:
//!
//! ```text
//! offset  size  field
//! 0       5     magic "MDCP1"
//! 5       8     step  (u64 LE)
//! 13      8     n     (u64 LE, atom count)
//! 21      8     box_len (f64 LE)
//! 29      8     mass    (f64 LE)
//! 37      24n   positions      (n × 3 × f64 LE)
//! 37+24n  24n   velocities     (n × 3 × f64 LE)
//! 37+48n  24n   accelerations  (n × 3 × f64 LE)
//! ```

use crate::system::ParticleSystem;
use vecmath::{Real, Vec3};

/// Magic prefix identifying the checkpoint byte format, version 1.
pub const MAGIC: &[u8; 5] = b"MDCP1";

/// Size in bytes of the fixed header that precedes the coordinate arrays.
pub const HEADER_BYTES: usize = 5 + 8 + 8 + 8 + 8;

/// A full snapshot of the dynamic state of one run at a step boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemCheckpoint {
    /// Completed integration steps at capture time.
    pub step: u64,
    pub positions: Vec<Vec3<f64>>,
    pub velocities: Vec<Vec3<f64>>,
    pub accelerations: Vec<Vec3<f64>>,
    pub box_len: f64,
    pub mass: f64,
}

impl SystemCheckpoint {
    /// Capture `sys` after `step` completed steps.
    pub fn capture<T: Real>(sys: &ParticleSystem<T>, step: u64) -> Self {
        let to_f64 = |vs: &[Vec3<T>]| vs.iter().map(|v| Vec3::from_f64(v.to_f64())).collect();
        Self {
            step,
            positions: to_f64(&sys.positions),
            velocities: to_f64(&sys.velocities),
            accelerations: to_f64(&sys.accelerations),
            box_len: sys.box_len.to_f64(),
            mass: sys.mass.to_f64(),
        }
    }

    pub fn n(&self) -> usize {
        self.positions.len()
    }

    /// Rebuild a particle system in precision `T` from this snapshot.
    pub fn restore<T: Real>(&self) -> ParticleSystem<T> {
        let from_f64 = |vs: &[Vec3<f64>]| vs.iter().map(|v| Vec3::from_f64(v.to_f64())).collect();
        ParticleSystem {
            positions: from_f64(&self.positions),
            velocities: from_f64(&self.velocities),
            accelerations: from_f64(&self.accelerations),
            box_len: T::from_f64(self.box_len),
            mass: T::from_f64(self.mass),
        }
    }

    /// Serialize to the MDCP1 byte format described in the module docs.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.n();
        let mut out = Vec::with_capacity(HEADER_BYTES + 3 * 24 * n);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&self.box_len.to_le_bytes());
        out.extend_from_slice(&self.mass.to_le_bytes());
        for array in [&self.positions, &self.velocities, &self.accelerations] {
            for v in array.iter() {
                out.extend_from_slice(&v.x.to_le_bytes());
                out.extend_from_slice(&v.y.to_le_bytes());
                out.extend_from_slice(&v.z.to_le_bytes());
            }
        }
        out
    }

    /// Serialize one contiguous atom range — a spatial domain under the
    /// cluster engine's slab decomposition — as raw coordinate bytes:
    /// `len × 24` bytes each of positions, velocities, accelerations, in
    /// MDCP1 field order and endianness but without the header (the owner
    /// of the full checkpoint already has it). This is the wire payload of
    /// one halo/migration message.
    pub fn encode_domain(&self, start: usize, len: usize) -> Vec<u8> {
        let end = (start + len).min(self.n());
        let start = start.min(end);
        let mut out = Vec::with_capacity(3 * 24 * (end - start));
        for array in [&self.positions, &self.velocities, &self.accelerations] {
            for v in &array[start..end] {
                out.extend_from_slice(&v.x.to_le_bytes());
                out.extend_from_slice(&v.y.to_le_bytes());
                out.extend_from_slice(&v.z.to_le_bytes());
            }
        }
        out
    }

    /// FNV-1a checksum of [`Self::encode_domain`]'s payload for the range.
    /// Receivers of a halo/migration message recompute this to detect
    /// in-flight corruption; bit-exact state implies equal checksums.
    pub fn domain_checksum(&self, start: usize, len: usize) -> u64 {
        fnv1a(&self.encode_domain(start, len))
    }

    /// Parse the MDCP1 byte format.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < HEADER_BYTES {
            return Err(CheckpointError::Truncated {
                expected: HEADER_BYTES,
                got: bytes.len(),
            });
        }
        if &bytes[..5] != MAGIC {
            let mut found = [0u8; 5];
            found.copy_from_slice(&bytes[..5]);
            return Err(CheckpointError::BadMagic { found });
        }
        let read_u64 = |at: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(b)
        };
        let read_f64 = |at: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            f64::from_le_bytes(b)
        };
        let step = read_u64(5);
        let n_u64 = read_u64(13);
        let n = usize::try_from(n_u64).map_err(|_| CheckpointError::Truncated {
            expected: usize::MAX,
            got: bytes.len(),
        })?;
        let expected = HEADER_BYTES + 3 * 24 * n;
        if bytes.len() != expected {
            return Err(CheckpointError::Truncated {
                expected,
                got: bytes.len(),
            });
        }
        let box_len = read_f64(21);
        let mass = read_f64(29);
        let mut arrays = [Vec::new(), Vec::new(), Vec::new()];
        let mut at = HEADER_BYTES;
        for array in &mut arrays {
            array.reserve_exact(n);
            for _ in 0..n {
                array.push(Vec3::new(read_f64(at), read_f64(at + 8), read_f64(at + 16)));
                at += 24;
            }
        }
        let [positions, velocities, accelerations] = arrays;
        Ok(Self {
            step,
            positions,
            velocities,
            accelerations,
            box_len,
            mass,
        })
    }
}

/// 64-bit FNV-1a over `bytes` — the same hash family the sweep cache uses
/// for file naming, kept here so checkpoint payload checksums need no
/// extra dependency.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Decode failures for the MDCP1 byte format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with `MDCP1`.
    BadMagic { found: [u8; 5] },
    /// The buffer length does not match the header's atom count.
    Truncated { expected: usize, got: usize },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic { found } => {
                write!(f, "checkpoint magic mismatch: found {found:?}, want MDCP1")
            }
            CheckpointError::Truncated { expected, got } => {
                write!(f, "checkpoint buffer is {got} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::params::SimConfig;

    fn sample_system() -> ParticleSystem<f64> {
        let config = SimConfig::reduced_lj(256);
        init::initialize(&config)
    }

    #[test]
    fn capture_restore_is_identity_f64() {
        let sys = sample_system();
        let cp = SystemCheckpoint::capture(&sys, 17);
        assert_eq!(cp.step, 17);
        assert_eq!(cp.n(), 256);
        let back: ParticleSystem<f64> = cp.restore();
        assert_eq!(back.positions, sys.positions);
        assert_eq!(back.velocities, sys.velocities);
        assert_eq!(back.accelerations, sys.accelerations);
        assert_eq!(back.box_len, sys.box_len);
        assert_eq!(back.mass, sys.mass);
    }

    #[test]
    fn capture_restore_is_identity_f32() {
        let sys32: ParticleSystem<f32> = sample_system().convert();
        let cp = SystemCheckpoint::capture(&sys32, 3);
        let back: ParticleSystem<f32> = cp.restore();
        // f32 embeds exactly in f64, so the round trip is bit-exact.
        assert_eq!(back.positions, sys32.positions);
        assert_eq!(back.velocities, sys32.velocities);
        assert_eq!(back.accelerations, sys32.accelerations);
    }

    #[test]
    fn encode_decode_round_trip() {
        let cp = SystemCheckpoint::capture(&sample_system(), 42);
        let bytes = cp.encode();
        assert_eq!(bytes.len(), HEADER_BYTES + 3 * 24 * 256);
        assert_eq!(&bytes[..5], MAGIC);
        let parsed = SystemCheckpoint::decode(&bytes).expect("round trip decodes");
        assert_eq!(parsed, cp);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut bytes = SystemCheckpoint::capture(&sample_system(), 0).encode();
        bytes[0] = b'X';
        assert!(matches!(
            SystemCheckpoint::decode(&bytes),
            Err(CheckpointError::BadMagic { .. })
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = SystemCheckpoint::capture(&sample_system(), 0).encode();
        assert!(matches!(
            SystemCheckpoint::decode(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::Truncated { .. })
        ));
        assert!(matches!(
            SystemCheckpoint::decode(&bytes[..10]),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn domain_slices_tile_the_full_payload() {
        let cp = SystemCheckpoint::capture(&sample_system(), 9);
        // Uneven split: 256 atoms over 3 domains leaves a remainder slab.
        let cuts = [(0usize, 86usize), (86, 86), (172, 84)];
        let mut stitched = Vec::new();
        let mut per_array: [Vec<u8>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (start, len) in cuts {
            let bytes = cp.encode_domain(start, len);
            assert_eq!(bytes.len(), 3 * 24 * len);
            assert_eq!(cp.domain_checksum(start, len), fnv1a(&bytes));
            for (i, chunk) in bytes.chunks(24 * len).enumerate() {
                per_array[i].extend_from_slice(chunk);
            }
        }
        for arr in per_array {
            stitched.extend_from_slice(&arr);
        }
        assert_eq!(stitched, cp.encode_domain(0, cp.n()));
        // Out-of-range requests clamp instead of panicking.
        assert!(cp.encode_domain(300, 10).is_empty());
        assert_eq!(cp.encode_domain(250, 100).len(), 3 * 24 * 6);
    }

    #[test]
    fn domain_checksum_detects_single_bit_corruption() {
        let cp = SystemCheckpoint::capture(&sample_system(), 0);
        let clean = cp.domain_checksum(0, 64);
        let mut corrupted = cp.clone();
        corrupted.positions[5].y = f64::from_bits(corrupted.positions[5].y.to_bits() ^ 1);
        assert_ne!(corrupted.domain_checksum(0, 64), clean);
        // The corruption is outside this domain, so its checksum is clean.
        assert_eq!(
            corrupted.domain_checksum(64, 64),
            cp.domain_checksum(64, 64)
        );
    }

    #[test]
    fn errors_display() {
        let e = CheckpointError::BadMagic { found: *b"XXXXX" };
        assert!(e.to_string().contains("MDCP1"));
        let e = CheckpointError::Truncated {
            expected: 100,
            got: 3,
        };
        assert!(e.to_string().contains("100"));
    }
}
