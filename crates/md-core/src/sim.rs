//! High-level simulation driver: the one-stop API the examples use.

use crate::bonded::BondedTopology;
use crate::forces::{AllPairsHalfKernel, ForceKernel};
use crate::init;
use crate::observables::EnergyReport;
use crate::params::SimConfig;
use crate::scenario::Substrate;
use crate::system::ParticleSystem;
use crate::verlet::VelocityVerlet;
use vecmath::Real;

/// A ready-to-run MD simulation: system state + integrator + force kernel,
/// optionally with a bonded topology layered on top of the non-bonded LJ
/// interactions (the paper's force field split, §3.5).
pub struct Simulation<T: Real> {
    pub system: ParticleSystem<T>,
    pub substrate: Substrate<T>,
    pub integrator: VelocityVerlet<T>,
    kernel: Box<dyn ForceKernel<T> + Send>,
    topology: BondedTopology,
    /// Potential energy at the current positions.
    last_pe: T,
    steps_done: usize,
}

impl<T: Real> Simulation<T> {
    /// Initialize from a config with the default sequential kernel and prime
    /// the accelerations (so the first Verlet half-kick is correct).
    pub fn prepare(config: SimConfig) -> Self {
        Self::prepare_with_kernel(config, Box::new(AllPairsHalfKernel))
    }

    /// Initialize with a caller-chosen force kernel.
    pub fn prepare_with_kernel(
        config: SimConfig,
        mut kernel: Box<dyn ForceKernel<T> + Send>,
    ) -> Self {
        let mut system = init::initialize::<T>(&config);
        let substrate = config.substrate();
        let last_pe = kernel.compute(&mut system, &substrate);
        Self {
            system,
            substrate,
            integrator: VelocityVerlet::new(T::from_f64(config.dt)),
            kernel,
            topology: BondedTopology::new(),
            last_pe,
            steps_done: 0,
        }
    }

    /// Attach a bonded topology (harmonic bonds/angles evaluated on top of
    /// the non-bonded kernel each step). Recomputes forces.
    pub fn set_topology(&mut self, topology: BondedTopology) {
        topology.validate(self.system.n());
        self.topology = topology;
        self.recompute_forces();
    }

    pub fn topology(&self) -> &BondedTopology {
        &self.topology
    }

    fn recompute_forces(&mut self) {
        let mut pe = self.kernel.compute(&mut self.system, &self.substrate);
        if !self.topology.is_empty() {
            pe += self.topology.accumulate_forces(&mut self.system);
        }
        self.last_pe = pe;
    }

    /// Advance one time step; returns the post-step energies.
    pub fn step(&mut self) -> EnergyReport {
        if self.topology.is_empty() {
            self.last_pe =
                self.integrator
                    .step(&mut self.system, self.kernel.as_mut(), &self.substrate);
        } else {
            // Same velocity-Verlet splitting, with the bonded terms added to
            // the freshly computed non-bonded forces.
            self.integrator.kick_drift(&mut self.system);
            self.recompute_forces();
            self.integrator.kick(&mut self.system);
            self.substrate.apply_thermostat(&mut self.system);
        }
        self.steps_done += 1;
        self.energies()
    }

    /// Advance `n` steps; returns the final energies.
    pub fn run(&mut self, n: usize) -> EnergyReport {
        let mut report = self.energies();
        for _ in 0..n {
            report = self.step();
        }
        report
    }

    /// Current energies without advancing.
    pub fn energies(&self) -> EnergyReport {
        EnergyReport::measure(&self.system, self.last_pe.to_f64())
    }

    pub fn total_energy(&self) -> f64 {
        self.energies().total
    }

    pub fn potential_energy(&self) -> f64 {
        self.last_pe.to_f64()
    }

    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    pub fn kernel_name(&self) -> &'static str {
        self.kernel.name()
    }

    /// Swap the force kernel mid-run (e.g. all-pairs during equilibration,
    /// neighbor list for production). Recomputes forces with the new kernel,
    /// including any attached bonded topology.
    pub fn set_kernel(&mut self, kernel: Box<dyn ForceKernel<T> + Send>) {
        self.kernel = kernel;
        self.recompute_forces();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborListKernel;

    #[test]
    fn prepare_primes_accelerations() {
        let sim = Simulation::<f64>::prepare(SimConfig::reduced_lj(108));
        assert!(
            sim.system.accelerations.iter().any(|a| a.norm2() > 0.0),
            "forces computed at init"
        );
        assert!(sim.potential_energy() < 0.0);
    }

    #[test]
    fn run_counts_steps_and_conserves() {
        let mut sim = Simulation::<f64>::prepare(SimConfig::reduced_lj(108));
        let e0 = sim.total_energy();
        let report = sim.run(50);
        assert_eq!(sim.steps_done(), 50);
        assert!((report.total - e0).abs() / e0.abs() < 1e-2);
    }

    #[test]
    fn run_zero_steps_is_noop() {
        let mut sim = Simulation::<f64>::prepare(SimConfig::reduced_lj(108));
        let before = sim.energies();
        let after = sim.run(0);
        assert_eq!(before, after);
        assert_eq!(sim.steps_done(), 0);
    }

    #[test]
    fn kernel_swap_preserves_trajectory_energy() {
        let mut sim = Simulation::<f64>::prepare(SimConfig::reduced_lj(256));
        sim.run(10);
        let pe_before = sim.potential_energy();
        sim.set_kernel(Box::new(NeighborListKernel::with_default_skin()));
        let pe_after = sim.potential_energy();
        assert!(
            (pe_before - pe_after).abs() < 1e-8 * pe_before.abs(),
            "kernels agree at swap: {pe_before} vs {pe_after}"
        );
        assert_eq!(sim.kernel_name(), "neighbor-list");
    }

    #[test]
    fn bonded_topology_participates_in_dynamics() {
        use crate::bonded::BondedTopology;
        let cfg = SimConfig::reduced_lj(108);
        let mut plain = Simulation::<f64>::prepare(cfg);
        let mut bonded = Simulation::<f64>::prepare(cfg);
        // Bond atoms 0-1 with a stiff spring at their current separation so
        // the trajectory diverges from the unbonded run once they move.
        let r01 = bonded.system.distance2(0, 1).sqrt();
        bonded.set_topology(BondedTopology::new().with_bond(0, 1, 200.0, r01 * 0.8));
        assert!(!bonded.topology().is_empty());

        let e0 = bonded.total_energy();
        plain.run(20);
        bonded.run(20);
        assert_ne!(
            plain.system.positions[0], bonded.system.positions[0],
            "the bond must alter the trajectory"
        );
        // NVE still conserves with the bonded term included.
        let drift = ((bonded.total_energy() - e0) / e0).abs();
        assert!(drift < 1e-2, "bonded NVE drift {drift:.2e}");
    }

    #[test]
    fn kernel_swap_preserves_bonded_forces() {
        use crate::bonded::BondedTopology;
        let mut sim = Simulation::<f64>::prepare(SimConfig::reduced_lj(108));
        let r01 = sim.system.distance2(0, 1).sqrt();
        sim.set_topology(BondedTopology::new().with_bond(0, 1, 100.0, r01 * 0.5));
        let pe_before = sim.potential_energy();
        let acc_before = sim.system.accelerations.clone();
        sim.set_kernel(Box::new(crate::forces::AllPairsFullKernel));
        assert!(
            (sim.potential_energy() - pe_before).abs() < 1e-8 * pe_before.abs(),
            "bonded PE must survive a kernel swap"
        );
        assert!(
            (sim.system.accelerations[0] - acc_before[0]).norm() < 1e-8,
            "bonded forces must survive a kernel swap"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn topology_validated_against_system() {
        use crate::bonded::BondedTopology;
        let mut sim = Simulation::<f64>::prepare(SimConfig::reduced_lj(108));
        sim.set_topology(BondedTopology::new().with_bond(0, 500, 1.0, 1.0));
    }

    #[test]
    fn f32_simulation_runs() {
        let mut sim = Simulation::<f32>::prepare(SimConfig::reduced_lj(108));
        let e0 = sim.total_energy();
        sim.run(20);
        let drift = ((sim.total_energy() - e0) / e0).abs();
        assert!(drift < 1e-2, "f32 drift {drift}");
    }
}
