//! Bonded interactions.
//!
//! The paper (§3.5): "Calculation of forces between bonded atoms is
//! straightforward and less computationally intensive as there are only a
//! very small number of bonded interactions as compared to the non-bonded
//! interactions." The device ports therefore keep bonded terms on the host.
//! This module supplies those terms — harmonic bonds and harmonic angles —
//! so the library covers the full force field of a simple bio-molecular
//! model, not just the LJ kernel.
//!
//! Energy models:
//!
//! - bond: `V(r) = ½ k (r − r₀)²`
//! - angle: `V(θ) = ½ k (θ − θ₀)²`

use crate::system::ParticleSystem;
use vecmath::{pbc, Real, Vec3};

/// A harmonic two-body bond.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bond {
    pub i: usize,
    pub j: usize,
    /// Spring constant k.
    pub k: f64,
    /// Equilibrium length r₀.
    pub r0: f64,
}

/// A harmonic three-body angle (j is the vertex).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Angle {
    pub i: usize,
    pub j: usize,
    pub k_atom: usize,
    /// Spring constant k.
    pub k: f64,
    /// Equilibrium angle θ₀ in radians.
    pub theta0: f64,
}

/// The bonded part of a topology.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BondedTopology {
    pub bonds: Vec<Bond>,
    pub angles: Vec<Angle>,
}

impl BondedTopology {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_bond(mut self, i: usize, j: usize, k: f64, r0: f64) -> Self {
        assert_ne!(i, j, "a bond must join two distinct atoms");
        self.bonds.push(Bond { i, j, k, r0 });
        self
    }

    pub fn with_angle(mut self, i: usize, j: usize, k_atom: usize, k: f64, theta0: f64) -> Self {
        assert!(
            i != j && j != k_atom && i != k_atom,
            "an angle must involve three distinct atoms"
        );
        self.angles.push(Angle {
            i,
            j,
            k_atom,
            k,
            theta0,
        });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.bonds.is_empty() && self.angles.is_empty()
    }

    /// Check all indices are within `n`.
    pub fn validate(&self, n: usize) {
        for b in &self.bonds {
            assert!(
                b.i < n && b.j < n,
                "bond ({}, {}) out of range for {n} atoms",
                b.i,
                b.j
            );
        }
        for a in &self.angles {
            assert!(
                a.i < n && a.j < n && a.k_atom < n,
                "angle ({}, {}, {}) out of range for {n} atoms",
                a.i,
                a.j,
                a.k_atom
            );
        }
    }

    /// Accumulate bonded forces into `sys.accelerations` (mass-weighted) and
    /// return the bonded potential energy. Call after the non-bonded kernel
    /// (which *overwrites* accelerations).
    pub fn accumulate_forces<T: Real>(&self, sys: &mut ParticleSystem<T>) -> T {
        self.validate(sys.n());
        let l = sys.box_len;
        let inv_m = sys.mass.recip();
        let mut pe = T::ZERO;

        for b in &self.bonds {
            let d = pbc::min_image_branchy(sys.positions[b.i] - sys.positions[b.j], l);
            let r = d.norm();
            if r.to_f64() == 0.0 {
                continue; // coincident atoms exert no defined bond force
            }
            let k = T::from_f64(b.k);
            let dr = r - T::from_f64(b.r0);
            pe += T::HALF * k * dr * dr;
            // F_i = −k (r − r₀) r̂
            let f = d * (-(k * dr) / r);
            sys.accelerations[b.i] += f * inv_m;
            sys.accelerations[b.j] -= f * inv_m;
        }

        for a in &self.angles {
            let rij = pbc::min_image_branchy(sys.positions[a.i] - sys.positions[a.j], l);
            let rkj = pbc::min_image_branchy(sys.positions[a.k_atom] - sys.positions[a.j], l);
            let nij = rij.norm();
            let nkj = rkj.norm();
            if nij.to_f64() == 0.0 || nkj.to_f64() == 0.0 {
                continue;
            }
            let cos_t = (rij.dot(rkj) / (nij * nkj)).min(T::ONE).max(-T::ONE);
            let theta = T::from_f64(cos_t.to_f64().acos());
            let k = T::from_f64(a.k);
            let dt = theta - T::from_f64(a.theta0);
            pe += T::HALF * k * dt * dt;

            // F_i = −k(θ−θ₀)·∂θ/∂r_i with ∂θ/∂r = −(1/sinθ)·∂cosθ/∂r,
            // so F_i = +(k·(θ−θ₀)/sinθ)·∂cosθ/∂r_i.
            let sin_t = T::from_f64((1.0 - cos_t.to_f64() * cos_t.to_f64()).max(1e-12).sqrt());
            let coeff = (k * dt) / sin_t;
            // ∂cosθ/∂r_i and ∂cosθ/∂r_k:
            let di = (rkj / (nij * nkj)) - rij * (cos_t / (nij * nij));
            let dk = (rij / (nij * nkj)) - rkj * (cos_t / (nkj * nkj));
            let fi = di * coeff;
            let fk = dk * coeff;
            sys.accelerations[a.i] += fi * inv_m;
            sys.accelerations[a.k_atom] += fk * inv_m;
            sys.accelerations[a.j] -= (fi + fk) * inv_m;
        }

        pe
    }

    /// Bonded potential energy only (no force accumulation).
    pub fn energy<T: Real>(&self, sys: &ParticleSystem<T>) -> T {
        let mut scratch = sys.clone();
        for a in scratch.accelerations.iter_mut() {
            *a = Vec3::zero();
        }
        // accumulate_forces returns the energy; the scratch clone discards
        // the force side effects.
        self.clone().accumulate_forces(&mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_atoms(sep: f64) -> ParticleSystem<f64> {
        let mut sys = ParticleSystem::new(2, 100.0);
        sys.positions[0] = Vec3::new(10.0, 10.0, 10.0);
        sys.positions[1] = Vec3::new(10.0 + sep, 10.0, 10.0);
        sys
    }

    #[test]
    fn bond_at_equilibrium_is_force_free() {
        let mut sys = two_atoms(1.5);
        let topo = BondedTopology::new().with_bond(0, 1, 100.0, 1.5);
        let pe = topo.accumulate_forces(&mut sys);
        assert!(pe.abs() < 1e-12);
        assert!(sys.accelerations[0].norm() < 1e-12);
    }

    #[test]
    fn stretched_bond_pulls_together() {
        let mut sys = two_atoms(2.0);
        let topo = BondedTopology::new().with_bond(0, 1, 100.0, 1.5);
        let pe = topo.accumulate_forces(&mut sys);
        // V = ½·100·0.5² = 12.5
        assert!((pe - 12.5).abs() < 1e-12);
        // Atom 0 pulled toward +x (toward atom 1), magnitude k·dr = 50.
        assert!((sys.accelerations[0].x - 50.0).abs() < 1e-9);
        assert!(
            (sys.accelerations[0] + sys.accelerations[1]).norm() < 1e-12,
            "Newton's 3rd law"
        );
    }

    #[test]
    fn compressed_bond_pushes_apart() {
        let mut sys = two_atoms(1.0);
        let topo = BondedTopology::new().with_bond(0, 1, 100.0, 1.5);
        topo.accumulate_forces(&mut sys);
        assert!(
            sys.accelerations[0].x < 0.0,
            "atom 0 pushed away from atom 1"
        );
    }

    #[test]
    fn bond_force_matches_numeric_gradient() {
        let topo = BondedTopology::new().with_bond(0, 1, 37.0, 1.2);
        let h = 1e-6;
        for sep in [0.9, 1.2, 1.7] {
            let mut sys = two_atoms(sep);
            topo.accumulate_forces(&mut sys);
            let analytic = sys.accelerations[0].x;
            let e = |s: f64| topo.energy(&two_atoms(s));
            // Moving atom 0 by +dx shrinks the separation.
            let numeric = -(e(sep - h) - e(sep + h)) / (2.0 * h);
            assert!(
                (analytic - numeric).abs() < 1e-4 * numeric.abs().max(1.0),
                "sep {sep}: {analytic} vs {numeric}"
            );
        }
    }

    fn water_like(theta: f64) -> ParticleSystem<f64> {
        // Vertex at origin-ish; arms of length 1 at ±θ/2 around +x.
        let mut sys = ParticleSystem::new(3, 100.0);
        sys.positions[1] = Vec3::new(50.0, 50.0, 50.0); // vertex j
        let half = theta / 2.0;
        sys.positions[0] = sys.positions[1] + Vec3::new(half.cos(), half.sin(), 0.0);
        sys.positions[2] = sys.positions[1] + Vec3::new(half.cos(), -half.sin(), 0.0);
        sys
    }

    #[test]
    fn angle_at_equilibrium_is_force_free() {
        let theta0 = 1.9106; // ~109.47°
        let mut sys = water_like(theta0);
        let topo = BondedTopology::new().with_angle(0, 1, 2, 50.0, theta0);
        let pe = topo.accumulate_forces(&mut sys);
        assert!(pe.abs() < 1e-9);
        for a in &sys.accelerations {
            assert!(a.norm() < 1e-6, "{a:?}");
        }
    }

    #[test]
    fn bent_angle_restores_and_conserves_momentum() {
        let theta0 = 2.0;
        let mut sys = water_like(1.6); // compressed angle
        let topo = BondedTopology::new().with_angle(0, 1, 2, 50.0, theta0);
        let pe = topo.accumulate_forces(&mut sys);
        assert!(pe > 0.0);
        let net = sys.accelerations[0] + sys.accelerations[1] + sys.accelerations[2];
        assert!(net.norm() < 1e-9, "net bonded force {net:?}");
        // Arms should be pushed apart (opening the angle): the y components
        // of the arm forces point away from the bisector.
        assert!(sys.accelerations[0].y > 0.0);
        assert!(sys.accelerations[2].y < 0.0);
    }

    #[test]
    fn angle_energy_matches_numeric_gradient() {
        let topo = BondedTopology::new().with_angle(0, 1, 2, 31.0, 1.8);
        let h = 1e-6;
        let theta = 1.4;
        let mut sys = water_like(theta);
        topo.accumulate_forces(&mut sys);
        // Perturb atom 0 along y and compare dE/dy with the analytic force.
        let e_at = |dy: f64| {
            let mut s = water_like(theta);
            s.positions[0].y += dy;
            topo.energy(&s)
        };
        let numeric = -(e_at(h) - e_at(-h)) / (2.0 * h);
        let analytic = sys.accelerations[0].y;
        assert!(
            (analytic - numeric).abs() < 1e-4 * numeric.abs().max(1.0),
            "{analytic} vs {numeric}"
        );
    }

    #[test]
    fn bonded_dynamics_conserve_energy() {
        // A diatomic spring oscillating in NVE: total (bond PE + KE) constant.
        use crate::verlet::VelocityVerlet;
        let topo = BondedTopology::new().with_bond(0, 1, 80.0, 1.5);
        let mut sys = two_atoms(1.8); // stretched start
        let vv = VelocityVerlet::new(0.001);
        let pe0 = topo.accumulate_forces(&mut sys);
        let e0 = pe0 + sys.kinetic_energy();
        let mut pe = pe0;
        for _ in 0..2000 {
            vv.kick_drift(&mut sys);
            for a in sys.accelerations.iter_mut() {
                *a = Vec3::zero();
            }
            pe = topo.accumulate_forces(&mut sys);
            vv.kick(&mut sys);
        }
        let e1 = pe + sys.kinetic_energy();
        assert!(
            ((e1 - e0) / e0).abs() < 1e-4,
            "bonded NVE drift: {e0} -> {e1}"
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_bond_rejected() {
        BondedTopology::new().with_bond(3, 3, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_detected() {
        let mut sys = two_atoms(1.0);
        let topo = BondedTopology::new().with_bond(0, 5, 1.0, 1.0);
        topo.accumulate_forces(&mut sys);
    }
}
