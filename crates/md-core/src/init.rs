//! Workload generation: lattice positions and Maxwell-Boltzmann velocities.
//!
//! The paper's experiments sweep the number of atoms (256 … 8192); each run
//! starts from a regular lattice at a target density with thermal velocities.
//! Initialization is fully deterministic given the `SimConfig` seed.

use crate::params::SimConfig;
use crate::rng::SplitMix64;
use crate::system::ParticleSystem;
use vecmath::{Real, Vec3};

/// Initial placement lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lattice {
    /// Simple cubic: 1 atom per unit cell.
    SimpleCubic,
    /// Face-centered cubic: 4 atoms per unit cell — the ground-state packing
    /// for LJ solids, giving uniform density with no overlaps.
    Fcc,
}

impl Lattice {
    pub fn atoms_per_cell(self) -> usize {
        match self {
            Lattice::SimpleCubic => 1,
            Lattice::Fcc => 4,
        }
    }

    /// Smallest number of unit cells per box edge that holds >= n atoms.
    pub fn cells_for(self, n: usize) -> usize {
        let per = self.atoms_per_cell();
        let mut c = 1usize;
        while c * c * c * per < n {
            c += 1;
        }
        c
    }

    /// Fractional offsets of the basis atoms within a unit cell.
    fn basis(self) -> &'static [[f64; 3]] {
        match self {
            Lattice::SimpleCubic => &[[0.25, 0.25, 0.25]],
            Lattice::Fcc => &[
                [0.25, 0.25, 0.25],
                [0.75, 0.75, 0.25],
                [0.75, 0.25, 0.75],
                [0.25, 0.75, 0.75],
            ],
        }
    }
}

/// Box side length used by [`initialize`] for a config (same as
/// `SimConfig::box_len`, re-exported for symmetry).
pub fn lattice_box_len(config: &SimConfig) -> f64 {
    config.box_len()
}

/// Build a fully initialized system:
///
/// 1. place atoms on the configured lattice inside a cubic box sized for the
///    target density (truncating to exactly `n_atoms` when `exact_n`),
/// 2. draw Maxwell-Boltzmann velocities at the target temperature,
/// 3. remove net momentum and rescale to the exact target temperature.
pub fn initialize<T: Real>(config: &SimConfig) -> ParticleSystem<T> {
    config.validate();
    let n_target = config.n_atoms;
    let cells = config.lattice.cells_for(n_target);
    let box_len = config.box_len();
    let cell = box_len / cells as f64;

    let mut positions = Vec::with_capacity(n_target);
    'fill: for ix in 0..cells {
        for iy in 0..cells {
            for iz in 0..cells {
                for b in config.lattice.basis() {
                    if positions.len() == n_target {
                        break 'fill;
                    }
                    positions.push(Vec3::new(
                        T::from_f64((ix as f64 + b[0]) * cell),
                        T::from_f64((iy as f64 + b[1]) * cell),
                        T::from_f64((iz as f64 + b[2]) * cell),
                    ));
                }
            }
        }
    }
    assert_eq!(positions.len(), n_target);

    let mut sys = ParticleSystem::new(n_target, T::from_f64(box_len));
    sys.positions = positions;

    let mut rng = SplitMix64::new(config.seed);
    maxwell_boltzmann(&mut sys, config.temperature, &mut rng);
    sys
}

/// Draw velocities from the Maxwell-Boltzmann distribution at `temperature`,
/// remove the net momentum, and rescale so the instantaneous temperature is
/// exactly the target.
pub fn maxwell_boltzmann<T: Real>(
    sys: &mut ParticleSystem<T>,
    temperature: f64,
    rng: &mut SplitMix64,
) {
    let n = sys.n();
    if n == 0 {
        return;
    }
    let stddev = (temperature / sys.mass.to_f64()).sqrt();
    for v in &mut sys.velocities {
        *v = Vec3::new(
            T::from_f64(stddev * rng.gaussian()),
            T::from_f64(stddev * rng.gaussian()),
            T::from_f64(stddev * rng.gaussian()),
        );
    }

    // Remove center-of-mass drift.
    let drift = sys.total_momentum() / (T::from_usize(n) * sys.mass);
    for v in &mut sys.velocities {
        *v -= drift;
    }

    // Exact rescale to the target temperature (skip for T=0 or single atom).
    let current = sys.temperature().to_f64();
    if current > 0.0 && temperature > 0.0 {
        let scale = T::from_f64((temperature / current).sqrt());
        for v in &mut sys.velocities {
            *v = *v * scale;
        }
    } else {
        for v in &mut sys.velocities {
            *v = Vec3::zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> SimConfig {
        SimConfig::reduced_lj(n)
    }

    #[test]
    fn exact_atom_count() {
        for &n in &[256usize, 500, 864, 2048] {
            let sys: ParticleSystem<f64> = initialize(&cfg(n));
            assert_eq!(sys.n(), n);
        }
    }

    #[test]
    fn all_positions_inside_box() {
        let sys: ParticleSystem<f64> = initialize(&cfg(500));
        let l = sys.box_len;
        for p in &sys.positions {
            for k in 0..3 {
                assert!((0.0..l).contains(&p[k]));
            }
        }
    }

    #[test]
    fn no_overlapping_atoms() {
        let sys: ParticleSystem<f64> = initialize(&cfg(256));
        // FCC nearest-neighbor distance at ρ*=0.8442 is ~1.09σ; assert a
        // conservative lower bound well above the hard-core wall.
        let mut min2 = f64::INFINITY;
        for i in 0..sys.n() {
            for j in (i + 1)..sys.n() {
                min2 = min2.min(sys.distance2(i, j));
            }
        }
        assert!(min2.sqrt() > 0.8, "closest pair {:.3}σ", min2.sqrt());
    }

    #[test]
    fn temperature_exact_and_momentum_zero() {
        let sys: ParticleSystem<f64> = initialize(&cfg(864));
        assert!((sys.temperature() - 0.728).abs() < 1e-12);
        let p = sys.total_momentum();
        assert!(p.norm() < 1e-10, "net momentum {:?}", p);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: ParticleSystem<f64> = initialize(&cfg(256));
        let b: ParticleSystem<f64> = initialize(&cfg(256));
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.velocities, b.velocities);
        let c: ParticleSystem<f64> = initialize(&cfg(256).with_seed(77));
        assert_ne!(
            a.velocities, c.velocities,
            "different seed, different draws"
        );
        assert_eq!(a.positions, c.positions, "lattice does not depend on seed");
    }

    #[test]
    fn simple_cubic_lattice_works() {
        let sys: ParticleSystem<f64> = initialize(&cfg(216).with_lattice(Lattice::SimpleCubic));
        assert_eq!(sys.n(), 216); // 6³
    }

    #[test]
    fn cells_for_rounds_up() {
        assert_eq!(Lattice::Fcc.cells_for(256), 4); // 4³·4 = 256
        assert_eq!(Lattice::Fcc.cells_for(257), 5);
        assert_eq!(Lattice::SimpleCubic.cells_for(27), 3);
        assert_eq!(Lattice::SimpleCubic.cells_for(28), 4);
    }

    #[test]
    fn f32_initialization_close_to_f64() {
        let a: ParticleSystem<f64> = initialize(&cfg(256));
        let b: ParticleSystem<f32> = initialize(&cfg(256));
        for (pa, pb) in a.positions.iter().zip(&b.positions) {
            assert!((pa.x - pb.x as f64).abs() < 1e-5);
        }
    }
}
