//! Verlet neighbor pairlists — the cache-friendly technique the paper names
//! ("one of the most common techniques is the neighboring atom pairlist
//! construction, which is updated every few simulation time steps") but
//! deliberately does not use in its device ports. Implemented here as the
//! extension/ablation, so the benchmark suite can quantify what the paper
//! left on the table.
//!
//! A pairlist stores, for every atom, the atoms within `cutoff + skin`. The
//! list stays valid until some atom has moved more than `skin / 2` since the
//! last rebuild, at which point it is rebuilt (the conservative standard
//! criterion).

use crate::forces::ForceKernel;
use crate::scenario::Substrate;
use crate::system::ParticleSystem;
use vecmath::{pbc, Real, Vec3};

/// A force kernel backed by a half (i < j) Verlet pairlist with automatic
/// rebuilds.
#[derive(Clone, Debug)]
pub struct NeighborListKernel<T> {
    /// Extra shell radius beyond the cutoff.
    pub skin: T,
    /// Flattened pair list: (i, j) with i < j.
    pairs: Vec<(u32, u32)>,
    /// Positions at the last rebuild (to detect displacement > skin/2).
    anchor: Vec<Vec3<T>>,
    /// Rebuild count (diagnostic).
    pub rebuilds: usize,
}

impl<T: Real> NeighborListKernel<T> {
    pub fn new(skin: T) -> Self {
        assert!(skin > T::ZERO, "skin must be positive");
        Self {
            skin,
            pairs: Vec::new(),
            anchor: Vec::new(),
            rebuilds: 0,
        }
    }

    /// Standard skin choice: 0.3σ.
    pub fn with_default_skin() -> Self {
        Self::new(T::from_f64(0.3))
    }

    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    fn needs_rebuild(&self, sys: &ParticleSystem<T>) -> bool {
        if self.anchor.len() != sys.n() {
            return true;
        }
        let limit2 = (self.skin * T::HALF) * (self.skin * T::HALF);
        sys.positions
            .iter()
            .zip(&self.anchor)
            .any(|(p, a)| pbc::min_image_branchy(*p - *a, sys.box_len).norm2() > limit2)
    }

    fn rebuild(&mut self, sys: &ParticleSystem<T>, sub: &Substrate<T>) {
        let n = sys.n();
        let reach = sub.cutoff() + self.skin;
        let reach2 = reach * reach;
        self.pairs.clear();
        for i in 0..n {
            for j in (i + 1)..n {
                if sys.distance2(i, j) < reach2 {
                    self.pairs.push((i as u32, j as u32));
                }
            }
        }
        self.anchor.clear();
        self.anchor.extend_from_slice(&sys.positions);
        self.rebuilds += 1;
    }
}

impl<T: Real> ForceKernel<T> for NeighborListKernel<T> {
    fn compute(&mut self, sys: &mut ParticleSystem<T>, sub: &Substrate<T>) -> T {
        if self.needs_rebuild(sys) {
            self.rebuild(sys, sub);
        }
        let l = sys.box_len;
        let cutoff2 = sub.cutoff2();
        let inv_m = sys.mass.recip();
        let mut pe = T::ZERO;
        for a in sys.accelerations.iter_mut() {
            *a = Vec3::zero();
        }
        for &(i, j) in &self.pairs {
            let (i, j) = (i as usize, j as usize);
            let d = pbc::min_image_branchy(sys.positions[i] - sys.positions[j], l);
            let r2 = d.norm2();
            if r2 < cutoff2 {
                let (e, f_over_r) = sub.energy_force(r2);
                pe += e;
                let da = d * (f_over_r * inv_m);
                sys.accelerations[i] += da;
                sys.accelerations[j] -= da;
            }
        }
        pe
    }

    fn name(&self) -> &'static str {
        "neighbor-list"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::AllPairsHalfKernel;
    use crate::init::initialize;
    use crate::params::SimConfig;
    use crate::verlet::VelocityVerlet;

    #[test]
    fn matches_reference_on_fresh_system() {
        let cfg = SimConfig::reduced_lj(256);
        let mut s1: ParticleSystem<f64> = initialize(&cfg);
        let mut s2 = s1.clone();
        let sub = cfg.substrate();
        let pe_ref = AllPairsHalfKernel.compute(&mut s1, &sub);
        let mut nl = NeighborListKernel::with_default_skin();
        let pe_nl = nl.compute(&mut s2, &sub);
        assert!((pe_ref - pe_nl).abs() < 1e-9 * pe_ref.abs());
        for (a, b) in s1.accelerations.iter().zip(&s2.accelerations) {
            assert!((*a - *b).norm() < 1e-9);
        }
        assert_eq!(nl.rebuilds, 1);
    }

    #[test]
    fn stays_correct_across_dynamics() {
        // Run with the pairlist; periodically cross-check against reference.
        let cfg = SimConfig::reduced_lj(256);
        let mut sys: ParticleSystem<f64> = initialize(&cfg);
        let sub = cfg.substrate();
        let vv = VelocityVerlet::new(cfg.dt);
        let mut nl = NeighborListKernel::with_default_skin();
        nl.compute(&mut sys, &sub);
        for step in 0..60 {
            let pe_nl = vv.step(&mut sys, &mut nl, &sub);
            if step % 15 == 0 {
                let mut check = sys.clone();
                let pe_ref = AllPairsHalfKernel.compute(&mut check, &sub);
                assert!(
                    (pe_nl - pe_ref).abs() < 1e-8 * pe_ref.abs().max(1.0),
                    "step {step}: {pe_nl} vs {pe_ref}"
                );
            }
        }
        assert!(nl.rebuilds >= 1, "list rebuilt at least once");
    }

    #[test]
    fn rebuild_triggered_by_motion() {
        let cfg = SimConfig::reduced_lj(108);
        let mut sys: ParticleSystem<f64> = initialize(&cfg);
        let sub = cfg.substrate();
        let mut nl = NeighborListKernel::new(0.1); // tiny skin -> rebuild fast
        nl.compute(&mut sys, &sub);
        assert_eq!(nl.rebuilds, 1);
        // Move one atom beyond skin/2.
        sys.positions[0].x += 0.2;
        nl.compute(&mut sys, &sub);
        assert_eq!(nl.rebuilds, 2);
        // No motion → no rebuild.
        nl.compute(&mut sys, &sub);
        assert_eq!(nl.rebuilds, 2);
    }

    #[test]
    fn pair_count_bounded_by_full_n2() {
        let cfg = SimConfig::reduced_lj(256);
        let mut sys: ParticleSystem<f64> = initialize(&cfg);
        let sub = cfg.substrate();
        let mut nl = NeighborListKernel::with_default_skin();
        nl.compute(&mut sys, &sub);
        let n = sys.n();
        assert!(nl.pair_count() < n * (n - 1) / 2, "list must prune pairs");
        assert!(nl.pair_count() > 0);
    }

    #[test]
    #[should_panic(expected = "skin")]
    fn zero_skin_rejected() {
        NeighborListKernel::<f64>::new(0.0);
    }
}
