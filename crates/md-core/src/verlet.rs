//! Velocity-Verlet integration (paper section 3.5 / Figure 4).
//!
//! The paper's pseudo-code per time step:
//!
//! ```text
//! 1. advance velocities
//! 2. calculate forces on each of the N atoms
//! 3. move atoms based on their position, velocities & forces
//! 4. update positions
//! 5. calculate new kinetic and total energies
//! ```
//!
//! which is the standard velocity-Verlet splitting: a half-kick with the old
//! accelerations, a drift, a force recomputation, and a second half-kick.
//! Implemented here in exactly that shape so the device ports (which offload
//! only step 2) share the surrounding integrator code path.

use crate::forces::ForceKernel;
use crate::observables::EnergyReport;
use crate::scenario::Substrate;
use crate::system::ParticleSystem;
use vecmath::Real;

/// The velocity-Verlet integrator. Stateless apart from the timestep; force
/// state lives in the kernel, physics selection in the [`Substrate`].
///
/// ```
/// use md_core::prelude::*;
/// use md_core::forces::ForceKernel;
///
/// let cfg = SimConfig::reduced_lj(108);
/// let mut sys: ParticleSystem<f64> = md_core::init::initialize(&cfg);
/// let sub = cfg.substrate::<f64>();
/// let vv = VelocityVerlet::new(cfg.dt);
/// let mut kernel = AllPairsHalfKernel;
/// kernel.compute(&mut sys, &sub); // prime accelerations
/// let report = vv.run(&mut sys, &mut kernel, &sub, 10);
/// assert!(report.total.is_finite());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct VelocityVerlet<T> {
    pub dt: T,
}

impl<T: Real> VelocityVerlet<T> {
    pub fn new(dt: T) -> Self {
        assert!(dt > T::ZERO, "timestep must be positive");
        Self { dt }
    }

    /// Step 1 + 4 of Figure 4 for the first half: v += a·dt/2, r += v·dt.
    /// Positions are wrapped back into the periodic box after the drift.
    pub fn kick_drift(&self, sys: &mut ParticleSystem<T>) {
        let half_dt = self.dt * T::HALF;
        for i in 0..sys.n() {
            let a = sys.accelerations[i];
            sys.velocities[i] += a * half_dt;
            let v = sys.velocities[i];
            sys.positions[i] += v * self.dt;
        }
        sys.wrap_positions();
    }

    /// Second half-kick with the freshly computed accelerations.
    pub fn kick(&self, sys: &mut ParticleSystem<T>) {
        let half_dt = self.dt * T::HALF;
        for i in 0..sys.n() {
            let a = sys.accelerations[i];
            sys.velocities[i] += a * half_dt;
        }
    }

    /// One full time step with the given force kernel. Returns the potential
    /// energy at the new positions (step 5 computes energies from it). The
    /// substrate's thermostat, if any, is applied after the final kick — a
    /// no-op under NVE, so the paper's integration path is untouched.
    pub fn step(
        &self,
        sys: &mut ParticleSystem<T>,
        kernel: &mut dyn ForceKernel<T>,
        sub: &Substrate<T>,
    ) -> T {
        self.kick_drift(sys);
        let pe = kernel.compute(sys, sub);
        self.kick(sys);
        sub.apply_thermostat(sys);
        pe
    }

    /// Run `steps` time steps; returns the energy report after the last step.
    pub fn run(
        &self,
        sys: &mut ParticleSystem<T>,
        kernel: &mut dyn ForceKernel<T>,
        sub: &Substrate<T>,
        steps: usize,
    ) -> EnergyReport {
        let mut pe = T::ZERO;
        for _ in 0..steps {
            pe = self.step(sys, kernel, sub);
        }
        EnergyReport::measure(sys, pe.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::AllPairsHalfKernel;
    use crate::init::initialize;
    use crate::params::SimConfig;

    fn setup(n: usize) -> (ParticleSystem<f64>, Substrate<f64>, VelocityVerlet<f64>) {
        let cfg = SimConfig::reduced_lj(n);
        let sys = initialize(&cfg);
        (sys, cfg.substrate(), VelocityVerlet::new(cfg.dt))
    }

    #[test]
    fn energy_conserved_over_many_steps() {
        let (mut sys, sub, vv) = setup(108);
        let mut kernel = AllPairsHalfKernel;
        // Prime accelerations for the first half-kick.
        let pe0 = kernel.compute(&mut sys, &sub);
        let e0 = pe0 + sys.kinetic_energy();
        let mut pe = pe0;
        for _ in 0..200 {
            pe = vv.step(&mut sys, &mut kernel, &sub);
        }
        let e1 = pe + sys.kinetic_energy();
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 5e-3, "relative energy drift {drift:.2e} too large");
        assert!(sys.is_finite());
    }

    #[test]
    fn momentum_conserved() {
        let (mut sys, sub, vv) = setup(108);
        let mut kernel = AllPairsHalfKernel;
        kernel.compute(&mut sys, &sub);
        for _ in 0..100 {
            vv.step(&mut sys, &mut kernel, &sub);
        }
        assert!(sys.total_momentum().norm() < 1e-8);
    }

    #[test]
    fn smaller_timestep_conserves_better() {
        let drift_for = |dt: f64| {
            let cfg = SimConfig::reduced_lj(108).with_dt(dt);
            let mut sys: ParticleSystem<f64> = initialize(&cfg);
            // Shifted potential: energy continuous at the cutoff, so drift is
            // the integrator's O(dt²) error rather than truncation jumps.
            let sub = Substrate::from_lj(cfg.lj_params::<f64>().shifted());
            let vv = VelocityVerlet::new(dt);
            let mut kernel = AllPairsHalfKernel;
            let pe0 = kernel.compute(&mut sys, &sub);
            let e0 = pe0 + sys.kinetic_energy();
            let mut pe = pe0;
            // Same physical time: steps ∝ 1/dt.
            let steps = (0.5 / dt) as usize;
            for _ in 0..steps {
                pe = vv.step(&mut sys, &mut kernel, &sub);
            }
            ((pe + sys.kinetic_energy() - e0) / e0).abs()
        };
        let coarse = drift_for(0.005);
        let fine = drift_for(0.00125);
        // Verlet is O(dt²) in energy error; 4x smaller dt ≈ 16x less drift.
        // Assert a conservative factor.
        assert!(
            fine < coarse / 2.0 || fine < 1e-7,
            "fine {fine:.2e} vs coarse {coarse:.2e}"
        );
    }

    #[test]
    fn positions_stay_wrapped() {
        let (mut sys, sub, vv) = setup(108);
        let mut kernel = AllPairsHalfKernel;
        kernel.compute(&mut sys, &sub);
        for _ in 0..50 {
            vv.step(&mut sys, &mut kernel, &sub);
        }
        let l = sys.box_len;
        for p in &sys.positions {
            for k in 0..3 {
                assert!((0.0..l).contains(&p[k]));
            }
        }
    }

    #[test]
    fn reversibility_one_step() {
        // Take a step, negate velocities, take another: back to the start
        // (velocity Verlet is time-reversible up to roundoff).
        let (mut sys, sub, vv) = setup(108);
        let mut kernel = AllPairsHalfKernel;
        kernel.compute(&mut sys, &sub);
        let start = sys.positions.clone();
        vv.step(&mut sys, &mut kernel, &sub);
        for v in &mut sys.velocities {
            *v = -*v;
        }
        vv.step(&mut sys, &mut kernel, &sub);
        for (p, q) in sys.positions.iter().zip(&start) {
            let d = vecmath::pbc::min_image_branchy(*p - *q, sys.box_len);
            assert!(d.norm() < 1e-10, "did not return: {:?}", d);
        }
    }

    #[test]
    #[should_panic(expected = "timestep")]
    fn zero_dt_rejected() {
        VelocityVerlet::<f64>::new(0.0);
    }

    #[test]
    fn run_returns_energy_report() {
        let (mut sys, sub, vv) = setup(108);
        let mut kernel = AllPairsHalfKernel;
        kernel.compute(&mut sys, &sub);
        let report = vv.run(&mut sys, &mut kernel, &sub, 10);
        assert!(report.kinetic > 0.0);
        assert!(report.potential < 0.0);
        assert!((report.total - (report.kinetic + report.potential)).abs() < 1e-12);
    }
}
