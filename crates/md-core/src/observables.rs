//! Measured quantities: energies, temperature, radial distribution.

use crate::forces::for_each_pair;
use crate::system::ParticleSystem;
use vecmath::Real;

/// Snapshot of the system's energies at the end of a step (the paper's
/// step 5: "calculate new kinetic and total energies"). Stored in f64
/// regardless of simulation precision so reports compare across devices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyReport {
    pub kinetic: f64,
    pub potential: f64,
    pub total: f64,
    pub temperature: f64,
}

impl EnergyReport {
    pub fn measure<T: Real>(sys: &ParticleSystem<T>, potential: f64) -> Self {
        let kinetic = sys.kinetic_energy().to_f64();
        Self {
            kinetic,
            potential,
            total: kinetic + potential,
            temperature: sys.temperature().to_f64(),
        }
    }

    /// Relative deviation of `other`'s total energy from `self`'s.
    pub fn relative_drift(&self, other: &EnergyReport) -> f64 {
        if self.total == 0.0 {
            (other.total - self.total).abs()
        } else {
            ((other.total - self.total) / self.total).abs()
        }
    }
}

/// Radial distribution function g(r) histogram up to `r_max` with `bins`
/// bins. A standard MD observable; used by the argon example to show the
/// library does real physics, not just benchmarks.
pub fn radial_distribution<T: Real>(
    sys: &ParticleSystem<T>,
    r_max: f64,
    bins: usize,
) -> Vec<(f64, f64)> {
    assert!(bins > 0);
    assert!(r_max > 0.0);
    let n = sys.n();
    let mut hist = vec![0u64; bins];
    let dr = r_max / bins as f64;
    for_each_pair(sys, T::from_f64(r_max * r_max), |_, _, r2| {
        let r = r2.to_f64().sqrt();
        let bin = ((r / dr) as usize).min(bins - 1);
        hist[bin] += 1;
    });
    let volume = sys.box_len.to_f64().powi(3);
    let density = n as f64 / volume;
    let norm = 4.0 / 3.0 * std::f64::consts::PI * density * n as f64 / 2.0;
    hist.iter()
        .enumerate()
        .map(|(k, &count)| {
            let r_lo = k as f64 * dr;
            let r_hi = r_lo + dr;
            let shell = norm * (r_hi.powi(3) - r_lo.powi(3));
            let g = if shell > 0.0 {
                count as f64 / shell
            } else {
                0.0
            };
            (r_lo + dr / 2.0, g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::params::SimConfig;

    #[test]
    fn energy_report_totals() {
        let sys: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(108));
        let r = EnergyReport::measure(&sys, -500.0);
        assert!(r.kinetic > 0.0);
        assert_eq!(r.total, r.kinetic - 500.0);
        assert!((r.temperature - 0.728).abs() < 1e-12);
    }

    #[test]
    fn relative_drift_symmetry_zero() {
        let sys: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(64).with_density(0.3));
        let r = EnergyReport::measure(&sys, -10.0);
        assert_eq!(r.relative_drift(&r), 0.0);
    }

    #[test]
    fn rdf_zero_inside_core_peak_near_rmin() {
        let sys: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(500));
        let g = radial_distribution(&sys, 2.5, 50);
        // No pairs closer than ~0.9σ in a lattice at liquid density.
        let inner: f64 = g.iter().take_while(|(r, _)| *r < 0.8).map(|(_, v)| v).sum();
        assert_eq!(inner, 0.0, "g(r) must vanish inside the core");
        // Normalization: g(r) → O(1) at large r; the lattice gives peaks but
        // the mean over the outer half should be within a loose band.
        let outer: Vec<f64> = g
            .iter()
            .filter(|(r, _)| *r > 1.0)
            .map(|(_, v)| *v)
            .collect();
        let mean = outer.iter().sum::<f64>() / outer.len() as f64;
        assert!((0.3..3.0).contains(&mean), "outer g(r) mean {mean}");
    }

    #[test]
    #[should_panic]
    fn rdf_zero_bins_rejected() {
        let sys: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(64).with_density(0.3));
        radial_distribution(&sys, 2.5, 0);
    }
}
