//! Molecular-dynamics core library.
//!
//! This crate implements the MD kernel the paper studies (section 3.4/3.5):
//!
//! - the 6-12 Lennard-Jones potential with a radial cutoff ([`lj`]),
//! - velocity-Verlet integration ([`verlet`]), following the five-step
//!   structure of the paper's Figure 4,
//! - the deliberately cache-unfriendly O(N²) all-pairs force evaluation with
//!   distances computed on the fly ([`forces`]) — the paper explicitly does
//!   *not* use pairlists on the device ports,
//! - plus the cache-friendly techniques the paper names but declines to use,
//!   as extensions: Verlet neighbor lists ([`neighbor`]) and cell lists
//!   ([`celllist`]),
//! - a host-parallel kernel built on rayon ([`parallel`]) for real
//!   modern-hardware measurements,
//! - workload generation: cubic/FCC lattices and Maxwell-Boltzmann velocity
//!   initialization ([`init`]), with a deterministic RNG ([`rng`]).
//!
//! Everything is generic over [`vecmath::Real`] so the same kernel code runs
//! in `f32` (the precision the paper uses on the Cell and GPU) and `f64` (the
//! MTA-2 and Opteron reference precision).
//!
//! # Quick start
//!
//! ```
//! use md_core::prelude::*;
//!
//! // 256 atoms of LJ "argon" in reduced units at liquid density.
//! let mut sim = Simulation::<f64>::prepare(SimConfig::reduced_lj(256));
//! let e0 = sim.total_energy();
//! sim.run(100);
//! let e1 = sim.total_energy();
//! assert!(((e1 - e0) / e0).abs() < 1e-2, "NVE energy is conserved");
//! ```

pub mod analysis;
pub mod bonded;
pub mod celllist;
pub mod checkpoint;
pub mod device;
pub mod forces;
pub mod init;
pub mod io;
pub mod lj;
pub mod neighbor;
pub mod observables;
pub mod parallel;
pub mod params;
pub mod rng;
pub mod scenario;
pub mod shared_eval;
pub mod sim;
pub mod system;
pub mod thermostat;
pub mod verlet;

pub mod prelude {
    //! Glob-import surface for the common types.
    pub use crate::analysis::{BlockAverage, DisplacementTracker, VelocityAutocorrelation};
    pub use crate::bonded::{Angle, Bond, BondedTopology};
    pub use crate::celllist::CellListKernel;
    pub use crate::checkpoint::SystemCheckpoint;
    pub use crate::device::{
        slab_domains, DeviceError, DeviceRun, DomainRegion, HostParallelism, MdDevice, RunOptions,
    };
    pub use crate::forces::{AllPairsFullKernel, AllPairsHalfKernel, ForceKernel, PairVisitor};
    pub use crate::init::{lattice_box_len, Lattice};
    pub use crate::lj::LjParams;
    pub use crate::neighbor::NeighborListKernel;
    pub use crate::observables::EnergyReport;
    pub use crate::parallel::RayonKernel;
    pub use crate::params::SimConfig;
    pub use crate::rng::SplitMix64;
    pub use crate::scenario::{
        Ensemble, PairPotential, Potential, PrecisionPolicy, ScenarioSpec, Substrate,
    };
    pub use crate::sim::Simulation;
    pub use crate::system::ParticleSystem;
    pub use crate::thermostat::VelocityRescale;
    pub use crate::verlet::VelocityVerlet;
    pub use vecmath::{Real, Vec3};
}
