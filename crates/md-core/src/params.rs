//! Simulation configuration.

use crate::init::Lattice;
use crate::lj::LjParams;
use crate::scenario::{ScenarioSpec, Substrate};

/// Full description of an MD workload — enough to reproduce any experiment.
///
/// All quantities are in reduced Lennard-Jones units (ε = σ = m = 1), the
/// conventional choice for LJ benchmark kernels like the paper's.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Number of atoms. Lattice initialization may round this up to the next
    /// perfect lattice filling unless `exact_n` is set.
    pub n_atoms: usize,
    /// Reduced number density ρ* = N σ³ / V.
    pub density: f64,
    /// Initial reduced temperature T* = k_B T / ε.
    pub temperature: f64,
    /// Integration timestep Δt* (in units of σ √(m/ε)).
    pub dt: f64,
    /// Radial interaction cutoff in σ.
    pub cutoff: f64,
    /// Lattice used for initial positions.
    pub lattice: Lattice,
    /// RNG seed for velocity initialization and lattice jitter.
    pub seed: u64,
    /// If true, truncate to exactly `n_atoms` after lattice fill.
    pub exact_n: bool,
    /// Which physics scenario to run: potential × ensemble × precision
    /// policy (DESIGN.md §16). Defaults to the paper-faithful LJ/NVE/native.
    pub scenario: ScenarioSpec,
}

impl SimConfig {
    /// The canonical benchmark workload: LJ liquid near the triple point
    /// (ρ* = 0.8442, T* = 0.728), dt = 0.005, cutoff 2.5σ — the same regime
    /// classic MD kernel benchmarks use, and dense enough that a meaningful
    /// fraction of pairs falls inside the cutoff (the paper notes only a few
    /// tested pairs of the full N² interact).
    pub fn reduced_lj(n_atoms: usize) -> Self {
        Self {
            n_atoms,
            density: 0.8442,
            temperature: 0.728,
            dt: 0.005,
            cutoff: 2.5,
            lattice: Lattice::Fcc,
            seed: 0x5EED_0001,
            exact_n: true,
            scenario: ScenarioSpec::default(),
        }
    }

    /// The paper's headline workload size (2048 atoms, 10 time steps is the
    /// Table 1 configuration; steps are chosen by the caller).
    pub fn paper_2048() -> Self {
        Self::reduced_lj(2048)
    }

    /// Lennard-Jones parameters implied by reduced units. Kept for
    /// LJ-specific call sites (analysis, tests); the run path resolves the
    /// scenario through [`Self::substrate`] instead.
    pub fn lj_params<T: vecmath::Real>(&self) -> LjParams<T> {
        LjParams::reduced(T::from_f64(self.cutoff))
    }

    /// Resolve this config's scenario into precision `T` — the evaluator
    /// every force kernel and device lane runs against.
    pub fn substrate<T: vecmath::Real>(&self) -> Substrate<T> {
        self.scenario.substrate(self.cutoff)
    }

    /// The scenario identity token, for cache keys and ledgers.
    pub fn scenario_token(&self) -> String {
        self.scenario.cache_token()
    }

    /// Cubic box side length L for this (N, ρ).
    pub fn box_len(&self) -> f64 {
        (self.n_atoms as f64 / self.density).cbrt()
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    pub fn with_cutoff(mut self, cutoff: f64) -> Self {
        self.cutoff = cutoff;
        self
    }

    pub fn with_density(mut self, density: f64) -> Self {
        self.density = density;
        self
    }

    pub fn with_temperature(mut self, temperature: f64) -> Self {
        self.temperature = temperature;
        self
    }

    pub fn with_lattice(mut self, lattice: Lattice) -> Self {
        self.lattice = lattice;
        self
    }

    pub fn with_scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sanity checks; panics with a descriptive message on nonsense input.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Non-panicking validation, for surfaces (CLI) that report errors
    /// gracefully.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.n_atoms < 2 {
            return Err("need at least two atoms".into());
        }
        if self.density <= 0.0 {
            return Err("density must be positive".into());
        }
        if self.dt <= 0.0 {
            return Err("timestep must be positive".into());
        }
        if self.cutoff <= 0.0 {
            return Err("cutoff must be positive".into());
        }
        if self.cutoff > self.box_len() / 2.0 {
            return Err(format!(
                "cutoff {:.3} exceeds half the box length {:.3}; minimum-image is invalid \
                 (reduce cutoff or increase N)",
                self.cutoff,
                self.box_len() / 2.0,
            ));
        }
        self.scenario.try_validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_len_matches_density() {
        let c = SimConfig::reduced_lj(1000);
        let v = c.box_len().powi(3);
        assert!((1000.0 / v - 0.8442).abs() < 1e-9);
    }

    #[test]
    fn paper_workload_is_valid() {
        SimConfig::paper_2048().validate();
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn cutoff_larger_than_half_box_rejected() {
        // 16 atoms at liquid density → box ~2.67σ; cutoff 2.5σ is too big.
        SimConfig::reduced_lj(16).validate();
    }

    #[test]
    fn builders_chain() {
        let c = SimConfig::reduced_lj(500)
            .with_seed(9)
            .with_dt(0.001)
            .with_cutoff(2.0)
            .with_density(0.5)
            .with_temperature(1.5);
        assert_eq!(c.seed, 9);
        assert_eq!(c.dt, 0.001);
        assert_eq!(c.cutoff, 2.0);
        assert_eq!(c.density, 0.5);
        assert_eq!(c.temperature, 1.5);
    }

    #[test]
    fn lj_params_reduced_units() {
        let c = SimConfig::reduced_lj(500);
        let p = c.lj_params::<f64>();
        assert_eq!(p.cutoff, 2.5);
        assert_eq!(p.epsilon, 1.0);
        assert_eq!(p.sigma, 1.0);
    }
}
