//! Host-parallel force kernel built on rayon.
//!
//! The modern answer to the paper's question: today's multi-core CPUs run the
//! per-atom gather formulation in parallel with a parallel iterator. Used by
//! the Criterion benches to put real present-day numbers next to the
//! simulated 2006 devices.

use crate::forces::ForceKernel;
use crate::lj::LjParams;
use crate::system::ParticleSystem;
use rayon::prelude::*;
use vecmath::{pbc, Real, Vec3};

/// Data-parallel per-atom gather kernel (same formulation as the device
/// ports: each atom independently scans all others, so each pair is visited
/// twice and the accumulated PE is halved).
#[derive(Clone, Copy, Debug, Default)]
pub struct RayonKernel;

impl<T: Real> ForceKernel<T> for RayonKernel {
    fn compute(&mut self, sys: &mut ParticleSystem<T>, params: &LjParams<T>) -> T {
        let l = sys.box_len;
        let cutoff2 = params.cutoff2();
        let inv_m = sys.mass.recip();
        let positions = &sys.positions;

        // Indexed parallel map preserves element order, so accelerations land
        // at the right atom.
        let per_atom: Vec<(Vec3<T>, T)> = positions
            .par_iter()
            .enumerate()
            .map(|(i, &pi)| {
                let mut acc = Vec3::zero();
                let mut pe = T::ZERO;
                for (j, &pj) in positions.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let d = pbc::min_image_branchy(pi - pj, l);
                    let r2 = d.norm2();
                    if r2 < cutoff2 {
                        let (e, f_over_r) = params.energy_force(r2);
                        pe += e;
                        acc += d * (f_over_r * inv_m);
                    }
                }
                (acc, pe)
            })
            .collect();

        let mut pe_twice = T::ZERO;
        for (i, (acc, pe)) in per_atom.into_iter().enumerate() {
            sys.accelerations[i] = acc;
            pe_twice += pe;
        }
        pe_twice * T::HALF
    }

    fn name(&self) -> &'static str {
        "rayon-parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::AllPairsFullKernel;
    use crate::init::initialize;
    use crate::params::SimConfig;

    #[test]
    fn matches_sequential_gather_kernel_exactly_in_structure() {
        let cfg = SimConfig::reduced_lj(256);
        let mut s1: ParticleSystem<f64> = initialize(&cfg);
        let mut s2 = s1.clone();
        let params = cfg.lj_params();
        let pe_seq = AllPairsFullKernel.compute(&mut s1, &params);
        let pe_par = RayonKernel.compute(&mut s2, &params);
        // Same per-atom summation order within each atom's row, so forces
        // match bit-for-bit; PE reduction order differs only across atoms.
        assert_eq!(s1.accelerations, s2.accelerations);
        assert!((pe_seq - pe_par).abs() < 1e-9 * pe_seq.abs());
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SimConfig::reduced_lj(108);
        let params = cfg.lj_params();
        let base: ParticleSystem<f64> = initialize(&cfg);
        let mut a = base.clone();
        let mut b = base;
        let pe_a = RayonKernel.compute(&mut a, &params);
        let pe_b = RayonKernel.compute(&mut b, &params);
        assert_eq!(pe_a, pe_b, "indexed collect keeps reduction deterministic");
        assert_eq!(a.accelerations, b.accelerations);
    }

    #[test]
    fn f32_variant_close_to_f64() {
        let cfg = SimConfig::reduced_lj(108);
        let params64 = cfg.lj_params::<f64>();
        let params32 = cfg.lj_params::<f32>();
        let mut s64: ParticleSystem<f64> = initialize(&cfg);
        let mut s32: ParticleSystem<f32> = s64.convert();
        let pe64 = RayonKernel.compute(&mut s64, &params64);
        let pe32 = RayonKernel.compute(&mut s32, &params32);
        assert!(
            (pe64 - pe32 as f64).abs() < 2e-3 * pe64.abs(),
            "{pe64} vs {pe32}"
        );
    }
}
