//! Host-parallel execution primitives (DESIGN.md §12).
//!
//! Two layers live here:
//!
//! - [`map_lanes`] / [`map_indexed`]: the order-preserving indexed map every
//!   device simulator uses to run its simulated lanes (SPEs, fragment
//!   batches, streams, gather rows) on host threads. Reductions never happen
//!   inside the map — devices fold the returned per-lane values serially, in
//!   lane order, so results are bitwise identical at any thread count.
//! - [`RayonKernel`]: the modern answer to the paper's question — today's
//!   multi-core CPUs run the per-atom gather formulation in parallel with a
//!   parallel iterator. Used by the Criterion benches to put real
//!   present-day numbers next to the simulated 2006 devices.

use crate::device::HostParallelism;
use crate::forces::{gather_row, ForceKernel, GatherRow, SoaPositions};
use crate::scenario::Substrate;
use crate::system::ParticleSystem;
use rayon::prelude::*;
use vecmath::Real;

/// Run `f(i, &mut lanes[i])` for every lane, returning the per-lane results
/// in index order.
///
/// `Serial` executes the lanes one after another on the calling thread;
/// `Threads(n)` fans them out on a pool of up to `n` workers. Both settings
/// run the *same* lane closure over the same lanes and collect in index
/// order, so a caller that folds the returned values serially gets bitwise
/// identical results either way. If the pool cannot be built, the map
/// degrades to serial execution (same results, no wall-clock win).
pub fn map_lanes<T, R, F>(par: HostParallelism, lanes: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    match par {
        HostParallelism::Serial => lanes.iter_mut().enumerate().map(|(i, l)| f(i, l)).collect(),
        HostParallelism::Threads(n) => match rayon::ThreadPoolBuilder::new().num_threads(n).build()
        {
            Ok(pool) => pool.install(|| {
                lanes
                    .par_iter_mut()
                    .enumerate()
                    .map(|(i, l)| f(i, l))
                    .collect()
            }),
            Err(_) => lanes.iter_mut().enumerate().map(|(i, l)| f(i, l)).collect(),
        },
    }
}

/// [`map_lanes`] for lanes that are just indices: run `f(0..n)` and return
/// the results in index order. Used when the per-lane state is read-only
/// (e.g. per-atom gather rows over a shared position array).
pub fn map_indexed<R, F>(par: HostParallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match par {
        HostParallelism::Serial => (0..n).map(f).collect(),
        HostParallelism::Threads(t) => match rayon::ThreadPoolBuilder::new().num_threads(t).build()
        {
            Ok(pool) => pool.install(|| {
                let lanes: Vec<()> = vec![(); n];
                lanes.par_iter().enumerate().map(|(i, ())| f(i)).collect()
            }),
            Err(_) => (0..n).map(f).collect(),
        },
    }
}

/// Data-parallel per-atom gather kernel (same formulation as the device
/// ports: each atom independently scans all others, so each pair is visited
/// twice and the accumulated PE is halved). Shares the tiled SoA row
/// ([`gather_row`]) and the serial in-order PE fold with
/// [`crate::forces::AllPairsFullKernel`], so the two agree bit for bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct RayonKernel;

impl<T: Real> ForceKernel<T> for RayonKernel {
    fn compute(&mut self, sys: &mut ParticleSystem<T>, sub: &Substrate<T>) -> T {
        let l = sys.box_len;
        let inv_m = sys.mass.recip();
        let soa = SoaPositions::from_positions(&sys.positions);

        // Indexed parallel map preserves element order, so accelerations land
        // at the right atom; the PE fold below runs serially in row order.
        let rows: Vec<GatherRow<T>> = (0..sys.n())
            .collect::<Vec<usize>>()
            .par_iter()
            .enumerate()
            .map(|(_, &i)| gather_row(&soa, i, l, sub, inv_m))
            .collect();

        let mut pe_twice = T::ZERO;
        for (i, row) in rows.into_iter().enumerate() {
            sys.accelerations[i] = row.acc;
            pe_twice += row.pe;
        }
        pe_twice * T::HALF
    }

    fn name(&self) -> &'static str {
        "rayon-parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::HostParallelism;
    use crate::forces::AllPairsFullKernel;
    use crate::init::initialize;
    use crate::params::SimConfig;

    #[test]
    fn matches_sequential_gather_kernel_exactly_in_structure() {
        let cfg = SimConfig::reduced_lj(256);
        let mut s1: ParticleSystem<f64> = initialize(&cfg);
        let mut s2 = s1.clone();
        let sub = cfg.substrate();
        let pe_seq = AllPairsFullKernel.compute(&mut s1, &sub);
        let pe_par = RayonKernel.compute(&mut s2, &sub);
        // Both kernels run the same gather_row per atom and fold PE serially
        // in row order, so forces AND energy match bit for bit.
        assert_eq!(s1.accelerations, s2.accelerations);
        assert_eq!(pe_seq, pe_par);
    }

    #[test]
    fn map_lanes_parallel_matches_serial_bitwise() {
        let mk = || (0..97u64).map(|i| i as f64 * 0.37).collect::<Vec<f64>>();
        let run = |par: HostParallelism| {
            let mut lanes = mk();
            let out = map_lanes(par, &mut lanes, |i, lane| {
                *lane += i as f64;
                *lane * 1.0000001
            });
            (lanes, out)
        };
        let serial = run(HostParallelism::Serial);
        for n in [2, 4, 8] {
            assert_eq!(run(HostParallelism::Threads(n)), serial, "{n} threads");
        }
    }

    #[test]
    fn map_indexed_parallel_matches_serial_bitwise() {
        let f = |i: usize| (i as f64).sin() * 3.0 + i as f64;
        let serial = map_indexed(HostParallelism::Serial, 301, f);
        for n in [2, 4, 8] {
            assert_eq!(map_indexed(HostParallelism::Threads(n), 301, f), serial);
        }
        let empty = map_indexed::<f64, _>(HostParallelism::Threads(4), 0, f);
        assert!(empty.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SimConfig::reduced_lj(108);
        let sub = cfg.substrate();
        let base: ParticleSystem<f64> = initialize(&cfg);
        let mut a = base.clone();
        let mut b = base;
        let pe_a = RayonKernel.compute(&mut a, &sub);
        let pe_b = RayonKernel.compute(&mut b, &sub);
        assert_eq!(pe_a, pe_b, "indexed collect keeps reduction deterministic");
        assert_eq!(a.accelerations, b.accelerations);
    }

    #[test]
    fn f32_variant_close_to_f64() {
        let cfg = SimConfig::reduced_lj(108);
        let sub64 = cfg.substrate::<f64>();
        let sub32 = cfg.substrate::<f32>();
        let mut s64: ParticleSystem<f64> = initialize(&cfg);
        let mut s32: ParticleSystem<f32> = s64.convert();
        let pe64 = RayonKernel.compute(&mut s64, &sub64);
        let pe32 = RayonKernel.compute(&mut s32, &sub32);
        assert!(
            (pe64 - pe32 as f64).abs() < 2e-3 * pe64.abs(),
            "{pe64} vs {pe32}"
        );
    }
}
