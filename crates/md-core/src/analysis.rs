//! Trajectory analysis: mean-squared displacement, velocity autocorrelation,
//! and block-averaged statistics — the observables a bio-molecular
//! simulation user actually extracts from runs like the paper's.

use crate::system::ParticleSystem;
use vecmath::{pbc, Real, Vec3};

/// Tracks unwrapped displacements across periodic boundaries so diffusion can
/// be measured (wrapped coordinates alone cannot distinguish drift from
/// wrap-around).
#[derive(Clone, Debug)]
pub struct DisplacementTracker<T> {
    origin: Vec<Vec3<T>>,
    unwrapped: Vec<Vec3<T>>,
    last_wrapped: Vec<Vec3<T>>,
    box_len: T,
}

impl<T: Real> DisplacementTracker<T> {
    /// Start tracking from the system's current positions.
    pub fn new(sys: &ParticleSystem<T>) -> Self {
        Self {
            origin: sys.positions.clone(),
            unwrapped: sys.positions.clone(),
            last_wrapped: sys.positions.clone(),
            box_len: sys.box_len,
        }
    }

    /// Record the system's new (wrapped) positions. Must be called at least
    /// once per few steps so no atom moves more than half a box between
    /// updates.
    pub fn update(&mut self, sys: &ParticleSystem<T>) {
        assert_eq!(
            sys.n(),
            self.unwrapped.len(),
            "tracker bound to one system size"
        );
        for i in 0..sys.n() {
            let step =
                pbc::min_image_branchy(sys.positions[i] - self.last_wrapped[i], self.box_len);
            self.unwrapped[i] += step;
            self.last_wrapped[i] = sys.positions[i];
        }
    }

    /// Mean-squared displacement from the tracking origin.
    pub fn msd(&self) -> f64 {
        let n = self.unwrapped.len();
        if n == 0 {
            return 0.0;
        }
        self.unwrapped
            .iter()
            .zip(&self.origin)
            .map(|(u, o)| (*u - *o).norm2().to_f64())
            .sum::<f64>()
            / n as f64
    }

    /// Einstein-relation diffusion estimate: D = MSD / (6 t).
    pub fn diffusion_coefficient(&self, elapsed_time: f64) -> f64 {
        assert!(elapsed_time > 0.0);
        self.msd() / (6.0 * elapsed_time)
    }
}

/// Normalized velocity autocorrelation C(t) = ⟨v(0)·v(t)⟩ / ⟨v(0)·v(0)⟩
/// against a stored reference snapshot.
#[derive(Clone, Debug)]
pub struct VelocityAutocorrelation<T> {
    v0: Vec<Vec3<T>>,
    norm: f64,
}

impl<T: Real> VelocityAutocorrelation<T> {
    pub fn new(sys: &ParticleSystem<T>) -> Self {
        let norm = sys
            .velocities
            .iter()
            .map(|v| v.norm2().to_f64())
            .sum::<f64>();
        Self {
            v0: sys.velocities.clone(),
            norm,
        }
    }

    /// C(t) for the system's current velocities; 1.0 at t = 0 by
    /// construction, decaying (and possibly going negative) as the liquid
    /// decorrelates.
    pub fn correlate(&self, sys: &ParticleSystem<T>) -> f64 {
        assert_eq!(sys.n(), self.v0.len());
        if self.norm == 0.0 {
            return 0.0;
        }
        let dot: f64 = sys
            .velocities
            .iter()
            .zip(&self.v0)
            .map(|(v, v0)| v.dot(*v0).to_f64())
            .sum();
        dot / self.norm
    }
}

/// Streaming block averages: mean and standard error of a scalar observable,
/// with correlation handled by blocking.
#[derive(Clone, Debug)]
pub struct BlockAverage {
    block_size: usize,
    current_sum: f64,
    current_count: usize,
    block_means: Vec<f64>,
}

impl BlockAverage {
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            block_size,
            current_sum: 0.0,
            current_count: 0,
            block_means: Vec::new(),
        }
    }

    pub fn push(&mut self, value: f64) {
        self.current_sum += value;
        self.current_count += 1;
        if self.current_count == self.block_size {
            self.block_means
                .push(self.current_sum / self.block_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    pub fn completed_blocks(&self) -> usize {
        self.block_means.len()
    }

    /// Mean over completed blocks (None until one block completes).
    pub fn mean(&self) -> Option<f64> {
        if self.block_means.is_empty() {
            return None;
        }
        Some(self.block_means.iter().sum::<f64>() / self.block_means.len() as f64)
    }

    /// Standard error of the mean over blocks (None until two blocks).
    pub fn standard_error(&self) -> Option<f64> {
        let m = self.block_means.len();
        if m < 2 {
            return None;
        }
        let mean = self.mean().unwrap();
        let var = self
            .block_means
            .iter()
            .map(|b| (b - mean) * (b - mean))
            .sum::<f64>()
            / (m - 1) as f64;
        Some((var / m as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::params::SimConfig;
    use crate::sim::Simulation;

    #[test]
    fn msd_zero_at_origin() {
        let sys: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(108));
        let t = DisplacementTracker::new(&sys);
        assert_eq!(t.msd(), 0.0);
    }

    #[test]
    fn msd_tracks_simple_translation() {
        let mut sys: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(108));
        let mut tracker = DisplacementTracker::new(&sys);
        // Translate everything by 0.5σ in x (in small wrapped increments).
        for _ in 0..5 {
            for p in &mut sys.positions {
                p.x += 0.1;
            }
            sys.wrap_positions();
            tracker.update(&sys);
        }
        assert!(
            (tracker.msd() - 0.25).abs() < 1e-9,
            "MSD = 0.5² = 0.25, got {}",
            tracker.msd()
        );
    }

    #[test]
    fn msd_correct_across_wrap() {
        // An atom walking through the periodic wall keeps accumulating
        // displacement instead of jumping backwards.
        let mut sys = ParticleSystem::<f64>::new(1, 4.0);
        sys.positions[0] = Vec3::new(3.8, 1.0, 1.0);
        let mut tracker = DisplacementTracker::new(&sys);
        for _ in 0..10 {
            sys.positions[0].x += 0.3;
            sys.wrap_positions();
            tracker.update(&sys);
        }
        // Moved 3.0 in x overall.
        assert!((tracker.msd() - 9.0).abs() < 1e-9, "{}", tracker.msd());
    }

    #[test]
    fn liquid_diffuses_solid_does_not() {
        let run_msd = |temperature: f64, density: f64| {
            let cfg = SimConfig::reduced_lj(256)
                .with_temperature(temperature)
                .with_density(density);
            let mut sim = Simulation::<f64>::prepare(cfg);
            let mut tracker = DisplacementTracker::new(&sim.system);
            for _ in 0..80 {
                sim.step();
                tracker.update(&sim.system);
            }
            tracker.msd()
        };
        let hot = run_msd(1.5, 0.75);
        let cold = run_msd(0.05, 0.84);
        assert!(
            hot > 10.0 * cold,
            "hot liquid must diffuse far more: {hot:.3} vs {cold:.3}"
        );
    }

    #[test]
    fn vacf_starts_at_one_and_decays() {
        let cfg = SimConfig::reduced_lj(256);
        let mut sim = Simulation::<f64>::prepare(cfg);
        let vacf = VelocityAutocorrelation::new(&sim.system);
        assert!((vacf.correlate(&sim.system) - 1.0).abs() < 1e-12);
        sim.run(100);
        let c = vacf.correlate(&sim.system);
        assert!(c.abs() < 0.6, "velocities decorrelate in a liquid: C = {c}");
    }

    #[test]
    fn vacf_motionless_system_is_zero() {
        let sys = ParticleSystem::<f64>::new(4, 5.0);
        let vacf = VelocityAutocorrelation::new(&sys);
        assert_eq!(vacf.correlate(&sys), 0.0);
    }

    #[test]
    fn block_average_statistics() {
        let mut b = BlockAverage::new(10);
        assert_eq!(b.mean(), None);
        for i in 0..100 {
            b.push((i % 10) as f64); // each block sees 0..9 -> mean 4.5
        }
        assert_eq!(b.completed_blocks(), 10);
        assert_eq!(b.mean(), Some(4.5));
        assert_eq!(
            b.standard_error(),
            Some(0.0),
            "identical blocks, zero error"
        );
    }

    #[test]
    fn block_average_error_reflects_spread() {
        let mut b = BlockAverage::new(1);
        for v in [1.0, 3.0] {
            b.push(v);
        }
        assert_eq!(b.mean(), Some(2.0));
        // var = 2, se = sqrt(2/2) = 1.
        assert!((b.standard_error().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        BlockAverage::new(0);
    }

    #[test]
    fn diffusion_coefficient_scaling() {
        let mut sys = ParticleSystem::<f64>::new(1, 10.0);
        sys.positions[0] = Vec3::new(1.0, 1.0, 1.0);
        let mut t = DisplacementTracker::new(&sys);
        sys.positions[0].x += 0.6;
        t.update(&sys);
        // MSD = 0.36; D = 0.36 / (6 * 2.0) = 0.03.
        assert!((t.diffusion_coefficient(2.0) - 0.03).abs() < 1e-12);
    }
}
