//! Cell (linked-cell) lists: O(N) force evaluation.
//!
//! The second standard cache-friendly technique the paper's related work
//! mentions. The box is divided into cells at least `cutoff` wide; each atom
//! only tests atoms in its own and the 26 neighboring cells. Complexity drops
//! from O(N²) to O(N) at fixed density.

use crate::forces::ForceKernel;
use crate::scenario::Substrate;
use crate::system::ParticleSystem;
use vecmath::{pbc, Real, Vec3};

/// Cell-list force kernel. Rebuilds its binning every call (binning is O(N)
/// and cheap relative to the force loop).
#[derive(Clone, Debug, Default)]
pub struct CellListKernel {
    /// Cells per box edge at the last build (diagnostic).
    pub cells_per_edge: usize,
    /// head[c] = first atom in cell c, next[i] = next atom in i's cell.
    head: Vec<i32>,
    next: Vec<i32>,
}

impl CellListKernel {
    pub fn new() -> Self {
        Self::default()
    }

    fn bin<T: Real>(&mut self, sys: &ParticleSystem<T>, cutoff: T) {
        let l = sys.box_len.to_f64();
        let m = ((l / cutoff.to_f64()).floor() as usize).max(1);
        self.cells_per_edge = m;
        self.head.clear();
        self.head.resize(m * m * m, -1);
        self.next.clear();
        self.next.resize(sys.n(), -1);
        let mf = m as f64;
        for (i, p) in sys.positions.iter().enumerate() {
            let cx = ((p.x.to_f64() / l * mf) as usize).min(m - 1);
            let cy = ((p.y.to_f64() / l * mf) as usize).min(m - 1);
            let cz = ((p.z.to_f64() / l * mf) as usize).min(m - 1);
            let c = (cx * m + cy) * m + cz;
            self.next[i] = self.head[c];
            self.head[c] = i as i32;
        }
    }

    /// Whether a cell decomposition finer than 1 cell/edge exists for this
    /// geometry (otherwise the kernel degenerates to all-pairs).
    pub fn effective_for<T: Real>(sys: &ParticleSystem<T>, cutoff: T) -> bool {
        (sys.box_len.to_f64() / cutoff.to_f64()).floor() as usize >= 3
    }
}

impl<T: Real> ForceKernel<T> for CellListKernel {
    fn compute(&mut self, sys: &mut ParticleSystem<T>, sub: &Substrate<T>) -> T {
        self.bin(sys, sub.cutoff());
        let m = self.cells_per_edge as i64;
        let l = sys.box_len;
        let cutoff2 = sub.cutoff2();
        let inv_m = sys.mass.recip();
        let mut pe_twice = T::ZERO;

        // Gather formulation (like the device kernels): for each atom, scan
        // its 27 surrounding cells; every pair is seen twice.
        let n = sys.n();
        let mut acc = vec![Vec3::<T>::zero(); n];
        for (i, acc_i) in acc.iter_mut().enumerate() {
            let p = sys.positions[i];
            let lf = l.to_f64();
            let mf = m as f64;
            let cx = ((p.x.to_f64() / lf * mf) as i64).min(m - 1);
            let cy = ((p.y.to_f64() / lf * mf) as i64).min(m - 1);
            let cz = ((p.z.to_f64() / lf * mf) as i64).min(m - 1);
            let mut ai = Vec3::zero();
            // Collect the surrounding cell indices, deduplicated: with fewer
            // than 3 cells per edge the ±1 offsets alias the same cell and a
            // naive scan would double-count pairs.
            let mut cells = [0usize; 27];
            let mut n_cells = 0;
            for dx in -1..=1i64 {
                for dy in -1..=1i64 {
                    for dz in -1..=1i64 {
                        let nx = (cx + dx).rem_euclid(m);
                        let ny = (cy + dy).rem_euclid(m);
                        let nz = (cz + dz).rem_euclid(m);
                        let c = ((nx * m + ny) * m + nz) as usize;
                        if !cells[..n_cells].contains(&c) {
                            cells[n_cells] = c;
                            n_cells += 1;
                        }
                    }
                }
            }
            for &c in &cells[..n_cells] {
                let mut j = self.head[c];
                while j >= 0 {
                    let ju = j as usize;
                    if ju != i {
                        let d = pbc::min_image_branchy(p - sys.positions[ju], l);
                        let r2 = d.norm2();
                        if r2 < cutoff2 {
                            let (e, f_over_r) = sub.energy_force(r2);
                            pe_twice += e;
                            ai += d * (f_over_r * inv_m);
                        }
                    }
                    j = self.next[ju];
                }
            }
            *acc_i = ai;
        }
        sys.accelerations.copy_from_slice(&acc);
        pe_twice * T::HALF
    }

    fn name(&self) -> &'static str {
        "cell-list"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::AllPairsHalfKernel;
    use crate::init::initialize;
    use crate::params::SimConfig;

    #[test]
    fn matches_reference_large_box() {
        // 2048 atoms → box ≈ 13.4σ, cells_per_edge = 5: a real decomposition.
        let cfg = SimConfig::reduced_lj(2048);
        let mut s1: ParticleSystem<f64> = initialize(&cfg);
        let mut s2 = s1.clone();
        let sub = cfg.substrate();
        let pe_ref = AllPairsHalfKernel.compute(&mut s1, &sub);
        let mut cl = CellListKernel::new();
        let pe_cl = cl.compute(&mut s2, &sub);
        assert!(
            cl.cells_per_edge >= 5,
            "expected real cells, got {}",
            cl.cells_per_edge
        );
        assert!(
            (pe_ref - pe_cl).abs() < 1e-9 * pe_ref.abs(),
            "{pe_ref} vs {pe_cl}"
        );
        for (a, b) in s1.accelerations.iter().zip(&s2.accelerations) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn matches_reference_small_box_degenerate() {
        // 108 atoms → box ≈ 5σ → m = 2: cells wrap around and each atom sees
        // every cell; still must be correct (duplicate-image hazard is the
        // classic cell-list bug this test pins).
        let cfg = SimConfig::reduced_lj(108);
        let mut s1: ParticleSystem<f64> = initialize(&cfg);
        let mut s2 = s1.clone();
        let sub = cfg.substrate();
        let pe_ref = AllPairsHalfKernel.compute(&mut s1, &sub);
        let mut cl = CellListKernel::new();
        let pe_cl = cl.compute(&mut s2, &sub);
        assert!(
            (pe_ref - pe_cl).abs() < 1e-6 * pe_ref.abs(),
            "{pe_ref} vs {pe_cl}"
        );
    }

    #[test]
    fn effectiveness_predicate() {
        let big: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(2048));
        let small: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(108));
        assert!(CellListKernel::effective_for(&big, 2.5));
        assert!(!CellListKernel::effective_for(&small, 2.5));
    }

    #[test]
    fn binning_covers_all_atoms() {
        let cfg = SimConfig::reduced_lj(500);
        let sys: ParticleSystem<f64> = initialize(&cfg);
        let mut cl = CellListKernel::new();
        cl.bin(&sys, 2.5);
        let mut seen = vec![false; sys.n()];
        for &h in &cl.head {
            let mut j = h;
            while j >= 0 {
                assert!(!seen[j as usize], "atom {j} binned twice");
                seen[j as usize] = true;
                j = cl.next[j as usize];
            }
        }
        assert!(seen.iter().all(|&s| s), "every atom binned exactly once");
    }
}
