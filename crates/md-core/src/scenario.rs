//! Scenario substrate (DESIGN.md §16): pluggable potentials, ensembles, and
//! precision policies behind one resolved evaluator.
//!
//! The paper fixes a single scenario — LJ 6-12, NVE, f32 on Cell/GPU vs f64
//! on MTA/Opteron — and the seed code baked that split into every kernel
//! signature. This module makes the scenario a first-class value instead:
//!
//! - [`ScenarioSpec`] is the *workload identity*: which pair potential, which
//!   ensemble, which precision policy. It lives on
//!   [`SimConfig`](crate::params::SimConfig), prints/parses a stable token
//!   (`Display`/`FromStr` round-trip), and participates in every cache key
//!   via [`ScenarioSpec::cache_token`].
//! - [`Substrate`] is the spec *resolved* into one precision `T`: the thing
//!   force kernels actually evaluate pairs against, integrators pull the
//!   thermostat from, and device cost models query for extra per-pair work.
//!
//! The faithful default ([`ScenarioSpec::default`]) resolves to exactly the
//! seed's LJ evaluation — same [`LjParams`] construction, same
//! `energy_force` arithmetic, zero extra cost — so default-scenario runs are
//! bitwise-identical to the pre-substrate code (pinned by
//! `tests/substrate.rs` on all four devices).

use crate::lj::LjParams;
use crate::system::ParticleSystem;
use crate::thermostat::VelocityRescale;
use std::fmt;
use std::str::FromStr;
use vecmath::Real;

// ---------------------------------------------------------------------------
// Spec layer: plain f64 workload description.
// ---------------------------------------------------------------------------

/// Which pair potential the scenario runs. Parameters are in reduced units,
/// stored as `f64` and narrowed at [`ScenarioSpec::substrate`] resolution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Potential {
    /// The paper's 6-12 Lennard-Jones: `V(r) = 4ε[(σ/r)¹² − (σ/r)⁶]`.
    LennardJones { epsilon: f64, sigma: f64 },
    /// Morse bond potential `V(r) = D(1 − e^{−a(r−r₀)})² − D`, the standard
    /// anharmonic pair form for covalent-like wells.
    Morse { depth: f64, stiffness: f64, r0: f64 },
    /// Truncated Coulomb `V(r) = q²/r` (reduced units, 4πε₀ = 1), cut at the
    /// scenario cutoff like every other pair term.
    Coulomb { q2: f64 },
}

impl Potential {
    /// Short family name ("lj", "morse", "coul") for reports and ledgers.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Potential::LennardJones { .. } => "lj",
            Potential::Morse { .. } => "morse",
            Potential::Coulomb { .. } => "coul",
        }
    }

    /// Extra arithmetic operations one in-cutoff pair evaluation costs on
    /// top of the LJ 6-12 baseline each device already charges. Zero for LJ
    /// *by construction* — that keeps default-scenario cost models bitwise
    /// identical to seed. Morse pays for the sqrt + exponential; Coulomb for
    /// the sqrt + divide (fewer terms than LJ, but the transcendental-free
    /// LJ form is what the baseline constants price).
    pub fn extra_eval_ops(&self) -> f64 {
        match self {
            Potential::LennardJones { .. } => 0.0,
            Potential::Morse { .. } => 9.0,
            Potential::Coulomb { .. } => 3.0,
        }
    }

    /// Cache-key component. Encodes every field of every variant: two specs
    /// with different physics must never share a cached result.
    pub fn cache_token(&self) -> String {
        match self {
            Potential::LennardJones { epsilon, sigma } => format!("lj:e{epsilon},s{sigma}"),
            Potential::Morse {
                depth,
                stiffness,
                r0,
            } => format!("morse:d{depth},a{stiffness},r{r0}"),
            Potential::Coulomb { q2 } => format!("coul:q{q2}"),
        }
    }

    fn try_validate(&self) -> Result<(), String> {
        match *self {
            Potential::LennardJones { epsilon, sigma } => {
                if epsilon <= 0.0 || sigma <= 0.0 {
                    return Err(format!(
                        "LJ needs positive epsilon/sigma, got e={epsilon}, s={sigma}"
                    ));
                }
            }
            Potential::Morse {
                depth,
                stiffness,
                r0,
            } => {
                if depth <= 0.0 || stiffness <= 0.0 || r0 <= 0.0 {
                    return Err(format!(
                        "Morse needs positive depth/stiffness/r0, got d={depth}, a={stiffness}, r={r0}"
                    ));
                }
            }
            Potential::Coulomb { q2 } => {
                if q2 == 0.0 || !q2.is_finite() {
                    return Err(format!("Coulomb needs finite nonzero q2, got {q2}"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Potential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.cache_token())
    }
}

impl FromStr for Potential {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, rest) = s.split_once(':').unwrap_or((s, ""));
        match kind {
            "lj" => {
                let [e, sg] = parse_fields(rest, ["e", "s"], "lj:e<ε>,s<σ>")?;
                Ok(Potential::LennardJones {
                    epsilon: e,
                    sigma: sg,
                })
            }
            "morse" => {
                let [d, a, r] = parse_fields(rest, ["d", "a", "r"], "morse:d<D>,a<a>,r<r0>")?;
                Ok(Potential::Morse {
                    depth: d,
                    stiffness: a,
                    r0: r,
                })
            }
            "coul" => {
                let [q] = parse_fields(rest, ["q"], "coul:q<q²>")?;
                Ok(Potential::Coulomb { q2: q })
            }
            other => Err(format!(
                "unknown potential {other:?} (expected lj, morse, or coul)"
            )),
        }
    }
}

/// Which statistical ensemble the integrator targets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Ensemble {
    /// Microcanonical: plain velocity-Verlet, the paper's kernel.
    Nve,
    /// Canonical via the deterministic velocity-rescaling thermostat
    /// ([`VelocityRescale`]), applied after each step's final kick.
    Nvt { target: f64, kappa: f64 },
}

impl Ensemble {
    /// Per-atom per-step operations the ensemble adds on top of the NVE
    /// integration each device already charges: zero for NVE (bitwise seed
    /// cost), ~6 for NVT (kinetic-energy reduction term + scale per atom).
    pub fn extra_step_ops_per_atom(&self) -> f64 {
        match self {
            Ensemble::Nve => 0.0,
            Ensemble::Nvt { .. } => 6.0,
        }
    }

    /// Cache-key component; encodes every field of every variant.
    pub fn cache_token(&self) -> String {
        match self {
            Ensemble::Nve => "nve".to_string(),
            Ensemble::Nvt { target, kappa } => format!("nvt:t{target},k{kappa}"),
        }
    }

    fn try_validate(&self) -> Result<(), String> {
        if let Ensemble::Nvt { target, kappa } = *self {
            if target < 0.0 || !target.is_finite() {
                return Err(format!("NVT target temperature must be >= 0, got {target}"));
            }
            if !(kappa > 0.0 && kappa <= 1.0) {
                return Err(format!("NVT coupling must be in (0, 1], got {kappa}"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Ensemble {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.cache_token())
    }
}

impl FromStr for Ensemble {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, rest) = s.split_once(':').unwrap_or((s, ""));
        match kind {
            "nve" if rest.is_empty() => Ok(Ensemble::Nve),
            "nve" => Err(format!("nve takes no parameters, got {rest:?}")),
            "nvt" => {
                let [t, k] = parse_fields(rest, ["t", "k"], "nvt:t<T*>,k<κ>")?;
                Ok(Ensemble::Nvt {
                    target: t,
                    kappa: k,
                })
            }
            other => Err(format!("unknown ensemble {other:?} (expected nve or nvt)")),
        }
    }
}

/// How pair terms are evaluated relative to the device's native precision
/// (the paper's split: f32 on Cell/GPU, f64 on MTA/Opteron).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrecisionPolicy {
    /// Evaluate in whatever precision the device natively runs — the
    /// faithful default.
    #[default]
    Native,
    /// Force pair evaluation in f32 everywhere (what an f64 machine loses).
    ForceF32,
    /// Force pair evaluation in f64 everywhere (what an f32 machine gains).
    ForceF64,
    /// Evaluate pairs natively but accumulate per-atom sums in f64 — the
    /// classic mixed-precision compromise (cf. De Fabritiis, PAPERS.md).
    /// No-op on devices already running f64.
    MixedF64Accumulate,
}

impl PrecisionPolicy {
    /// Cache-key component.
    pub fn cache_token(&self) -> &'static str {
        match self {
            PrecisionPolicy::Native => "native",
            PrecisionPolicy::ForceF32 => "f32",
            PrecisionPolicy::ForceF64 => "f64",
            PrecisionPolicy::MixedF64Accumulate => "mixed",
        }
    }
}

impl fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cache_token())
    }
}

impl FromStr for PrecisionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "native" => Ok(PrecisionPolicy::Native),
            "f32" => Ok(PrecisionPolicy::ForceF32),
            "f64" => Ok(PrecisionPolicy::ForceF64),
            "mixed" => Ok(PrecisionPolicy::MixedF64Accumulate),
            other => Err(format!(
                "unknown precision policy {other:?} (expected native, f32, f64, or mixed)"
            )),
        }
    }
}

/// The full scenario identity: potential × ensemble × precision policy.
///
/// Prints as `<potential>/<ensemble>/<precision>` (e.g.
/// `lj:e1,s1/nve/native`) and parses the same form back; trailing segments
/// may be omitted on input and default (`morse:d1,a2,r1.2` alone is a valid
/// spec). The printed form *is* the cache token, so everything that keys a
/// cache on a scenario and everything that names one in a CLI agree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioSpec {
    pub potential: Potential,
    pub ensemble: Ensemble,
    pub precision: PrecisionPolicy,
}

impl Default for ScenarioSpec {
    /// The paper-faithful scenario: reduced LJ 6-12, NVE, device-native
    /// precision.
    fn default() -> Self {
        Self {
            potential: Potential::LennardJones {
                epsilon: 1.0,
                sigma: 1.0,
            },
            ensemble: Ensemble::Nve,
            precision: PrecisionPolicy::Native,
        }
    }
}

impl ScenarioSpec {
    /// The canonical extension scenario A: a Morse well under NVT at the
    /// paper's liquid temperature. Exercises the transcendental pair path
    /// and the thermostat on every device.
    pub fn morse_nvt() -> Self {
        Self {
            potential: Potential::Morse {
                depth: 1.0,
                stiffness: 2.0,
                r0: 1.2,
            },
            ensemble: Ensemble::Nvt {
                target: 0.728,
                kappa: 0.5,
            },
            precision: PrecisionPolicy::Native,
        }
    }

    /// The canonical extension scenario B: truncated Coulomb repulsion, NVE.
    pub fn coulomb_cutoff() -> Self {
        Self {
            potential: Potential::Coulomb { q2: 1.0 },
            ensemble: Ensemble::Nve,
            precision: PrecisionPolicy::Native,
        }
    }

    pub fn with_potential(mut self, potential: Potential) -> Self {
        self.potential = potential;
        self
    }

    pub fn with_ensemble(mut self, ensemble: Ensemble) -> Self {
        self.ensemble = ensemble;
        self
    }

    pub fn with_precision(mut self, precision: PrecisionPolicy) -> Self {
        self.precision = precision;
        self
    }

    /// Cache-key component covering every reachable field of the scenario:
    /// the three sub-tokens each encode all fields of their own enum. Two
    /// specs that could produce different trajectories or different costs
    /// must produce different tokens (enforced by the sim-vet `cache-token`
    /// rule and the mutation tests in `tests/substrate.rs`).
    pub fn cache_token(&self) -> String {
        let potential = self.potential.cache_token();
        let ensemble = self.ensemble.cache_token();
        let precision = self.precision.cache_token();
        format!("{potential}/{ensemble}/{precision}")
    }

    pub fn try_validate(&self) -> Result<(), String> {
        self.potential.try_validate()?;
        self.ensemble.try_validate()
    }

    /// Resolve into precision `T` (a device's native width). `cutoff` comes
    /// from the [`SimConfig`](crate::params::SimConfig), the same way the
    /// seed's `lj_params` took it.
    pub fn substrate<T: Real>(&self, cutoff: f64) -> Substrate<T> {
        let native_is_f32 = size_of::<T>() == size_of::<f32>();
        let eval = match self.precision {
            PrecisionPolicy::Native | PrecisionPolicy::MixedF64Accumulate => EvalPrecision::Native,
            PrecisionPolicy::ForceF32 if native_is_f32 => EvalPrecision::Native,
            PrecisionPolicy::ForceF32 => EvalPrecision::ForceF32,
            PrecisionPolicy::ForceF64 if !native_is_f32 => EvalPrecision::Native,
            PrecisionPolicy::ForceF64 => EvalPrecision::ForceF64,
        };
        let accumulate_f64 = self.precision == PrecisionPolicy::MixedF64Accumulate && native_is_f32;
        let thermostat = match self.ensemble {
            Ensemble::Nve => None,
            Ensemble::Nvt { target, kappa } => Some(VelocityRescale::new(
                T::from_f64(target),
                T::from_f64(kappa),
            )),
        };
        Substrate {
            pot: PairPotential::resolve(&self.potential, cutoff),
            pot32: PairPotential::resolve(&self.potential, cutoff),
            pot64: PairPotential::resolve(&self.potential, cutoff),
            eval,
            accumulate_f64,
            thermostat,
            spec: *self,
        }
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.cache_token())
    }
}

impl FromStr for ScenarioSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err("empty scenario spec".to_string());
        }
        if s == "default" {
            return Ok(Self::default());
        }
        let mut out = Self::default();
        let mut parts = s.split('/');
        if let Some(p) = parts.next() {
            out.potential = p.parse()?;
        }
        if let Some(e) = parts.next() {
            out.ensemble = e.parse()?;
        }
        if let Some(p) = parts.next() {
            out.precision = p.parse()?;
        }
        if let Some(extra) = parts.next() {
            return Err(format!(
                "trailing scenario segment {extra:?} (expected potential/ensemble/precision)"
            ));
        }
        out.try_validate()?;
        Ok(out)
    }
}

/// Parse `"e1,s2"`-style field lists: each comma-separated piece must start
/// with its expected one-letter tag followed by a float.
fn parse_fields<const N: usize>(
    rest: &str,
    tags: [&str; N],
    example: &str,
) -> Result<[f64; N], String> {
    let mut out = [0.0; N];
    let mut pieces = rest.split(',');
    for (slot, tag) in out.iter_mut().zip(tags) {
        let piece = pieces
            .next()
            .ok_or_else(|| format!("missing field {tag:?} (expected {example})"))?;
        let value = piece
            .strip_prefix(tag)
            .ok_or_else(|| format!("expected field {tag:?} in {piece:?} (format: {example})"))?;
        *slot = value
            .parse::<f64>()
            .map_err(|e| format!("bad value for {tag:?} in {piece:?}: {e}"))?;
    }
    if let Some(extra) = pieces.next() {
        return Err(format!("trailing field {extra:?} (expected {example})"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Resolved layer: what kernels evaluate against.
// ---------------------------------------------------------------------------

/// Morse parameters resolved into precision `T`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MorseParams<T> {
    pub depth: T,
    pub stiffness: T,
    pub r0: T,
    pub cutoff: T,
}

impl<T: Real> MorseParams<T> {
    #[inline(always)]
    pub fn cutoff2(&self) -> T {
        self.cutoff * self.cutoff
    }

    /// Energy and force/r from squared separation, zero beyond the cutoff.
    ///
    /// `V(r) = D(1 − x)² − D` with `x = e^{−a(r−r₀)}`, so
    /// `F/r = −dV/dr / r = −2Dax(1 − x)/r`.
    #[inline(always)]
    pub fn energy_force(&self, r2: T) -> (T, T) {
        if r2 >= self.cutoff2() || r2 == T::ZERO {
            return (T::ZERO, T::ZERO);
        }
        let r = r2.sqrt();
        let x = (-(self.stiffness * (r - self.r0))).exp();
        let one_minus = T::ONE - x;
        let e = self.depth * (one_minus * one_minus - T::ONE);
        let f_over_r = -(T::TWO * self.depth * self.stiffness * x * one_minus) / r;
        (e, f_over_r)
    }
}

/// Truncated-Coulomb parameters resolved into precision `T`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoulombParams<T> {
    pub q2: T,
    pub cutoff: T,
}

impl<T: Real> CoulombParams<T> {
    #[inline(always)]
    pub fn cutoff2(&self) -> T {
        self.cutoff * self.cutoff
    }

    /// `V(r) = q²/r`, `F/r = q²/r³ = q² · r⁻² / r`; positive = repulsive for
    /// like charges (q² > 0), matching the LJ sign convention.
    #[inline(always)]
    pub fn energy_force(&self, r2: T) -> (T, T) {
        if r2 >= self.cutoff2() || r2 == T::ZERO {
            return (T::ZERO, T::ZERO);
        }
        let inv_r2 = r2.recip();
        let inv_r = inv_r2.sqrt();
        let e = self.q2 * inv_r;
        let f_over_r = self.q2 * inv_r2 * inv_r;
        (e, f_over_r)
    }
}

/// One pair potential resolved into precision `T`. The LJ arm *is* the
/// seed's [`LjParams`] — same struct, same `energy_force` — so dispatching
/// through this enum with the default scenario reproduces seed arithmetic
/// bit for bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PairPotential<T> {
    LennardJones(LjParams<T>),
    Morse(MorseParams<T>),
    Coulomb(CoulombParams<T>),
}

impl<T: Real> PairPotential<T> {
    fn resolve(spec: &Potential, cutoff: f64) -> Self {
        let cut = T::from_f64(cutoff);
        match *spec {
            Potential::LennardJones { epsilon, sigma } => PairPotential::LennardJones(
                LjParams::new(T::from_f64(epsilon), T::from_f64(sigma), cut),
            ),
            Potential::Morse {
                depth,
                stiffness,
                r0,
            } => PairPotential::Morse(MorseParams {
                depth: T::from_f64(depth),
                stiffness: T::from_f64(stiffness),
                r0: T::from_f64(r0),
                cutoff: cut,
            }),
            Potential::Coulomb { q2 } => PairPotential::Coulomb(CoulombParams {
                q2: T::from_f64(q2),
                cutoff: cut,
            }),
        }
    }

    #[inline(always)]
    pub fn cutoff2(&self) -> T {
        match self {
            PairPotential::LennardJones(p) => p.cutoff2(),
            PairPotential::Morse(p) => p.cutoff2(),
            PairPotential::Coulomb(p) => p.cutoff2(),
        }
    }

    /// Radial cutoff (unsquared), for neighbor-structure reach computations.
    #[inline(always)]
    pub fn cutoff(&self) -> T {
        match self {
            PairPotential::LennardJones(p) => p.cutoff,
            PairPotential::Morse(p) => p.cutoff,
            PairPotential::Coulomb(p) => p.cutoff,
        }
    }

    /// Energy and force/r from squared separation (zero beyond the cutoff or
    /// at zero separation — every arm carries the same guard the seed LJ
    /// evaluator had).
    #[inline(always)]
    pub fn energy_force(&self, r2: T) -> (T, T) {
        match self {
            PairPotential::LennardJones(p) => p.energy_force(r2),
            PairPotential::Morse(p) => p.energy_force(r2),
            PairPotential::Coulomb(p) => p.energy_force(r2),
        }
    }
}

/// How the substrate evaluates pair terms relative to `T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalPrecision {
    /// Evaluate in `T` — the seed behavior.
    Native,
    /// Narrow r² to f32, evaluate, widen the results back to `T`.
    ForceF32,
    /// Widen r² to f64, evaluate, narrow the results back to `T`.
    ForceF64,
}

/// A [`ScenarioSpec`] resolved into one precision: the object force kernels
/// evaluate against and integrators take their thermostat from. `Copy`, so
/// device lanes can carry it by value like the old per-device param structs.
#[derive(Clone, Copy, Debug)]
pub struct Substrate<T> {
    /// The potential in native precision `T`.
    pub pot: PairPotential<T>,
    /// The same potential resolved to f32, for [`EvalPrecision::ForceF32`].
    pot32: PairPotential<f32>,
    /// The same potential resolved to f64, for [`EvalPrecision::ForceF64`].
    pot64: PairPotential<f64>,
    /// How pair terms are evaluated (resolved from the precision policy, so
    /// an on-native request is already [`EvalPrecision::Native`] here).
    pub eval: EvalPrecision,
    /// Accumulate per-atom force/PE sums in f64 even when `T` is f32
    /// (mixed-precision policy; always false when `T` is f64).
    pub accumulate_f64: bool,
    /// Resolved thermostat; `None` for NVE.
    pub thermostat: Option<VelocityRescale<T>>,
    /// The spec this substrate was resolved from (for labels and ledgers).
    pub spec: ScenarioSpec,
}

impl<T: Real> Substrate<T> {
    /// Wrap a bare LJ parameter set as an NVE/native substrate. For
    /// LJ-specific call sites (shifted-potential runs, analysis helpers)
    /// that need kernel plumbing but no scenario machinery — the shift is
    /// carried even though [`ScenarioSpec`] doesn't express it, so the
    /// `spec` here is label-only, not a cache identity.
    pub fn from_lj(params: LjParams<T>) -> Self {
        let widen = |p: &LjParams<T>| LjParams::<f64> {
            epsilon: p.epsilon.to_f64(),
            sigma: p.sigma.to_f64(),
            cutoff: p.cutoff.to_f64(),
            shift: p.shift.to_f64(),
        };
        let p64 = widen(&params);
        let p32 = LjParams::<f32> {
            epsilon: f32::from_f64(p64.epsilon),
            sigma: f32::from_f64(p64.sigma),
            cutoff: f32::from_f64(p64.cutoff),
            shift: f32::from_f64(p64.shift),
        };
        Substrate {
            pot: PairPotential::LennardJones(params),
            pot32: PairPotential::LennardJones(p32),
            pot64: PairPotential::LennardJones(p64),
            eval: EvalPrecision::Native,
            accumulate_f64: false,
            thermostat: None,
            spec: ScenarioSpec::default().with_potential(Potential::LennardJones {
                epsilon: p64.epsilon,
                sigma: p64.sigma,
            }),
        }
    }

    /// Squared cutoff the kernel's pair guard compares against.
    #[inline(always)]
    pub fn cutoff2(&self) -> T {
        self.pot.cutoff2()
    }

    /// Radial cutoff (unsquared).
    #[inline(always)]
    pub fn cutoff(&self) -> T {
        self.pot.cutoff()
    }

    /// Evaluate one pair: energy and force/r from squared separation, in the
    /// scenario's evaluation precision. With the default policy this is a
    /// direct native dispatch — for LJ, bitwise the seed's
    /// [`LjParams::energy_force`].
    #[inline(always)]
    pub fn energy_force(&self, r2: T) -> (T, T) {
        match self.eval {
            EvalPrecision::Native => self.pot.energy_force(r2),
            EvalPrecision::ForceF32 => {
                let (e, f) = self.pot32.energy_force(f32::from_f64(r2.to_f64()));
                (T::from_f64(f64::from(e)), T::from_f64(f64::from(f)))
            }
            EvalPrecision::ForceF64 => {
                let (e, f) = self.pot64.energy_force(r2.to_f64());
                (T::from_f64(e), T::from_f64(f))
            }
        }
    }

    /// Apply the ensemble's thermostat, if any (call after the final kick of
    /// each step). No-op for NVE, so the seed integration path is untouched.
    #[inline]
    pub fn apply_thermostat(&self, sys: &mut ParticleSystem<T>) {
        if let Some(t) = &self.thermostat {
            t.apply(sys);
        }
    }

    /// Extra per-interaction arithmetic this scenario costs a device on top
    /// of its LJ baseline (see [`Potential::extra_eval_ops`]).
    pub fn extra_eval_ops(&self) -> f64 {
        self.spec.potential.extra_eval_ops()
    }

    /// Extra per-atom per-step arithmetic this scenario's ensemble costs
    /// (see [`Ensemble::extra_step_ops_per_atom`]).
    pub fn extra_step_ops_per_atom(&self) -> f64 {
        self.spec.ensemble.extra_step_ops_per_atom()
    }

    /// The potential's constant-block fields as f32: a discriminant (0 = LJ,
    /// 1 = Morse, 2 = Coulomb) plus up to three parameters. For devices that
    /// bake kernel parameters into compiled programs (the GPU's JIT constant
    /// folding): every value that changes the program appears here.
    pub fn pot_constants(&self) -> (f32, f32, f32, f32) {
        match &self.pot32 {
            PairPotential::LennardJones(p) => (0.0, p.epsilon, p.sigma * p.sigma, 0.0),
            PairPotential::Morse(p) => (1.0, p.depth, p.stiffness, p.r0),
            PairPotential::Coulomb(p) => (2.0, p.q2, 0.0, 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_is_the_paper_scenario() {
        let s = ScenarioSpec::default();
        assert_eq!(
            s.potential,
            Potential::LennardJones {
                epsilon: 1.0,
                sigma: 1.0
            }
        );
        assert_eq!(s.ensemble, Ensemble::Nve);
        assert_eq!(s.precision, PrecisionPolicy::Native);
        assert_eq!(s.cache_token(), "lj:e1,s1/nve/native");
        s.try_validate().expect("default validates");
    }

    #[test]
    fn default_substrate_matches_seed_lj_bitwise() {
        let sub = ScenarioSpec::default().substrate::<f64>(2.5);
        let seed = LjParams::<f64>::reduced(2.5);
        assert_eq!(sub.cutoff2(), seed.cutoff2());
        for &r2 in &[0.64, 0.9025, 1.0, 1.2544, 2.25, 4.0, 5.76, 6.2499] {
            assert_eq!(sub.energy_force(r2), seed.energy_force(r2));
        }
        assert!(sub.thermostat.is_none());
        assert!(!sub.accumulate_f64);
        assert_eq!(sub.extra_eval_ops(), 0.0);
        assert_eq!(sub.extra_step_ops_per_atom(), 0.0);
    }

    #[test]
    fn display_round_trips_canonical_specs() {
        for spec in [
            ScenarioSpec::default(),
            ScenarioSpec::morse_nvt(),
            ScenarioSpec::coulomb_cutoff(),
            ScenarioSpec::default().with_precision(PrecisionPolicy::MixedF64Accumulate),
            ScenarioSpec::morse_nvt().with_precision(PrecisionPolicy::ForceF64),
        ] {
            let text = spec.to_string();
            let back: ScenarioSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, spec, "round trip through {text:?}");
        }
    }

    #[test]
    fn partial_specs_default_missing_segments() {
        let s: ScenarioSpec = "morse:d1,a2,r1.2".parse().expect("potential only");
        assert_eq!(s.potential, ScenarioSpec::morse_nvt().potential);
        assert_eq!(s.ensemble, Ensemble::Nve);
        assert_eq!(s.precision, PrecisionPolicy::Native);
        let s: ScenarioSpec = "default".parse().expect("named default");
        assert_eq!(s, ScenarioSpec::default());
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "",
            "lj",
            "lj:e1",
            "lj:e1,s1,x2",
            "quartic:a1",
            "lj:e1,s1/nvt",
            "lj:e1,s1/nve/quantum",
            "lj:e1,s1/nve/native/extra",
            "lj:e0,s1",
            "morse:d1,a-2,r1",
            "coul:q0",
            "lj:e1,s1/nvt:t-1,k0.5",
            "lj:e1,s1/nvt:t1,k0",
            "nve",
        ] {
            assert!(bad.parse::<ScenarioSpec>().is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn morse_shape_is_a_well_at_r0() {
        let sub = ScenarioSpec::morse_nvt().substrate::<f64>(2.5);
        let (e_min, f_min) = sub.energy_force(1.2 * 1.2);
        assert!((e_min + 1.0).abs() < 1e-12, "V(r0) = -D, got {e_min}");
        assert!(f_min.abs() < 1e-12, "force vanishes at r0, got {f_min}");
        let (_, f_in) = sub.energy_force(1.0);
        assert!(f_in > 0.0, "repulsive inside r0");
        let (_, f_out) = sub.energy_force(1.5 * 1.5);
        assert!(f_out < 0.0, "attractive outside r0");
        assert_eq!(sub.energy_force(6.25), (0.0, 0.0), "cut at cutoff");
        assert_eq!(sub.energy_force(0.0), (0.0, 0.0), "self-pair guard");
    }

    #[test]
    fn coulomb_shape_is_repulsive_1_over_r() {
        let sub = ScenarioSpec::coulomb_cutoff().substrate::<f64>(2.5);
        let (e, f) = sub.energy_force(4.0); // r = 2
        assert!((e - 0.5).abs() < 1e-12, "q²/r at r=2, got {e}");
        assert!((f - 0.125).abs() < 1e-12, "q²/r³ at r=2, got {f}");
        assert_eq!(sub.energy_force(6.25), (0.0, 0.0));
        assert_eq!(sub.energy_force(0.0), (0.0, 0.0));
    }

    proptest! {
        /// Display/FromStr round-trip for *arbitrary* finite parameters, not
        /// just the canonical constructors: `{}` formatting of f64 prints
        /// the shortest string that parses back to the same bits, so any
        /// valid spec survives the text form (and therefore the cache key
        /// distinguishes any two numerically different specs).
        #[test]
        fn spec_text_round_trips_arbitrary_parameters(
            e in 0.01f64..100.0,
            sg in 0.1f64..4.0,
            d in 0.01f64..100.0,
            a in 0.1f64..10.0,
            r0 in 0.1f64..4.0,
            q2 in 0.01f64..50.0,
            t in 0.0f64..10.0,
            k in 0.001f64..1.0,
            pot_pick in 0usize..3,
            ens_pick in 0usize..2,
            prec_pick in 0usize..4,
        ) {
            let potential = match pot_pick {
                0 => Potential::LennardJones { epsilon: e, sigma: sg },
                1 => Potential::Morse { depth: d, stiffness: a, r0 },
                _ => Potential::Coulomb { q2 },
            };
            let ensemble = match ens_pick {
                0 => Ensemble::Nve,
                _ => Ensemble::Nvt { target: t, kappa: k },
            };
            let precision = [
                PrecisionPolicy::Native,
                PrecisionPolicy::ForceF32,
                PrecisionPolicy::ForceF64,
                PrecisionPolicy::MixedF64Accumulate,
            ][prec_pick];
            let spec = ScenarioSpec { potential, ensemble, precision };
            let text = spec.to_string();
            let back: ScenarioSpec = text.parse().map_err(|e: String| {
                TestCaseError::fail(format!("{text}: {e}"))
            })?;
            prop_assert_eq!(back, spec);
            prop_assert_eq!(text, spec.cache_token());
        }

        /// force_over_r is the negative energy gradient for both new
        /// potentials (central difference), mirroring the LJ property test.
        #[test]
        fn new_potentials_force_matches_gradient(r in 0.9f64..2.4) {
            for spec in [ScenarioSpec::morse_nvt(), ScenarioSpec::coulomb_cutoff()] {
                let sub = spec.substrate::<f64>(2.5);
                let h = 1e-6;
                let (e_plus, _) = sub.energy_force((r + h) * (r + h));
                let (e_minus, _) = sub.energy_force((r - h) * (r - h));
                let f_numeric = -(e_plus - e_minus) / (2.0 * h);
                let (_, f_over_r) = sub.energy_force(r * r);
                let f_analytic = f_over_r * r;
                let tol = 1e-4 * f_analytic.abs().max(1.0);
                prop_assert!((f_numeric - f_analytic).abs() < tol,
                    "{}: r={r}: numeric {f_numeric} vs analytic {f_analytic}",
                    spec.potential.kind_label());
            }
        }
    }

    #[test]
    fn precision_policies_resolve_per_native_width() {
        let spec = ScenarioSpec::default().with_precision(PrecisionPolicy::ForceF64);
        assert_eq!(spec.substrate::<f64>(2.5).eval, EvalPrecision::Native);
        assert_eq!(spec.substrate::<f32>(2.5).eval, EvalPrecision::ForceF64);
        let spec = spec.with_precision(PrecisionPolicy::ForceF32);
        assert_eq!(spec.substrate::<f32>(2.5).eval, EvalPrecision::Native);
        assert_eq!(spec.substrate::<f64>(2.5).eval, EvalPrecision::ForceF32);
        let spec = spec.with_precision(PrecisionPolicy::MixedF64Accumulate);
        assert!(spec.substrate::<f32>(2.5).accumulate_f64);
        assert!(!spec.substrate::<f64>(2.5).accumulate_f64);
    }

    #[test]
    fn forced_f64_evaluation_on_f32_matches_f64_reference() {
        let spec = ScenarioSpec::default().with_precision(PrecisionPolicy::ForceF64);
        let sub32 = spec.substrate::<f32>(2.5);
        let ref64 = LjParams::<f64>::reduced(2.5);
        // The forced-f64 path evaluates in f64 then narrows once: the result
        // is the correctly-rounded f32 of the f64 value, not the drifted
        // all-f32 evaluation.
        for &r2 in &[0.9025f32, 1.0, 1.21, 2.25, 4.41] {
            let (e32, f32v) = sub32.energy_force(r2);
            let (e64, f64v) = ref64.energy_force(f64::from(r2));
            assert_eq!(e32, e64 as f32);
            assert_eq!(f32v, f64v as f32);
        }
    }

    #[test]
    fn nvt_substrate_carries_thermostat_and_cost() {
        let sub = ScenarioSpec::morse_nvt().substrate::<f64>(2.5);
        let t = sub.thermostat.expect("NVT resolves a thermostat");
        assert_eq!(t.target, 0.728);
        assert_eq!(t.kappa, 0.5);
        assert!(sub.extra_eval_ops() > 0.0, "morse costs more than LJ");
        assert!(sub.extra_step_ops_per_atom() > 0.0, "NVT costs per atom");
    }

    #[test]
    fn cache_tokens_separate_all_canonical_scenarios() {
        let tokens: Vec<String> = [
            ScenarioSpec::default(),
            ScenarioSpec::morse_nvt(),
            ScenarioSpec::coulomb_cutoff(),
            ScenarioSpec::default().with_precision(PrecisionPolicy::ForceF32),
            ScenarioSpec::default().with_precision(PrecisionPolicy::ForceF64),
            ScenarioSpec::default().with_precision(PrecisionPolicy::MixedF64Accumulate),
            ScenarioSpec::default().with_ensemble(Ensemble::Nvt {
                target: 0.728,
                kappa: 1.0,
            }),
        ]
        .iter()
        .map(ScenarioSpec::cache_token)
        .collect();
        for (i, a) in tokens.iter().enumerate() {
            for b in &tokens[i + 1..] {
                assert_ne!(a, b, "distinct scenarios must have distinct tokens");
            }
        }
    }
}
