//! Trajectory and configuration I/O.
//!
//! - XYZ trajectory frames (the lingua franca of MD visualization tools),
//! - a plain-text checkpoint format that round-trips the full system state
//!   (positions, velocities, box) exactly via hex-encoded f64 bits.

use crate::system::ParticleSystem;
use std::fmt::Write as FmtWrite;
use std::io::{self, BufRead, Write};
use vecmath::{Real, Vec3};

/// Append one XYZ frame (positions only, species label `Ar`).
pub fn write_xyz_frame<T: Real, W: Write>(
    out: &mut W,
    sys: &ParticleSystem<T>,
    comment: &str,
) -> io::Result<()> {
    assert!(!comment.contains('\n'), "XYZ comments are single-line");
    writeln!(out, "{}", sys.n())?;
    writeln!(out, "{comment}")?;
    for p in &sys.positions {
        writeln!(
            out,
            "Ar {:.9} {:.9} {:.9}",
            p.x.to_f64(),
            p.y.to_f64(),
            p.z.to_f64()
        )?;
    }
    Ok(())
}

/// Parse all frames of an XYZ stream into position sets.
pub fn read_xyz_frames<R: BufRead>(input: R) -> io::Result<Vec<Vec<Vec3<f64>>>> {
    let mut lines = input.lines();
    let mut frames = Vec::new();
    while let Some(first) = lines.next() {
        let first = first?;
        if first.trim().is_empty() {
            continue;
        }
        let n: usize = first.trim().parse().map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad atom count: {e}"))
        })?;
        let _comment = lines.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "missing comment line")
        })??;
        let mut frame = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated frame"))??;
            let mut parts = line.split_whitespace();
            let _species = parts
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty atom line"))?;
            let mut coord = [0.0f64; 3];
            for c in &mut coord {
                *c = parts
                    .next()
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "missing coordinate")
                    })?
                    .parse()
                    .map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad coordinate: {e}"))
                    })?;
            }
            frame.push(Vec3::new(coord[0], coord[1], coord[2]));
        }
        frames.push(frame);
    }
    Ok(frames)
}

/// Serialize the full state losslessly (f64 bit patterns in hex).
pub fn checkpoint_to_string(sys: &ParticleSystem<f64>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "mdea-checkpoint v1");
    let _ = writeln!(s, "n {}", sys.n());
    let _ = writeln!(s, "box {:016x}", sys.box_len.to_bits());
    let _ = writeln!(s, "mass {:016x}", sys.mass.to_bits());
    let field = |s: &mut String, tag: &str, vs: &[Vec3<f64>]| {
        for v in vs {
            let _ = writeln!(
                s,
                "{tag} {:016x} {:016x} {:016x}",
                v.x.to_bits(),
                v.y.to_bits(),
                v.z.to_bits()
            );
        }
    };
    field(&mut s, "p", &sys.positions);
    field(&mut s, "v", &sys.velocities);
    field(&mut s, "a", &sys.accelerations);
    s
}

/// Restore a checkpoint written by [`checkpoint_to_string`].
pub fn checkpoint_from_str(text: &str) -> Result<ParticleSystem<f64>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty checkpoint")?;
    if header != "mdea-checkpoint v1" {
        return Err(format!("unrecognized header: {header}"));
    }
    let parse_u64 = |tok: &str| u64::from_str_radix(tok, 16).map_err(|e| format!("bad hex: {e}"));
    let mut n = None;
    let mut box_len = None;
    let mut mass = None;
    let mut positions = Vec::new();
    let mut velocities = Vec::new();
    let mut accelerations = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("n") => {
                n = Some(
                    parts
                        .next()
                        .ok_or("missing n")?
                        .parse::<usize>()
                        .map_err(|e| e.to_string())?,
                );
            }
            Some("box") => {
                box_len = Some(f64::from_bits(parse_u64(
                    parts.next().ok_or("missing box")?,
                )?));
            }
            Some("mass") => {
                mass = Some(f64::from_bits(parse_u64(
                    parts.next().ok_or("missing mass")?,
                )?));
            }
            Some(tag @ ("p" | "v" | "a")) => {
                let mut c = [0.0f64; 3];
                for v in &mut c {
                    *v = f64::from_bits(parse_u64(parts.next().ok_or("missing component")?)?);
                }
                let vec = Vec3::new(c[0], c[1], c[2]);
                match tag {
                    "p" => positions.push(vec),
                    "v" => velocities.push(vec),
                    _ => accelerations.push(vec),
                }
            }
            Some(other) => return Err(format!("unknown record: {other}")),
            None => {}
        }
    }
    let n = n.ok_or("missing atom count")?;
    if positions.len() != n || velocities.len() != n || accelerations.len() != n {
        return Err(format!(
            "record counts ({}, {}, {}) do not match n = {n}",
            positions.len(),
            velocities.len(),
            accelerations.len()
        ));
    }
    let mut sys = ParticleSystem::new(n, box_len.ok_or("missing box")?);
    sys.mass = mass.ok_or("missing mass")?;
    sys.positions = positions;
    sys.velocities = velocities;
    sys.accelerations = accelerations;
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::params::SimConfig;

    #[test]
    fn xyz_roundtrip() {
        let sys: ParticleSystem<f64> = initialize(&SimConfig::reduced_lj(32).with_density(0.2));
        let mut buf = Vec::new();
        write_xyz_frame(&mut buf, &sys, "frame 0").unwrap();
        write_xyz_frame(&mut buf, &sys, "frame 1").unwrap();
        let frames = read_xyz_frames(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].len(), 32);
        for (a, b) in frames[0].iter().zip(&sys.positions) {
            assert!((*a - *b).norm() < 1e-8, "9-digit text precision");
        }
    }

    #[test]
    fn xyz_rejects_truncation() {
        let text = "3\ncomment\nAr 0 0 0\nAr 1 1 1\n";
        let err = read_xyz_frames(io::BufReader::new(text.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn xyz_rejects_garbage_coordinates() {
        let text = "1\nc\nAr zero 0 0\n";
        assert!(read_xyz_frames(io::BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let cfg = SimConfig::reduced_lj(108);
        let mut sim = crate::sim::Simulation::<f64>::prepare(cfg);
        sim.run(5);
        let sys = &sim.system;
        let text = checkpoint_to_string(sys);
        let restored = checkpoint_from_str(&text).unwrap();
        assert_eq!(restored.positions, sys.positions);
        assert_eq!(restored.velocities, sys.velocities);
        assert_eq!(restored.accelerations, sys.accelerations);
        assert_eq!(restored.box_len, sys.box_len);
        assert_eq!(restored.mass, sys.mass);
    }

    #[test]
    fn checkpoint_detects_corruption() {
        let sys = ParticleSystem::<f64>::new(2, 5.0);
        let text = checkpoint_to_string(&sys);
        // Drop one record line.
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(checkpoint_from_str(&truncated).is_err());
        assert!(checkpoint_from_str("garbage").is_err());
    }

    #[test]
    fn restored_checkpoint_continues_identically() {
        // Run A: 10 steps straight. Run B: 5 steps, checkpoint, restore, 5
        // more. Trajectories must match bit-for-bit.
        let cfg = SimConfig::reduced_lj(108);
        let mut a = crate::sim::Simulation::<f64>::prepare(cfg);
        a.run(10);

        let mut b = crate::sim::Simulation::<f64>::prepare(cfg);
        b.run(5);
        let text = checkpoint_to_string(&b.system);
        let restored = checkpoint_from_str(&text).unwrap();
        b.system = restored;
        b.run(5);

        assert_eq!(a.system.positions, b.system.positions);
        assert_eq!(a.system.velocities, b.system.velocities);
    }
}
