//! The particle system state.

use vecmath::{pbc, Real, Vec3};

/// Positions, velocities, and accelerations of N identical atoms in a cubic
/// periodic box.
///
/// Arrays are stored as `Vec<Vec3<T>>` — the "positions stored in arrays"
/// layout the paper describes, which is what makes the O(N²) scan
/// cache-unfriendly on a conventional microprocessor and what the device
/// simulators transfer through local stores / textures.
#[derive(Clone, Debug)]
pub struct ParticleSystem<T> {
    pub positions: Vec<Vec3<T>>,
    pub velocities: Vec<Vec3<T>>,
    pub accelerations: Vec<Vec3<T>>,
    /// Cubic box side length L.
    pub box_len: T,
    /// Uniform atomic mass m (1 in reduced units).
    pub mass: T,
}

impl<T: Real> ParticleSystem<T> {
    /// An empty system (all atoms at the origin, at rest) — callers normally
    /// use `init::initialize` instead.
    pub fn new(n: usize, box_len: T) -> Self {
        Self {
            positions: vec![Vec3::zero(); n],
            velocities: vec![Vec3::zero(); n],
            accelerations: vec![Vec3::zero(); n],
            box_len,
            mass: T::ONE,
        }
    }

    pub fn n(&self) -> usize {
        self.positions.len()
    }

    /// Total kinetic energy Σ ½ m v².
    pub fn kinetic_energy(&self) -> T {
        let half_m = self.mass * T::HALF;
        self.velocities.iter().map(|v| half_m * v.norm2()).sum()
    }

    /// Instantaneous temperature from equipartition: T = 2 KE / (3 N k_B),
    /// k_B = 1 in reduced units.
    pub fn temperature(&self) -> T {
        if self.n() == 0 {
            return T::ZERO;
        }
        T::TWO * self.kinetic_energy() / (T::from_f64(3.0) * T::from_usize(self.n()))
    }

    /// Total linear momentum Σ m v (should stay ~0 for an NVE run started at
    /// zero net momentum).
    pub fn total_momentum(&self) -> Vec3<T> {
        let mut p = Vec3::zero();
        for v in &self.velocities {
            p += *v;
        }
        p * self.mass
    }

    /// Wrap every position back into the primary box.
    pub fn wrap_positions(&mut self) {
        for p in &mut self.positions {
            *p = pbc::wrap_position(*p, self.box_len);
        }
    }

    /// Minimum-image displacement from atom `j` to atom `i`.
    #[inline(always)]
    pub fn displacement(&self, i: usize, j: usize) -> Vec3<T> {
        pbc::min_image_branchy(self.positions[i] - self.positions[j], self.box_len)
    }

    /// Squared minimum-image distance between atoms `i` and `j`.
    #[inline(always)]
    pub fn distance2(&self, i: usize, j: usize) -> T {
        self.displacement(i, j).norm2()
    }

    /// Convert precision (f64 reference state → f32 device state and back).
    pub fn convert<U: Real>(&self) -> ParticleSystem<U> {
        ParticleSystem {
            positions: self
                .positions
                .iter()
                .map(|p| Vec3::from_f64(p.to_f64()))
                .collect(),
            velocities: self
                .velocities
                .iter()
                .map(|v| Vec3::from_f64(v.to_f64()))
                .collect(),
            accelerations: self
                .accelerations
                .iter()
                .map(|a| Vec3::from_f64(a.to_f64()))
                .collect(),
            box_len: U::from_f64(self.box_len.to_f64()),
            mass: U::from_f64(self.mass.to_f64()),
        }
    }

    /// All coordinates finite? (Used as a cheap NaN tripwire in tests.)
    pub fn is_finite(&self) -> bool {
        self.positions.iter().all(|p| p.is_finite())
            && self.velocities.iter().all(|v| v.is_finite())
            && self.accelerations.iter().all(|a| a.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_system_properties() {
        let s = ParticleSystem::<f64>::new(10, 5.0);
        assert_eq!(s.n(), 10);
        assert_eq!(s.kinetic_energy(), 0.0);
        assert_eq!(s.temperature(), 0.0);
        assert_eq!(s.total_momentum(), Vec3::zero());
        assert!(s.is_finite());
    }

    #[test]
    fn kinetic_energy_single_mover() {
        let mut s = ParticleSystem::<f64>::new(2, 5.0);
        s.velocities[0] = Vec3::new(3.0, 0.0, 4.0); // |v|² = 25
        assert_eq!(s.kinetic_energy(), 12.5);
        // T = 2·12.5 / (3·2) = 25/6
        assert!((s.temperature() - 25.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn displacement_uses_minimum_image() {
        let mut s = ParticleSystem::<f64>::new(2, 10.0);
        s.positions[0] = Vec3::new(9.5, 0.0, 0.0);
        s.positions[1] = Vec3::new(0.5, 0.0, 0.0);
        let d = s.displacement(0, 1);
        assert!((d.x - (-1.0)).abs() < 1e-12, "wraps across the boundary");
        assert!((s.distance2(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_positions_bounds() {
        let mut s = ParticleSystem::<f64>::new(3, 4.0);
        s.positions[0] = Vec3::new(-1.0, 5.0, 3.9);
        s.positions[1] = Vec3::new(8.1, -0.1, 0.0);
        s.wrap_positions();
        for p in &s.positions {
            for k in 0..3 {
                assert!((0.0..4.0).contains(&p[k]), "coordinate {} out of box", p[k]);
            }
        }
    }

    #[test]
    fn precision_roundtrip() {
        let mut s = ParticleSystem::<f64>::new(2, 7.0);
        s.positions[0] = Vec3::new(1.5, 2.5, 3.5); // exactly representable
        let s32: ParticleSystem<f32> = s.convert();
        let back: ParticleSystem<f64> = s32.convert();
        assert_eq!(back.positions[0], s.positions[0]);
        assert_eq!(back.box_len, 7.0);
    }

    #[test]
    fn nan_detected() {
        let mut s = ParticleSystem::<f64>::new(1, 5.0);
        s.velocities[0].y = f64::NAN;
        assert!(!s.is_finite());
    }
}
