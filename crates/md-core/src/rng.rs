//! Deterministic pseudo-random number generation.
//!
//! Experiments must be exactly reproducible across runs and devices, so the
//! workload generator uses a small, seedable, owner-implemented generator
//! (SplitMix64) rather than an OS-seeded one. `rand` is still supported via
//! the [`rand::RngCore`] impl for callers who want distributions from that
//! ecosystem.

/// SplitMix64: a tiny, high-quality 64-bit generator (Steele et al., 2014).
/// Used for lattice jitter and Maxwell-Boltzmann velocity draws.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [lo, hi).
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal via Box-Muller (uses two uniforms per call; the spare
    /// value is intentionally discarded to keep the generator stateless
    /// beyond `state`).
    pub fn gaussian(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl rand::RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn next_f64_unit_interval_and_mean() {
        let mut rng = SplitMix64::new(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} should be ~0.5");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SplitMix64::new(123);
        let n = 200_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let g = rng.gaussian();
            s1 += g;
            s2 += g * g;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "gaussian variance {var}");
    }

    #[test]
    fn rngcore_fill_bytes_covers_partial_chunks() {
        use rand::RngCore;
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "extremely unlikely all-zero");
    }
}
