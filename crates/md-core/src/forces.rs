//! Force evaluation kernels.
//!
//! Step 2 of the paper's kernel (Figure 4) and the target of every port:
//!
//! ```text
//! 2. calculate forces on each of the N atoms
//!        compute distance with all other N−1 atoms
//!        if (distance within cutoff limits) compute forces
//! ```
//!
//! Two sequential formulations are provided:
//!
//! - [`AllPairsFullKernel`]: each atom scans *all* other atoms — exactly the
//!   O(N²) per-atom gather the paper runs on every device (it parallelizes
//!   trivially because each atom's result is independent). Each pair is
//!   visited twice, so the accumulated potential energy is halved.
//! - [`AllPairsHalfKernel`]: the classic `i < j` loop using Newton's third
//!   law, doing half the work — the natural sequential CPU formulation.
//!
//! Both compute distances on the fly with the minimum-image convention; no
//! neighbor structures (those live in [`crate::neighbor`]/[`crate::celllist`]
//! as the extensions the paper names but does not use).

use crate::scenario::Substrate;
use crate::system::ParticleSystem;
use vecmath::{pbc, Real, Vec3};

/// A force evaluator: fills `sys.accelerations` and returns the total
/// potential energy.
///
/// Kernels evaluate pairs against a resolved [`Substrate`] — potential,
/// evaluation precision, accumulation policy — rather than a hard-coded LJ
/// parameter struct, so every kernel serves every scenario (DESIGN.md §16).
pub trait ForceKernel<T: Real> {
    fn compute(&mut self, sys: &mut ParticleSystem<T>, sub: &Substrate<T>) -> T;

    /// Human-readable kernel name for reports.
    fn name(&self) -> &'static str;
}

/// Visit every interacting pair (i < j, within cutoff) with its squared
/// minimum-image distance. Shared plumbing for diagnostics (RDF, pair counts)
/// and tests.
pub fn for_each_pair<T: Real>(
    sys: &ParticleSystem<T>,
    cutoff2: T,
    mut visit: impl FnMut(usize, usize, T),
) {
    let n = sys.n();
    for i in 0..n {
        for j in (i + 1)..n {
            let r2 = sys.distance2(i, j);
            if r2 < cutoff2 {
                visit(i, j, r2);
            }
        }
    }
}

/// Count pairs within the cutoff (diagnostic; the paper remarks that "so few
/// of the tested atoms interact").
pub fn interacting_pair_count<T: Real>(sys: &ParticleSystem<T>, cutoff: T) -> usize {
    let mut count = 0;
    for_each_pair(sys, cutoff * cutoff, |_, _, _| count += 1);
    count
}

/// Positions in structure-of-arrays layout: one contiguous array per
/// coordinate axis. The tiled gather ([`gather_row`]) streams each axis
/// independently, which is the layout every device port models (SPE quadword
/// lanes, GPU texture channels, MTA stream vectors) and the one the host
/// vectorizes well.
#[derive(Clone, Debug)]
pub struct SoaPositions<T> {
    pub x: Vec<T>,
    pub y: Vec<T>,
    pub z: Vec<T>,
}

impl<T: Real> SoaPositions<T> {
    /// Transpose an array-of-structures position list.
    pub fn from_positions(positions: &[Vec3<T>]) -> Self {
        Self {
            x: positions.iter().map(|p| p.x).collect(),
            y: positions.iter().map(|p| p.y).collect(),
            z: positions.iter().map(|p| p.z).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// j-tile width of the structure-of-arrays gather: the j loop is blocked in
/// tiles of this many atoms so one tile of three coordinate arrays stays hot
/// in L1 while every i-row streams over it. Blocking only regroups the loop;
/// within a row the j order is unchanged, so results are bit-identical to
/// the unblocked scan.
pub const GATHER_TILE: usize = 128;

/// One atom's gather result: its acceleration row, its (unhalved) PE
/// contribution, and how many neighbors fell inside the cutoff.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GatherRow<T> {
    pub acc: Vec3<T>,
    pub pe: T,
    pub interactions: u64,
}

/// Compute atom `i`'s full gather row over all other atoms: the tiled SoA
/// core every device kernel and the host-parallel path share. Accumulation
/// runs in ascending-j order (tiling does not reorder it), so per-row results
/// are bitwise identical regardless of tile width or host thread count.
///
/// When the substrate requests mixed precision (`accumulate_f64`), the row
/// sums run in f64 and narrow once at the end; otherwise the accumulators
/// are native `T`, exactly the seed arithmetic.
#[inline]
pub fn gather_row<T: Real>(
    soa: &SoaPositions<T>,
    i: usize,
    box_len: T,
    sub: &Substrate<T>,
    inv_mass: T,
) -> GatherRow<T> {
    if sub.accumulate_f64 {
        return gather_row_mixed(soa, i, box_len, sub, inv_mass);
    }
    let n = soa.len();
    let cutoff2 = sub.cutoff2();
    let (xi, yi, zi) = (soa.x[i], soa.y[i], soa.z[i]);
    let mut acc = Vec3::zero();
    let mut pe = T::ZERO;
    let mut interactions = 0u64;
    let mut dx_buf = [T::ZERO; GATHER_TILE];
    let mut dy_buf = [T::ZERO; GATHER_TILE];
    let mut dz_buf = [T::ZERO; GATHER_TILE];
    let mut r2_buf = [T::ZERO; GATHER_TILE];
    let mut t0 = 0;
    while t0 < n {
        let t1 = (t0 + GATHER_TILE).min(n);
        let w = t1 - t0;
        // Distance pass: straight-line per-pair arithmetic (select-form
        // min-image, no early-outs), which LLVM vectorizes. Each pair's ops
        // and rounding are exactly those of the scalar formulation; the
        // `j == i` self-pair is kept and yields r2 == 0, excluded below just
        // as `energy_force`'s guard excludes it.
        for k in 0..w {
            let j = t0 + k;
            let dx = pbc::min_image_coord_select(xi - soa.x[j], box_len);
            let dy = pbc::min_image_coord_select(yi - soa.y[j], box_len);
            let dz = pbc::min_image_coord_select(zi - soa.z[j], box_len);
            dx_buf[k] = dx;
            dy_buf[k] = dy;
            dz_buf[k] = dz;
            r2_buf[k] = dx * dx + dy * dy + dz * dz;
        }
        // Accumulate pass: serial in ascending-j order — bitwise the scalar
        // loop. The cutoff test rejects ~97% of pairs, so the expensive LJ
        // terms stay scalar and rare.
        for k in 0..w {
            let r2 = r2_buf[k];
            if r2 < cutoff2 && r2 != T::ZERO {
                let (e, f_over_r) = sub.energy_force(r2);
                pe += e;
                let s = f_over_r * inv_mass;
                acc.x += dx_buf[k] * s;
                acc.y += dy_buf[k] * s;
                acc.z += dz_buf[k] * s;
                interactions += 1;
            }
        }
        t0 = t1;
    }
    GatherRow {
        acc,
        pe,
        interactions,
    }
}

/// The mixed-precision row: same tiled distance pass and ascending-j
/// accumulation order as [`gather_row`], but the per-row sums are carried in
/// f64 and narrowed to `T` once at the end. Pair terms are still evaluated
/// through the substrate (native precision unless the policy forces one).
fn gather_row_mixed<T: Real>(
    soa: &SoaPositions<T>,
    i: usize,
    box_len: T,
    sub: &Substrate<T>,
    inv_mass: T,
) -> GatherRow<T> {
    let n = soa.len();
    let cutoff2 = sub.cutoff2();
    let (xi, yi, zi) = (soa.x[i], soa.y[i], soa.z[i]);
    let mut acc = Vec3::<f64>::zero();
    let mut pe = 0.0f64;
    let mut interactions = 0u64;
    let mut dx_buf = [T::ZERO; GATHER_TILE];
    let mut dy_buf = [T::ZERO; GATHER_TILE];
    let mut dz_buf = [T::ZERO; GATHER_TILE];
    let mut r2_buf = [T::ZERO; GATHER_TILE];
    let mut t0 = 0;
    while t0 < n {
        let t1 = (t0 + GATHER_TILE).min(n);
        let w = t1 - t0;
        for k in 0..w {
            let j = t0 + k;
            let dx = pbc::min_image_coord_select(xi - soa.x[j], box_len);
            let dy = pbc::min_image_coord_select(yi - soa.y[j], box_len);
            let dz = pbc::min_image_coord_select(zi - soa.z[j], box_len);
            dx_buf[k] = dx;
            dy_buf[k] = dy;
            dz_buf[k] = dz;
            r2_buf[k] = dx * dx + dy * dy + dz * dz;
        }
        for k in 0..w {
            let r2 = r2_buf[k];
            if r2 < cutoff2 && r2 != T::ZERO {
                let (e, f_over_r) = sub.energy_force(r2);
                pe += e.to_f64();
                let s = f_over_r * inv_mass;
                acc.x += (dx_buf[k] * s).to_f64();
                acc.y += (dy_buf[k] * s).to_f64();
                acc.z += (dz_buf[k] * s).to_f64();
                interactions += 1;
            }
        }
        t0 = t1;
    }
    GatherRow {
        acc: Vec3::new(T::from_f64(acc.x), T::from_f64(acc.y), T::from_f64(acc.z)),
        pe: T::from_f64(pe),
        interactions,
    }
}

/// Device-style kernel: for each atom, gather over all other atoms, via the
/// shared tiled SoA row ([`gather_row`]) plus a serial in-order PE fold —
/// the same map-then-fold structure the device ports and the host-parallel
/// [`crate::parallel::RayonKernel`] use, so all of them agree bit for bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllPairsFullKernel;

impl<T: Real> ForceKernel<T> for AllPairsFullKernel {
    fn compute(&mut self, sys: &mut ParticleSystem<T>, sub: &Substrate<T>) -> T {
        let n = sys.n();
        let l = sys.box_len;
        let inv_m = sys.mass.recip();
        let soa = SoaPositions::from_positions(&sys.positions);
        let mut pe_twice = T::ZERO;
        for i in 0..n {
            let row = gather_row(&soa, i, l, sub, inv_m);
            sys.accelerations[i] = row.acc;
            pe_twice += row.pe;
        }
        pe_twice * T::HALF
    }

    fn name(&self) -> &'static str {
        "all-pairs-full"
    }
}

/// Sequential CPU kernel using Newton's third law (`i < j`).
#[derive(Clone, Copy, Debug, Default)]
pub struct AllPairsHalfKernel;

impl<T: Real> ForceKernel<T> for AllPairsHalfKernel {
    fn compute(&mut self, sys: &mut ParticleSystem<T>, sub: &Substrate<T>) -> T {
        let n = sys.n();
        let l = sys.box_len;
        let cutoff2 = sub.cutoff2();
        let inv_m = sys.mass.recip();
        let mut pe = T::ZERO;
        for a in sys.accelerations.iter_mut() {
            *a = Vec3::zero();
        }
        for i in 0..n {
            let pi = sys.positions[i];
            for j in (i + 1)..n {
                let d = pbc::min_image_branchy(pi - sys.positions[j], l);
                let r2 = d.norm2();
                if r2 < cutoff2 {
                    let (e, f_over_r) = sub.energy_force(r2);
                    pe += e;
                    let da = d * (f_over_r * inv_m);
                    sys.accelerations[i] += da;
                    sys.accelerations[j] -= da;
                }
            }
        }
        pe
    }

    fn name(&self) -> &'static str {
        "all-pairs-half"
    }
}

/// A [`PairVisitor`] receives each interacting pair once; used by external
/// instrumented kernels (e.g. the Opteron cache-traced replay) to stay in
/// lock-step with the reference implementation.
pub trait PairVisitor<T: Real> {
    fn pair(&mut self, i: usize, j: usize, r2: T);
}

impl<T: Real, F: FnMut(usize, usize, T)> PairVisitor<T> for F {
    fn pair(&mut self, i: usize, j: usize, r2: T) {
        self(i, j, r2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::lj::LjParams;
    use crate::params::SimConfig;
    use proptest::prelude::*;

    fn small_sys() -> (ParticleSystem<f64>, Substrate<f64>) {
        let cfg = SimConfig::reduced_lj(108);
        (initialize(&cfg), cfg.substrate())
    }

    #[test]
    fn two_body_force_direction_and_magnitude() {
        // Two atoms at separation 1.2σ inside a huge box: attractive force
        // along the axis, magnitude = |force_over_r| * r.
        let mut sys = ParticleSystem::<f64>::new(2, 100.0);
        sys.positions[0] = Vec3::new(10.0, 10.0, 10.0);
        sys.positions[1] = Vec3::new(11.2, 10.0, 10.0);
        let params = LjParams::reduced(2.5);
        let pe = AllPairsHalfKernel.compute(&mut sys, &Substrate::from_lj(params));
        assert!((pe - params.energy(1.2 * 1.2)).abs() < 1e-12);
        let f_over_r = params.force_over_r(1.2 * 1.2);
        assert!(f_over_r < 0.0, "attractive at 1.2σ");
        // Atom 0 is pulled toward +x with |a| = r·|F/r| (m = 1).
        assert!(sys.accelerations[0].x > 0.0);
        assert!((sys.accelerations[0].x - 1.2 * f_over_r.abs()).abs() < 1e-9);
        assert_eq!(sys.accelerations[0].y, 0.0);
        // Equal and opposite.
        assert!((sys.accelerations[0] + sys.accelerations[1]).norm() < 1e-14);
    }

    #[test]
    fn full_and_half_kernels_agree() {
        let (sys0, sub) = small_sys();
        let mut s1 = sys0.clone();
        let mut s2 = sys0;
        let pe1 = AllPairsFullKernel.compute(&mut s1, &sub);
        let pe2 = AllPairsHalfKernel.compute(&mut s2, &sub);
        assert!(
            (pe1 - pe2).abs() < 1e-9 * pe2.abs().max(1.0),
            "PE mismatch: {pe1} vs {pe2}"
        );
        for (a1, a2) in s1.accelerations.iter().zip(&s2.accelerations) {
            assert!((*a1 - *a2).norm() < 1e-9, "{a1:?} vs {a2:?}");
        }
    }

    #[test]
    fn newtons_third_law_net_force_zero() {
        let (mut sys, sub) = small_sys();
        AllPairsFullKernel.compute(&mut sys, &sub);
        let mut net = Vec3::zero();
        for a in &sys.accelerations {
            net += *a;
        }
        assert!(net.norm() < 1e-9, "net force {net:?}");
    }

    #[test]
    fn liquid_density_pe_is_negative() {
        let (mut sys, sub) = small_sys();
        let pe = AllPairsHalfKernel.compute(&mut sys, &sub);
        assert!(pe < 0.0, "cohesive LJ liquid should have negative PE: {pe}");
        // Classic LJ liquid near triple point: PE/N ≈ −6 (loose bound).
        let per_atom = pe / sys.n() as f64;
        assert!((-8.0..-3.0).contains(&per_atom), "PE/N = {per_atom}");
    }

    #[test]
    fn pair_count_matches_for_each_pair() {
        let (sys, sub) = small_sys();
        let count = interacting_pair_count(&sys, sub.cutoff());
        let mut manual = 0;
        for i in 0..sys.n() {
            for j in (i + 1)..sys.n() {
                if sys.distance2(i, j) < sub.cutoff2() {
                    manual += 1;
                }
            }
        }
        assert_eq!(count, manual);
        assert!(count > 0);
        // At ρ*=0.8442, r_c=2.5: expected neighbors/atom ≈ ρ·(4/3)πr³ ≈ 55,
        // so pairs ≈ N·55/2. Sanity-band it.
        let per_atom = 2.0 * count as f64 / sys.n() as f64;
        assert!(
            (30.0..80.0).contains(&per_atom),
            "neighbors/atom {per_atom}"
        );
    }

    #[test]
    fn isolated_atoms_no_force() {
        let mut sys = ParticleSystem::<f64>::new(3, 100.0);
        sys.positions[0] = Vec3::new(10.0, 10.0, 10.0);
        sys.positions[1] = Vec3::new(50.0, 50.0, 50.0);
        sys.positions[2] = Vec3::new(90.0, 10.0, 50.0);
        let pe = AllPairsFullKernel.compute(&mut sys, &Substrate::from_lj(LjParams::reduced(2.5)));
        assert_eq!(pe, 0.0);
        for a in &sys.accelerations {
            assert_eq!(*a, Vec3::zero());
        }
    }

    proptest! {
        /// On random (non-overlapping) configurations the two kernels agree
        /// and obey Newton's third law.
        #[test]
        fn kernels_agree_on_random_configs(seed in 0u64..500) {
            let cfg = SimConfig::reduced_lj(64)
                .with_density(0.3) // lower density so box/2 > cutoff
                .with_seed(seed);
            let mut s1: ParticleSystem<f64> = initialize(&cfg);
            // Randomize positions away from the lattice with a short "shake".
            let sub = cfg.substrate::<f64>();
            let mut s2 = s1.clone();
            let pe1 = AllPairsFullKernel.compute(&mut s1, &sub);
            let pe2 = AllPairsHalfKernel.compute(&mut s2, &sub);
            prop_assert!((pe1 - pe2).abs() < 1e-9 * pe2.abs().max(1.0));
            let mut net = Vec3::zero();
            for a in &s1.accelerations { net += *a; }
            prop_assert!(net.norm() < 1e-9);
        }
    }
}
