//! The unified device-run API (DESIGN.md §11).
//!
//! Every simulated machine — Cell BE, GPU, MTA-2, Opteron — exposes the same
//! operation: advance an MD system by `steps` time steps and report what it
//! cost. Historically each device crate grew four parallel entry points
//! (`run_md` / `run_md_from` / `run_md_perf` / `run_md_from_perf`); the
//! [`MdDevice`] trait collapses them into one `run` taking a [`RunOptions`]
//! builder, so the harness supervisor and the sweep engine can drive any
//! device through a `dyn MdDevice` without per-device plumbing.
//!
//! The contract a device implementation must keep:
//!
//! - **Determinism.** `run` with equal inputs returns bit-identical physics
//!   and simulated seconds. This is what makes sweep results memoizable.
//! - **Segment transparency.** Starting from a [`SystemCheckpoint`] and
//!   running `k` steps, then continuing from the returned checkpoint, must
//!   reproduce the unsegmented trajectory bit for bit (devices re-prime
//!   accelerations from positions on entry).
//! - **Free observation.** Passing a [`PerfMonitor`] must not change the
//!   trajectory or the simulated clock.
//! - **Attribution identity.** [`DeviceRun::attribution`] partitions
//!   `sim_seconds`: the buckets sum to the total within float re-association
//!   (enforced downstream by [`sim_perf::RunMetrics::validate`]).

use crate::checkpoint::SystemCheckpoint;
use crate::observables::EnergyReport;
use crate::params::SimConfig;
use std::fmt;

// Re-exported so device crates that gate their own `sim-fault` dependency
// behind a feature can still name the plan/stats types unconditionally.
pub use sim_fault::{FaultPlan, FaultStats};
pub use sim_obs::RunLedger;
pub use sim_perf::PerfMonitor;

/// How much host-side parallelism a device may use to execute its simulated
/// lanes (SPEs, fragment batches, streams, gather rows).
///
/// Purely a wall-clock knob: every device runs its lanes as an
/// order-preserving indexed map followed by a fixed serial fold, so physics,
/// simulated seconds, perf counters, and fault schedules are bitwise
/// identical across all settings (DESIGN.md §12). The cost model continues
/// to charge the *simulated* machine's time; only host wall-clock shrinks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HostParallelism {
    /// Run every simulated lane on the calling thread (the default).
    #[default]
    Serial,
    /// Run lanes on up to `n` host threads; `Threads(0)` means "use every
    /// available core", as in rayon.
    Threads(usize),
}

impl HostParallelism {
    /// Build the setting from a thread count: 0 = all cores, 1 = serial.
    pub fn from_threads(n: usize) -> Self {
        if n == 1 {
            HostParallelism::Serial
        } else {
            HostParallelism::Threads(n)
        }
    }

    /// Worker threads this setting resolves to.
    pub fn threads(self) -> usize {
        match self {
            HostParallelism::Serial => 1,
            HostParallelism::Threads(0) => {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
            HostParallelism::Threads(n) => n,
        }
    }

    /// Does this setting actually fan out to more than one host thread?
    pub fn is_parallel(self) -> bool {
        self.threads() > 1
    }
}

/// One node's contiguous atom range under the cluster engine's slab
/// decomposition.
///
/// The lattice initializer fills sites in `ix`-major order, so a contiguous
/// index range *is* a spatial slab along x: splitting the atom array splits
/// the box. Domains are value types so a cluster engine can recompute the
/// map after a migration without any registration protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DomainRegion {
    /// Owning node's rank at map-construction time.
    pub node: usize,
    /// First atom index of the slab.
    pub start: usize,
    /// Atoms in the slab (the last slab absorbs any remainder).
    pub len: usize,
}

impl DomainRegion {
    /// One past the last atom index of the slab.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Partition `n_atoms` into `nodes` contiguous slabs, remainder spread one
/// atom at a time over the leading slabs (so sizes differ by at most one
/// and every node gets work whenever `n_atoms >= nodes`).
pub fn slab_domains(n_atoms: usize, nodes: usize) -> Vec<DomainRegion> {
    let nodes = nodes.max(1);
    let base = n_atoms / nodes;
    let extra = n_atoms % nodes;
    let mut out = Vec::with_capacity(nodes);
    let mut start = 0;
    for node in 0..nodes {
        let len = base + usize::from(node < extra);
        out.push(DomainRegion { node, start, len });
        start += len;
    }
    out
}

/// How one [`MdDevice::run`] call should execute, assembled builder-style:
///
/// ```
/// # use md_core::device::RunOptions;
/// let opts = RunOptions::steps(10);            // fresh lattice, no extras
/// # let _ = opts;
/// ```
///
/// Add a checkpoint to resume (`from_checkpoint`), a monitor to observe
/// (`with_perf`), or a fault plan to arm injection (`with_fault_plan`;
/// ignored when the device is built without `fault-inject`).
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Time steps to advance.
    pub steps: usize,
    /// Resume point; `None` initializes the standard lattice for the run's
    /// [`SimConfig`].
    pub start: Option<&'a SystemCheckpoint>,
    /// Passive performance observer. Counter values are run-local totals;
    /// use a fresh monitor per run.
    pub perf: Option<&'a mut PerfMonitor>,
    /// Arms the device's deterministic fault schedule for this and later
    /// runs. Devices compiled without `fault-inject` ignore it.
    pub fault_plan: Option<FaultPlan>,
    /// Host threads the device may use to execute its simulated lanes.
    /// Bitwise-identical results at any setting; see [`HostParallelism`].
    pub host_parallelism: HostParallelism,
    /// Unified run-ledger sink. Like `perf`, a pure observer: a run with a
    /// ledger attached is bitwise-identical to the same run without one.
    pub ledger: Option<&'a mut RunLedger>,
}

impl<'a> RunOptions<'a> {
    /// Start building: run `steps` time steps from a fresh lattice.
    pub fn steps(steps: usize) -> Self {
        Self {
            steps,
            start: None,
            perf: None,
            fault_plan: None,
            host_parallelism: HostParallelism::Serial,
            ledger: None,
        }
    }

    /// Resume from a checkpoint instead of the fresh lattice.
    #[must_use]
    pub fn from_checkpoint(mut self, cp: &'a SystemCheckpoint) -> Self {
        self.start = Some(cp);
        self
    }

    /// Attach a performance monitor (pure observer — bitwise-identical run).
    #[must_use]
    pub fn with_perf(mut self, perf: &'a mut PerfMonitor) -> Self {
        self.perf = Some(perf);
        self
    }

    /// Arm a deterministic fault schedule.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Let the device execute its simulated lanes on host threads
    /// (bitwise-identical to serial; only wall-clock changes).
    #[must_use]
    pub fn with_host_parallelism(mut self, par: HostParallelism) -> Self {
        self.host_parallelism = par;
        self
    }

    /// Shorthand for [`Self::with_host_parallelism`] from a thread count
    /// (0 = all cores, 1 = serial).
    #[must_use]
    pub fn with_host_threads(self, n: usize) -> Self {
        self.with_host_parallelism(HostParallelism::from_threads(n))
    }

    /// Attach a run ledger (pure observer — bitwise-identical run). The
    /// device records its attribution phases, counters, and fault events
    /// relative to the ledger's current sim offset.
    #[must_use]
    pub fn with_ledger(mut self, ledger: &'a mut RunLedger) -> Self {
        self.ledger = Some(ledger);
        self
    }
}

/// Everything a device reports about one run, in device-neutral form.
///
/// `attribution`, `derived`, `ops`, and `bytes_moved` exist so one generic
/// metrics builder can produce the same [`sim_perf::RunMetrics`] records the
/// per-device `*_metrics` functions used to assemble by hand.
#[derive(Clone, Debug)]
pub struct DeviceRun {
    /// Total simulated seconds charged.
    pub sim_seconds: f64,
    pub energies: EnergyReport,
    /// State after the run, stamped `start.step + steps`.
    pub checkpoint: SystemCheckpoint,
    /// Labelled partition of `sim_seconds` in presentation order (compute vs
    /// DMA-wait vs mailbox vs PCIe vs memory stalls ...).
    pub attribution: Vec<(&'static str, f64)>,
    /// Device-specific derived metrics (stall fractions, miss rates, stream
    /// occupancy), appended after the standard rate metrics.
    pub derived: Vec<(&'static str, f64)>,
    /// Work retired in the device's native unit (flops, shader ops,
    /// instructions) — numerator of the utilization metrics.
    pub ops: f64,
    /// Bytes moved over the device's off-core links (DMA, PCIe, DRAM).
    pub bytes_moved: f64,
    /// Injected-fault ledger (zero when fault injection is compiled out or
    /// unarmed). `exhausted > 0` marks a degraded run.
    pub faults: FaultStats,
}

/// Why a device refused or abandoned a run.
#[derive(Clone, Debug)]
pub enum DeviceError {
    /// The device model failed mid-run (local-store overflow, injected-fault
    /// exhaustion, ...). Carries the device's own message.
    Failed(String),
    /// The requested options don't make sense for this device (for example,
    /// resuming the PPE-only baseline from a checkpoint).
    Unsupported(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Failed(msg) => write!(f, "{msg}"),
            DeviceError::Unsupported(msg) => write!(f, "unsupported run options: {msg}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A configured simulated machine that can advance an MD system.
///
/// Object-safe by design: the supervisor and the sweep engine hold
/// `Box<dyn MdDevice>` and never know which architecture is underneath.
pub trait MdDevice {
    /// Stable device label ("cell-8spe", "gpu-7900gtx", "mta2-full-mt",
    /// "opteron") — the identity used in metrics records and cache keys.
    fn label(&self) -> String;

    /// Theoretical peak rate in the device's native ops/second, the
    /// denominator of the utilization metric.
    fn peak_ops_per_second(&self) -> f64;

    /// Re-arm the device's fault schedule with a fresh salt so a retried
    /// segment sees a different (still deterministic) fault pattern. No-op
    /// for devices without an armed plan.
    fn resalt(&mut self, _salt: u64) {}

    /// Advance the system per `opts`. On error the device charged nothing
    /// durable: retry from the same checkpoint after [`MdDevice::resalt`].
    fn run(&mut self, sim: &SimConfig, opts: RunOptions<'_>) -> Result<DeviceRun, DeviceError>;
}

/// Fold one [`DeviceRun`] into the schema-versioned [`sim_perf::RunMetrics`]
/// record: attribution verbatim, counters from the monitor, the standard
/// rate metrics (achieved vs peak, utilization, bytes/op), then the device's
/// own derived metrics. This is the single replacement for the four
/// hand-written `*_metrics` builders the harness used to carry.
pub fn collect_metrics(
    device: &dyn MdDevice,
    run: &DeviceRun,
    n_atoms: usize,
    steps: usize,
    perf: &PerfMonitor,
) -> sim_perf::RunMetrics {
    let mut m = sim_perf::RunMetrics::new(device.label(), n_atoms, steps, run.sim_seconds);
    for (name, seconds) in &run.attribution {
        m.push_attribution(*name, *seconds);
    }
    m.absorb_counters(perf);
    m.derive_rates(run.ops, device.peak_ops_per_second(), run.bytes_moved);
    for (name, value) in &run.derived {
        m.push_derived(*name, *value);
    }
    m
}

/// Record one completed device run into a ledger: attribution phases laid
/// end-to-end from the ledger's current sim offset, a closing `sim_seconds`
/// counter, every perf-counter series, and fault totals when any fault
/// fired. Devices call this at the end of `run` when the caller attached a
/// ledger; like the perf monitor, it only reads the run's outputs, so the
/// trajectory and the simulated clock are untouched.
pub fn ledger_record_run(
    ledger: &mut RunLedger,
    source: &str,
    run: &DeviceRun,
    perf: Option<&PerfMonitor>,
) {
    ledger.device_phases(source, &run.attribution);
    ledger.counter(source, "sim_seconds", run.sim_seconds, run.sim_seconds, "s");
    if let Some(p) = perf {
        p.export_to_ledger(ledger, source, run.sim_seconds);
    }
    if run.faults.injected > 0 || run.faults.exhausted > 0 {
        ledger.counter(
            source,
            "faults_injected",
            run.sim_seconds,
            run.faults.injected as f64,
            "events",
        );
        ledger.counter(
            source,
            "fault_extra_seconds",
            run.sim_seconds,
            run.faults.extra_seconds,
            "s",
        );
    }
}

/// Final value of a named counter on a monitor (0 if never registered).
/// Device impls use this to read their own traffic counters back when
/// computing [`DeviceRun::bytes_moved`].
pub fn counter_total(perf: &PerfMonitor, name: &str) -> f64 {
    perf.counters()
        .iter()
        .find(|c| c.name == name)
        .map_or(0.0, sim_perf::CounterSeries::value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::system::ParticleSystem;

    /// A trivial in-crate device: charges a fixed cost per step and runs the
    /// reference physics. Exercises the trait plumbing without a device crate.
    struct NullDevice;

    impl MdDevice for NullDevice {
        fn label(&self) -> String {
            "null".to_string()
        }

        fn peak_ops_per_second(&self) -> f64 {
            1e9
        }

        fn run(&mut self, sim: &SimConfig, opts: RunOptions<'_>) -> Result<DeviceRun, DeviceError> {
            let (sys, start_step): (ParticleSystem<f64>, u64) = match opts.start {
                Some(cp) => (cp.restore(), cp.step),
                None => (init::initialize(sim), 0),
            };
            let energies = EnergyReport::measure(&sys, 0.0);
            let seconds = opts.steps as f64 * 1e-3;
            let checkpoint = SystemCheckpoint::capture(&sys, start_step + opts.steps as u64);
            Ok(DeviceRun {
                sim_seconds: seconds,
                energies,
                checkpoint,
                attribution: vec![("compute", seconds)],
                derived: vec![("busy_fraction", 1.0)],
                ops: 1e6 * opts.steps as f64,
                bytes_moved: 0.0,
                faults: FaultStats::default(),
            })
        }
    }

    #[test]
    fn slab_domains_tile_without_gaps() {
        for (n, nodes) in [(2048usize, 4usize), (2048, 3), (7, 4), (5, 8), (0, 3)] {
            let map = slab_domains(n, nodes);
            assert_eq!(map.len(), nodes);
            let mut cursor = 0;
            for (rank, d) in map.iter().enumerate() {
                assert_eq!(d.node, rank);
                assert_eq!(d.start, cursor);
                assert_eq!(d.end(), d.start + d.len);
                cursor = d.end();
            }
            assert_eq!(cursor, n, "domains must cover all atoms for {n}/{nodes}");
            let max = map.iter().map(|d| d.len).max().unwrap_or(0);
            let min = map.iter().map(|d| d.len).min().unwrap_or(0);
            assert!(max - min <= 1, "slab sizes differ by more than one");
        }
        // nodes = 0 degrades to a single slab rather than panicking.
        assert_eq!(slab_domains(10, 0).len(), 1);
    }

    #[test]
    fn options_builder_composes() {
        let mut perf = PerfMonitor::new();
        let mut ledger = RunLedger::new("null", "test");
        let opts = RunOptions::steps(4)
            .with_perf(&mut perf)
            .with_host_threads(4)
            .with_ledger(&mut ledger);
        assert_eq!(opts.steps, 4);
        assert!(opts.start.is_none());
        assert!(opts.perf.is_some());
        assert!(opts.ledger.is_some());
        assert_eq!(opts.host_parallelism, HostParallelism::Threads(4));
    }

    #[test]
    fn host_parallelism_resolves_threads() {
        assert_eq!(HostParallelism::Serial.threads(), 1);
        assert!(!HostParallelism::Serial.is_parallel());
        assert_eq!(HostParallelism::from_threads(1), HostParallelism::Serial);
        assert_eq!(HostParallelism::Threads(4).threads(), 4);
        assert!(HostParallelism::Threads(4).is_parallel());
        assert!(HostParallelism::Threads(0).threads() >= 1, "0 = all cores");
        assert_eq!(
            RunOptions::steps(1).host_parallelism,
            HostParallelism::Serial
        );
    }

    #[test]
    fn collect_metrics_builds_a_valid_record() {
        let sim = SimConfig::reduced_lj(108);
        let mut dev = NullDevice;
        let perf = PerfMonitor::new();
        let run = dev.run(&sim, RunOptions::steps(3)).expect("null device");
        let m = collect_metrics(&dev, &run, sim.n_atoms, 3, &perf);
        m.validate().expect("attribution partitions sim_seconds");
        assert_eq!(m.device, "null");
        assert_eq!(m.derived_value("busy_fraction"), 1.0);
        assert!(m.derived_value("achieved_gops_per_s") > 0.0);
    }

    #[test]
    fn trait_objects_are_usable() {
        let sim = SimConfig::reduced_lj(108);
        let mut boxed: Box<dyn MdDevice> = Box::new(NullDevice);
        boxed.resalt(7); // default no-op
        let run = boxed.run(&sim, RunOptions::steps(2)).expect("runs");
        assert_eq!(run.checkpoint.step, 2);
        assert_eq!(boxed.label(), "null");
    }
}
