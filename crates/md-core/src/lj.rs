//! The 6-12 Lennard-Jones potential (paper section 3.4):
//!
//! ```text
//! V(r) = 4ε [ (σ/r)¹² − (σ/r)⁶ ]
//! ```
//!
//! combining long-range attraction (r⁻⁶) and short-range repulsion (r⁻¹²).
//! Forces and energies are evaluated from r² only — no square root is needed
//! on the hot path, matching every production LJ kernel and the paper's.

use vecmath::Real;

/// Lennard-Jones interaction parameters.
///
/// ```
/// use md_core::lj::LjParams;
///
/// let lj = LjParams::<f64>::reduced(2.5);
/// // V(σ) = 0, V(r_min) = −ε:
/// assert!(lj.energy(1.0).abs() < 1e-12);
/// let rm = lj.r_min();
/// assert!((lj.energy(rm * rm) + 1.0).abs() < 1e-12);
/// // Nothing beyond the cutoff:
/// assert_eq!(lj.energy(2.5 * 2.5), 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LjParams<T> {
    /// Well depth ε.
    pub epsilon: T,
    /// Zero-crossing distance σ.
    pub sigma: T,
    /// Radial cutoff r_c: pairs with r ≥ r_c contribute nothing.
    pub cutoff: T,
    /// Energy shift subtracted inside the cutoff. Zero for plain truncation
    /// (the paper's kernel); `V(r_c)` for the energy-continuous "truncated
    /// and shifted" form that eliminates cutoff-crossing energy jumps.
    pub shift: T,
}

impl<T: Real> LjParams<T> {
    pub fn new(epsilon: T, sigma: T, cutoff: T) -> Self {
        Self {
            epsilon,
            sigma,
            cutoff,
            shift: T::ZERO,
        }
    }

    /// Reduced units: ε = σ = 1.
    pub fn reduced(cutoff: T) -> Self {
        Self::new(T::ONE, T::ONE, cutoff)
    }

    /// Truncated-and-shifted form: same forces, energy continuous at the
    /// cutoff (so NVE total energy conserves to O(dt²) rather than being
    /// dominated by cutoff-crossing jumps).
    pub fn shifted(mut self) -> Self {
        let s2 = self.sigma * self.sigma / self.cutoff2();
        let s6 = s2 * s2 * s2;
        self.shift = T::from_f64(4.0) * self.epsilon * (s6 * s6 - s6);
        self
    }

    /// Squared cutoff, the quantity the kernel actually compares against.
    #[inline(always)]
    pub fn cutoff2(&self) -> T {
        self.cutoff * self.cutoff
    }

    /// Pair energy V(r) from squared separation. Returns 0 beyond cutoff.
    #[inline(always)]
    pub fn energy(&self, r2: T) -> T {
        if r2 >= self.cutoff2() || r2 == T::ZERO {
            return T::ZERO;
        }
        let s2 = self.sigma * self.sigma / r2;
        let s6 = s2 * s2 * s2;
        T::from_f64(4.0) * self.epsilon * (s6 * s6 - s6) - self.shift
    }

    /// `F(r)/r` from squared separation: multiplying the displacement vector
    /// by this scalar yields the force vector on atom i due to atom j
    /// (pointing from j to i for repulsion). Returns 0 beyond cutoff.
    ///
    /// Derivation: F(r) = −dV/dr = 24 ε (2 (σ/r)¹² − (σ/r)⁶) / r, so
    /// F/r = 24 ε (2 s6² − s6) / r².
    #[inline(always)]
    pub fn force_over_r(&self, r2: T) -> T {
        if r2 >= self.cutoff2() || r2 == T::ZERO {
            return T::ZERO;
        }
        let inv_r2 = r2.recip();
        let s2 = self.sigma * self.sigma * inv_r2;
        let s6 = s2 * s2 * s2;
        T::from_f64(24.0) * self.epsilon * (T::TWO * s6 * s6 - s6) * inv_r2
    }

    /// Energy and force/r in one evaluation (shares the s6 computation, the
    /// form every device kernel uses).
    #[inline(always)]
    pub fn energy_force(&self, r2: T) -> (T, T) {
        if r2 >= self.cutoff2() || r2 == T::ZERO {
            return (T::ZERO, T::ZERO);
        }
        let inv_r2 = r2.recip();
        let s2 = self.sigma * self.sigma * inv_r2;
        let s6 = s2 * s2 * s2;
        let s12 = s6 * s6;
        let four = T::from_f64(4.0);
        let e = four * self.epsilon * (s12 - s6) - self.shift;
        let f = T::from_f64(24.0) * self.epsilon * (T::TWO * s12 - s6) * inv_r2;
        (e, f)
    }

    /// The separation at which the potential is minimal: r_min = 2^(1/6) σ.
    pub fn r_min(&self) -> T {
        self.sigma * T::from_f64(2f64.powf(1.0 / 6.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p() -> LjParams<f64> {
        LjParams::reduced(2.5)
    }

    #[test]
    fn zero_crossing_at_sigma() {
        let e = p().energy(1.0); // r = σ = 1
        assert!(e.abs() < 1e-12, "V(σ) = 0, got {e}");
    }

    #[test]
    fn minimum_at_r_min() {
        let params = p();
        let rm = params.r_min();
        let e_min = params.energy(rm * rm);
        assert!((e_min + 1.0).abs() < 1e-12, "V(r_min) = −ε, got {e_min}");
        // Force vanishes at the minimum.
        assert!(params.force_over_r(rm * rm).abs() < 1e-9);
    }

    #[test]
    fn repulsive_inside_minimum_attractive_outside() {
        let params = p();
        assert!(
            params.force_over_r(0.9 * 0.9) > 0.0,
            "repulsion pushes apart"
        );
        assert!(
            params.force_over_r(1.5 * 1.5) < 0.0,
            "attraction pulls together"
        );
    }

    #[test]
    fn zero_beyond_cutoff() {
        let params = p();
        assert_eq!(params.energy(6.25), 0.0);
        assert_eq!(params.force_over_r(6.26), 0.0);
        assert_eq!(params.energy_force(100.0), (0.0, 0.0));
    }

    #[test]
    fn zero_at_zero_separation_guard() {
        // r² = 0 (self-interaction) must not produce NaN/inf.
        let params = p();
        assert_eq!(params.energy(0.0), 0.0);
        assert_eq!(params.force_over_r(0.0), 0.0);
    }

    #[test]
    fn shifted_potential_continuous_at_cutoff() {
        let params = LjParams::<f64>::reduced(2.5).shifted();
        let just_inside = params.energy(2.5 * 2.5 * (1.0 - 1e-9));
        assert!(just_inside.abs() < 1e-8, "V(r_c⁻) ≈ 0, got {just_inside}");
        assert_eq!(params.energy(2.5 * 2.5), 0.0, "zero outside");
        // Forces unchanged by the shift.
        let unshifted = LjParams::<f64>::reduced(2.5);
        assert_eq!(params.force_over_r(1.44), unshifted.force_over_r(1.44));
    }

    #[test]
    fn f32_and_f64_agree() {
        let p64 = LjParams::<f64>::reduced(2.5);
        let p32 = LjParams::<f32>::reduced(2.5);
        for &r in &[0.8, 0.95, 1.0, 1.12, 1.5, 2.0, 2.4] {
            let (e64, f64v) = p64.energy_force(r * r);
            let (e32, f32v) = p32.energy_force((r * r) as f32);
            assert!(
                (e64 - e32 as f64).abs() < 1e-4 * e64.abs().max(1.0),
                "energy mismatch at r={r}"
            );
            assert!(
                (f64v - f32v as f64).abs() < 1e-3 * f64v.abs().max(1.0),
                "force mismatch at r={r}"
            );
        }
    }

    proptest! {
        /// force_over_r equals the negative derivative of energy (central
        /// difference), divided by r.
        #[test]
        fn force_is_energy_gradient(r in 0.85f64..2.4) {
            let params = p();
            let h = 1e-6;
            let e_plus = params.energy((r + h) * (r + h));
            let e_minus = params.energy((r - h) * (r - h));
            let f_numeric = -(e_plus - e_minus) / (2.0 * h);
            let f_analytic = params.force_over_r(r * r) * r;
            let tol = 1e-4 * f_analytic.abs().max(1.0);
            prop_assert!((f_numeric - f_analytic).abs() < tol,
                "r={r}: numeric {f_numeric} vs analytic {f_analytic}");
        }

        /// energy_force agrees with the individual evaluators.
        #[test]
        fn combined_matches_separate(r2 in 0.5f64..7.0) {
            let params = p();
            let (e, f) = params.energy_force(r2);
            prop_assert_eq!(e, params.energy(r2));
            prop_assert_eq!(f, params.force_over_r(r2));
        }

        /// Scaling ε scales both energy and force linearly.
        #[test]
        fn epsilon_linearity(r2 in 0.7f64..6.0, eps in 0.1f64..10.0) {
            let base = LjParams::new(1.0, 1.0, 2.5);
            let scaled = LjParams::new(eps, 1.0, 2.5);
            let (e1, f1) = base.energy_force(r2);
            let (e2, f2) = scaled.energy_force(r2);
            prop_assert!((e2 - eps * e1).abs() < 1e-9 * e1.abs().max(1.0));
            prop_assert!((f2 - eps * f1).abs() < 1e-9 * f1.abs().max(1.0));
        }
    }
}
