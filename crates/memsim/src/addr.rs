//! Logical address-space bookkeeping.
//!
//! The simulated CPU replays the MD kernel's references against the cache
//! model. To do that it needs stable byte addresses for the kernel's logical
//! arrays (positions, velocities, accelerations, ...). `AddressSpace` hands
//! out non-overlapping, alignment-respecting regions, and `ArrayRegion`
//! converts an element index into the byte address the hierarchy sees.

/// A contiguous region representing one logical array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayRegion {
    base: u64,
    elem_bytes: u64,
    len: u64,
}

impl ArrayRegion {
    pub fn base(&self) -> u64 {
        self.base
    }

    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn size_bytes(&self) -> u64 {
        self.elem_bytes * self.len
    }

    /// Byte address of element `i`.
    #[inline(always)]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(
            (i as u64) < self.len,
            "index {i} out of region of {} elems",
            self.len
        );
        self.base + i as u64 * self.elem_bytes
    }

    /// Byte address of field `field` (in units of `field_bytes`) within
    /// element `i` — for structure-of-arrays-of-structs layouts such as a
    /// `Vec3<f64>` element where x/y/z are separate references.
    #[inline(always)]
    pub fn field_addr(&self, i: usize, field: usize, field_bytes: u64) -> u64 {
        self.addr(i) + field as u64 * field_bytes
    }
}

/// A bump allocator over a simulated address space.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// Start allocations at a non-zero base so address 0 never aliases a
    /// region (useful when 0 is used as a sentinel in traces).
    pub fn new() -> Self {
        Self { next: 0x1000 }
    }

    /// Allocate a region of `len` elements of `elem_bytes` each, aligned to
    /// `align` bytes (power of two).
    pub fn alloc(&mut self, len: usize, elem_bytes: usize, align: u64) -> ArrayRegion {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(elem_bytes > 0, "zero-sized elements are not addressable");
        let base = (self.next + align - 1) & !(align - 1);
        let region = ArrayRegion {
            base,
            elem_bytes: elem_bytes as u64,
            len: len as u64,
        };
        self.next = base + region.size_bytes();
        region
    }

    /// Allocate a cache-line-aligned array (64 B alignment).
    pub fn alloc_array(&mut self, len: usize, elem_bytes: usize) -> ArrayRegion {
        self.alloc(len, elem_bytes, 64)
    }

    /// Total simulated bytes handed out so far.
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut space = AddressSpace::new();
        let a = space.alloc_array(100, 8);
        let b = space.alloc_array(50, 24);
        assert!(a.base() + a.size_bytes() <= b.base());
    }

    #[test]
    fn alignment_respected() {
        let mut space = AddressSpace::new();
        let _ = space.alloc(3, 1, 1); // misalign the bump pointer
        let r = space.alloc(10, 8, 64);
        assert_eq!(r.base() % 64, 0);
    }

    #[test]
    fn element_addresses_stride_correctly() {
        let mut space = AddressSpace::new();
        let r = space.alloc_array(10, 24);
        assert_eq!(r.addr(1) - r.addr(0), 24);
        assert_eq!(r.field_addr(2, 1, 8), r.addr(2) + 8);
    }

    #[test]
    #[should_panic]
    fn zero_sized_elements_rejected() {
        AddressSpace::new().alloc(10, 0, 8);
    }

    proptest! {
        #[test]
        fn allocations_monotonic(sizes in proptest::collection::vec((1usize..100, 1usize..32), 1..20)) {
            let mut space = AddressSpace::new();
            let mut prev_end = 0u64;
            for (len, elem) in sizes {
                let r = space.alloc_array(len, elem);
                prop_assert!(r.base() >= prev_end);
                prev_end = r.base() + r.size_bytes();
            }
            prop_assert_eq!(space.high_water(), prev_end);
        }
    }
}
