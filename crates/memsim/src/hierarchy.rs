//! Two-level cache hierarchy with per-level latencies.

use crate::cache::{AccessKind, Cache, CacheConfig, CacheStats};

/// Latency and geometry for a two-level hierarchy backed by DRAM.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    /// Cycles for an L1 hit (load-to-use).
    pub l1_hit_cycles: u64,
    /// Additional cycles when the access hits in L2.
    pub l2_hit_cycles: u64,
    /// Additional cycles when the access goes to memory.
    pub dram_cycles: u64,
}

impl HierarchyConfig {
    /// A 2.2 GHz Opteron-class memory system (K8): 3-cycle L1, ~12-cycle L2,
    /// ~200-cycle DRAM round trip.
    pub fn opteron() -> Self {
        Self {
            l1: CacheConfig::opteron_l1d(),
            l2: CacheConfig::opteron_l2(),
            l1_hit_cycles: 3,
            l2_hit_cycles: 12,
            dram_cycles: 200,
        }
    }
}

/// Aggregate statistics for the hierarchy.
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchyStats {
    pub l1: CacheStats,
    pub l2: CacheStats,
    pub total_cycles: u64,
    pub accesses: u64,
}

impl HierarchyStats {
    /// Average cycles per access (0 if no accesses).
    pub fn avg_cycles(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.accesses as f64
        }
    }
}

/// An inclusive two-level data-cache hierarchy.
///
/// Misses in L1 consult L2; misses in L2 go to DRAM and fill both levels.
/// Latencies are additive along the miss path, matching how a blocking load
/// would see them.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    total_cycles: u64,
    accesses: u64,
}

impl MemoryHierarchy {
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            config,
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            total_cycles: 0,
            accesses: 0,
        }
    }

    pub fn opteron() -> Self {
        Self::new(HierarchyConfig::opteron())
    }

    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Replay one memory reference; returns the cycles it costs.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> u64 {
        self.accesses += 1;
        let mut cycles = self.config.l1_hit_cycles;
        if !self.l1.access(addr, kind) {
            cycles += self.config.l2_hit_cycles;
            if !self.l2.access(addr, kind) {
                cycles += self.config.dram_cycles;
            }
        }
        self.total_cycles += cycles;
        cycles
    }

    /// Convenience: replay an access for each byte-range `[addr, addr+len)`
    /// at `stride` granularity (e.g. one access per touched word).
    pub fn access_range(&mut self, addr: u64, len: u64, stride: u64, kind: AccessKind) -> u64 {
        assert!(stride > 0);
        let mut total = 0;
        let mut a = addr;
        while a < addr + len {
            total += self.access(a, kind);
            a += stride;
        }
        total
    }

    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            total_cycles: self.total_cycles,
            accesses: self.accesses,
        }
    }

    pub fn reset(&mut self) {
        self.l1.invalidate_all();
        self.l2.invalidate_all();
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.total_cycles = 0;
        self.accesses = 0;
    }

    /// Timing-normalized state equality: true iff the two hierarchies return
    /// the same cycle count for — and evolve identically under — every
    /// possible future access sequence. Statistics counters are ignored;
    /// they record history, not future behavior.
    ///
    /// This is what makes replay memoization sound: if a hierarchy is in a
    /// state `replay_state_eq` to one it was in before, replaying the same
    /// address stream must cost the same cycles and land in an equivalent
    /// state, so the replay can be skipped and its recorded effect applied
    /// via [`apply_replay`](MemoryHierarchy::apply_replay).
    pub fn replay_state_eq(&self, other: &MemoryHierarchy) -> bool {
        self.l1.replacement_state_eq(&other.l1) && self.l2.replacement_state_eq(&other.l2)
    }

    /// Skip a replay whose outcome is already known: install the tag/LRU
    /// state of `exit` and advance the statistics counters by the
    /// `entry`→`exit` delta (instead of rewinding them to `exit`'s absolute
    /// values). Caller contract: `self.replay_state_eq(entry)` holds and
    /// `exit` was produced from `entry` by the access sequence being skipped.
    pub fn apply_replay(&mut self, entry: &MemoryHierarchy, exit: &MemoryHierarchy) {
        debug_assert!(self.replay_state_eq(entry), "memoized entry state mismatch");
        let own = self.stats();
        let e = entry.stats();
        let x = exit.stats();
        self.l1.clone_from(&exit.l1);
        self.l2.clone_from(&exit.l2);
        let delta = |mine: CacheStats, from: CacheStats, to: CacheStats| CacheStats {
            hits: mine.hits + (to.hits - from.hits),
            misses: mine.misses + (to.misses - from.misses),
            evictions: mine.evictions + (to.evictions - from.evictions),
        };
        self.l1.set_stats(delta(own.l1, e.l1, x.l1));
        self.l2.set_stats(delta(own.l2, e.l2, x.l2));
        self.total_cycles = own.total_cycles + (x.total_cycles - e.total_cycles);
        self.accesses = own.accesses + (x.accesses - e.accesses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 256,
                line_bytes: 32,
                associativity: 2,
            },
            l2: CacheConfig {
                size_bytes: 1024,
                line_bytes: 32,
                associativity: 4,
            },
            l1_hit_cycles: 1,
            l2_hit_cycles: 10,
            dram_cycles: 100,
        })
    }

    #[test]
    fn latency_additive_along_miss_path() {
        let mut h = tiny_hierarchy();
        // Cold: misses both levels.
        assert_eq!(h.access(0, AccessKind::Read), 111);
        // Warm in L1.
        assert_eq!(h.access(0, AccessKind::Read), 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = tiny_hierarchy();
        // L1 has 4 sets * 2 ways; three lines mapping to L1 set 0 with
        // stride l1_sets*line = 128 force an L1 eviction while all three
        // still fit in the larger L2.
        h.access(0, AccessKind::Read);
        h.access(128, AccessKind::Read);
        h.access(256, AccessKind::Read); // evicts line 0 from L1
        let c = h.access(0, AccessKind::Read); // L1 miss, L2 hit
        assert_eq!(c, 11);
    }

    #[test]
    fn stats_track_totals() {
        let mut h = tiny_hierarchy();
        h.access(0, AccessKind::Read);
        h.access(0, AccessKind::Write);
        let s = h.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.total_cycles, 112);
        assert!((s.avg_cycles() - 56.0).abs() < 1e-12);
    }

    #[test]
    fn access_range_touches_each_stride() {
        let mut h = tiny_hierarchy();
        h.access_range(0, 64, 8, AccessKind::Read);
        assert_eq!(h.stats().accesses, 8);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut h = tiny_hierarchy();
        h.access(0, AccessKind::Read);
        h.reset();
        assert_eq!(h.stats().accesses, 0);
        assert_eq!(h.access(0, AccessKind::Read), 111, "cold again");
    }

    #[test]
    fn apply_replay_is_indistinguishable_from_real_replay() {
        // An ascending scan whose footprint exactly fills L2: after the cold
        // pass the hierarchy state is periodic, so pass k's entry state is
        // replay-equivalent to pass k+1's.
        let scan = |h: &mut MemoryHierarchy| {
            let mut cycles = 0;
            for a in (0..1024u64).step_by(8) {
                cycles += h.access(a, AccessKind::Read);
            }
            cycles
        };
        let mut real = tiny_hierarchy();
        scan(&mut real); // cold pass
        let entry = real.clone();
        let recorded = scan(&mut real);
        let exit = real.clone();
        assert!(
            real.replay_state_eq(&entry),
            "steady state must be periodic for this test to exercise a hit"
        );
        assert!(!real.replay_state_eq(&tiny_hierarchy()));

        // Memoized path: skip the next pass. Real path: actually run it.
        let mut memo = exit.clone();
        memo.apply_replay(&entry, &exit);
        let replayed = scan(&mut real);
        assert_eq!(recorded, replayed, "periodic state implies periodic cost");
        assert!(memo.replay_state_eq(&real));
        let (m, r) = (memo.stats(), real.stats());
        assert_eq!(m.l1, r.l1);
        assert_eq!(m.l2, r.l2);
        assert_eq!(m.total_cycles, r.total_cycles);
        assert_eq!(m.accesses, r.accesses);

        // Future accesses cost the same from the memoized state.
        for a in [0u64, 8, 512, 4096, 64, 1024] {
            assert_eq!(
                memo.access(a, AccessKind::Read),
                real.access(a, AccessKind::Read)
            );
        }
    }

    #[test]
    fn streaming_large_footprint_costs_more_per_access_than_small() {
        // The Figure 9 mechanism in miniature: a working set inside L1 is
        // cheap per access; one far beyond L2 pays DRAM latency.
        let mut h = tiny_hierarchy();
        for _ in 0..4 {
            for a in (0..256u64).step_by(8) {
                h.access(a, AccessKind::Read);
            }
        }
        let small = h.stats().avg_cycles();

        let mut h = tiny_hierarchy();
        for _ in 0..4 {
            for a in (0..64 * 1024u64).step_by(8) {
                h.access(a, AccessKind::Read);
            }
        }
        let large = h.stats().avg_cycles();
        assert!(
            large > 2.0 * small,
            "large footprint ({large:.2} cyc) should cost >> small ({small:.2} cyc)"
        );
    }
}
