//! Cache-hierarchy simulator.
//!
//! The paper's Figure 9 hinges on one microarchitectural fact: the 2.2 GHz
//! Opteron's runtime grows superlinearly with atom count once the position
//! arrays outgrow its caches, while the cache-less MTA-2's runtime grows in
//! proportion to the floating-point work. To reproduce that *shape* we need a
//! real cache model, not a fudge factor — so this crate implements a
//! set-associative, LRU, write-allocate cache and a two-level hierarchy with
//! per-level latencies, plus address-space bookkeeping for the logical arrays
//! the MD kernel touches.
//!
//! The simulated CPU (`mdea-opteron`) replays every memory reference of the
//! MD kernel through [`MemoryHierarchy::access`], which returns the number of
//! cycles that reference costs.

mod addr;
mod cache;
mod hierarchy;
mod prefetch;

pub use addr::{AddressSpace, ArrayRegion};
pub use cache::{AccessKind, Cache, CacheConfig, CacheStats};
pub use hierarchy::{HierarchyConfig, HierarchyStats, MemoryHierarchy};
pub use prefetch::{PrefetchStats, PrefetchingHierarchy};
