//! A next-line hardware prefetcher (the K8 carries a simple stride/stream
//! prefetcher on its L2 interface).
//!
//! The paper argues MD's access pattern is cache-*unfriendly* because atoms
//! move and neighbors change; but the kernel it actually measures streams the
//! position array sequentially in its inner loop, which a stream prefetcher
//! handles well. The `prefetch` ablation quantifies how much of the Figure 9
//! cache penalty a prefetcher recovers — and therefore how much of the
//! argument rests on the *random* (pairlist-driven) access patterns of
//! production MD rather than this kernel's sequential scan.

use crate::cache::AccessKind;
use crate::hierarchy::{HierarchyConfig, MemoryHierarchy};

/// Statistics of the prefetcher itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefetchStats {
    /// Prefetches issued.
    pub issued: u64,
    /// Sequential-access pairs detected (the trigger condition).
    pub triggers: u64,
}

/// A memory hierarchy fronted by a next-line stream prefetcher: when two
/// consecutive accesses touch adjacent cache lines, the following line is
/// pulled into the hierarchy in the background (charged nothing on the
/// demand path — the model assumes enough bandwidth headroom, which holds
/// for this kernel's ~1 miss per 2.7 atoms).
#[derive(Clone, Debug)]
pub struct PrefetchingHierarchy {
    inner: MemoryHierarchy,
    line_bytes: u64,
    last_line: Option<u64>,
    stats: PrefetchStats,
}

impl PrefetchingHierarchy {
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            line_bytes: config.l1.line_bytes as u64,
            inner: MemoryHierarchy::new(config),
            last_line: None,
            stats: PrefetchStats::default(),
        }
    }

    pub fn opteron() -> Self {
        Self::new(HierarchyConfig::opteron())
    }

    /// Demand access; returns cycles on the demand path.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> u64 {
        let line = addr / self.line_bytes;
        let cycles = self.inner.access(addr, kind);
        if self.last_line == Some(line.wrapping_sub(1)) {
            // Sequential pattern: prefetch the next line. The fill happens
            // off the demand path; we replay it through the hierarchy so the
            // caches warm up, but do not charge its latency to the program.
            self.stats.triggers += 1;
            let next = (line + 1) * self.line_bytes;
            self.inner.access(next, AccessKind::Read);
            self.stats.issued += 1;
        }
        self.last_line = Some(line);
        cycles
    }

    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.stats
    }

    pub fn inner(&self) -> &MemoryHierarchy {
        &self.inner
    }

    pub fn reset(&mut self) {
        self.inner.reset();
        self.last_line = None;
        self.stats = PrefetchStats::default();
    }

    /// Timing-normalized state equality — see
    /// [`MemoryHierarchy::replay_state_eq`]. The stream detector's last-line
    /// register is part of future behavior (it decides the next trigger), so
    /// it must match too.
    pub fn replay_state_eq(&self, other: &PrefetchingHierarchy) -> bool {
        self.last_line == other.last_line && self.inner.replay_state_eq(&other.inner)
    }

    /// Skip a memoized replay — see [`MemoryHierarchy::apply_replay`].
    pub fn apply_replay(&mut self, entry: &PrefetchingHierarchy, exit: &PrefetchingHierarchy) {
        let own = self.stats;
        self.inner.apply_replay(&entry.inner, &exit.inner);
        self.last_line = exit.last_line;
        self.stats = PrefetchStats {
            issued: own.issued + (exit.stats.issued - entry.stats.issued),
            triggers: own.triggers + (exit.stats.triggers - entry.stats.triggers),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn tiny() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 256,
                line_bytes: 32,
                associativity: 2,
            },
            l2: CacheConfig {
                size_bytes: 2048,
                line_bytes: 32,
                associativity: 4,
            },
            l1_hit_cycles: 1,
            l2_hit_cycles: 10,
            dram_cycles: 100,
        }
    }

    #[test]
    fn sequential_stream_mostly_hits_after_warmup() {
        // Stream far beyond L1: without prefetch every new line is a miss;
        // with prefetch, line N+1 is resident before the stream reaches it.
        let mut with = PrefetchingHierarchy::new(tiny());
        let mut without = MemoryHierarchy::new(tiny());
        let mut cycles_with = 0u64;
        let mut cycles_without = 0u64;
        for addr in (0..16 * 1024u64).step_by(8) {
            cycles_with += with.access(addr, AccessKind::Read);
            cycles_without += without.access(addr, AccessKind::Read);
        }
        assert!(
            cycles_with < cycles_without / 2,
            "prefetch should hide most stream misses: {cycles_with} vs {cycles_without}"
        );
        assert!(with.prefetch_stats().issued > 100);
    }

    #[test]
    fn random_pattern_triggers_nothing() {
        let mut h = PrefetchingHierarchy::new(tiny());
        let mut x: u64 = 0x2545F4914F6CDD1D;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Strided far apart: consecutive accesses never hit adjacent lines.
            h.access((x % 1024) * 4096, AccessKind::Read);
        }
        assert_eq!(h.prefetch_stats().issued, 0, "no sequential pairs");
    }

    #[test]
    fn apply_replay_matches_real_replay_with_prefetcher() {
        // 62 lines of footprint: with the one line the prefetcher drags past
        // the scan end this fits the 64-line L2, so the steady state is
        // periodic per pass (an overflowing footprint would rotate the
        // victim pattern across passes instead).
        let scan = |h: &mut PrefetchingHierarchy| {
            let mut cycles = 0;
            for a in (0..1984u64).step_by(8) {
                cycles += h.access(a, AccessKind::Read);
            }
            cycles
        };
        let mut real = PrefetchingHierarchy::new(tiny());
        // Two warmup passes: the prefetcher drags one line past the scan end,
        // so the state needs an extra pass to settle into its period.
        scan(&mut real);
        scan(&mut real);
        let entry = real.clone();
        let recorded = scan(&mut real);
        let exit = real.clone();
        assert!(
            real.replay_state_eq(&entry),
            "steady state must be periodic"
        );

        let mut memo = exit.clone();
        memo.apply_replay(&entry, &exit);
        let replayed = scan(&mut real);
        assert_eq!(recorded, replayed);
        assert!(memo.replay_state_eq(&real));
        assert_eq!(memo.prefetch_stats().issued, real.prefetch_stats().issued);
        assert_eq!(
            memo.prefetch_stats().triggers,
            real.prefetch_stats().triggers
        );
        assert_eq!(
            memo.inner().stats().total_cycles,
            real.inner().stats().total_cycles
        );
        for a in [0u64, 8, 512, 4096, 64, 1024] {
            assert_eq!(
                memo.access(a, AccessKind::Read),
                real.access(a, AccessKind::Read)
            );
        }
    }

    #[test]
    fn reset_clears_detector() {
        let mut h = PrefetchingHierarchy::new(tiny());
        h.access(0, AccessKind::Read);
        h.access(32, AccessKind::Read); // adjacent line -> prefetch
        assert_eq!(h.prefetch_stats().issued, 1);
        h.reset();
        assert_eq!(h.prefetch_stats().issued, 0);
        // After reset the first adjacent pair must be re-detected from scratch.
        h.access(64, AccessKind::Read);
        assert_eq!(h.prefetch_stats().issued, 0);
    }
}
