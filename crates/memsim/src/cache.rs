//! A single level of set-associative, LRU, write-allocate cache.

/// Whether an access reads or writes. Both allocate a line on miss
/// (write-allocate, the Opteron K8's policy for its write-back caches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `line_bytes * associativity`.
    pub size_bytes: usize,
    /// Line (block) size in bytes. Must be a power of two.
    pub line_bytes: usize,
    /// Number of ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// 64 KB, 64 B lines, 2-way: the Opteron K8 L1 data cache.
    pub fn opteron_l1d() -> Self {
        Self {
            size_bytes: 64 * 1024,
            line_bytes: 64,
            associativity: 2,
        }
    }

    /// 1 MB, 64 B lines, 16-way: the Opteron K8 L2.
    pub fn opteron_l2() -> Self {
        Self {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            associativity: 16,
        }
    }

    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.associativity)
    }

    fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.associativity >= 1, "associativity must be >= 1");
        assert!(
            self.size_bytes
                .is_multiple_of(self.line_bytes * self.associativity),
            "capacity must be a multiple of line_bytes * associativity"
        );
        assert!(self.num_sets() >= 1, "cache must contain at least one set");
    }
}

/// Hit/miss counters for one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// One line's bookkeeping: the tag it holds and an LRU timestamp.
#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// A set-associative LRU cache over a 64-bit byte address space.
///
/// Only presence is tracked (no data): the simulators compute values
/// functionally and use the cache purely for timing.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
}

impl Cache {
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        let num_sets = config.num_sets();
        let lines = vec![
            Line {
                tag: 0,
                valid: false,
                last_use: 0,
            };
            config.associativity
        ];
        Self {
            config,
            sets: vec![lines; num_sets],
            clock: 0,
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (num_sets as u64).next_power_of_two() - 1,
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.config
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Flush all lines (e.g. between experiment repetitions).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
            }
        }
    }

    #[inline]
    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.line_shift;
        let num_sets = self.sets.len() as u64;
        let idx = if num_sets.is_power_of_two() {
            (block & self.set_mask) as usize
        } else {
            (block % num_sets) as usize
        };
        (idx, block / num_sets.max(1))
    }

    /// Access one byte address. Returns `true` on hit. A miss allocates the
    /// line, evicting the LRU way if the set is full.
    pub fn access(&mut self, addr: u64, _kind: AccessKind) -> bool {
        self.clock += 1;
        let (idx, tag) = self.index_tag(addr);
        let set = &mut self.sets[idx];

        for line in set.iter_mut() {
            if line.valid && line.tag == tag {
                line.last_use = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }

        self.stats.misses += 1;
        // Prefer an invalid way; otherwise evict the least recently used.
        let victim = if let Some(pos) = set.iter().position(|l| !l.valid) {
            pos
        } else {
            self.stats.evictions += 1;
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("associativity >= 1")
        };
        set[victim] = Line {
            tag,
            valid: true,
            last_use: self.clock,
        };
        false
    }

    /// Check for presence without updating LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (idx, tag) = self.index_tag(addr);
        self.sets[idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Timing-normalized replacement-state equality: true iff the two caches
    /// respond identically (hit/miss outcome and LRU victim choice) to every
    /// possible future access sequence.
    ///
    /// The canonical per-set state is the sequence of valid tags ordered by
    /// recency plus the count of invalid ways. *Which physical way* holds a
    /// tag is unobservable — hits scan every way and the LRU victim is chosen
    /// by timestamp, not position — and the absolute `last_use` clocks are
    /// irrelevant because LRU only ever compares them.
    pub(crate) fn replacement_state_eq(&self, other: &Cache) -> bool {
        if self.config != other.config {
            return false;
        }
        // Two scratch buffers reused across sets: this check runs once per
        // memoized replay, and per-set allocation would dominate it.
        let ways = self.config.associativity;
        let mut va: Vec<(u64, u64)> = Vec::with_capacity(ways);
        let mut vb: Vec<(u64, u64)> = Vec::with_capacity(ways);
        for (a, b) in self.sets.iter().zip(&other.sets) {
            va.clear();
            vb.clear();
            va.extend(a.iter().filter(|l| l.valid).map(|l| (l.last_use, l.tag)));
            vb.extend(b.iter().filter(|l| l.valid).map(|l| (l.last_use, l.tag)));
            if va.len() != vb.len() {
                return false;
            }
            va.sort_unstable();
            vb.sort_unstable();
            if va.iter().zip(&vb).any(|(x, y)| x.1 != y.1) {
                return false;
            }
        }
        true
    }

    pub(crate) fn set_stats(&mut self, stats: CacheStats) {
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets * 2 ways * 16B lines = 128 B.
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            associativity: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, AccessKind::Read));
        assert!(c.access(0, AccessKind::Read));
        assert!(c.access(15, AccessKind::Read), "same line");
        assert!(!c.access(16, AccessKind::Read), "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three distinct tags mapping to set 0 (stride = sets * line = 64).
        c.access(0, AccessKind::Read); // tag A
        c.access(64, AccessKind::Read); // tag B
        c.access(0, AccessKind::Read); // touch A: B is now LRU
        c.access(128, AccessKind::Read); // tag C evicts B
        assert!(c.probe(0), "A stays");
        assert!(!c.probe(64), "B evicted");
        assert!(c.probe(128), "C present");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn working_set_within_capacity_all_hits_on_second_pass() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            associativity: 4,
        });
        for addr in (0..1024u64).step_by(64) {
            c.access(addr, AccessKind::Read);
        }
        c.reset_stats();
        for addr in (0..1024u64).step_by(64) {
            assert!(c.access(addr, AccessKind::Read));
        }
        assert_eq!(c.stats().miss_rate(), 0.0);
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes_on_streaming_pass() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            associativity: 1, // direct-mapped for deterministic thrash
        });
        // Touch 2x capacity repeatedly: every access in steady state misses.
        for _ in 0..3 {
            for addr in (0..2048u64).step_by(64) {
                c.access(addr, AccessKind::Read);
            }
        }
        assert!(
            c.stats().miss_rate() > 0.99,
            "streaming over 2x capacity should thrash: {:?}",
            c.stats()
        );
    }

    #[test]
    fn invalidate_clears_contents() {
        let mut c = tiny();
        c.access(0, AccessKind::Write);
        assert!(c.probe(0));
        c.invalidate_all();
        assert!(!c.probe(0));
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        let before = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(4096));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn opteron_geometries_validate() {
        let l1 = Cache::new(CacheConfig::opteron_l1d());
        let l2 = Cache::new(CacheConfig::opteron_l2());
        assert_eq!(l1.config().num_sets(), 512);
        assert_eq!(l2.config().num_sets(), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 24,
            associativity: 2,
        });
    }

    #[test]
    fn replacement_state_eq_ignores_absolute_clocks_and_stats() {
        let mut a = tiny();
        a.access(0, AccessKind::Read);
        a.access(64, AccessKind::Read);
        // Same tags in the same ways, same LRU order, but shifted clocks and
        // different hit/miss history.
        let mut b = tiny();
        b.access(0, AccessKind::Read);
        b.access(0, AccessKind::Read);
        b.access(64, AccessKind::Read);
        assert!(a.replacement_state_eq(&b));
        assert!(b.replacement_state_eq(&a));
        assert_ne!(a.stats(), b.stats(), "stats are deliberately ignored");
    }

    #[test]
    fn replacement_state_eq_sees_lru_order() {
        let mut a = tiny();
        a.access(0, AccessKind::Read);
        a.access(64, AccessKind::Read);
        // Same tags in the same ways but the opposite recency order: a future
        // conflict miss would evict different lines.
        let mut b = tiny();
        b.access(0, AccessKind::Read);
        b.access(64, AccessKind::Read);
        b.access(0, AccessKind::Read);
        assert!(!a.replacement_state_eq(&b));
        // And different contents are of course unequal.
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        assert!(!a.replacement_state_eq(&c));
    }

    #[test]
    fn hits_never_exceed_accesses() {
        let mut c = tiny();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..10_000 {
            // xorshift address stream
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            c.access(x % 4096, AccessKind::Read);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 10_000);
        assert!(s.evictions <= s.misses);
    }
}
