//! Content-addressed result cache: one JSON file per completed sweep point
//! under `results/cache/`, named by a stable 64-bit FNV-1a hash of the full
//! cache key.
//!
//! The key encodes everything a simulated result depends on — the device's
//! configuration knobs *and* baked-in machine constants (via
//! [`harness::DeviceKind::cache_token`]), the workload (atom count, steps),
//! and [`CODE_VERSION_SALT`]. Because devices run on simulated clocks,
//! equal keys imply bitwise-equal results, which makes memoization exact
//! rather than approximate.
//!
//! The stored value is the schema-versioned [`RunMetrics`] JSON wrapped with
//! the key it was stored under; [`ResultCache::load`] re-checks that key, so
//! a hash collision or a stale file degrades to a recompute, never a wrong
//! answer. Any unreadable, unparsable, or invalid entry is likewise treated
//! as a miss.

use sim_perf::RunMetrics;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bump when a code change alters simulated results without moving any
/// config knob that feeds the cache key (cost-model constants, kernel math,
/// metric schema semantics). Every cached point becomes stale at once.
pub const CODE_VERSION_SALT: u64 = 1;

/// Schema of the on-disk wrapper document (the inner metrics record carries
/// its own `schema_version`).
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// The full cache key for one sweep point. `scenario_token` is the
/// [`md_core::scenario::ScenarioSpec::cache_token`] of the workload's
/// scenario: two sweeps differing only in potential, ensemble, or precision
/// policy must never share an entry.
pub fn point_key(
    salt: u64,
    device_token: &str,
    scenario_token: &str,
    n_atoms: usize,
    steps: usize,
) -> String {
    format!("v{salt}|{device_token}|{scenario_token}|n{n_atoms}|s{steps}")
}

/// 64-bit FNV-1a over the key string; collisions are tolerated (the stored
/// key is re-checked on load), so a small fast hash is enough.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Distinguishes concurrent writers within one process; combined with the
/// process id it names temp files without consulting a clock.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory of memoized sweep points.
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// Open a cache directory for a sweep run: create it if absent and sweep
    /// any stale `.tmp-*` files left behind by a writer that died between
    /// write and rename. Completed (renamed) entries are never touched —
    /// the temp sweep only reclaims files that were still private to the
    /// crashed writer, so concurrent readers cannot observe the removal.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let cache = Self::new(dir);
        fs::create_dir_all(&cache.dir)?;
        for entry in fs::read_dir(&cache.dir)? {
            let path = entry?.path();
            let is_tmp = path
                .file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with(".tmp-"));
            if is_tmp {
                fs::remove_file(&path)?;
            }
        }
        Ok(cache)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where the entry for `key` lives (whether or not it exists yet).
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", fnv1a64(key.as_bytes())))
    }

    /// Look up a completed point. Any defect — missing file, torn or
    /// corrupted JSON, schema mismatch, key mismatch (hash collision),
    /// invalid metrics — is a miss: the caller recomputes and overwrites.
    pub fn load(&self, key: &str) -> Option<RunMetrics> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let doc = sim_perf::parse_json(&text).ok()?;
        if doc.get("cache_schema")?.as_number()? != f64::from(CACHE_SCHEMA_VERSION) {
            return None;
        }
        if doc.get("key")?.as_str()? != key {
            return None;
        }
        let m = RunMetrics::from_json_value(doc.get("metrics")?).ok()?;
        m.validate().ok()?;
        Some(m)
    }

    /// Publish a completed point. Write-to-temp then rename, so concurrent
    /// readers (worker threads, or another sweep process sharing the
    /// directory) see old-or-new content, never a torn file. When two
    /// writers race on the same key the last rename wins atomically; both
    /// candidate files are complete documents carrying the key, and equal
    /// keys imply bitwise-equal metrics, so either outcome is correct and
    /// [`Self::load`]'s key re-verification accepts it.
    pub fn store(&self, key: &str, metrics: &RunMetrics) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let body = format!(
            "{{\n\"cache_schema\": {CACHE_SCHEMA_VERSION},\n\"key\": \"{}\",\n\"metrics\": {}}}\n",
            mdea_trace::escape_json_string(key),
            metrics.to_json()
        );
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, body)?;
        fs::rename(&tmp, self.path_for(key))
    }

    /// Delete every cached entry, returning how many were removed. A missing
    /// cache directory counts as already clean.
    pub fn clean(&self) -> io::Result<usize> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut removed = 0;
        for entry in entries {
            let path = entry?.path();
            if path.extension().is_some_and(|ext| ext == "json") {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> RunMetrics {
        let sim = md_core::params::SimConfig::reduced_lj(108);
        harness::device_metrics(harness::DeviceKind::Opteron, &sim, 1)
            .expect("the Opteron reference device is infallible")
            .0
    }

    fn temp_cache(tag: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("mdea-sweep-cache-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::new(dir)
    }

    #[test]
    fn store_then_load_round_trips_bitwise() {
        let cache = temp_cache("roundtrip");
        let m = sample_metrics();
        let key = point_key(
            CODE_VERSION_SALT,
            "opteron:test",
            "lj:e1,s1/nve/native",
            108,
            1,
        );
        cache.store(&key, &m).expect("store");
        let back = cache.load(&key).expect("hit");
        assert_eq!(back, m);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupted_entry_is_a_miss_not_a_panic() {
        let cache = temp_cache("corrupt");
        let m = sample_metrics();
        let key = point_key(
            CODE_VERSION_SALT,
            "opteron:test",
            "lj:e1,s1/nve/native",
            108,
            1,
        );
        cache.store(&key, &m).expect("store");
        for garbage in ["", "{", "not json at all", "{\"cache_schema\": 1}"] {
            fs::write(cache.path_for(&key), garbage).expect("corrupt");
            assert!(cache.load(&key).is_none(), "garbage {garbage:?} must miss");
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        // Simulate a hash collision: a valid file sitting at the other
        // key's path must not be returned for this key.
        let cache = temp_cache("collision");
        let m = sample_metrics();
        let stored = point_key(
            CODE_VERSION_SALT,
            "opteron:test",
            "lj:e1,s1/nve/native",
            108,
            1,
        );
        cache.store(&stored, &m).expect("store");
        let other = point_key(
            CODE_VERSION_SALT,
            "opteron:test",
            "lj:e1,s1/nve/native",
            108,
            2,
        );
        fs::rename(cache.path_for(&stored), cache.path_for(&other)).expect("move");
        assert!(cache.load(&other).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn salt_changes_the_key() {
        let a = point_key(1, "opteron:test", "lj:e1,s1/nve/native", 108, 1);
        let b = point_key(2, "opteron:test", "lj:e1,s1/nve/native", 108, 1);
        assert_ne!(a, b);
        let cache = temp_cache("salt");
        assert_ne!(cache.path_for(&a), cache.path_for(&b));
    }

    #[test]
    fn open_sweeps_stale_temp_files_but_keeps_entries() {
        let cache = temp_cache("open-sweep");
        let m = sample_metrics();
        let key = point_key(
            CODE_VERSION_SALT,
            "opteron:test",
            "lj:e1,s1/nve/native",
            108,
            1,
        );
        cache.store(&key, &m).expect("store");
        // A writer that died between write and rename leaves a private temp
        // file behind; reopening the directory reclaims it.
        let stale = cache.dir().join(".tmp-99999-0");
        fs::write(&stale, "torn partial document").expect("plant stale tmp");
        let reopened = ResultCache::open(cache.dir()).expect("open");
        assert!(!stale.exists(), "stale temp file must be swept");
        assert_eq!(reopened.load(&key).expect("entry survives the sweep"), m);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn open_creates_a_missing_directory() {
        let dir = std::env::temp_dir().join(format!(
            "mdea-sweep-cache-{}-open-create",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).expect("open creates");
        assert!(cache.dir().is_dir());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_writers_on_one_key_leave_a_loadable_entry() {
        let cache = temp_cache("race");
        let m = sample_metrics();
        let key = point_key(
            CODE_VERSION_SALT,
            "opteron:test",
            "lj:e1,s1/nve/native",
            108,
            1,
        );
        // Two threads publish the same key concurrently, many times each, to
        // exercise the write-temp-then-rename window. Rename-wins means the
        // entry must be loadable and key-consistent after every iteration —
        // never torn, never another key's document.
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        cache.store(&key, &m).expect("concurrent store");
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..100 {
                    // Concurrent readers see a miss (before the first
                    // rename lands) or the full document — never a panic
                    // and never a wrong answer.
                    if let Some(back) = cache.load(&key) {
                        assert_eq!(back, m);
                    }
                }
            });
        });
        assert_eq!(cache.load(&key).expect("hit after the race"), m);
        // Both writers' temp files were consumed by their renames.
        let leftovers = fs::read_dir(cache.dir())
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count();
        assert_eq!(leftovers, 0, "no temp files may outlive their writers");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn clean_removes_entries_and_tolerates_missing_dir() {
        let cache = temp_cache("clean");
        assert_eq!(cache.clean().expect("missing dir is clean"), 0);
        let m = sample_metrics();
        cache
            .store(&point_key(1, "a", "lj:e1,s1/nve/native", 108, 1), &m)
            .expect("store a");
        cache
            .store(&point_key(1, "b", "lj:e1,s1/nve/native", 108, 1), &m)
            .expect("store b");
        assert_eq!(cache.clean().expect("clean"), 2);
        assert!(cache
            .load(&point_key(1, "a", "lj:e1,s1/nve/native", 108, 1))
            .is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }
}
