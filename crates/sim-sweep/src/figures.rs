//! Renderers: turn a [`SweepReport`]'s metrics records back into the paper
//! artifacts — aligned table, shape-check lines, CSV under `results/`.
//!
//! Byte-compatibility contract: every renderer reproduces the exact stdout
//! and CSV bytes of the pre-sweep-engine figure binaries (the recorded
//! baselines in EXPERIMENTS.md). `sim_seconds` round-trips bit-exactly
//! through the cache ([`sim_perf::RunMetrics::from_json`]), so a warm-cache
//! render equals a cold one.

use crate::engine::{PointResult, SweepError, SweepReport};
use cell_be::SpawnPolicy;
use harness::experiments::{PAPER_ATOMS, PAPER_STEPS};
use harness::report::{emit_figure, secs, Table};
use harness::{DeviceKind, Fig6Case, HarnessError, Table1Data};
use std::fmt::Write as _;

/// Schema of `BENCH_seed.json` (moved here from the harness with the
/// `bench_seed` binary).
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Figure 5: SIMD optimization ladder.
pub fn render_fig5(report: &SweepReport) -> Result<(), SweepError> {
    let n = PAPER_ATOMS;
    let title =
        format!("Figure 5 — SIMD optimization for the MD kernel ({n} atoms, 1 SPE, 1 force eval)");
    let rows: Vec<(&'static str, f64)> = report
        .results
        .iter()
        .map(|r| match r.point.device {
            DeviceKind::CellAccel { variant } => Ok((variant.label(), r.metrics.sim_seconds)),
            _ => Err(HarnessError::MissingRow("a fig5 single-SPE probe point")),
        })
        .collect::<Result<_, _>>()?;

    let mut table = Table::new(&["optimization stage", "simulated runtime", "vs original"]);
    let base = rows
        .first()
        .ok_or(HarnessError::MissingRow("the original (scalar) stage"))?
        .1;
    let mut csv = Vec::new();
    for &(label, seconds) in &rows {
        table.row(&[
            label.to_string(),
            secs(seconds),
            format!("{:.2}x", base / seconds),
        ]);
        csv.push(vec![label.to_string(), format!("{seconds:.9}")]);
    }

    if rows.len() < 6 {
        return Err(HarnessError::MissingRow("all six optimization stages").into());
    }
    let v = |i: usize| rows[i].1;
    let checks = vec![
        format!(
            "  copysign gives a small speedup:            {:.1}%  (paper: 'small')",
            (v(0) / v(1) - 1.0) * 100.0
        ),
        format!(
            "  SIMD unit cell vs original:                {:.2}x  (paper: 'over 1.5x')",
            v(0) / v(2)
        ),
        format!(
            "  SIMD direction improvement:                {:.0}%  (paper: 21%)",
            (v(2) / v(3) - 1.0) * 100.0
        ),
        format!(
            "  SIMD length improvement:                   {:.0}%  (paper: 15%)",
            (v(3) / v(4) - 1.0) * 100.0
        ),
        format!(
            "  SIMD acceleration improvement:             {:.1}%  (paper: ~3%, 'very little runtime')",
            (v(4) / v(5) - 1.0) * 100.0
        ),
    ];
    emit_figure(
        &title,
        &table,
        &checks,
        "fig5_simd_ladder",
        &["stage", "seconds"],
        &csv,
    )
    .map_err(SweepError::Io)
}

/// Figure 6: SPE thread-launch overhead.
pub fn render_fig6(report: &SweepReport) -> Result<(), SweepError> {
    let (n, steps) = (PAPER_ATOMS, PAPER_STEPS);
    let title = format!("Figure 6 — SPE launch overhead on MD ({n} atoms, {steps} time steps)");
    let cases: Vec<Fig6Case> = report
        .results
        .iter()
        .map(|r| match r.point.device {
            DeviceKind::Cell { n_spes, policy, .. } => {
                let policy_label = match policy {
                    SpawnPolicy::RespawnEveryStep => "respawn every time step",
                    SpawnPolicy::LaunchOnce => "launch only first time step",
                };
                Ok(Fig6Case {
                    label: format!(
                        "{n_spes} SPE{}, {policy_label}",
                        if n_spes > 1 { "s" } else { "" }
                    ),
                    n_spes,
                    policy,
                    total_seconds: r.metrics.sim_seconds,
                    launch_seconds: r.metrics.attribution_seconds("spe_spawn"),
                })
            }
            _ => Err(HarnessError::MissingRow("a fig6 Cell configuration point")),
        })
        .collect::<Result<_, _>>()?;

    let mut table = Table::new(&[
        "configuration",
        "total runtime",
        "SPE launch overhead",
        "launch fraction",
    ]);
    let mut csv = Vec::new();
    for c in &cases {
        table.row(&[
            c.label.clone(),
            secs(c.total_seconds),
            secs(c.launch_seconds),
            format!("{:.1}%", c.launch_fraction() * 100.0),
        ]);
        csv.push(vec![
            c.label.clone(),
            format!("{:.9}", c.total_seconds),
            format!("{:.9}", c.launch_seconds),
        ]);
    }

    let find = |spes: usize, once: bool| {
        cases
            .iter()
            .find(|c| c.n_spes == spes && (c.policy == SpawnPolicy::LaunchOnce) == once)
            .ok_or(HarnessError::MissingRow("a fig6 SPE/policy combination"))
    };
    let r1 = find(1, false)?;
    let r8 = find(8, false)?;
    let o1 = find(1, true)?;
    let o8 = find(8, true)?;

    let checks = vec![
        format!(
            "  1 SPE respawn, launch is a small fraction:  {:.1}%  (paper: 'small fraction')",
            r1.launch_fraction() * 100.0
        ),
        format!(
            "  8 SPE respawn vs 1 SPE respawn:             {:.2}x  (paper: 'only about 1.5x faster')",
            r1.total_seconds / r8.total_seconds
        ),
        format!(
            "  launch overhead grows with SPE count:       {:.1}x  (paper: 'by a factor of eight')",
            r8.launch_seconds / r1.launch_seconds
        ),
        format!(
            "  8 SPE launch-once vs 1 SPE launch-once:     {:.2}x  (paper: '4.5x faster')",
            o1.total_seconds / o8.total_seconds
        ),
    ];
    emit_figure(
        &title,
        &table,
        &checks,
        "fig6_launch_overhead",
        &["configuration", "total_seconds", "launch_seconds"],
        &csv,
    )
    .map_err(SweepError::Io)
}

/// Table 1: Cell vs Opteron.
pub fn render_table1(report: &SweepReport) -> Result<(), SweepError> {
    let (n, steps) = (PAPER_ATOMS, PAPER_STEPS);
    let title =
        format!("Table 1 — performance comparison of MD calculations ({n} atoms, {steps} steps)");
    let seconds_of = |label: &str| {
        report
            .results
            .iter()
            .find(|r| r.metrics.device == label)
            .map(|r| r.metrics.sim_seconds)
            .ok_or(HarnessError::MissingRow("a table1 system row"))
    };
    let t = Table1Data {
        n_atoms: n,
        steps,
        opteron_seconds: seconds_of("opteron")?,
        cell_1spe_seconds: seconds_of("cell-1spe")?,
        cell_8spe_seconds: seconds_of("cell-8spe")?,
        cell_ppe_seconds: seconds_of("cell-ppe")?,
    };

    let mut table = Table::new(&["system", "simulated runtime"]);
    table.row(&["Opteron (2.2 GHz)".into(), secs(t.opteron_seconds)]);
    table.row(&["Cell, 1 SPE".into(), secs(t.cell_1spe_seconds)]);
    table.row(&["Cell, 8 SPEs".into(), secs(t.cell_8spe_seconds)]);
    table.row(&["Cell, PPE only".into(), secs(t.cell_ppe_seconds)]);

    let checks = vec![
        format!(
            "  1 SPE vs Opteron:   {:.2}x  (paper: 'just edges out the Opteron')",
            t.speedup_1spe_vs_opteron()
        ),
        format!(
            "  8 SPEs vs Opteron:  {:.2}x  (paper: 'better than 5x')",
            t.speedup_8spe_vs_opteron()
        ),
        format!(
            "  8 SPEs vs PPE only: {:.1}x  (paper: '26x faster than the PPE alone')",
            t.speedup_8spe_vs_ppe()
        ),
    ];
    let csv = vec![
        vec!["opteron".into(), format!("{:.9}", t.opteron_seconds)],
        vec!["cell_1spe".into(), format!("{:.9}", t.cell_1spe_seconds)],
        vec!["cell_8spe".into(), format!("{:.9}", t.cell_8spe_seconds)],
        vec!["cell_ppe".into(), format!("{:.9}", t.cell_ppe_seconds)],
    ];
    emit_figure(
        &title,
        &table,
        &checks,
        "table1_cell_vs_opteron",
        &["system", "seconds"],
        &csv,
    )
    .map_err(SweepError::Io)
}

/// Split a size-major two-series report into `(n_atoms, first, second)`
/// triples, validating the expected pairing.
fn paired_series(report: &SweepReport) -> Result<Vec<(usize, f64, f64)>, SweepError> {
    if !report.results.len().is_multiple_of(2) {
        return Err(HarnessError::MissingRow("a complete series pair").into());
    }
    Ok(report
        .results
        .chunks(2)
        .map(|pair: &[PointResult]| {
            (
                pair[0].point.n_atoms,
                pair[0].metrics.sim_seconds,
                pair[1].metrics.sim_seconds,
            )
        })
        .collect())
}

/// Figure 7: GPU vs Opteron across atom counts.
pub fn render_fig7(report: &SweepReport) -> Result<(), SweepError> {
    let steps = PAPER_STEPS;
    let title = format!("Figure 7 — performance results on GPU vs Opteron ({steps} time steps)");
    // Spec order per size: Opteron then GPU.
    let rows: Vec<(usize, f64, f64)> = paired_series(report)?;

    let mut table = Table::new(&["atoms", "Opteron", "NVIDIA GPU", "GPU speedup"]);
    let mut csv = Vec::new();
    for &(n_atoms, opteron_seconds, gpu_seconds) in &rows {
        table.row(&[
            n_atoms.to_string(),
            secs(opteron_seconds),
            secs(gpu_seconds),
            format!("{:.2}x", opteron_seconds / gpu_seconds),
        ]);
        csv.push(vec![
            n_atoms.to_string(),
            format!("{opteron_seconds:.9}"),
            format!("{gpu_seconds:.9}"),
        ]);
    }

    let crossover = rows
        .windows(2)
        .find(|w| w[0].2 >= w[0].1 && w[1].2 < w[1].1)
        .map(|w| (w[0].0, w[1].0));
    let &(_, opteron_2048, gpu_2048) = rows
        .iter()
        .find(|r| r.0 == 2048)
        .ok_or(HarnessError::MissingRow("the 2048-atom point"))?;

    let mut checks = Vec::new();
    match crossover {
        Some((lo, hi)) => checks.push(format!(
            "  GPU slower at very small N, crossover between {lo} and {hi} atoms (paper: 'longer to run ... at very small numbers of atoms')"
        )),
        None => checks.push(format!(
            "  crossover: GPU {} at the smallest size measured",
            if rows[0].2 > rows[0].1 {
                "slower"
            } else {
                "faster"
            }
        )),
    }
    checks.push(format!(
        "  GPU speedup at 2048 atoms: {:.2}x  (paper: 'almost 6x faster than the CPU')",
        opteron_2048 / gpu_2048
    ));
    emit_figure(
        &title,
        &table,
        &checks,
        "fig7_gpu_vs_opteron",
        &["atoms", "opteron_seconds", "gpu_seconds"],
        &csv,
    )
    .map_err(SweepError::Io)
}

/// Figure 8: fully vs partially multithreaded MTA-2 kernel.
pub fn render_fig8(report: &SweepReport) -> Result<(), SweepError> {
    let steps = PAPER_STEPS;
    let title = format!(
        "Figure 8 — fully vs partially multithreaded MD kernel on the MTA-2 ({steps} steps)"
    );
    // Spec order per size: fully-MT then partially-MT.
    let rows: Vec<(usize, f64, f64)> = paired_series(report)?;

    let mut table = Table::new(&[
        "atoms",
        "fully multithreaded",
        "partially multithreaded",
        "gap",
    ]);
    let mut csv = Vec::new();
    for &(n_atoms, fully, partially) in &rows {
        table.row(&[
            n_atoms.to_string(),
            secs(fully),
            secs(partially),
            format!("{:.1}x", partially / fully),
        ]);
        csv.push(vec![
            n_atoms.to_string(),
            format!("{fully:.9}"),
            format!("{partially:.9}"),
        ]);
    }

    let (first, last) = match (rows.first(), rows.last()) {
        (Some(f), Some(l)) => (f, l),
        _ => return Err(HarnessError::MissingRow("any atom-count row").into()),
    };
    let first_gap = first.2 - first.1;
    let last_gap = last.2 - last.1;
    let checks = vec![
        format!(
            "  fully MT faster everywhere: {}",
            rows.iter().all(|&(_, fully, partially)| fully < partially)
        ),
        format!(
            "  performance difference grows with atoms: {first_gap:.3} s -> {last_gap:.3} s (paper: 'increases with the increase in the number of atoms')"
        ),
    ];
    emit_figure(
        &title,
        &table,
        &checks,
        "fig8_mta_threading",
        &["atoms", "fully_mt_seconds", "partially_mt_seconds"],
        &csv,
    )
    .map_err(SweepError::Io)
}

/// Figure 9: runtime growth relative to the 256-atom run. The sweep stores
/// absolute runtimes (so points are shared with fig7/fig8); normalization
/// happens here, exactly as the experiment function did it.
pub fn render_fig9(report: &SweepReport) -> Result<(), SweepError> {
    let steps = PAPER_STEPS;
    let title =
        format!("Figure 9 — increase in runtime with respect to the 256-atom run ({steps} steps)");
    // Spec order per size: MTA fully-MT then Opteron.
    let runs: Vec<(usize, f64, f64)> = paired_series(report)?;
    if runs.first().map(|r| r.0) != Some(256) {
        return Err(HarnessError::InvalidInput(
            "figure 9 normalizes to the 256-atom run; pass counts starting at 256".into(),
        )
        .into());
    }
    let (_, mta0, opt0) = runs[0];
    let rows: Vec<(usize, f64, f64)> = runs
        .iter()
        .map(|&(n, mta, opt)| (n, mta / mta0, opt / opt0))
        .collect();

    let mut table = Table::new(&["atoms", "MTA (relative)", "Opteron (relative)"]);
    let mut csv = Vec::new();
    for &(n_atoms, mta_relative, opteron_relative) in &rows {
        table.row(&[
            n_atoms.to_string(),
            format!("{mta_relative:.1}"),
            format!("{opteron_relative:.1}"),
        ]);
        csv.push(vec![
            n_atoms.to_string(),
            format!("{mta_relative:.4}"),
            format!("{opteron_relative:.4}"),
        ]);
    }

    // The two curves track each other while the Opteron's arrays still fit
    // in cache; the divergence appears "as the array sizes become larger
    // than the cache capacities" (24·N bytes > 64 KB L1 at N ≳ 2700).
    let &(last_n, last_mta, last_opt) = rows
        .last()
        .ok_or(HarnessError::MissingRow("any atom-count row"))?;
    let checks = vec![
        format!(
            "  Opteron grows faster than MTA past cache capacity: {}",
            rows.iter()
                .filter(|r| r.0 >= 4096)
                .all(|&(_, mta, opt)| opt > mta)
        ),
        format!(
            "  at {last_n} atoms: Opteron x{last_opt:.0} vs MTA x{last_mta:.0} (paper: 'runtime on the Opteron increases at a relatively faster rate ... the effect of cache misses')"
        ),
        "  MTA growth tracks flop growth (proportional to N² work), no cache knee".to_string(),
    ];
    emit_figure(
        &title,
        &table,
        &checks,
        "fig9_relative_scaling",
        &["atoms", "mta_relative", "opteron_relative"],
        &csv,
    )
    .map_err(SweepError::Io)
}

/// The `BENCH_seed.json` document: one entry per sweep point, in the spec's
/// sorted order.
pub fn bench_seed_json(report: &SweepReport, steps: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    let _ = writeln!(
        out,
        "  \"description\": \"Simulated-seconds baseline per paper figure/device; regenerate with the bench_seed binary.\","
    );
    let _ = writeln!(out, "  \"steps\": {steps},");
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in report.results.iter().enumerate() {
        let seconds = r.metrics.sim_seconds;
        assert!(
            seconds.is_finite(),
            "{}/{}: non-finite seconds",
            r.point.figure,
            r.metrics.device
        );
        let comma = if i + 1 < report.results.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"figure\": \"{}\", \"device\": \"{}\", \"n_atoms\": {}, \"sim_seconds\": {seconds}}}{comma}",
            r.point.figure,
            mdea_trace::escape_json_string(&r.metrics.device),
            r.point.n_atoms,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Schema of `BENCH_host.json`. Version 2 (physics-once execution,
/// DESIGN.md §17) replaces the single Opteron `runs` array with a `devices`
/// array carrying a memo-off baseline plus memoized thread rows for every
/// device; `obs check` reads both versions.
pub const BENCH_HOST_SCHEMA_VERSION: u32 = 2;

/// One measured wall-clock point for [`bench_host_json`]: how fast the host
/// executed the reference workload in one configuration.
#[derive(Clone, Copy, Debug)]
pub struct HostBenchRun {
    /// Host threads the device's lane map used (1 = serial).
    pub host_threads: usize,
    /// Best-of-N wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// Atom-steps per wall-clock second (the throughput metric
    /// [`sim_perf::RunMetrics`] carries as `host_atom_steps_per_s`).
    pub atom_steps_per_s: f64,
}

/// One device's section of `BENCH_host.json`: its simulated clock for the
/// workload, the memo-off (interpretive per-pair path) serial baseline, and
/// the memoized shared-eval rows per host thread count.
#[derive(Clone, Debug)]
pub struct DeviceHostBench {
    /// Device label ([`harness::DeviceKind::label`] grammar).
    pub device: String,
    /// Simulated seconds — bitwise identical across every row of this
    /// device, baseline included (the physics-once contract).
    pub sim_seconds: f64,
    /// Serial run with the device's eval memo disabled.
    pub baseline: HostBenchRun,
    /// Memoized runs, one per host thread count.
    pub runs: Vec<HostBenchRun>,
}

/// The `BENCH_host.json` document: host wall-clock per device per host
/// thread count, with speedups against each device's own memo-off serial
/// baseline.
///
/// Simulated results are bitwise identical across every row of a device
/// (the host-parallel contract, `tests/host_parallel.rs`, and the
/// physics-once contract, `tests/shared_eval.rs`); this document records
/// the only quantity that *does* change between configurations — and
/// between hosts, which is why the recorded numbers are a provenance
/// snapshot, not a CI-diffable baseline like `BENCH_seed.json`.
pub fn bench_host_json(
    n_atoms: usize,
    steps: usize,
    devices: &[DeviceHostBench],
    note: &str,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": {BENCH_HOST_SCHEMA_VERSION},");
    let _ = writeln!(
        out,
        "  \"description\": \"Host wall-clock per device; simulated results are bitwise identical across all rows of a device. Speedups are against each device's own memo-off serial baseline. Regenerate with the bench_seed binary.\","
    );
    let _ = writeln!(
        out,
        "  \"workload\": {{\"n_atoms\": {n_atoms}, \"steps\": {steps}}},"
    );
    let _ = writeln!(
        out,
        "  \"note\": \"{}\",",
        mdea_trace::escape_json_string(note)
    );
    out.push_str("  \"devices\": [\n");
    for (d, dev) in devices.iter().enumerate() {
        assert!(
            dev.baseline.wall_seconds.is_finite() && dev.baseline.wall_seconds > 0.0,
            "{}: baseline wall-clock must be positive",
            dev.device
        );
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"device\": \"{}\",",
            mdea_trace::escape_json_string(&dev.device)
        );
        let _ = writeln!(out, "      \"sim_seconds\": {},", dev.sim_seconds);
        let _ = writeln!(
            out,
            "      \"baseline\": {{\"label\": \"serial, eval memo off\", \"host_wall_seconds\": {}, \"host_atom_steps_per_s\": {}}},",
            dev.baseline.wall_seconds, dev.baseline.atom_steps_per_s
        );
        out.push_str("      \"runs\": [\n");
        for (i, r) in dev.runs.iter().enumerate() {
            assert!(
                r.wall_seconds.is_finite() && r.wall_seconds > 0.0,
                "{} threads={}: wall-clock must be positive",
                dev.device,
                r.host_threads
            );
            let comma = if i + 1 < dev.runs.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"host_threads\": {}, \"host_wall_seconds\": {}, \"host_atom_steps_per_s\": {}, \"speedup_vs_baseline\": {}}}{comma}",
                r.host_threads,
                r.wall_seconds,
                r.atom_steps_per_s,
                dev.baseline.wall_seconds / r.wall_seconds,
            );
        }
        let comma = if d + 1 < devices.len() { "," } else { "" };
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}
